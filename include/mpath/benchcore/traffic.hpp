// Open-loop multi-tenant traffic generation: arrival processes for the
// node-level scheduler benchmarks. Unlike the OMB drivers (closed-loop:
// the next message waits for the previous), an open-loop generator fixes
// the arrival times up front, so offered load does not shrink when the
// node slows down — exactly the regime where concurrent transfers mis-plan
// against each other.
//
// Arrival processes:
//   * kStorm     — bursts of `storm_width` same-instant transfers (an
//                  allreduce-style storm), bursts spaced by the mean gap;
//   * kPoisson   — exponential inter-arrival times (memoryless tenants);
//   * kHeavyTail — Pareto inter-arrival times scaled to the same mean:
//                  long quiet stretches punctuated by clustered arrivals.
//
// make_arrivals is pure and deterministic in (topology, options): the same
// seed always yields the same trace, so benchmark runs are reproducible
// and the joint-vs-solo comparison sees identical offered load.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpath/benchcore/stack.hpp"

namespace mpath::benchcore {

enum class ArrivalPattern { kStorm, kPoisson, kHeavyTail };

[[nodiscard]] std::string_view to_string(ArrivalPattern pattern);

struct TrafficOptions {
  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  int transfers = 32;  ///< total arrivals in the trace
  /// Mean gap between arrivals (kStorm: between bursts).
  double mean_interarrival_s = 200e-6;
  int storm_width = 4;  ///< same-instant transfers per kStorm burst
  /// Pareto shape for kHeavyTail; must be > 1 so the mean exists. Smaller
  /// alpha = heavier tail.
  double pareto_alpha = 1.5;
  /// Message sizes, sampled uniformly per arrival (mixed tenants). Must be
  /// non-empty.
  std::vector<std::uint64_t> sizes = {4ull << 20, 16ull << 20, 64ull << 20};
  /// true: src/dst GPU pair drawn uniformly (src != dst); false: cycle
  /// through all ordered GPU pairs round-robin.
  bool random_pairs = true;
  std::uint64_t seed = 1;
};

struct Arrival {
  double t = 0.0;
  topo::DeviceId src = 0;
  topo::DeviceId dst = 0;
  std::uint64_t bytes = 0;
};

/// Build the arrival trace. Throws std::invalid_argument on nonsensical
/// options (no transfers, empty sizes, < 2 GPUs, alpha <= 1, ...).
[[nodiscard]] std::vector<Arrival> make_arrivals(const topo::Topology& topo,
                                                 const TrafficOptions& options);

struct TrafficReport {
  int transfers = 0;
  int completed = 0;
  int failed = 0;  ///< ended in TransferError
  std::uint64_t bytes_offered = 0;
  /// Last completion minus first arrival (sim seconds).
  double makespan_s = 0.0;
  double transfers_per_s = 0.0;       ///< completed / makespan
  double aggregate_bandwidth = 0.0;   ///< offered bytes / makespan
};

/// Replay `arrivals` open-loop against the stack's channel: each transfer
/// is spawned at its arrival instant regardless of what else is in flight.
/// Runs the engine to quiescence. Per-transfer prediction accounting lives
/// in stack.scheduler()->history() when the stack is scheduled.
[[nodiscard]] TrafficReport run_traffic(SimStack& stack,
                                        std::span<const Arrival> arrivals);

}  // namespace mpath::benchcore
