// Mispredict hunter: fan seeded random scenarios (topo/fuzz.hpp) across
// the parallel sweep harness, compare the model's predicted bandwidth
// against the simulated fabric under SolverMode::kFull (the ground-truth
// oracle the incremental solver self-checks against), measure the chosen
// theta-policy's regret against the best enumerated policy, and flag
// threshold exceeders (model/accuracy.hpp).
//
// Flagged scenarios can be greedily minimized — drop transfers, GPUs and
// link groups, halve messages, downgrade policies, while the flag still
// reproduces — and frozen as JSON into tests/corpus/, which the corpus
// replay test re-runs under both solver modes on every CI build.
//
// Determinism: scenario i of a hunt depends only on (seed, i) via
// fuzz::mix_seed, every evaluation runs on a private SimStack with
// jitter_rel = 0, and results come back in index order — so fuzz_hunt's
// CSV is byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpath/benchcore/sweep.hpp"
#include "mpath/model/accuracy.hpp"
#include "mpath/sim/fluid.hpp"
#include "mpath/topo/fuzz.hpp"
#include "mpath/topo/paths.hpp"

namespace mpath::fuzz {

/// One point-to-point transfer inside a scenario.
struct TransferCase {
  topo::DeviceId src = 0;
  topo::DeviceId dst = 0;
  std::uint64_t bytes = 0;
  topo::PathPolicy policy;
};

/// A self-contained reproducible scenario: a topology spec plus the
/// transfers to evaluate on it. Serializable — this is the corpus format.
struct Scenario {
  std::uint64_t seed = 0;  ///< generator seed; 0 for hand-planted cases
  std::string note;        ///< human context for frozen corpus entries
  /// Mispredict kind this scenario was flagged (and minimized) for; kNone
  /// for cases frozen as plain regression fixtures rather than mispredicts.
  model::MispredictKind expected = model::MispredictKind::kNone;
  TopoSpec topo;
  std::vector<TransferCase> transfers;

  [[nodiscard]] util::json::Value to_json() const;
  [[nodiscard]] static Scenario from_json(const util::json::Value& v);
};

/// Random scenario: generated topology + 1-2 random transfers (distinct
/// GPU endpoints, power-of-two-ish sizes in the paper's 2-256 MB sweep
/// range, random path policy). Pure in (seed, options).
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed,
                                         const GeneratorOptions& options = {});

/// Atomic (tmp + rename) pretty-printed JSON dump / parse / directory load.
void save_scenario(const Scenario& scenario, const std::string& path);
[[nodiscard]] Scenario load_scenario(const std::string& path);

struct CorpusEntry {
  std::string path;
  Scenario scenario;
};
/// Every *.json under `dir`, sorted by filename for deterministic replay
/// order. Missing directory yields an empty corpus; malformed files throw.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& dir);

struct EvalOptions {
  /// Oracle solver for observed bandwidths. kFull is the reference
  /// rate-allocation solve; the replay test runs the corpus under both.
  sim::FluidNetwork::SolverMode solver =
      sim::FluidNetwork::SolverMode::kFull;
  model::AccuracyThresholds thresholds;
  /// false (default): the model is parameterized analytically from link
  /// ground truth (tuning::registry_from_topology) so that flagged error
  /// is structural, not calibration noise. true: run the measurement-based
  /// tuning::calibrate per scenario (slower, noisier, closer to hardware).
  bool measured_calibration = false;
};

struct CaseOutcome {
  TransferCase transfer;
  double predicted_bw = 0.0;  ///< model prediction for the chosen policy
  double observed_bw = 0.0;   ///< simulated delivery under the chosen policy
  double best_bw = 0.0;       ///< best observed over the enumerated policies
  topo::PathPolicy best_policy;
  double error = 0.0;   ///< model::prediction_error(predicted, observed)
  double regret = 0.0;  ///< model::policy_regret(observed, best)
  model::MispredictKind kind = model::MispredictKind::kNone;
};

struct ScenarioReport {
  Scenario scenario;
  std::vector<CaseOutcome> outcomes;
  double max_error = 0.0;
  double max_regret = 0.0;
  /// Union of the per-case flags.
  model::MispredictKind kind = model::MispredictKind::kNone;
  [[nodiscard]] bool flagged() const {
    return kind != model::MispredictKind::kNone;
  }
};

/// The policy set regret is measured against (direct-only, 2 GPUs, 3 GPUs,
/// 3 GPUs with host) — the paper's figure policies plus the UCX baseline.
[[nodiscard]] const std::vector<topo::PathPolicy>& enumerated_policies();

/// Evaluate every transfer of one scenario on private simulation stacks.
/// Throws std::invalid_argument for malformed scenarios (non-GPU or equal
/// endpoints, zero bytes, unroutable topology).
[[nodiscard]] ScenarioReport evaluate_scenario(const Scenario& scenario,
                                               const EvalOptions& options = {});

struct HuntOptions {
  std::uint64_t seed = 1;
  std::size_t count = 32;
  int jobs = 0;  ///< SweepOptions.jobs: 0 = hardware concurrency
  GeneratorOptions generator;
  EvalOptions eval;
};

struct HuntResult {
  std::vector<ScenarioReport> reports;  ///< index order, one per scenario
  benchcore::SweepStats sweep;
  [[nodiscard]] std::size_t flagged() const {
    std::size_t n = 0;
    for (const ScenarioReport& r : reports) n += r.flagged() ? 1 : 0;
    return n;
  }
};

/// Generate + evaluate `count` scenarios across the sweep pool. The
/// returned reports are identical for any jobs value.
[[nodiscard]] HuntResult run_hunt(const HuntOptions& options = {});

/// Greedy scenario shrinking: repeatedly try dropping transfers, GPUs,
/// duplex link groups and pseudo-hosts, halving message sizes, and
/// downgrading path policies; keep each cut whose result still reproduces
/// the original flag kind (model::covers). Returns the input unchanged if
/// it does not flag to begin with. Deterministic.
[[nodiscard]] Scenario minimize_scenario(const Scenario& scenario,
                                         const EvalOptions& options = {});

}  // namespace mpath::fuzz
