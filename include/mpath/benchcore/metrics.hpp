// Prediction-accuracy metrics used by the figure benchmarks (paper
// Section 5.2 reports "prediction error as a percentage deviation from the
// observed optimal performance").
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/paths.hpp"

namespace mpath::benchcore {

/// Model-predicted aggregate bandwidth (B/s) for one transfer, without
/// running the simulation — the paper's "Model-Driven Prediction" series.
[[nodiscard]] double predicted_bandwidth(model::PathConfigurator& configurator,
                                         const topo::Topology& topo,
                                         topo::DeviceId src,
                                         topo::DeviceId dst,
                                         std::size_t bytes,
                                         const topo::PathPolicy& policy);

/// Mean of |predicted - observed| / observed over (predicted, observed)
/// pairs. Returns 0 for empty input.
[[nodiscard]] double mean_relative_error(
    std::span<const std::pair<double, double>> predicted_vs_observed);

/// Summary of a run executed under fault injection: how much of the
/// requested traffic was delivered, at what effective bandwidth, and how
/// much recovery work the channel had to do to get there.
struct DegradedRunMetrics {
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_delivered = 0;
  double elapsed_s = 0.0;
  /// bytes_delivered / elapsed_s (0 when elapsed is 0).
  double delivered_bandwidth = 0.0;
  std::uint64_t path_timeouts = 0;
  std::uint64_t replans = 0;
  std::uint64_t transfers_recovered = 0;
  std::uint64_t transfers_failed = 0;
  /// Sim time spent between the first watchdog firing and completion,
  /// summed over recovered transfers.
  double recovery_time_s = 0.0;
  /// True when every transfer in the run completed (possibly after
  /// re-planning); false if any ended in TransferError.
  bool completed = false;
};

/// Build degraded-run metrics from a channel's recovery counters plus the
/// run's byte/elapsed accounting. `bytes_delivered` defaults to
/// `bytes_requested` for fully-completed runs; pass the partial count from
/// TransferError::info() when a transfer failed.
[[nodiscard]] DegradedRunMetrics degraded_run_metrics(
    const pipeline::RecoveryStats& stats, std::uint64_t bytes_requested,
    std::uint64_t bytes_delivered, double elapsed_s);

}  // namespace mpath::benchcore
