// Prediction-accuracy metrics used by the figure benchmarks (paper
// Section 5.2 reports "prediction error as a percentage deviation from the
// observed optimal performance").
#pragma once

#include <span>
#include <utility>

#include "mpath/model/configurator.hpp"
#include "mpath/topo/paths.hpp"

namespace mpath::benchcore {

/// Model-predicted aggregate bandwidth (B/s) for one transfer, without
/// running the simulation — the paper's "Model-Driven Prediction" series.
[[nodiscard]] double predicted_bandwidth(model::PathConfigurator& configurator,
                                         const topo::Topology& topo,
                                         topo::DeviceId src,
                                         topo::DeviceId dst,
                                         std::size_t bytes,
                                         const topo::PathPolicy& policy);

/// Mean of |predicted - observed| / observed over (predicted, observed)
/// pairs. Returns 0 for empty input.
[[nodiscard]] double mean_relative_error(
    std::span<const std::pair<double, double>> predicted_vs_observed);

}  // namespace mpath::benchcore
