// OSU Micro-Benchmark style drivers (paper Section 5: OMB BW/BIBW tests
// and collective latency), executed inside the simulation. Timing comes
// from the virtual clock; a whole 512 MB sweep costs milliseconds of wall
// time and is exactly reproducible.
#pragma once

#include "mpath/mpisim/collectives.hpp"
#include "mpath/mpisim/world.hpp"
#include "mpath/sim/inline_fn.hpp"

namespace mpath::benchcore {

struct P2POptions {
  int window = 1;      ///< messages in flight per iteration (OMB window)
  int iterations = 8;  ///< timed iterations
  int warmup = 2;      ///< untimed iterations (fills IPC and config caches)
  int src_rank = 0;
  int dst_rank = 1;
};

/// OMB osu_bw: src posts `window` isends of `bytes`, dst mirrors with
/// irecvs and acks each iteration. Returns unidirectional bandwidth, B/s.
[[nodiscard]] double measure_bw(mpisim::World& world, std::size_t bytes,
                                const P2POptions& options = {});

/// OMB osu_bibw: both ranks send and receive a window per iteration.
/// Returns the aggregate bidirectional bandwidth, B/s.
[[nodiscard]] double measure_bibw(mpisim::World& world, std::size_t bytes,
                                  const P2POptions& options = {});

struct CollectiveOptions {
  int iterations = 5;
  int warmup = 1;
};

/// Per-rank collective body. Inline storage (no heap): collective sweeps
/// invoke thousands of these, and the setup path stays allocation-free
/// like the engine's own event callbacks.
using CollectiveOp = sim::InlineFn<sim::Task<void>(mpisim::Communicator&), 128>;

/// Average latency (seconds) of `op` executed by every rank per iteration,
/// with a barrier separating iterations (OMB collective-latency protocol).
[[nodiscard]] double measure_collective_latency(
    mpisim::World& world, CollectiveOp op,
    const CollectiveOptions& options = {});

}  // namespace mpath::benchcore
