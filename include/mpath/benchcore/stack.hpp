// SimStack: one self-contained simulated system — engine, fluid network,
// GPU runtime, pipeline engine, data channel, MPI world — used as the unit
// of measurement. Every benchmark point runs on a fresh stack so that
// stream queues, caches and clocks never leak between measurements.
#pragma once

#include <memory>

#include "mpath/mpisim/world.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/collective_graph.hpp"
#include "mpath/pipeline/scheduler.hpp"

namespace mpath::benchcore {

struct StackOptions {
  std::uint64_t seed = 7;
  std::size_t staging_buffers_per_device = 16;
  pipeline::ModelDrivenOptions model;
  mpisim::WorldOptions world;
  int nranks = 0;  ///< 0 = one rank per GPU
  /// Collective graph chaining: capture each collective's whole transfer
  /// DAG on first invocation, replay it (with batched joint-theta
  /// admission on scheduled stacks) on later ones. Model-driven stacks
  /// only; ignored (with recovery enabled: rejected) elsewhere.
  bool collective_graphs = false;
  pipeline::ChainOptions chain;
};

class SimStack {
 public:
  /// Baseline: all traffic on the direct path (UCX default).
  [[nodiscard]] static SimStack direct(topo::System system,
                                       StackOptions options = {});
  /// The paper's dynamic configuration: model invoked per transfer.
  /// `configurator` must outlive the stack.
  [[nodiscard]] static SimStack model_driven(topo::System system,
                                             model::PathConfigurator& configurator,
                                             topo::PathPolicy policy,
                                             StackOptions options = {});
  /// The paper's statically-tuned baseline: a fixed offline plan.
  [[nodiscard]] static SimStack static_plan(topo::System system,
                                            pipeline::StaticPlan plan,
                                            StackOptions options = {});
  /// Model-driven with a node-level TransferScheduler: every transfer is
  /// admitted through a joint contention-aware planner (the stack owns the
  /// scheduler; reach it via scheduler()). With `sched.joint = false` the
  /// admission machinery records the same history but plans solo — the
  /// misprediction baseline multi-tenant benchmarks compare against.
  [[nodiscard]] static SimStack model_driven_scheduled(
      topo::System system, model::PathConfigurator& configurator,
      topo::PathPolicy policy, pipeline::SchedulerOptions sched = {},
      StackOptions options = {});

  SimStack(SimStack&&) noexcept = default;
  SimStack& operator=(SimStack&&) noexcept = default;

  [[nodiscard]] mpisim::World& world() { return *world_; }
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] gpusim::GpuRuntime& runtime() { return *runtime_; }
  [[nodiscard]] pipeline::PipelineEngine& pipeline_engine() {
    return *pipeline_;
  }
  [[nodiscard]] gpusim::DataChannel& channel() { return *channel_; }
  /// The fluid network under the stack — the seam where fault injection
  /// (sim::FaultInjector) degrades or severs links mid-run.
  [[nodiscard]] sim::FluidNetwork& network() { return *network_; }
  [[nodiscard]] const topo::System& system() const { return *system_; }
  /// Non-null only for model_driven_scheduled stacks.
  [[nodiscard]] pipeline::TransferScheduler* scheduler() {
    return scheduler_.get();
  }
  /// Non-null only when StackOptions::collective_graphs was set on a
  /// model-driven stack.
  [[nodiscard]] pipeline::ChainController* chain() { return chain_.get(); }

 private:
  SimStack(topo::System system, StackOptions options);
  void finish(std::unique_ptr<gpusim::DataChannel> channel,
              const StackOptions& options);

  std::unique_ptr<topo::System> system_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<sim::FluidNetwork> network_;
  std::unique_ptr<gpusim::GpuRuntime> runtime_;
  std::unique_ptr<pipeline::PipelineEngine> pipeline_;
  std::unique_ptr<pipeline::TransferScheduler> scheduler_;
  std::unique_ptr<gpusim::DataChannel> channel_;
  // Declared after channel_ and before world_: the World detaches the tap
  // first, then the controller's chains release their compiled templates
  // (runtime events / staging leases) while the channel and runtime live.
  std::unique_ptr<pipeline::ChainController> chain_;
  std::unique_ptr<mpisim::World> world_;
};

}  // namespace mpath::benchcore
