// Work-stealing parallel sweep harness with deterministic results.
//
// A figure sweep is a grid of independent scenarios (topology × message
// size × policy × seed). Each scenario builds a PRIVATE simulation stack —
// sim::Engine, FluidNetwork, gpusim runtime, model state — runs it to
// completion, and returns plain data. Nothing mutable is shared between
// scenarios; the only cross-thread state is the immutable topology /
// calibration snapshot built before fan-out. MPATH_ASSERT_OWNER (see
// sim/owner.hpp) enforces that contract in debug builds.
//
// Determinism: run() returns results indexed exactly like the input grid,
// regardless of which worker executed which scenario or in what order.
// Callers do ALL order-sensitive work (CSV rows, table prints, running
// float statistics) in a serial merge over that vector, so emitted files
// are byte-identical for any --jobs value. See DESIGN.md, "Parallel
// sweeps".
//
// Scheduling: the grid is split into one contiguous block per worker;
// each block has an atomic cursor. A worker drains its own block first
// (preserving cache-friendly locality for neighbouring cells), then
// steals from other blocks' cursors until the whole grid is done. The
// calling thread participates as worker 0, so --jobs 1 runs everything
// inline with no thread ever spawned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace mpath::benchcore {

struct SweepOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency().
  int jobs = 0;
};

/// Cumulative execution statistics across every run() on a runner.
struct SweepStats {
  int jobs = 0;                 ///< resolved worker cap
  std::size_t scenarios = 0;    ///< scenarios executed
  double wall_s = 0.0;          ///< wall-clock inside run() calls
  std::uint64_t steals = 0;     ///< scenarios run out of a foreign block
  std::vector<double> worker_busy_s;            ///< per-worker scenario time
  std::vector<std::uint64_t> worker_scenarios;  ///< per-worker counts

  /// Total time spent inside scenario bodies, summed over workers.
  [[nodiscard]] double busy_s() const {
    double s = 0.0;
    for (double b : worker_busy_s) s += b;
    return s;
  }
  [[nodiscard]] double scenarios_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(scenarios) / wall_s : 0.0;
  }
  /// Parallel efficiency: busy time / (workers × wall time), in [0, 1].
  [[nodiscard]] double efficiency() const {
    return (jobs > 0 && wall_s > 0.0) ? busy_s() / (jobs * wall_s) : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Resolved worker count (options.jobs, or hardware concurrency).
  [[nodiscard]] int jobs() const { return jobs_; }

  /// Default for --jobs 0: hardware concurrency, at least 1.
  [[nodiscard]] static int hardware_jobs();

  /// Execute `fn(i)` for every i in [0, n) across the worker pool and
  /// return the results in index order. `fn` must be safe to call
  /// concurrently from several threads on DISTINCT indices (shared-nothing
  /// scenarios over immutable inputs); each index is invoked exactly once.
  /// If scenarios throw, the remaining grid still runs and the exception
  /// with the lowest index is rethrown afterwards — so the failure a
  /// caller sees does not depend on thread timing.
  template <typename Fn>
  auto run(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "sweep scenarios must return their measurements");
    std::vector<std::optional<R>> slots(n);
    struct Ctx {
      Fn& fn;
      std::vector<std::optional<R>>& slots;
    } ctx{fn, slots};
    dispatch(n, &ctx, [](void* p, std::size_t i) {
      auto& c = *static_cast<Ctx*>(p);
      c.slots[i].emplace(c.fn(i));
    });
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

  [[nodiscard]] const SweepStats& stats() const { return stats_; }

 private:
  using ScenarioFn = void (*)(void* ctx, std::size_t index);
  /// Fan `invoke(ctx, i)` for i in [0, n) across the pool; returns after
  /// every index has run (join gives the caller happens-before over all
  /// result slots). Rethrows the lowest-index scenario exception.
  void dispatch(std::size_t n, void* ctx, ScenarioFn invoke);

  int jobs_ = 1;
  SweepStats stats_;
};

}  // namespace mpath::benchcore
