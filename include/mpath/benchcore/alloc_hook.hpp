// Global-allocation counting for allocation-regression benchmarks/tests.
//
// Linking the companion static library (mpath_alloc_hook) replaces the
// global operator new/delete with counting wrappers. Only link it into
// binaries that *measure* allocations (bench/pipeline_churn, the alloc
// regression test) — it is deliberately kept out of mpath::mpath so normal
// builds keep the toolchain allocator untouched.
//
// Note: the simulator's own thread-local pool (mpath/sim/pool.hpp) sits in
// front of operator new, so after warmup a zero delta here means the hot
// path neither missed the pool nor grew any container.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpath::benchcore {

/// Number of successful global operator new calls since process start.
/// Defined by mpath_alloc_hook — binaries that call this must link it.
[[nodiscard]] std::uint64_t alloc_count();

/// Number of global operator delete calls since process start.
[[nodiscard]] std::uint64_t free_count();

/// True when the counting operator new/delete replacement is linked in.
[[nodiscard]] bool alloc_hook_active();

/// Convenience: allocation delta across a scope.
class AllocScope {
 public:
  AllocScope() : start_(alloc_count()) {}
  [[nodiscard]] std::uint64_t delta() const { return alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace mpath::benchcore
