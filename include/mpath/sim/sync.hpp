// Coroutine synchronization primitives layered on the Engine:
//   * Semaphore — counting permits (stream slots, staging-buffer pools),
//   * Mailbox<T> — FIFO channel with awaitable receive (op queues, tag
//     matching),
//   * Barrier — N-party rendezvous (MPI_Barrier building block).
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "mpath/sim/engine.hpp"

namespace mpath::sim {

/// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial)
      : engine_(&engine), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Acquirer {
    Semaphore* sem;
    bool await_ready() {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Acquirer acquire() { return Acquirer{this}; }

  /// Non-blocking acquire: takes a permit iff one is free right now. Same
  /// fast path as an uncontended co_await acquire() (no engine events), so
  /// callers that fall back on failure never perturb simulated time.
  [[nodiscard]] bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  /// Release one permit. If a coroutine is waiting, the permit passes
  /// directly to it (resumed via the event queue at the current time).
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->schedule_handle(engine_->now(), h);
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::size_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII permit for Semaphore; use `co_await sem.acquire()` then construct a
/// Permit, or use the `with_permit` helper pattern in call sites.
class Permit {
 public:
  explicit Permit(Semaphore& sem) : sem_(&sem) {}
  Permit(Permit&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  Permit(const Permit&) = delete;
  Permit& operator=(const Permit&) = delete;
  Permit& operator=(Permit&&) = delete;
  ~Permit() {
    if (sem_) sem_->release();
  }

 private:
  Semaphore* sem_;
};

/// Unbounded FIFO channel. Multiple receivers are served in FIFO order.
/// Items are handed to a specific waiter at push time, so a later receiver
/// can never steal an item already promised to an earlier one.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(&engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  struct Receiver {
    Mailbox* box;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!box->items_.empty() && box->waiters_.empty()) {
        slot = std::move(box->items_.front());
        box->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      box->waiters_.push_back(this);
    }
    T await_resume() { return std::move(*slot); }
  };

  void push(T value) {
    if (!waiters_.empty()) {
      Receiver* r = waiters_.front();
      waiters_.pop_front();
      r->slot = std::move(value);
      engine_->schedule_handle(engine_->now(), r->handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  [[nodiscard]] Receiver receive() { return Receiver{this, std::nullopt, {}}; }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::deque<T> items_;
  std::deque<Receiver*> waiters_;
};

/// N-party reusable barrier: the Nth arrival releases everyone.
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties)
      : engine_(&engine), parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct Arriver {
    Barrier* barrier;
    bool await_ready() {
      if (barrier->arrived_ + 1 == barrier->parties_) {
        // Last arrival: release the others and pass through.
        barrier->arrived_ = 0;
        for (auto h : barrier->waiters_) {
          barrier->engine_->schedule_handle(barrier->engine_->now(), h);
        }
        barrier->waiters_.clear();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++barrier->arrived_;
      barrier->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Arriver arrive() { return Arriver{this}; }

 private:
  Engine* engine_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace mpath::sim
