// Non-allocating move-only callable with fixed small-buffer storage.
//
// std::function heap-allocates any capture larger than two pointers, which
// made every Engine::schedule_callback/defer on the hot path an allocation.
// InlineFn stores the callable inline (no heap fallback): a capture that
// does not fit is a compile-time error, so the event hot path cannot
// silently regress back to allocating. Unlike std::function it also accepts
// move-only captures (latch handles, SmallVec payloads).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mpath::sim {

/// Default SBO budget for engine-event callbacks: enough for a `this`
/// pointer plus several words of captured state (see DESIGN.md,
/// "Allocation & pooling").
inline constexpr std::size_t kInlineFnCapacity = 64;

template <typename Sig, std::size_t Cap = kInlineFnCapacity>
class InlineFn;

template <typename R, typename... Args, std::size_t Cap>
class InlineFn<R(Args...), Cap> {
 public:
  InlineFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn>)
  InlineFn(F&& f) {  // NOLINT(runtime/explicit) — mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Cap,
                  "capture too large for InlineFn's inline storage — shrink "
                  "the capture (bundle state behind one pointer) or raise Cap");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFn requires nothrow-movable callables");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p, Args... args) -> R {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    };
    relocate_ = [](void* dst, void* src) noexcept {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    if constexpr (!std::is_trivially_destructible_v<Fn>) {
      destroy_ = [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); };
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  void move_from(InlineFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.relocate_(buf_, other.buf_);
    invoke_ = std::exchange(other.invoke_, nullptr);
    relocate_ = std::exchange(other.relocate_, nullptr);
    destroy_ = std::exchange(other.destroy_, nullptr);
  }

  R (*invoke_)(void*, Args...) = nullptr;
  void (*relocate_)(void* dst, void* src) noexcept = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;  ///< null for trivial captures
  alignas(std::max_align_t) std::byte buf_[Cap];
};

}  // namespace mpath::sim
