// Lazy, continuation-passing coroutine task for the discrete-event engine.
//
// A Task<T> does nothing until awaited (or spawned on an Engine). When the
// child completes, control transfers symmetrically back to the awaiting
// coroutine. Exceptions propagate through co_await.
//
// Ownership: the Task object owns the coroutine frame; destroying a Task
// whose coroutine is still suspended inside the engine's event queue is a
// programming error (use Engine::spawn for detached work).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "mpath/sim/pool.hpp"

namespace mpath::sim {

template <typename T = void>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;

  // Coroutine frames are the dominant steady-state allocation (one per
  // stream op / transfer); recycle them through the simulator pool.
  static void* operator new(std::size_t n) { return pool_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    pool_free(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise final : TaskPromiseBase {
  std::optional<T> value;
  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return bool(handle_); }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }
  [[nodiscard]] std::coroutine_handle<> raw_handle() const noexcept {
    return handle_;
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> continuation) noexcept {
      handle.promise().continuation = continuation;
      return handle;  // symmetric transfer: start the child now
    }
    T await_resume() {
      auto& promise = handle.promise();
      if (promise.exception) std::rethrow_exception(promise.exception);
      if constexpr (!std::is_void_v<T>) {
        return std::move(*promise.value);
      }
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }
  Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace mpath::sim
