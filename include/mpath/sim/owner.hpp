// Debug-only single-owner-thread assertion for shared-nothing components.
//
// The simulation stack (sim::Engine, gpusim::GpuRuntime, the thread-local
// pool) is single-threaded by design: a parallel sweep gives every worker
// its own private stack and shares only immutable snapshots. ThreadOwner
// makes that contract checkable: the first thread to touch a guarded object
// becomes its owner, and any later touch from a different thread aborts
// with a diagnostic. Checks compile away in release builds (NDEBUG) unless
// MPATH_OWNER_CHECKS is forced on.
#pragma once

#ifndef MPATH_OWNER_CHECKS
#ifndef NDEBUG
#define MPATH_OWNER_CHECKS 1
#else
#define MPATH_OWNER_CHECKS 0
#endif
#endif

#if MPATH_OWNER_CHECKS
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

namespace mpath::sim {

#if MPATH_OWNER_CHECKS

class ThreadOwner {
 public:
  /// Bind to the calling thread on first use; abort if a different thread
  /// ever calls afterwards. `what` names the violated object in the
  /// diagnostic.
  void assert_held(const char* what) const noexcept {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // id of no thread == "unowned"
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first touch: this thread is now the owner
    }
    if (expected != self) fail(what);
  }

  /// Forget the owner (e.g. after a deliberate single-threaded handoff);
  /// the next touching thread becomes the new owner.
  void release() noexcept {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  [[noreturn]] static void fail(const char* what) noexcept {
    std::fprintf(stderr,
                 "MPATH_ASSERT_OWNER: %s touched from a thread other than "
                 "its owner — simulation objects are shared-nothing; give "
                 "each worker its own instance (see DESIGN.md, \"Parallel "
                 "sweeps\")\n",
                 what);
    std::abort();
  }

  mutable std::atomic<std::thread::id> owner_{};
};

#else  // !MPATH_OWNER_CHECKS

class ThreadOwner {
 public:
  void assert_held(const char*) const noexcept {}
  void release() noexcept {}
};

#endif  // MPATH_OWNER_CHECKS

}  // namespace mpath::sim

/// Assert that the calling thread owns `owner` (a sim::ThreadOwner);
/// compiles to nothing in release builds.
#define MPATH_ASSERT_OWNER(owner, what) ((owner).assert_held(what))
