// Deterministic fault injection for the fluid network.
//
// A FaultInjector schedules link-capacity mutations on the engine clock:
// scripted degrade/sever/restore/flap events, or a seeded random fault plan
// over a set of links. Every applied event is recorded (and optionally
// traced on a "faults" track) so tests and demos can assert the exact
// schedule. Restores return a link to its *baseline* capacity — the value
// it had the first time this injector touched it — so degrade/restore
// pairs compose without drift.
//
// All mutations go through FluidNetwork::set_link_capacity, which
// re-solves only the affected component; injecting faults into one
// component does not perturb solver cost elsewhere.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpath/sim/engine.hpp"
#include "mpath/sim/fluid.hpp"

namespace mpath::sim {

class FaultInjector {
 public:
  /// One capacity mutation that has been applied to the network.
  struct Applied {
    Time t = 0.0;
    LinkId link = 0;
    double capacity_bps = 0.0;  ///< capacity after the event
  };

  struct RandomPlanOptions {
    Time start = 0.0;             ///< earliest fault time
    Time horizon = 1.0;           ///< faults drawn in [start, start+horizon)
    int faults = 8;               ///< number of degrade events
    double min_factor = 0.0;      ///< degraded capacity as fraction of base
    double max_factor = 0.5;
    double sever_probability = 0.25;  ///< chance a fault is a full sever
    double restore_probability = 0.9;  ///< chance the fault is later undone
    Time min_duration = 0.05;     ///< fault length before restore
    Time max_duration = 0.5;
    /// Target-selection weight of a fully idle link relative to the
    /// utilization term. Each fault picks its link with probability
    /// proportional to idle_weight + allocated/capacity at fire time, so
    /// soaks stress the links actually carrying traffic while idle links
    /// remain reachable. Must be > 0.
    double idle_weight = 0.25;
  };

  FaultInjector(Engine& engine, FluidNetwork& net)
      : engine_(&engine), net_(&net) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Emit an instant per applied fault on `tracer` track "faults".
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Notification of every applied event, invoked right after the network
  /// mutation lands. `restored` is true when the event returned the link
  /// to its baseline capacity (a restore as opposed to a degrade/sever) —
  /// the hook health/probing policies use to fast-path readmission probes
  /// instead of waiting out a cooldown.
  using EventListener = InlineFn<void(const Applied&, bool /*restored*/)>;
  void set_listener(EventListener fn) { listener_ = std::move(fn); }

  /// Schedule an absolute capacity for `link` at time `t` (>= now).
  void set_capacity_at(Time t, LinkId link, double bps);
  /// Scale `link` to `factor` × its baseline capacity at time `t`.
  void degrade_at(Time t, LinkId link, double factor);
  /// Cut `link` to zero capacity at time `t` (flows on it stall).
  void sever_at(Time t, LinkId link);
  /// Return `link` to its baseline capacity at time `t`.
  void restore_at(Time t, LinkId link);
  /// `cycles` alternations of down (zero capacity) for `down_for` then up
  /// (baseline) for `up_for`, starting at `first_down`.
  void flap(LinkId link, Time first_down, Time down_for, Time up_for,
            int cycles);

  /// Build a seeded random fault plan over `links`: `opts.faults` degrade /
  /// sever events at uniform times, most followed by a restore. Fault times
  /// are fixed by the seed up front; each fault's target link is chosen at
  /// fire time, weighted by current utilization (allocated/capacity) plus
  /// `opts.idle_weight`. The same seed always yields the same schedule for
  /// the same workload.
  void random_plan(std::span<const LinkId> links, const RandomPlanOptions& opts,
                   std::uint64_t seed);

  /// Events scheduled so far (applied or not).
  [[nodiscard]] std::size_t scheduled_count() const { return scheduled_; }
  /// Events already applied to the network, in application order.
  [[nodiscard]] const std::vector<Applied>& applied() const {
    return applied_;
  }
  /// Baseline capacity for `link` (captured at first touch, else current).
  [[nodiscard]] double baseline(LinkId link) const;

 private:
  void schedule(Time t, LinkId link, double bps);
  double capture_baseline(LinkId link);

  Engine* engine_;
  FluidNetwork* net_;
  Tracer* tracer_ = nullptr;
  EventListener listener_;
  std::unordered_map<LinkId, double> baseline_;
  std::vector<Applied> applied_;
  std::size_t scheduled_ = 0;
};

}  // namespace mpath::sim
