// Fluid-flow network model with max-min fair bandwidth sharing.
//
// Each transfer ("flow") occupies a set of directed links simultaneously
// (cut-through). Active flows share every link max-min fairly: whenever a
// flow starts or finishes, allocations are re-solved by water-filling and
// the next completion event is (re)scheduled. This reproduces the
// contention phenomena behind the paper's evaluation — saturated NVLink,
// shared PCIe/UPI on host-staged paths, and bidirectional interference —
// without packet-level simulation.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "mpath/sim/engine.hpp"
#include "mpath/sim/task.hpp"

namespace mpath::sim {

using LinkId = std::uint32_t;

struct LinkSpec {
  std::string name;
  double capacity_bps = 0.0;  ///< bytes per second, > 0
  double latency_s = 0.0;     ///< per-traversal startup latency, >= 0
};

class FluidNetwork {
 public:
  explicit FluidNetwork(Engine& engine) : engine_(&engine) {}
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Register a directed link. Throws std::invalid_argument on
  /// non-positive capacity or negative latency.
  LinkId add_link(LinkSpec spec);

  [[nodiscard]] const LinkSpec& link(LinkId id) const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Move `bytes` across `route`. Pays the sum of the route's latencies
  /// once, then streams at the flow's max-min fair rate until done. A
  /// route may traverse the same link more than once (each traversal
  /// consumes a share). An empty route completes after zero time.
  [[nodiscard]] Task<void> transfer(std::vector<LinkId> route, double bytes);

  /// Instantaneous aggregate rate allocated on a link (bytes/s).
  [[nodiscard]] double link_allocated_rate(LinkId id) const;
  /// Cumulative bytes moved across a link since construction.
  [[nodiscard]] double link_bytes_transferred(LinkId id) const;
  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }

 private:
  struct Flow {
    std::vector<LinkId> route;
    double remaining = 0.0;
    double rate = 0.0;
    std::unique_ptr<Latch> done;
  };
  struct LinkState {
    LinkSpec spec;
    double bytes_transferred = 0.0;
  };

  void progress_to_now();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_timer(std::uint64_t generation);
  void begin_flow(std::vector<LinkId> route, double bytes, Latch* done);

  Engine* engine_;
  std::vector<LinkState> links_;
  std::list<Flow> flows_;
  Time last_progress_ = 0.0;
  std::uint64_t timer_generation_ = 0;
};

}  // namespace mpath::sim
