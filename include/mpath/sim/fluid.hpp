// Fluid-flow network model with max-min fair bandwidth sharing.
//
// Each transfer ("flow") occupies a set of directed links simultaneously
// (cut-through). Active flows share every link max-min fairly: whenever a
// flow starts, finishes, or is cancelled, allocations are re-solved by
// water-filling and the next completion event is (re)scheduled. This
// reproduces the contention phenomena behind the paper's evaluation —
// saturated NVLink, shared PCIe/UPI on host-staged paths, and
// bidirectional interference — without packet-level simulation.
//
// The solver is *incremental*: every link keeps the set of flows that
// traverse it, a flow add/remove only dirties the links it touches, and the
// water-filling re-solve is restricted to the connected component of the
// flow/link sharing graph reachable from the dirty links (flows in disjoint
// components cannot change rate, so their allocations are reused as-is).
// Re-solves triggered within one simulated timestamp are additionally
// coalesced into a single pass: a burst of k same-time chunk completions or
// starts (the pipeline engine's common case at large chunk counts) costs one
// rate solve instead of k. Within a pass, bottleneck selection runs over a
// lazily-invalidated min-heap keyed by (fair share, LinkId) instead of a
// linear rescan, so a component of n links water-fills in O(n log n) rather
// than O(n^2). The original whole-network solver is retained as
// `SolverMode::kFull` — both a behavioural baseline for benchmarks and a
// reference oracle (`set_self_check`) that property tests compare against.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpath/sim/engine.hpp"
#include "mpath/sim/task.hpp"
#include "mpath/util/small_vec.hpp"

namespace mpath::sim {

class Tracer;

using LinkId = std::uint32_t;
/// Opaque handle to an in-flight flow (valid until completion/cancel).
using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

/// A route through the link graph. Every shipped topology's paths are at
/// most 3 edges (direct peer, host-staged up/down), so 4 inline slots keep
/// route handling off the heap; longer synthetic routes spill transparently.
using Route = util::SmallVec<LinkId, 4>;

struct LinkSpec {
  std::string name;
  double capacity_bps = 0.0;  ///< bytes per second, > 0
  double latency_s = 0.0;     ///< per-traversal startup latency, >= 0
};

class FluidNetwork {
 public:
  enum class SolverMode {
    kIncremental,  ///< dirty-component re-solve + same-time coalescing
    kFull,         ///< legacy: immediate whole-network re-solve per event
  };

  /// Counters describing solver work done so far (monotonic).
  struct SolverStats {
    std::uint64_t resolve_requests = 0;  ///< flow add/remove events
    std::uint64_t coalesced = 0;    ///< requests absorbed by a pending solve
    std::uint64_t resolves = 0;     ///< water-filling passes actually run
    std::uint64_t full_resolves = 0;     ///< passes that visited every link
    std::uint64_t flows_resolved = 0;    ///< flow-rate assignments summed
    std::uint64_t links_resolved = 0;    ///< component link visits summed
    std::uint64_t heap_pushes = 0;   ///< bottleneck-heap entries pushed
    std::uint64_t heap_reinserts = 0;  ///< stale keys re-queued on pop
    std::uint64_t timers_fired = 0;      ///< completion timers processed
    std::uint64_t timers_stale = 0;      ///< superseded timers discarded
    std::uint64_t cancelled_flows = 0;   ///< flows aborted via cancel_flow
    std::uint64_t capacity_changes = 0;  ///< set_link_capacity calls
  };

  explicit FluidNetwork(Engine& engine) : engine_(&engine) {}
  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  /// Register a directed link. Throws std::invalid_argument on
  /// non-positive capacity or negative latency.
  LinkId add_link(LinkSpec spec);

  [[nodiscard]] const LinkSpec& link(LinkId id) const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Change a link's capacity mid-simulation (fault injection / dynamic
  /// contention). `bps == 0` severs the link: flows traversing it stall at
  /// rate 0 (they stay live and resume if capacity is restored; cancel them
  /// via cancel_flow to abort). Only the connected component containing the
  /// link is re-solved. Throws std::out_of_range on a bad id and
  /// std::invalid_argument on a negative capacity.
  void set_link_capacity(LinkId id, double bps);

  /// Capacity-change notification: invoked synchronously from
  /// set_link_capacity after in-flight bytes have been credited at the old
  /// rates but BEFORE the new capacity takes effect — so a listener that
  /// integrates modeled state (the transfer scheduler) brackets its window
  /// at the rates that actually governed it, and the first query after the
  /// call sees the new capacity. Listeners must not mutate the network.
  using CapacityListener = InlineFn<void(LinkId, double /*old_bps*/,
                                         double /*new_bps*/)>;
  /// Register a listener; returns a handle for remove_capacity_listener.
  std::uint64_t add_capacity_listener(CapacityListener fn);
  /// Deregister; returns false if the handle is unknown (already removed).
  bool remove_capacity_listener(std::uint64_t handle);
  [[nodiscard]] std::size_t capacity_listener_count() const {
    return capacity_listeners_.size();
  }

  /// Move `bytes` across `route`. Pays the sum of the route's latencies
  /// once, then streams at the flow's max-min fair rate until done. A
  /// route may traverse the same link more than once (each traversal
  /// consumes a share). An empty route completes after zero time.
  [[nodiscard]] Task<void> transfer(Route route, double bytes);
  /// Convenience overload for contiguous containers (vectors, arrays): the
  /// route is copied into inline Route storage, so it stays allocation-free
  /// for routes of <= 4 links.
  [[nodiscard]] Task<void> transfer(std::span<const LinkId> route,
                                    double bytes) {
    return transfer(Route(route), bytes);
  }

  /// Start a flow immediately (no latency leg, no coroutine). The route is
  /// copied into the flow's (inline-capacity, slot-recycled) storage.
  /// Ownership of `done` (may be null) transfers to the network; it fires
  /// on completion or cancellation. Throws std::invalid_argument on an
  /// empty route, non-positive bytes, or a bad link id.
  FlowId start_flow(std::span<const LinkId> route, double bytes,
                    Latch* done = nullptr);
  FlowId start_flow(std::initializer_list<LinkId> route, double bytes,
                    Latch* done = nullptr) {
    return start_flow(std::span<const LinkId>(route.begin(), route.size()),
                      bytes, done);
  }

  /// Abort an in-flight flow: undelivered bytes are dropped, its completion
  /// latch fires at the current time, and rates re-solve. Returns false if
  /// the id is stale (flow already completed or cancelled).
  bool cancel_flow(FlowId id);

  /// Instantaneous aggregate rate allocated on a link (bytes/s).
  [[nodiscard]] double link_allocated_rate(LinkId id) const;
  /// Instantaneous flow weight on a link: the sum of traversal
  /// multiplicities of live flows crossing it. This is the contention
  /// snapshot the joint transfer scheduler folds into its water-fill as
  /// background load for traffic it does not own.
  [[nodiscard]] double link_flow_weight(LinkId id) const;
  /// Cumulative bytes moved across a link since construction.
  [[nodiscard]] double link_bytes_transferred(LinkId id) const;
  [[nodiscard]] std::size_t active_flow_count() const {
    return active_.size();
  }
  /// Live flows currently pinned at rate 0 by a zero-capacity link.
  [[nodiscard]] std::size_t stalled_flow_count() const;

  /// Select the rate solver (default kIncremental). kFull reproduces the
  /// original eager whole-network behaviour for baseline measurements.
  void set_solver_mode(SolverMode mode) { mode_ = mode; }
  [[nodiscard]] SolverMode solver_mode() const { return mode_; }

  /// When enabled, every incremental solve is checked against a full
  /// whole-network water-filling oracle; a rate mismatch beyond 1e-9
  /// relative throws std::logic_error. Test/debug aid.
  void set_self_check(bool on) { self_check_ = on; }

  /// Re-run max-min water-filling over the whole network from scratch and
  /// return the rate of every active flow (unordered). Does not modify
  /// solver state — this is the reference oracle used by tests.
  [[nodiscard]] std::vector<double> reference_rates() const;

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Emit per-resolve counter samples ("rate_resolves", "resolved_flows")
  /// onto `tracer` track "fluid". Pass nullptr to detach.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Flow {
    // Route normalised to distinct links with traversal multiplicity; a
    // double traversal consumes two shares but the flow still gets one
    // bottleneck share as its rate (matching the per-traversal solver).
    // Inline small-vectors: slot recycling keeps any spilled capacity, so
    // steady-state flow churn never touches the allocator.
    util::SmallVec<LinkId, 4> links;
    util::SmallVec<double, 4> mult;
    util::SmallVec<std::uint32_t, 4> pos;  ///< index into links_[l].entries
    double remaining = 0.0;
    double rate = 0.0;
    double bytes_total = 0.0;
    double done_eps = 0.0;  ///< completion threshold, relative to size
    std::unique_ptr<Latch> done;
    std::uint32_t gen = 0;         ///< slot generation (FlowId validity)
    std::uint32_t active_pos = 0;  ///< index into active_
    std::uint64_t visit_mark = 0;  ///< solver scratch (epoch-stamped)
    std::uint64_t frozen_mark = 0;  ///< solver scratch (epoch-stamped)
    bool live = false;
    bool stalled = false;  ///< frozen at rate 0 by a severed link
  };
  struct LinkEntry {
    std::uint32_t flow;
    double mult;
  };
  struct LinkState {
    LinkSpec spec;
    double bytes_transferred = 0.0;
    double allocated = 0.0;  ///< sum of rate*mult over entries
    std::vector<LinkEntry> entries;
    std::uint64_t dirty_mark = 0;  ///< epoch when queued in dirty_links_
    std::uint64_t visit_mark = 0;  ///< solver scratch (epoch-stamped)
    // Water-filling scratch, valid only during resolve_dirty():
    double residual = 0.0;
    double unfrozen_mult = 0.0;
  };

  void progress_to_now();
  void mark_link_dirty(LinkId l);
  /// React to a flow add/remove (its links are already dirty): solve now
  /// (kFull) or coalesce into one same-time deferred solve (kIncremental).
  void request_resolve();
  /// Water-fill the connected component reachable from the dirty links,
  /// then re-arm the completion timer.
  void resolve_and_reschedule();
  void resolve_dirty();
  void run_self_check() const;
  void schedule_next_completion();
  void on_completion_timer(std::uint64_t generation);
  /// Detach `slot` from links/active lists and release its slot. Marks the
  /// flow's links dirty. Does not fire the latch.
  void detach_flow(std::uint32_t slot);
  std::uint32_t allocate_flow(std::span<const LinkId> route, double bytes,
                              Latch* done);

  Engine* engine_;
  std::vector<LinkState> links_;
  std::vector<Flow> flows_;                  ///< slot-addressed storage
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> active_;        ///< dense list of live slots
  /// Bottleneck-selection heap entry: the link's fair share at push time.
  /// Keys only ever grow as flows freeze, so stale entries are detected by
  /// recomputing the share on pop (lazy invalidation).
  struct HeapEntry {
    double share;
    LinkId link;
  };

  std::vector<std::pair<std::uint64_t, CapacityListener>> capacity_listeners_;
  std::uint64_t next_listener_ = 1;
  std::vector<LinkId> dirty_links_;
  std::vector<LinkId> comp_links_;           ///< resolve scratch
  std::vector<std::uint32_t> comp_flows_;    ///< resolve scratch
  std::vector<HeapEntry> heap_;              ///< bottleneck-selection scratch
  std::vector<std::uint32_t> completed_scratch_;  ///< timer-drain scratch
  std::uint64_t dirty_epoch_ = 1;  ///< bumps when dirty_links_ drains
  std::uint64_t visit_epoch_ = 0;  ///< bumps per resolve pass
  bool resolve_pending_ = false;
  bool self_check_ = false;
  SolverMode mode_ = SolverMode::kIncremental;
  SolverStats stats_;
  Tracer* tracer_ = nullptr;
  Time last_progress_ = 0.0;
  std::uint64_t timer_generation_ = 0;
};

}  // namespace mpath::sim
