// Activity tracing for the simulator: modules emit named spans onto named
// tracks; the collected timeline exports as Chrome trace-event JSON
// (chrome://tracing, Perfetto) so a multi-path transfer's chunk schedule
// can be inspected visually — which streams overlap, where staging stalls,
// how the issue loop serializes path starts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpath::sim {

class Tracer {
 public:
  /// Record a completed span [t0, t1] (simulated seconds) on `track`.
  void add_span(std::string track, std::string name, double t0, double t1);
  /// Record a zero-duration marker.
  void add_instant(std::string track, std::string name, double t);
  /// Record one sample of a named counter series (e.g. the fluid solver's
  /// rate-recompute count); exports as Chrome "C" phase events.
  void add_counter(std::string track, std::string name, double t,
                   double value);

  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }
  [[nodiscard]] std::size_t instant_count() const { return instants_.size(); }
  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  void clear();

  /// Write Chrome trace-event format ("traceEvents" JSON array, phases
  /// X/i). Timestamps are exported in microseconds, tracks as thread ids.
  void write_chrome_trace(const std::string& path) const;
  /// Same content as a string (tests, embedding).
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  struct Span {
    std::string track;
    std::string name;
    double t0;
    double t1;
  };
  struct Instant {
    std::string track;
    std::string name;
    double t;
  };
  struct Counter {
    std::string track;
    std::string name;
    double t;
    double value;
  };
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<Counter> counters_;
};

}  // namespace mpath::sim
