// Discrete-event simulation engine with a virtual clock.
//
// All simulated activity (GPU streams, link transfers, MPI ranks) runs as
// coroutines over one Engine. Time only advances between events, so a whole
// OSU-style bandwidth sweep executes deterministically in milliseconds of
// wall time.
//
// The hot path is allocation-free in steady state: events are a compact
// 16-byte {time, seq|slot} binary heap over a recycled slab of payloads
// (coroutine handle or inline-storage callback — no std::function), and
// spawned-process state comes from an intrusive free-list slab instead of
// make_shared. See DESIGN.md, "Allocation & pooling".
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mpath/sim/inline_fn.hpp"
#include "mpath/sim/owner.hpp"
#include "mpath/sim/pool.hpp"
#include "mpath/sim/task.hpp"
#include "mpath/util/small_vec.hpp"

namespace mpath::sim {

using Time = double;  ///< simulated seconds

class Engine;
class Tracer;

/// Error thrown by Engine::run on deadlock or unobserved process failure,
/// and by Engine::delay on invalid (NaN/negative) durations.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Event callback type: inline storage only, so scheduling can never
/// heap-allocate. Captures larger than the SBO budget fail to compile —
/// bundle state behind a single pointer instead.
using EventFn = InlineFn<void()>;

/// One-shot broadcast event. fire() releases every current and future
/// waiter; waiting on an already-fired latch does not suspend.
class Latch {
 public:
  explicit Latch(Engine& engine) : engine_(&engine) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  // Latches are created per stream-op / transfer on the hot path; recycle
  // their storage through the simulator pool.
  static void* operator new(std::size_t n) { return detail::pool_alloc(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    detail::pool_free(p, n);
  }

  void fire();
  [[nodiscard]] bool fired() const { return fired_; }

  /// Return to the unfired state with no waiters (slab recycling only;
  /// must not be called while waiters are suspended on the latch).
  void reset() {
    fired_ = false;
    head_ = nullptr;
    tail_ = nullptr;
  }

  /// Waiters form an intrusive FIFO list threaded through the awaiters
  /// themselves. A suspended awaiter lives in its coroutine's frame, which
  /// stays alive until the handle is resumed — so any number of waiters
  /// park on a latch without the latch allocating node storage.
  struct Awaiter {
    Latch* latch = nullptr;
    std::coroutine_handle<> handle{};
    Awaiter* next = nullptr;
    bool await_ready() const noexcept { return latch->fired_; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      handle = h;
      if (latch->tail_ != nullptr) {
        latch->tail_->next = this;
      } else {
        latch->head_ = this;
      }
      latch->tail_ = this;
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }

 private:
  Engine* engine_;
  bool fired_ = false;
  Awaiter* head_ = nullptr;
  Awaiter* tail_ = nullptr;
};

namespace detail {

struct ProcSlab;

/// Completion state of a spawned process. Pool-recycled: lives in a
/// ProcSlab and is handed back when the last ProcRef drops.
struct ProcState {
  explicit ProcState(Engine& engine) : done(engine) {}
  Latch done;
  std::exception_ptr exception;
  ProcSlab* slab = nullptr;
  ProcState* next_free = nullptr;
  std::uint32_t refs = 0;
  bool observed = false;  ///< true once join() delivered the exception
};

/// Free-list slab of ProcStates. The Engine owns one; if Process handles
/// outlive the engine, the slab is orphaned and the last reference frees
/// it. std::deque gives stable addresses across growth.
struct ProcSlab {
  std::deque<ProcState> states;
  ProcState* free_head = nullptr;
  std::size_t checked_out = 0;
  bool orphaned = false;

  ProcState* acquire(Engine& engine) {
    ProcState* st;
    if (free_head != nullptr) {
      st = free_head;
      free_head = st->next_free;
      st->next_free = nullptr;
    } else {
      st = &states.emplace_back(engine);
      st->slab = this;
    }
    ++checked_out;
    return st;
  }

  /// Called when a state's refcount hits zero.
  void recycle(ProcState* st) {
    st->exception = nullptr;
    st->observed = false;
    st->done.reset();
    st->next_free = free_head;
    free_head = st;
    --checked_out;
    if (orphaned && checked_out == 0) delete this;
  }
};

/// Intrusive refcounted handle to a pooled ProcState (single-threaded; the
/// engine and everything on it run on one thread).
class ProcRef {
 public:
  ProcRef() = default;
  explicit ProcRef(ProcState* st) : st_(st) {
    if (st_ != nullptr) ++st_->refs;
  }
  ProcRef(const ProcRef& o) : st_(o.st_) {
    if (st_ != nullptr) ++st_->refs;
  }
  ProcRef(ProcRef&& o) noexcept : st_(std::exchange(o.st_, nullptr)) {}
  ProcRef& operator=(ProcRef o) noexcept {
    std::swap(st_, o.st_);
    return *this;
  }
  ~ProcRef() { release(); }

  [[nodiscard]] ProcState* get() const noexcept { return st_; }
  ProcState* operator->() const noexcept { return st_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return st_ != nullptr;
  }

 private:
  void release() noexcept {
    if (st_ != nullptr && --st_->refs == 0) st_->slab->recycle(st_);
    st_ = nullptr;
  }
  ProcState* st_ = nullptr;
};

}  // namespace detail

/// Handle to a detached coroutine started with Engine::spawn. Join is
/// optional; unjoined failures surface at the end of Engine::run().
class Process {
 public:
  Process() = default;
  explicit Process(detail::ProcRef state) : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return bool(state_); }
  [[nodiscard]] bool done() const { return state_ && state_->done.fired(); }

  struct Joiner {
    detail::ProcRef state;
    // The latch chain links the awaiter node itself, so it must live here
    // (in the awaiting coroutine's frame), not in a temporary.
    Latch::Awaiter aw{};
    bool await_ready() const noexcept { return state->done.fired(); }
    void await_suspend(std::coroutine_handle<> h) {
      aw.latch = &state->done;
      aw.await_suspend(h);
    }
    void await_resume() const {
      state->observed = true;
      if (state->exception) std::rethrow_exception(state->exception);
    }
  };
  /// Await completion; rethrows the process's exception, if any.
  [[nodiscard]] Joiner join() const { return Joiner{state_}; }

 private:
  detail::ProcRef state_;
};

/// NOT thread-safe: an Engine and everything running on it belong to ONE
/// thread — the first thread that schedules or runs it (checked in debug
/// builds via MPATH_ASSERT_OWNER). Parallel sweeps give every worker its
/// own Engine and share only immutable snapshots across threads.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] Time now() const { return now_; }

  /// Resume `h` at absolute simulated time `t` (>= now).
  void schedule_handle(Time t, std::coroutine_handle<> h);
  /// Invoke `fn` at absolute simulated time `t` (>= now).
  void schedule_callback(Time t, EventFn fn);
  /// Same-time batching: invoke `fn` at the *current* timestamp, after
  /// every event already queued at this time (FIFO by sequence) but before
  /// any event queued afterwards. Lets modules coalesce a burst of
  /// same-time updates (e.g. k chunk completions) into one pass.
  void defer(EventFn fn);

  struct DelayAwaiter {
    Engine* engine;
    Time wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->schedule_handle(wake_at, h);
    }
    void await_resume() const noexcept {}
  };
  /// Suspend the calling coroutine for `dt` simulated seconds. Throws
  /// SimError on NaN or negative `dt` — callers must not rely on clamping.
  [[nodiscard]] DelayAwaiter delay(Time dt) {
    if (!(dt >= 0.0)) {  // also catches NaN
      throw SimError("Engine::delay: dt must be >= 0 and not NaN (got " +
                     std::to_string(dt) + ") at t=" + std::to_string(now_));
    }
    return DelayAwaiter{this, now_ + dt};
  }

  /// Start a detached coroutine. The engine owns its frame until it
  /// completes. `name` is used in error reports only.
  Process spawn(Task<void> task, std::string name = {});

  /// Run until the event queue drains. Returns the number of events
  /// processed. Throws SimError if live processes remain blocked (deadlock)
  /// or if a spawned process failed and was never joined.
  std::uint64_t run();

  /// Run until the event queue drains or `t_limit` is reached; events
  /// scheduled exactly at `t_limit` are processed, and the clock stops at
  /// min(t_limit, last event time). Returns events processed.
  std::uint64_t run_until(Time t_limit);

  [[nodiscard]] std::size_t live_process_count() const { return live_roots_; }
  [[nodiscard]] std::size_t queued_event_count() const { return heap_.size(); }

  /// Emit "event_queue_depth" counter samples on tracer track "engine",
  /// one every `sample_stride` processed events (nullptr detaches).
  void set_tracer(Tracer* tracer, std::uint64_t sample_stride = 256) {
    tracer_ = tracer;
    trace_stride_ = sample_stride > 0 ? sample_stride : 1;
    trace_countdown_ = trace_stride_;
  }

 private:
  // The priority queue is split into a compact binary heap of
  // {t, seq|slot} records and a slab of payloads addressed by slot, so
  // sift operations move 16 bytes instead of a ~72-byte struct with a
  // std::function, and payload storage is recycled. `seq` keeps the upper
  // 40 bits of the key: same-time events compare by it alone (slot bits
  // can never tie-break since seq is unique), preserving the exact FIFO
  // ordering of the previous single-struct queue.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  struct HeapEntry {
    Time t;
    std::uint64_t key;  ///< (seq << kSlotBits) | payload slot
  };
  struct EventLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.key > b.key;
    }
  };
  struct EventSlot {
    std::coroutine_handle<> handle;  // set for handle events
    EventFn callback;                // set for callback events
  };
  struct Root {
    Task<void> task;
    detail::ProcRef state;
    std::string name;
  };

  void push_event(Time t, std::coroutine_handle<> h, EventFn fn);
  std::uint64_t run_impl(Time t_limit, bool bounded);
  void sweep_completed_roots();
  void check_quiescence() const;

  [[no_unique_address]] ThreadOwner owner_;
  std::vector<HeapEntry> heap_;
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Root> roots_;
  detail::ProcSlab* proc_slab_ = nullptr;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_roots_ = 0;
  std::size_t sweep_watermark_ = 1024;
  Tracer* tracer_ = nullptr;
  std::uint64_t trace_stride_ = 256;
  std::uint64_t trace_countdown_ = 256;
};

/// Spawn all tasks concurrently and await their completion. The first
/// exception (by completion order) is rethrown after all tasks finish.
Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks);

}  // namespace mpath::sim
