// Discrete-event simulation engine with a virtual clock.
//
// All simulated activity (GPU streams, link transfers, MPI ranks) runs as
// coroutines over one Engine. Time only advances between events, so a whole
// OSU-style bandwidth sweep executes deterministically in milliseconds of
// wall time.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpath/sim/task.hpp"

namespace mpath::sim {

using Time = double;  ///< simulated seconds

class Engine;

/// One-shot broadcast event. fire() releases every current and future
/// waiter; waiting on an already-fired latch does not suspend.
class Latch {
 public:
  explicit Latch(Engine& engine) : engine_(&engine) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void fire();
  [[nodiscard]] bool fired() const { return fired_; }

  struct Awaiter {
    Latch* latch;
    bool await_ready() const noexcept { return latch->fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      latch->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }

 private:
  Engine* engine_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

namespace detail {
struct ProcState {
  explicit ProcState(Engine& engine) : done(engine) {}
  Latch done;
  std::exception_ptr exception;
  bool observed = false;  ///< true once join() delivered the exception
};
}  // namespace detail

/// Handle to a detached coroutine started with Engine::spawn. Join is
/// optional; unjoined failures surface at the end of Engine::run().
class Process {
 public:
  Process() = default;
  explicit Process(std::shared_ptr<detail::ProcState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return bool(state_); }
  [[nodiscard]] bool done() const { return state_ && state_->done.fired(); }

  struct Joiner {
    std::shared_ptr<detail::ProcState> state;
    bool await_ready() const noexcept { return state->done.fired(); }
    void await_suspend(std::coroutine_handle<> h) {
      state->done.wait().await_suspend(h);
    }
    void await_resume() const {
      state->observed = true;
      if (state->exception) std::rethrow_exception(state->exception);
    }
  };
  /// Await completion; rethrows the process's exception, if any.
  [[nodiscard]] Joiner join() const { return Joiner{state_}; }

 private:
  std::shared_ptr<detail::ProcState> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] Time now() const { return now_; }

  /// Resume `h` at absolute simulated time `t` (>= now).
  void schedule_handle(Time t, std::coroutine_handle<> h);
  /// Invoke `fn` at absolute simulated time `t` (>= now).
  void schedule_callback(Time t, std::function<void()> fn);
  /// Same-time batching: invoke `fn` at the *current* timestamp, after
  /// every event already queued at this time (FIFO by sequence) but before
  /// any event queued afterwards. Lets modules coalesce a burst of
  /// same-time updates (e.g. k chunk completions) into one pass.
  void defer(std::function<void()> fn);

  struct DelayAwaiter {
    Engine* engine;
    Time wake_at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->schedule_handle(wake_at, h);
    }
    void await_resume() const noexcept {}
  };
  /// Suspend the calling coroutine for `dt` simulated seconds (>= 0).
  [[nodiscard]] DelayAwaiter delay(Time dt) {
    return DelayAwaiter{this, now_ + (dt > 0 ? dt : 0)};
  }

  /// Start a detached coroutine. The engine owns its frame until it
  /// completes. `name` is used in error reports only.
  Process spawn(Task<void> task, std::string name = {});

  /// Run until the event queue drains. Returns the number of events
  /// processed. Throws SimError if live processes remain blocked (deadlock)
  /// or if a spawned process failed and was never joined.
  std::uint64_t run();

  /// Run until the event queue drains or `t_limit` is reached; the clock
  /// stops at min(t_limit, last event time). Returns events processed.
  std::uint64_t run_until(Time t_limit);

  [[nodiscard]] std::size_t live_process_count() const { return live_roots_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> handle;     // one of handle/callback is set
    std::function<void()> callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct Root {
    Task<void> task;
    std::shared_ptr<detail::ProcState> state;
    std::string name;
  };

  std::uint64_t run_impl(Time t_limit, bool bounded);
  void sweep_completed_roots();
  void check_quiescence() const;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<Root> roots_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_roots_ = 0;
  std::size_t sweep_watermark_ = 1024;
};

/// Error thrown by Engine::run on deadlock or unobserved process failure.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Spawn all tasks concurrently and await their completion. The first
/// exception (by completion order) is rethrown after all tasks finish.
Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks);

}  // namespace mpath::sim
