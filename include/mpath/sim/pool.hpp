// Size-bucketed free-list recycler for hot-path heap objects: coroutine
// frames (Task promises), latches, and the shared control blocks of
// gpusim's per-op completion latches. Freed blocks are cached in
// thread-local buckets and handed back on the next same-size allocation, so
// a steady-state workload stops calling the global allocator entirely after
// its first few transfers warm the pools.
//
// Under AddressSanitizer the pool is compiled as a passthrough to the
// global allocator: recycling would mask use-after-free on pooled objects
// and skew leak accounting, and the allocation-regression tests are gated
// off under sanitizers anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#if defined(__SANITIZE_ADDRESS__)
#define MPATH_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPATH_POOL_PASSTHROUGH 1
#endif
#endif

namespace mpath::sim::detail {

/// Allocate `n` bytes from the thread-local pool (recycled when a same-size
/// class block is available). Sizes above the bucket range fall through to
/// `::operator new`.
[[nodiscard]] void* pool_alloc(std::size_t n);
/// Return a pool_alloc'd block. Must be passed the same `n`.
void pool_free(void* p, std::size_t n) noexcept;

struct PoolCounters {
  std::uint64_t allocs = 0;       ///< pool_alloc calls in bucket range
  std::uint64_t hits = 0;         ///< served from a free list (no heap)
  std::uint64_t passthrough = 0;  ///< out-of-range sizes sent to ::new
};
/// This thread's counters (monotonic; test/debug aid).
[[nodiscard]] PoolCounters pool_counters() noexcept;

/// std::allocator-compatible adapter so std::allocate_shared control blocks
/// recycle through the pool (make_shared would hit the global allocator on
/// every latch).
template <typename T>
struct PoolAllocator {
  using value_type = T;
  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t k) {
    return static_cast<T*>(pool_alloc(k * sizeof(T)));
  }
  void deallocate(T* p, std::size_t k) noexcept {
    pool_free(p, k * sizeof(T));
  }
  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace mpath::sim::detail

namespace mpath::sim {

/// make_shared with pool-recycled control-block storage.
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(detail::PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace mpath::sim
