// Intra-node hardware topology: GPUs, host (CPU socket + DRAM) nodes, and
// typed directed links (NVLink generations, PCIe generations, inter-socket
// UPI/xGMI, and per-NUMA memory channels).
//
// The topology is pure description — it knows nothing about simulated time.
// `NetworkBinding` (binding.hpp) lowers it onto a sim::FluidNetwork, and the
// performance model consumes per-route (alpha, beta) summaries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

namespace mpath::topo {

using DeviceId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr DeviceId kInvalidDevice = 0xFFFFFFFFu;

enum class DeviceKind {
  Gpu,
  Host,  ///< CPU socket / NUMA domain with its DRAM
};

enum class LinkKind {
  NVLink2,
  NVLink3,
  NVLink4,
  PCIe3,
  PCIe4,
  PCIe5,
  UPI,     ///< inter-socket (UPI / xGMI / Infinity Fabric)
  XGMI,    ///< AMD GPU-GPU
  MemChan, ///< DRAM channel bandwidth of a Host device (self edge)
  NVSwitch,
};

[[nodiscard]] std::string_view to_string(LinkKind kind);
[[nodiscard]] std::string_view to_string(DeviceKind kind);

struct DeviceInfo {
  DeviceId id = kInvalidDevice;
  DeviceKind kind = DeviceKind::Gpu;
  int numa_node = 0;
  std::string name;
};

struct Edge {
  EdgeId id = 0;
  DeviceId from = kInvalidDevice;
  DeviceId to = kInvalidDevice;
  LinkKind kind = LinkKind::PCIe3;
  double capacity_bps = 0.0;  ///< bytes/second per direction
  double latency_s = 0.0;     ///< per-traversal hardware latency
  std::string name;
  bool is_memory_channel = false;
};

class Topology {
 public:
  explicit Topology(std::string system_name)
      : name_(std::move(system_name)),
        route_mutex_(std::make_unique<std::shared_mutex>()) {}

  // Copies get their own lock and a snapshot of the source's route cache;
  // moves transfer the lock (the moved-from topology must not be used).
  Topology(const Topology& other);
  Topology& operator=(const Topology& other);
  Topology(Topology&&) noexcept = default;
  Topology& operator=(Topology&&) noexcept = default;

  DeviceId add_device(DeviceKind kind, int numa_node, std::string name);

  /// Add one directed edge. Aggregate multi-sublink connections (e.g. two
  /// NVLink2 bricks) into a single edge with the combined capacity.
  EdgeId connect(DeviceId from, DeviceId to, LinkKind kind,
                 double capacity_bps, double latency_s);

  /// Add a full-duplex connection (two directed edges, equal parameters).
  std::pair<EdgeId, EdgeId> connect_duplex(DeviceId a, DeviceId b,
                                           LinkKind kind, double capacity_bps,
                                           double latency_s);

  /// Attach a DRAM channel to a Host device. Every transfer that starts or
  /// ends in that host's memory traverses this (shared) resource, which is
  /// how staged bidirectional contention (paper Observation 5) arises.
  EdgeId add_memory_channel(DeviceId host, double capacity_bps,
                            double latency_s);

  // -- queries ------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const DeviceInfo& device(DeviceId id) const;
  [[nodiscard]] std::span<const DeviceInfo> devices() const {
    return devices_;
  }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] std::vector<DeviceId> gpus() const;
  [[nodiscard]] std::vector<DeviceId> hosts() const;
  /// Host device in the given NUMA domain; throws if absent.
  [[nodiscard]] DeviceId host_for_numa(int numa_node) const;
  /// Host device nearest to `dev` (same NUMA if possible, else any host).
  [[nodiscard]] DeviceId nearest_host(DeviceId dev) const;
  /// Highest-capacity direct edge from `a` to `b`, if any (ignores memory
  /// channels).
  [[nodiscard]] std::optional<EdgeId> direct_edge(DeviceId a,
                                                  DeviceId b) const;
  [[nodiscard]] bool has_direct_link(DeviceId a, DeviceId b) const {
    return direct_edge(a, b).has_value();
  }

  // -- routing ------------------------------------------------------------
  /// Directed edge sequence for a DMA from `from`'s memory to `to`'s
  /// memory. Shortest path by (latency + transfer-weighted inverse
  /// capacity); memory-channel edges are appended for Host endpoints but
  /// never used in transit (PCIe peer-to-peer does not touch DRAM).
  /// Throws std::runtime_error if no route exists.
  ///
  /// Thread safety: concurrent route() calls on one const Topology are safe
  /// (the memoization cache is guarded by a shared mutex; sweep workers
  /// share one topo::System snapshot). The returned reference stays valid
  /// for the topology's lifetime — cache entries are never evicted, only
  /// invalidated wholesale by the (non-concurrent) mutators above.
  [[nodiscard]] const std::vector<EdgeId>& route(DeviceId from,
                                                 DeviceId to) const;

  /// Pre-compute every (device, device) route so that subsequent route()
  /// calls are pure cache reads. Optional — route() is thread-safe either
  /// way — but warming before a fan-out keeps workers off the mutex.
  void warm_route_cache() const;

  /// Bottleneck capacity along a route (min over edges), bytes/s.
  [[nodiscard]] double route_capacity(std::span<const EdgeId> route) const;
  /// Sum of hardware latencies along a route, seconds.
  [[nodiscard]] double route_latency(std::span<const EdgeId> route) const;

 private:
  [[nodiscard]] std::vector<EdgeId> compute_route(DeviceId from,
                                                  DeviceId to) const;

  std::string name_;
  std::vector<DeviceInfo> devices_;
  std::vector<Edge> edges_;
  // adjacency over non-memory-channel edges: device -> outgoing EdgeIds
  std::vector<std::vector<EdgeId>> adjacency_;
  // Host device -> its memory channel edge
  std::map<DeviceId, EdgeId> memory_channels_;
  // Route memoization. Guarded by route_mutex_ (shared for lookups,
  // exclusive for fills and for the mutators' invalidation); node-based, so
  // references handed out by route() survive later insertions. Behind a
  // unique_ptr only to keep Topology movable.
  std::unique_ptr<std::shared_mutex> route_mutex_;
  mutable std::map<std::pair<DeviceId, DeviceId>, std::vector<EdgeId>>
      route_cache_;
};

}  // namespace mpath::topo
