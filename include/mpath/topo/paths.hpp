// Multi-path candidate enumeration (paper Section 3.1): the transfer from
// src to dst may be split over
//   (1) the Direct GPU-to-GPU path,
//   (2) GPU-Staged paths through an intermediate GPU,
//   (3) a Host-Staged path through host memory.
#pragma once

#include <string>
#include <vector>

#include "mpath/topo/topology.hpp"

namespace mpath::topo {

enum class PathKind { Direct, GpuStaged, HostStaged };

[[nodiscard]] std::string_view to_string(PathKind kind);

struct PathPlan {
  PathKind kind = PathKind::Direct;
  DeviceId stage = kInvalidDevice;  ///< staging device for staged paths

  friend bool operator==(const PathPlan&, const PathPlan&) = default;
};

/// Render e.g. "direct", "via gpu2", "via host0".
[[nodiscard]] std::string describe(const PathPlan& plan, const Topology& topo);

/// Which candidate paths to consider. The paper's evaluation labels map to:
///   2_GPUs          -> {max_gpu_staged = 1, include_host = false}
///   3_GPUs          -> {max_gpu_staged = 2, include_host = false}
///   3_GPUs_w_host   -> {max_gpu_staged = 2, include_host = true}
struct PathPolicy {
  int max_gpu_staged = 2;
  bool include_host = false;

  [[nodiscard]] static PathPolicy two_gpus() { return {1, false}; }
  [[nodiscard]] static PathPolicy three_gpus() { return {2, false}; }
  [[nodiscard]] static PathPolicy three_gpus_with_host() { return {2, true}; }
  [[nodiscard]] static PathPolicy direct_only() { return {0, false}; }

  [[nodiscard]] std::string label() const;
};

/// Enumerate candidate paths from src to dst under `policy`. The direct
/// path is always first. GPU stages are ordered by descending bottleneck
/// capacity (ties by id); the host stage, if enabled, is the host nearest
/// to src. Requires src != dst and both to be GPUs.
[[nodiscard]] std::vector<PathPlan> enumerate_paths(const Topology& topo,
                                                    DeviceId src, DeviceId dst,
                                                    const PathPolicy& policy);

/// The two hop routes of a path: {src->stage, stage->dst}, or a single
/// {src->dst} route for the direct path.
[[nodiscard]] std::vector<std::vector<EdgeId>> path_hop_routes(
    const Topology& topo, DeviceId src, DeviceId dst, const PathPlan& plan);

}  // namespace mpath::topo
