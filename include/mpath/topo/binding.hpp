// Lowers a Topology onto a sim::FluidNetwork: one fluid link per directed
// edge (including memory channels). Routes resolved by the topology are
// translated into fluid link sequences for simulated DMA.
#pragma once

#include <span>
#include <vector>

#include "mpath/sim/fluid.hpp"
#include "mpath/topo/topology.hpp"

namespace mpath::topo {

class NetworkBinding {
 public:
  /// Creates one fluid link per topology edge. The topology must outlive
  /// the binding and must not gain edges afterwards.
  NetworkBinding(const Topology& topo, sim::FluidNetwork& net);

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] sim::FluidNetwork& network() const { return *net_; }

  [[nodiscard]] sim::LinkId link_for_edge(EdgeId edge) const;
  /// Returned routes use sim::Route's inline storage — building one does
  /// not allocate for the ≤3-edge paths every shipped topology produces.
  [[nodiscard]] sim::Route links_for_route(std::span<const EdgeId> route) const;
  /// Fluid links for a DMA from `from`'s memory to `to`'s memory.
  [[nodiscard]] sim::Route route_links(DeviceId from, DeviceId to) const;

 private:
  const Topology* topo_;
  sim::FluidNetwork* net_;
  std::vector<sim::LinkId> edge_to_link_;
};

}  // namespace mpath::topo
