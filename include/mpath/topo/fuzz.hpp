// Seeded random topology generation for scenario fuzzing.
//
// The generator emits a serializable TopoSpec — a plain description of
// devices, directed links and software costs — rather than a built
// Topology, because the mispredict minimizer (benchcore/hunter.hpp) needs
// to mutate scenarios structurally (drop GPUs, drop links) and re-build,
// and the frozen regression corpus (tests/corpus/*.json) needs a stable
// on-disk form.
//
// Invariants, by construction (tested in tests/topo/test_fuzz_generator.cpp):
//   * every NUMA domain has a Host device with a DRAM memory channel,
//     hosts are chained by inter-socket fabric, and every GPU has a PCIe
//     connection to its domain's host — so the topology is connected and
//     every ordered GPU pair is routable before any fabric is added;
//   * link capacities and latencies stay inside the configured ranges;
//   * device ids equal spec indices, with real hosts first (so
//     Topology::nearest_host never picks an NVSwitch pseudo-host);
//   * generation is a pure function of (seed, options): the same inputs
//     yield the same spec on every run and at any fuzzing job count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpath/topo/system.hpp"
#include "mpath/util/json.hpp"

namespace mpath::fuzz {

struct DeviceSpec {
  topo::DeviceKind kind = topo::DeviceKind::Gpu;
  int numa = 0;
  std::string name;
};

/// One directed link. The generator emits duplex pairs with (optionally)
/// asymmetric per-direction capacities; the minimizer drops both directions
/// together.
struct EdgeSpec {
  topo::DeviceId from = 0;
  topo::DeviceId to = 0;
  topo::LinkKind kind = topo::LinkKind::PCIe3;
  double capacity_bps = 0.0;
  double latency_s = 0.0;
};

struct MemChannelSpec {
  topo::DeviceId host = 0;
  double capacity_bps = 0.0;
  double latency_s = 0.0;
};

struct TopoSpec {
  std::string name;
  std::vector<DeviceSpec> devices;
  std::vector<EdgeSpec> edges;
  std::vector<MemChannelSpec> mem_channels;
  topo::SoftwareCosts costs;

  /// Materialize the spec. Throws std::invalid_argument for malformed
  /// specs (dangling device ids, non-positive capacities, ...).
  [[nodiscard]] topo::System build() const;

  [[nodiscard]] std::size_t gpu_count() const;
  [[nodiscard]] std::size_t host_count() const;

  [[nodiscard]] util::json::Value to_json() const;
  [[nodiscard]] static TopoSpec from_json(const util::json::Value& v);
};

/// True when every ordered pair of GPUs has a route. (Route enumeration
/// also requires this for staged candidates; the generator guarantees it,
/// the minimizer uses it to reject over-aggressive cuts early.)
[[nodiscard]] bool fully_routable(const topo::Topology& topo);

struct GeneratorOptions {
  int min_gpus = 2;
  int max_gpus = 8;
  int max_numa_domains = 4;
  /// Fabric families the generator may draw. With everything disabled the
  /// result is a PCIe-only box (still valid).
  bool allow_nvlink = true;
  bool allow_nvswitch = true;
  bool allow_xgmi = true;
  /// Draw each direction of a duplex link independently (asymmetric
  /// capacities), with some probability per link class.
  bool allow_asymmetric = true;
  /// Link-capacity range (GB/s, log-uniform) and latency range (us,
  /// uniform) that every generated link respects.
  double min_gbps = 4.0;
  double max_gbps = 300.0;
  double min_latency_us = 0.15;
  double max_latency_us = 2.5;
};

/// Generate one random topology. Pure in (seed, options).
[[nodiscard]] TopoSpec generate_topology(std::uint64_t seed,
                                         const GeneratorOptions& options = {});

/// splitmix64 — the per-index seed derivation used everywhere in the fuzz
/// subsystem, so scenario i of a hunt is identical no matter which worker
/// (or how many workers) ran it.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index);

[[nodiscard]] topo::DeviceKind device_kind_from_string(std::string_view s);
[[nodiscard]] topo::LinkKind link_kind_from_string(std::string_view s);

}  // namespace mpath::fuzz
