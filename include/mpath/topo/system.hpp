// System presets: topology + per-system software cost constants.
//
// The two evaluation systems of the paper are modeled from public hardware
// figures (see DESIGN.md, "Substitutions"):
//   * Beluga — 4x V100, two NVLink2 bricks per GPU pair (~46 GB/s/dir
//     effective), PCIe3 x16 to a single NUMA domain.
//   * Narval — 4x A100, four NVLink3 bricks per GPU pair (~92 GB/s/dir
//     effective), PCIe4 x16, one NUMA domain (with its own DRAM channel)
//     per GPU, inter-socket UPI-equivalent fabric.
// Additional presets exercise generality: an NVSwitch system, a PCIe-only
// box, and an AMD-style xGMI ring.
#pragma once

#include "mpath/topo/topology.hpp"

namespace mpath::topo {

/// Software-stack overheads (UCX/CUDA-level costs, not wire latencies).
/// These feed the GPU runtime shim; the performance model never reads them
/// directly — it fits its alpha/beta/epsilon from measurements, exactly as
/// the paper extracts parameters per system (Fig. 2a Step 1).
struct SoftwareCosts {
  double op_launch_s = 1.2e-6;       ///< per async-copy launch (host code)
  double event_record_s = 0.3e-6;    ///< cudaEventRecord
  double event_wait_s = 0.8e-6;      ///< cudaStreamWaitEvent resolution
  double stage_sync_s = 1.5e-6;      ///< extra per-chunk sync at a GPU stage
  double host_stage_sync_s = 4.0e-6; ///< extra per-chunk sync at a host stage
  double ipc_open_s = 120e-6;        ///< first CUDA-IPC handle open per pair
  double rendezvous_s = 3.0e-6;      ///< RTS/CTS handshake per message
  double local_copy_bps = 600e9;     ///< same-device HBM copy bandwidth
  double jitter_rel = 0.01;          ///< relative measurement noise (sigma)
};

struct System {
  Topology topology;
  SoftwareCosts costs;
};

/// Beluga-like node: 4x V100, NVLink2 full mesh, PCIe3, single NUMA host.
[[nodiscard]] System make_beluga();

/// Narval-like node: 4x A100, NVLink3 full mesh, PCIe4, one NUMA domain per
/// GPU, inter-socket fabric between domains.
[[nodiscard]] System make_narval();

/// DGX-like node: 8 GPUs through a central NVSwitch (future-work preset).
[[nodiscard]] System make_dgx_nvswitch();

/// PCIe-only box: 4 GPUs, no NVLink; GPU P2P routes through root complexes.
[[nodiscard]] System make_pcie_only();

/// AMD-style ring: 4 GPUs connected in an xGMI ring (no full mesh).
[[nodiscard]] System make_amd_ring();

/// Look up a preset by name ("beluga", "narval", "dgx", "pcie", "amd").
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] System make_system(std::string_view name);

}  // namespace mpath::topo
