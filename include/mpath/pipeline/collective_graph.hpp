// Collective graph chaining: compile a whole collective once, replay it
// every iteration.
//
// PR 9 made single transfers replayable (TransferGraph); a collective still
// paid per-round, per-iteration admission + lookup + theta churn. This
// module captures the *entire* collective — every per-rank transfer of
// every round, identified by (tag, src_rank, dst_rank) at the transport
// tap — into one CollectiveGraph: a chained template of TransferGraph
// steps grouped into rounds. The first invocation records the transfer DAG
// (capture), the seal compiles one private graph per step, and later
// invocations replay step graphs as each message reaches the channel, with
// only parameter patching (TransferGraph::patch per step) when the payload
// size changes.
//
// Scheduled stacks admit a replayed round through
// TransferScheduler::admit_chain: ONE JointThetaSolver water-fill over the
// round's compiled carrying paths plus every live flow (PR 6's same-instant
// storm machinery inverted into a gate) instead of K independent
// admit_replay probes. Acceptance requires every flow at its solo cap — the
// exact condition under which any fresh solve during the round would
// reproduce the compiled splits — and registers the K tickets from the
// compiled shares, so departures are ledger-indistinguishable from fresh
// admissions. Tickets a dying chain never claims are unwound through
// depart_chain before any fallback admission can water-fill against them.
//
// Replay is bit-identical to the uncaptured collective by construction on
// unscheduled channels: each step replay issues the same runtime-call /
// issue-cost sequence (same rng draws under jitter) as the uncompiled
// channel path, and capture/claim bookkeeping takes no simulated time. On
// scheduled channels the same holds whenever rounds admit (nothing is
// squeezed, so fresh solves equal compiled solos); refused rounds fall back
// to per-step fresh admission with per-cause stats.
//
// Invalidation causes (per-cause counters in ChainStats): a step template
// mid-replay (busy — step falls back, chain survives), link-capacity epoch
// superseded, calibration version superseded, step-key/size mismatch
// (algorithm drift), contended round (admit_chain refusal — round falls
// back, chain survives), and patch failure (step dropped to passthrough).
// A killed chain is removed from the cache and recaptured on the next
// invocation.
//
// Lifetime: chains hold TransferGraphs, which borrow events/staging from
// the runtime — destroy the controller (or clear() it) before the runtime,
// and clear the World's transfer tap (destroy the World) before the
// controller. Single-threaded like the rest of the engine.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "mpath/pipeline/graph.hpp"
#include "mpath/pipeline/scheduler.hpp"
#include "mpath/transport/fabric.hpp"

namespace mpath::pipeline {

class ModelDrivenChannel;
class ChainController;

/// Identity of a captured collective: one cache entry per tuple. The
/// payload is an attribute, not part of the key — a lookup with a new
/// payload re-patches the resident chain in place (the whole point of
/// parameter patching) instead of growing a second template.
struct ChainKey {
  std::string name;           ///< collective name ("allreduce-rhd", ...)
  int world = 0;              ///< communicator size
  int algo = 0;               ///< algorithm id (disambiguates same name)
  int variant = 0;            ///< extra identity (e.g. broadcast root)
  friend bool operator==(const ChainKey&, const ChainKey&) = default;
};

struct ChainStats {
  std::uint64_t captures = 0;            ///< chains sealed Ready
  std::uint64_t capture_aborts = 0;      ///< capture gave up (overflow/dup)
  std::uint64_t iterations_captured = 0;  ///< invocations spent capturing
  std::uint64_t iterations_replayed = 0;  ///< invocations entered Ready
  std::uint64_t bypasses = 0;            ///< enter() during another chain
  std::uint64_t replayed_steps = 0;      ///< steps run via chain fast path
  std::uint64_t passthrough_steps = 0;   ///< chain steps with no template
  std::uint64_t patches = 0;             ///< payload re-patches applied
  std::uint64_t patch_failures = 0;      ///< steps dropped on patch
  std::uint64_t compile_failures = 0;    ///< seal-time compile soft-fails
  // -- invalidation causes --------------------------------------------------
  std::uint64_t busy_fallbacks = 0;      ///< step template mid-replay
  std::uint64_t epoch_kills = 0;         ///< link capacities changed
  std::uint64_t stale_cal_kills = 0;     ///< calibration superseded
  std::uint64_t mismatch_kills = 0;      ///< step key/size drifted
  std::uint64_t contended_rounds = 0;    ///< admit_chain refused a round
  std::uint64_t unwound_tickets = 0;     ///< pre-admitted, never claimed
};

/// One captured collective: steps keyed by (rel_tag, src_rank, dst_rank),
/// rounds grouped by relative tag. Owned by the ChainController's cache and
/// shared with in-flight iterations.
class CollectiveGraph {
 public:
  enum class State : std::uint8_t { kCapturing, kReady, kDead };

  struct Step {
    std::uint64_t key = 0;  ///< packed (rel_tag, src_rank, dst_rank)
    topo::DeviceId src_dev = topo::kInvalidDevice;
    topo::DeviceId dst_dev = topo::kInvalidDevice;
    std::uint64_t bytes = 0;
    int rel_tag = 0;
    std::uint32_t round = 0;  ///< index into rounds() (assigned at seal)
    /// Compiled template; null = passthrough (small message, compile
    /// failure, non-reproducible capture, or homogeneity drop). Steps with
    /// identical (src_dev, dst_dev, bytes) share one template.
    GraphPtr graph;
    model::TransferConfig config;  ///< recorded at capture (if has_config)
    bool has_config = false;
    /// A payload re-patch dropped this step's template (below the
    /// multipath threshold, or the template refused the new size). A later
    /// re-patch that would lift the step back above the threshold kills
    /// the chain instead of patching, so recapture restores the lost
    /// template rather than replaying passthrough forever.
    bool patch_dropped = false;
  };

  /// One round (relative tag) of the collective, with its per-iteration
  /// batched-admission state. `steps` lists only template-carrying steps.
  struct Round {
    int rel_tag = 0;
    util::SmallVec<std::uint32_t, 8> steps;
    // Per-iteration admission state (reset by begin_iteration):
    bool attempted = false;
    bool admitted = false;
    util::SmallVec<TransferScheduler::TicketId, 8> tickets;
    util::SmallVec<std::uint8_t, 8> claimed;
  };

  [[nodiscard]] static std::uint64_t step_key(int rel_tag, int src_rank,
                                              int dst_rank) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rel_tag))
            << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank) &
                                       0xfffffu)
            << 20) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_rank) &
                                       0xfffffu));
  }

  [[nodiscard]] const ChainKey& key() const { return key_; }
  [[nodiscard]] std::uint64_t payload() const { return payload_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }
  [[nodiscard]] std::size_t round_count() const { return rounds_.size(); }
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] const std::vector<Round>& rounds() const { return rounds_; }
  /// Distinct compiled templates (shared steps counted once).
  [[nodiscard]] std::size_t template_count() const;
  [[nodiscard]] std::uint64_t capacity_epoch() const {
    return capacity_epoch_;
  }
  [[nodiscard]] std::uint64_t cal_version() const { return cal_version_; }

 private:
  friend class ChainController;

  ChainKey key_;
  std::uint64_t payload_ = 0;  ///< the collective's byte-size identity
  State state_ = State::kCapturing;
  std::vector<Step> steps_;
  std::vector<Round> rounds_;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;  ///< key -> step
  std::uint64_t capacity_epoch_ = 0;  ///< scheduler epoch at seal/patch
  std::uint64_t cal_version_ = 0;     ///< calibration version at seal
  bool aborted_ = false;              ///< capture overflow / duplicate key
};

struct ChainOptions {
  std::size_t cache_capacity = 8;  ///< cached chains (LRU)
  std::size_t max_steps = 4096;    ///< capture safety valve per chain
};

/// Capture/replay orchestrator. Owns the chain cache, observes every
/// matched message through the transport tap (World::set_chain_controller
/// installs it), and hands the attached ModelDrivenChannel pending replay
/// steps. One controller per channel; requires recovery disabled (chained
/// replay cannot express partial-segment re-plans).
class ChainController {
 public:
  /// What the tap staged for the channel transfer that is about to run.
  struct Pending {
    CollectiveGraph* chain = nullptr;
    std::uint32_t step = 0;
    bool capture = false;  ///< record the step's config after the transfer
    bool replay = false;   ///< try the chain fast path first
  };
  /// A successfully claimed replay step: the template to replay and (on
  /// scheduled channels) the round-admission ticket the channel must
  /// depart (or fail) exactly like a fresh admission's.
  struct Claim {
    GraphPtr graph;
    TransferScheduler::TicketId ticket = TransferScheduler::kInvalidTicket;
  };

  explicit ChainController(ModelDrivenChannel& channel,
                           ChainOptions options = {});
  ChainController(const ChainController&) = delete;
  ChainController& operator=(const ChainController&) = delete;
  ~ChainController();

  // -- collective scope (called by the collectives via ChainScope) ---------
  /// A rank is entering the named collective whose tags start at
  /// `base_tag`. The first rank in resolves the chain (cached -> replay
  /// iteration, possibly re-patched to `payload`; otherwise a fresh
  /// capture); later ranks join. Returns false — an inert scope — when a
  /// different collective invocation is already active (overlap is not
  /// chainable) or chaining is disabled for this channel shape.
  [[nodiscard]] bool enter(const char* name, int world, std::uint64_t payload,
                           int algo, int variant, int base_tag);
  /// The matching rank left. The last rank out seals a capture (compiles
  /// the step templates) or closes a replay iteration (unwinding any
  /// pre-admitted tickets no replay claimed).
  void leave();

  // -- transport tap --------------------------------------------------------
  /// Invoked synchronously immediately before every channel transfer.
  void on_transfer(const transport::TransferSite& site);

  // -- channel side ---------------------------------------------------------
  /// Consume the pending step staged by the tap for the transfer that is
  /// now executing (empty when no chain invocation is active).
  [[nodiscard]] Pending take_pending();
  /// Gate + claim a replay step: checks busy/epoch, and on scheduled
  /// channels admits the step's whole round through admit_chain on first
  /// touch. A null graph means the caller takes the normal path (cause
  /// already counted; the chain may have been killed).
  [[nodiscard]] Claim claim_step(const Pending& p);
  /// Record the capture-iteration outcome of a step: `config` is the
  /// reproducible compiled-eligible configuration, or null when the step
  /// must stay passthrough (small, contended, or otherwise unreproducible).
  void record_step(const Pending& p, const model::TransferConfig* config);

  // -- introspection --------------------------------------------------------
  [[nodiscard]] const ChainStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] const ChainOptions& options() const { return options_; }
  /// Drop every cached chain (releases their templates' events/staging).
  void clear();

 private:
  using ChainPtr = std::shared_ptr<CollectiveGraph>;

  /// Resolve the cache entry for (key, payload): exact hit, a payload
  /// re-patch of the resident entry, or null (capture needed). Stale
  /// calibration / superseded capacity epochs kill the resident entry.
  [[nodiscard]] ChainPtr resolve(const ChainKey& key, std::uint64_t payload);
  /// Compile per-step templates, group rounds, enforce round homogeneity
  /// (scheduled), stamp versions, and publish the chain as Ready.
  void seal(const ChainPtr& chain);
  /// Group template-carrying steps into rounds by relative tag.
  void build_rounds(CollectiveGraph& chain);
  /// Depart the (admitted, unclaimed) ticket of one step that is falling
  /// back to the fresh path, so its phantom does not distort the ledger
  /// while the fresh admission runs.
  void release_step_ticket(CollectiveGraph& chain, std::uint32_t step_idx);
  /// Proportionally re-split every step for a new payload; steps whose
  /// template cannot patch drop to passthrough. False = not patchable at
  /// all (caller recaptures).
  [[nodiscard]] bool repatch(const ChainPtr& chain, std::uint64_t payload);
  /// Mark the chain dead for `cause` (a ChainStats member), unwind every
  /// pre-admitted unclaimed ticket, and drop it from the cache.
  void kill(CollectiveGraph& chain, std::uint64_t ChainStats::* cause);
  /// Unwind the unclaimed tickets of every admitted round (chain death or
  /// iteration end).
  void unwind_unclaimed(CollectiveGraph& chain);
  /// Drop templates from rounds where not every multipath step compiled,
  /// so a scheduled round is never half chain-admitted, half fresh.
  void enforce_round_homogeneity(CollectiveGraph& chain);
  void reset_iteration(CollectiveGraph& chain);
  [[nodiscard]] std::uint64_t scheduler_epoch() const;

  ModelDrivenChannel* channel_;
  ChainOptions options_;
  ChainStats stats_;
  /// LRU chain cache, most-recently-used first (linear scan: a handful of
  /// collectives per workload).
  std::list<ChainPtr> cache_;

  // Active invocation state.
  bool active_ = false;
  bool capturing_ = false;
  int base_tag_ = 0;
  int refcount_ = 0;
  ChainKey inv_key_;
  ChainPtr inv_chain_;
  Pending pending_;
};

/// RAII collective scope: enter on construction, leave on destruction.
/// Null controller (chaining not wired) makes the scope inert.
class ChainScope {
 public:
  ChainScope(ChainController* ctl, const char* name, int world,
             std::uint64_t payload, int algo, int variant, int base_tag)
      : ctl_(ctl) {
    if (ctl_ != nullptr) {
      active_ = ctl_->enter(name, world, payload, algo, variant, base_tag);
    }
  }
  ChainScope(const ChainScope&) = delete;
  ChainScope& operator=(const ChainScope&) = delete;
  ~ChainScope() {
    if (active_) ctl_->leave();
  }

 private:
  ChainController* ctl_;
  bool active_ = false;
};

}  // namespace mpath::pipeline
