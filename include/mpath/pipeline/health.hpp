// Per-path health state machine with probation and readmission.
//
// Since PR 2 a path whose watchdog fired was dead for the rest of its
// transfer — and because the candidate set is rebuilt per transfer, the
// *next* transfer would retry the dead path at its full theta share and
// eat another watchdog stall. The PathHealthManager replaces both failure
// modes with a persistent (channel-lifetime) state machine per
// (src, dst, path):
//
//       healthy ──timeout──▶ suspect ──probe──▶ probation
//          ▲                    ▲                  │ │
//          │                    └───probe failed───┘ │
//          └────── probe ok (readmission) ◀──────────┘
//                               │
//            dead ◀── dead_after consecutive failures
//             │  ▲
//             └──┴── readmission probes on an exponentially
//                    backed-off cooldown
//
// Suspect/dead paths are excluded from the theta solve; instead they get a
// small probe slice carved out of the anchor path's share on subsequent
// transfers. A probe that delivers its slice readmits the path into the
// active set (state erased — pristine healthy); failures escalate an
// extra per-path watchdog-slack multiplier and, past `dead_after`
// consecutive failures, an exponential probe cooldown bounded by
// `max_cooldown_s`. Single-threaded like the channel that owns it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mpath/topo/paths.hpp"

namespace mpath::pipeline {

enum class PathHealth { kHealthy, kSuspect, kProbation, kDead };

struct HealthOptions {
  /// Master switch. Off (default) preserves the PR 2 drop-for-the-transfer
  /// behaviour exactly — paper-faithful mode.
  bool enabled = false;
  /// Probe slice as a fraction of the segment, clamped to
  /// [min_probe_bytes, max_probe_bytes].
  double probe_fraction = 0.05;
  std::uint64_t min_probe_bytes = 256 * 1024;
  std::uint64_t max_probe_bytes = 8ull << 20;
  /// Consecutive failures (initial timeout + failed probes) before a path
  /// is declared dead and moves to the cooldown schedule.
  int dead_after = 3;
  /// Per-failure growth of the path's extra watchdog-slack multiplier and
  /// of the dead-path probe cooldown.
  double backoff = 2.0;
  /// Bound on the extra slack multiplier (composes with the transfer-level
  /// retry escalation in RecoveryOptions).
  double max_slack_factor = 8.0;
  /// Delay before a suspect path's next probe (0 = next transfer).
  double suspect_delay_s = 0.0;
  /// First readmission-probe cooldown once dead; doubles (by `backoff`)
  /// per further failure up to max_cooldown_s.
  double dead_cooldown_s = 20e-3;
  double max_cooldown_s = 500e-3;
};

struct HealthStats {
  std::uint64_t timeouts = 0;         ///< failures reported (any state)
  std::uint64_t probes_launched = 0;
  std::uint64_t probes_failed = 0;
  std::uint64_t probes_succeeded = 0;
  std::uint64_t deaths = 0;           ///< transitions into kDead
  /// Paths restored by a successful probation probe — the readmission
  /// mechanism actually proving the path healthy again.
  std::uint64_t readmissions = 0;
  /// Tracked-but-unprobed paths (suspect, or dead paths force-included when
  /// nothing else was healthy) cleared by delivering a regular share. Not a
  /// readmission: no probe was issued.
  std::uint64_t suspect_clears = 0;
};

class PathHealthManager {
 public:
  /// Throws std::invalid_argument when the options are inconsistent (e.g.
  /// min_probe_bytes > max_probe_bytes, which would make the probe-size
  /// clamp undefined behaviour, or backoff factors below 1).
  explicit PathHealthManager(HealthOptions options = {})
      : options_(validated(options)) {}

  /// Split `candidates` into paths to plan over (`active`) and paths due a
  /// probe slice right now (`probes`). Healthy paths are always active;
  /// suspect/dead paths land in `probes` once their next-probe time has
  /// passed, else nowhere. If nothing is active the caller should fall
  /// back to probing everything (see force_probes).
  void partition(topo::DeviceId src, topo::DeviceId dst,
                 const std::vector<topo::PathPlan>& candidates, double now,
                 std::vector<topo::PathPlan>* active,
                 std::vector<topo::PathPlan>* probes) const;

  /// The caller actually carved a probe slice for this path: transition to
  /// probation. (partition() only proposes; unissued probes stay due.)
  void on_probe_issued(topo::DeviceId src, topo::DeviceId dst,
                       const topo::PathPlan& plan);

  /// The path's watchdog fired (planned share or probe slice).
  void on_timeout(topo::DeviceId src, topo::DeviceId dst,
                  const topo::PathPlan& plan, double now);

  /// The path delivered its slice. Readmits non-healthy paths (state
  /// erased); a no-op for paths with no tracked state.
  void on_success(topo::DeviceId src, topo::DeviceId dst,
                  const topo::PathPlan& plan, double now);

  /// Extra watchdog-slack multiplier for this path (1 when healthy).
  [[nodiscard]] double slack_multiplier(topo::DeviceId src,
                                        topo::DeviceId dst,
                                        const topo::PathPlan& plan) const;

  /// Probe slice size for a segment of `total` bytes.
  [[nodiscard]] std::uint64_t probe_bytes(std::uint64_t total) const;

  [[nodiscard]] PathHealth state(topo::DeviceId src, topo::DeviceId dst,
                                 const topo::PathPlan& plan) const;
  [[nodiscard]] const HealthStats& stats() const { return stats_; }
  [[nodiscard]] const HealthOptions& options() const { return options_; }
  [[nodiscard]] std::size_t tracked_count() const { return entries_.size(); }
  void reset() { entries_.clear(); }

 private:
  struct Key {
    topo::DeviceId src = 0;
    topo::DeviceId dst = 0;
    topo::PathKind kind = topo::PathKind::Direct;
    topo::DeviceId stage = topo::kInvalidDevice;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    PathHealth state = PathHealth::kSuspect;
    int fail_streak = 0;
    double slack_mult = 1.0;
    double next_probe_t = 0.0;
    double cooldown_s = 0.0;
  };

  [[nodiscard]] static Key key_of(topo::DeviceId src, topo::DeviceId dst,
                                  const topo::PathPlan& plan) {
    return Key{src, dst, plan.kind, plan.stage};
  }

  /// Returns `options` unchanged or throws std::invalid_argument.
  [[nodiscard]] static HealthOptions validated(const HealthOptions& options);

  HealthOptions options_;
  /// Only unhealthy paths are tracked; absence means healthy.
  std::map<Key, Entry> entries_;
  HealthStats stats_;
};

}  // namespace mpath::pipeline
