// Multi-path pipeline engine — the execution machinery of Sojoodi et al.
// (ExHET'24, ref [35] of the paper) that the performance model drives
// (Fig. 2a Step 5).
//
// An ExecPlan assigns a contiguous slice of the message to each path. The
// engine issues the per-chunk operation graph for all paths from a single
// host loop (interleaved round-robin over paths, one chunk per round):
//
//   stream A (first hop):   [wait slot free] copy(src -> stage)  record F_c
//   stream B (second hop):  wait F_c  [host-sync delay]  copy(stage -> dst)
//                           record B_c
//
// Staging buffers are double-buffered (chunk c reuses the slot of c-2 and
// therefore waits on B_{c-2}), matching the three-step staging protocol of
// Section 3.4. Each issued operation costs host time, which is what makes
// path initiation sequential — the effect Algorithm 1 line 18 models.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mpath/gpusim/runtime.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/staging.hpp"
#include "mpath/topo/paths.hpp"
#include "mpath/util/small_vec.hpp"

namespace mpath::pipeline {

class TransferGraph;

/// One path's assignment inside a transfer.
struct ExecPath {
  topo::PathPlan plan;
  std::uint64_t bytes = 0;  ///< contiguous slice length (0 = skip)
  int chunks = 1;           ///< pipeline depth k_i (staged paths)
};

/// A transfer's path assignments. Small-vector: the paper's plans use at
/// most 3–4 paths, so building and passing a plan never heap-allocates.
using ExecPlan = util::SmallVec<ExecPath, 4>;

/// Watchdog spec for one path of a monitored transfer: a relative deadline
/// measured from issue start. The model-driven caller derives it from the
/// predicted per-path completion time T_i times a slack factor; <= 0
/// disables monitoring for that path (legacy behaviour, no extra events).
struct PathWatch {
  double deadline_s = 0.0;
};

/// Watchdog specs, parallel to an ExecPlan (same inline capacity).
using PathWatchList = util::SmallVec<PathWatch, 4>;

/// Per-path result of a monitored transfer (parallel to the input plan).
struct PathOutcome {
  std::uint64_t bytes = 0;           ///< slice length assigned to the path
  std::uint64_t bytes_delivered = 0; ///< contiguous prefix visible at dst
  bool timed_out = false;            ///< watchdog fired and aborted the path
};

struct TransferOutcome {
  bool complete = true;  ///< no path timed out; all bytes delivered
  util::SmallVec<PathOutcome, 4> paths;  ///< parallel to the input plan
  [[nodiscard]] std::uint64_t delivered() const {
    std::uint64_t sum = 0;
    for (const PathOutcome& p : paths) sum += p.bytes_delivered;
    return sum;
  }
};

class PipelineEngine {
 public:
  explicit PipelineEngine(
      gpusim::GpuRuntime& runtime, std::size_t staging_buffers_per_device = 4,
      gpusim::Payload staging_payload = gpusim::Payload::Materialized);
  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// Execute `plan` moving sum(plan.bytes) from src[src_offset..] to
  /// dst[dst_offset..]. Paths own consecutive slices in plan order.
  /// Throws std::invalid_argument on malformed plans (bounds, chunks < 1).
  [[nodiscard]] sim::Task<void> execute(gpusim::DeviceBuffer& dst,
                                        std::size_t dst_offset,
                                        const gpusim::DeviceBuffer& src,
                                        std::size_t src_offset,
                                        ExecPlan plan);

  /// Like execute(), but each path with `watch[i].deadline_s > 0` runs under
  /// a watchdog: if the path has not delivered its slice by the deadline its
  /// in-flight fluid flows are cancelled, no further chunks are issued on
  /// it, and the outcome reports the delivered contiguous prefix — so a
  /// transfer over a severed link returns (with partial-progress accounting)
  /// instead of hanging. `watch` must be empty (no monitoring) or the same
  /// length as `plan`. Progress accounting is passive (per-chunk completion
  /// hooks on direct paths, the existing backward event records on staged
  /// paths), so monitoring does not change a path's completion time.
  [[nodiscard]] sim::Task<TransferOutcome> execute_monitored(
      gpusim::DeviceBuffer& dst, std::size_t dst_offset,
      const gpusim::DeviceBuffer& src, std::size_t src_offset, ExecPlan plan,
      PathWatchList watch);

  /// Compile `config` into a reusable TransferGraph template: resolve
  /// streams, reserve events, acquire a persistent staging slot per staged
  /// share, and flatten the chunk-op issue order. Takes no simulated time
  /// (staging uses the non-blocking try_acquire). Returns nullptr when a
  /// staging slot is unavailable right now — callers fall back to the
  /// uncompiled path rather than deadlocking the pool with persistent
  /// leases. Throws std::invalid_argument on malformed configs, mirroring
  /// execute_monitored's validation.
  [[nodiscard]] std::shared_ptr<TransferGraph> compile_graph(
      topo::DeviceId src_dev, topo::DeviceId dst_dev,
      const model::TransferConfig& config);

  /// Execute a compiled template: one driver frame walks the precompiled op
  /// list — no theta solve, no plan construction, no per-chunk setup. The
  /// issued runtime-call / issue-cost sequence is identical to
  /// execute_monitored on the equivalent plan, so completion times (and rng
  /// draws under jitter) match the uncompiled path bit for bit. `watch`
  /// must be empty or sized like graph->config().paths. Throws
  /// std::logic_error if the graph is already replaying (templates are not
  /// reentrant), std::invalid_argument on endpoint/graph mismatches.
  [[nodiscard]] sim::Task<TransferOutcome> replay(
      std::shared_ptr<TransferGraph> graph, gpusim::DeviceBuffer& dst,
      std::size_t dst_offset, const gpusim::DeviceBuffer& src,
      std::size_t src_offset, PathWatchList watch);

  [[nodiscard]] gpusim::GpuRuntime& runtime() { return *runtime_; }
  [[nodiscard]] std::uint64_t transfers_executed() const {
    return transfers_;
  }
  /// Cumulative bytes executed per path kind (reporting aid).
  [[nodiscard]] std::uint64_t bytes_on(topo::PathKind kind) const;

 private:
  struct StreamKey {
    topo::DeviceId src;
    topo::DeviceId dst;
    std::size_t path_index;
    int role;  // 0 = first hop / direct, 1 = second hop
    auto operator<=>(const StreamKey&) const = default;
  };

  /// Per-path issue state prepared before the interleaved issue loop.
  /// Per-chunk arrays are small-vectors sized for the common pipeline depth
  /// (k <= 16); deeper pipelines spill once and the capacity is then moved
  /// along with the PathIssue.
  struct PathIssue {
    ExecPath spec;
    std::size_t offset = 0;      // within the transfer
    std::size_t plan_index = 0;  // index into the caller's plan / watch
    gpusim::StreamId first_stream = 0;
    gpusim::StreamId second_stream = 0;
    StagingPool::Lease lease;
    util::SmallVec<gpusim::EventId, 16> fwd_events;
    util::SmallVec<gpusim::EventId, 16> bwd_events;
    util::SmallVec<std::size_t, 16> chunk_offsets;
    util::SmallVec<std::size_t, 16> chunk_sizes;
    bool staged = false;
    bool monitored = false;
    double extra_sync_s = 0.0;  // host-staging per-chunk penalty
  };

  gpusim::StreamId stream_for(const StreamKey& key, topo::DeviceId device);
  [[nodiscard]] sim::Engine::DelayAwaiter issue_cost();

  gpusim::GpuRuntime* runtime_;
  StagingPool staging_;
  std::map<StreamKey, gpusim::StreamId> streams_;
  std::uint64_t transfers_ = 0;
  std::map<topo::PathKind, std::uint64_t> bytes_by_kind_;
};

}  // namespace mpath::pipeline
