// Multi-path pipeline engine — the execution machinery of Sojoodi et al.
// (ExHET'24, ref [35] of the paper) that the performance model drives
// (Fig. 2a Step 5).
//
// An ExecPlan assigns a contiguous slice of the message to each path. The
// engine issues the per-chunk operation graph for all paths from a single
// host loop (interleaved round-robin over paths, one chunk per round):
//
//   stream A (first hop):   [wait slot free] copy(src -> stage)  record F_c
//   stream B (second hop):  wait F_c  [host-sync delay]  copy(stage -> dst)
//                           record B_c
//
// Staging buffers are double-buffered (chunk c reuses the slot of c-2 and
// therefore waits on B_{c-2}), matching the three-step staging protocol of
// Section 3.4. Each issued operation costs host time, which is what makes
// path initiation sequential — the effect Algorithm 1 line 18 models.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mpath/gpusim/runtime.hpp"
#include "mpath/pipeline/staging.hpp"
#include "mpath/topo/paths.hpp"

namespace mpath::pipeline {

/// One path's assignment inside a transfer.
struct ExecPath {
  topo::PathPlan plan;
  std::uint64_t bytes = 0;  ///< contiguous slice length (0 = skip)
  int chunks = 1;           ///< pipeline depth k_i (staged paths)
};

using ExecPlan = std::vector<ExecPath>;

class PipelineEngine {
 public:
  explicit PipelineEngine(
      gpusim::GpuRuntime& runtime, std::size_t staging_buffers_per_device = 4,
      gpusim::Payload staging_payload = gpusim::Payload::Materialized);
  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// Execute `plan` moving sum(plan.bytes) from src[src_offset..] to
  /// dst[dst_offset..]. Paths own consecutive slices in plan order.
  /// Throws std::invalid_argument on malformed plans (bounds, chunks < 1).
  [[nodiscard]] sim::Task<void> execute(gpusim::DeviceBuffer& dst,
                                        std::size_t dst_offset,
                                        const gpusim::DeviceBuffer& src,
                                        std::size_t src_offset,
                                        ExecPlan plan);

  [[nodiscard]] gpusim::GpuRuntime& runtime() { return *runtime_; }
  [[nodiscard]] std::uint64_t transfers_executed() const {
    return transfers_;
  }
  /// Cumulative bytes executed per path kind (reporting aid).
  [[nodiscard]] std::uint64_t bytes_on(topo::PathKind kind) const;

 private:
  struct StreamKey {
    topo::DeviceId src;
    topo::DeviceId dst;
    std::size_t path_index;
    int role;  // 0 = first hop / direct, 1 = second hop
    auto operator<=>(const StreamKey&) const = default;
  };

  /// Per-path issue state prepared before the interleaved issue loop.
  struct PathIssue {
    ExecPath spec;
    std::size_t offset = 0;  // within the transfer
    gpusim::StreamId first_stream = 0;
    gpusim::StreamId second_stream = 0;
    StagingPool::Lease lease;
    std::vector<gpusim::EventId> fwd_events;
    std::vector<gpusim::EventId> bwd_events;
    std::vector<std::size_t> chunk_offsets;
    std::vector<std::size_t> chunk_sizes;
    bool staged = false;
    double extra_sync_s = 0.0;  // host-staging per-chunk penalty
  };

  gpusim::StreamId stream_for(const StreamKey& key, topo::DeviceId device);
  [[nodiscard]] sim::Engine::DelayAwaiter issue_cost();

  gpusim::GpuRuntime* runtime_;
  StagingPool staging_;
  std::map<StreamKey, gpusim::StreamId> streams_;
  std::uint64_t transfers_ = 0;
  std::map<topo::PathKind, std::uint64_t> bytes_by_kind_;
};

}  // namespace mpath::pipeline
