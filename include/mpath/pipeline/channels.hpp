// DataChannel implementations over the pipeline engine:
//   * SinglePathChannel — the UCX default: everything on the direct path
//     (the paper's baseline),
//   * ModelDrivenChannel — Fig. 2a Steps 3-5: invoke the performance model
//     per transfer, execute the optimal configuration (the paper's
//     "Dynamic Path Distribution"),
//   * StaticPlanChannel — a fixed fraction/chunk assignment found offline
//     by exhaustive search (the paper's "Static Path Distribution", [35]).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "mpath/gpusim/channel.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/model/recalibrator.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/pipeline/health.hpp"

namespace mpath::pipeline {

class TransferScheduler;
class GraphCache;
class ChainController;

class SinglePathChannel final : public gpusim::DataChannel {
 public:
  explicit SinglePathChannel(PipelineEngine& engine) : engine_(&engine) {}

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "direct"; }

 private:
  PipelineEngine* engine_;
};

/// Degradation-aware recovery policy: every path of a transfer runs under a
/// watchdog whose deadline is the model-predicted per-path time T_i times
/// `slack`; on timeout the failed path is dropped from the candidate set,
/// theta is re-solved over the survivors for the undelivered remainder, and
/// the remainder is re-issued as a fresh ExecPlan. After `max_replans`
/// failed attempts (or when no path survives) the transfer throws
/// gpusim::TransferError with partial-progress accounting.
struct RecoveryOptions {
  bool enabled = false;
  double slack = 4.0;          ///< deadline = slack * predicted T_i
  double min_deadline_s = 1e-3;  ///< floor so noise cannot trip tiny shares
  int max_replans = 3;
  /// Per-retry watchdog slack escalation: re-plan r of one transfer uses
  /// slack * min(retry_backoff^r, max_slack_factor). A flapping path then
  /// has to misbehave for exponentially longer to burn each remaining
  /// re-plan, instead of tripping max_replans in one burst. retry_backoff
  /// of 1 restores the fixed-slack PR 2 behaviour.
  double retry_backoff = 2.0;
  double max_slack_factor = 8.0;
};

/// Watchdog slack for re-plan number `replans` (0 = the initial plan, so
/// the first attempt always runs at exactly `rec.slack`).
[[nodiscard]] double escalated_slack(const RecoveryOptions& rec, int replans);

/// Monotonic counters describing recovery activity on a channel.
struct RecoveryStats {
  std::uint64_t path_timeouts = 0;      ///< watchdogs that fired
  std::uint64_t replans = 0;            ///< remainder re-plans issued
  std::uint64_t transfers_recovered = 0;  ///< completed after >= 1 re-plan
  std::uint64_t transfers_failed = 0;   ///< ended in TransferError
  double recovery_time_s = 0.0;  ///< sim time from first timeout to finish
};

struct ModelDrivenOptions {
  /// Transfers below this size skip the model and go direct (matching the
  /// runtime integration, which leaves small messages on the default path).
  std::size_t min_multipath_bytes = 256 * 1024;
  RecoveryOptions recovery;
  /// Path probation/readmission policy. Requires recovery.enabled (health
  /// is driven by the watchdog outcomes); ignored otherwise.
  HealthOptions health;
  /// When set, every cleanly completed model-driven transfer feeds its
  /// (predicted, actual) pair back for online alpha/beta refinement. The
  /// recalibrator must outlive the channel. Null (default) keeps the model
  /// static — paper-faithful mode.
  model::Recalibrator* recalibrator = nullptr;
  /// Compiled-plan replay: when set, multi-path transfers consult this
  /// template cache first. A hit replays the precompiled op list (skipping
  /// the theta solve, plan construction, and per-chunk setup); a miss
  /// compiles the fresh plan into a template for next time. Replay falls
  /// back to the uncompiled path whenever it could diverge from it: the
  /// template is mid-replay, one of its paths is unhealthy, link
  /// capacities changed since compile, or the scheduler sees contention
  /// the compiled split did not. The cache must outlive the channel and be
  /// destroyed before the engine's runtime. Null (default) disables
  /// compiled replay entirely.
  GraphCache* graphs = nullptr;
};

/// Monotonic counters describing compiled-graph usage on a channel.
struct GraphUseStats {
  std::uint64_t compiles = 0;          ///< templates built (cache misses)
  std::uint64_t compile_failures = 0;  ///< staging pool full; uncompiled
  std::uint64_t replays = 0;           ///< cache-hit fast-path executions
  std::uint64_t replays_fresh = 0;     ///< executions right after a compile
  std::uint64_t busy_fallbacks = 0;    ///< template mid-replay
  std::uint64_t health_fallbacks = 0;  ///< a template path is unhealthy
  std::uint64_t epoch_fallbacks = 0;   ///< link capacities changed
  std::uint64_t contended_rejects = 0; ///< scheduler refused admit_replay
  /// Host wall-nanoseconds spent in the channel's *synchronous* planning
  /// sections: configure solves, admissions, template compiles, chain
  /// claim/record bookkeeping. Never spans a co_await, so it measures the
  /// per-transfer host-side cost a real (non-simulated) stack would pay on
  /// the CPU — the thing graph replay exists to amortise — with simulated
  /// device/network event processing excluded.
  std::uint64_t plan_ns = 0;
};

class ModelDrivenChannel final : public gpusim::DataChannel {
 public:
  ModelDrivenChannel(PipelineEngine& engine,
                     model::PathConfigurator& configurator,
                     topo::PathPolicy policy, ModelDrivenOptions options = {});

  /// Scheduled variant: every multi-path transfer is admitted through
  /// `scheduler` (joint contention-aware planning); recovery re-plans go
  /// through TransferScheduler::replan so they see live contention too.
  /// The scheduler must outlive the channel and share `configurator`.
  ModelDrivenChannel(PipelineEngine& engine, TransferScheduler& scheduler,
                     model::PathConfigurator& configurator,
                     topo::PathPolicy policy, ModelDrivenOptions options = {});

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "model-driven"; }

  /// The configuration chosen for the most recent transfer (theta
  /// reporting, Fig. 4). Empty until the first multi-path transfer.
  [[nodiscard]] const std::optional<model::TransferConfig>& last_config()
      const {
    return last_config_;
  }
  [[nodiscard]] const topo::PathPolicy& policy() const { return policy_; }
  [[nodiscard]] const RecoveryStats& recovery_stats() const { return stats_; }
  [[nodiscard]] const ModelDrivenOptions& options() const { return options_; }
  /// The node-level scheduler this channel admits through (null when
  /// constructed without one — solo planning, legacy behaviour).
  [[nodiscard]] TransferScheduler* scheduler() const { return scheduler_; }
  /// The channel-lifetime path-health state machine (tracks nothing and
  /// changes nothing unless options().health.enabled with recovery on).
  [[nodiscard]] const PathHealthManager& health() const { return health_; }
  /// Compiled-graph activity (all zero unless options().graphs is set).
  [[nodiscard]] const GraphUseStats& graph_stats() const {
    return graph_stats_;
  }
  /// Attach (or detach, with null) a collective chain controller: every
  /// transfer then consumes the controller's pending step — replaying a
  /// chained template when one is claimable, and reporting its
  /// configuration back during capture. The controller must outlive the
  /// attachment and requires recovery disabled on this channel.
  void attach_chain(ChainController* chain);
  /// The attached chain controller (null when collective chaining is off).
  [[nodiscard]] ChainController* chain() const { return chain_; }

 private:
  friend class ChainController;
  [[nodiscard]] const std::vector<topo::PathPlan>& candidate_paths(
      topo::DeviceId src, topo::DeviceId dst);
  /// Calibration version templates are stamped with (0 = no store).
  [[nodiscard]] std::uint64_t graph_cal_version() const;
  /// Cache lookup plus every replay-safety gate that does not need the
  /// scheduler: busy templates, unhealthy template paths, and (on scheduled
  /// channels) superseded capacity epochs all return nullptr — the caller
  /// then takes the uncompiled path.
  [[nodiscard]] std::shared_ptr<TransferGraph> find_replayable(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      const std::vector<topo::PathPlan>& paths);
  /// Compile `config` into a template, stamp it with the current capacity
  /// epoch, and insert it into the cache. Returns nullptr (and counts a
  /// compile failure) when the staging pool has no free slot.
  [[nodiscard]] std::shared_ptr<TransferGraph> compile_template(
      topo::DeviceId src, topo::DeviceId dst,
      const model::TransferConfig& config);
  [[nodiscard]] sim::Task<void> transfer_with_recovery(
      gpusim::DeviceBuffer& dst, std::size_t dst_offset,
      const gpusim::DeviceBuffer& src, std::size_t src_offset,
      std::size_t bytes);
  /// Outcome of one uncaptured transfer. `reproducible` says whether a
  /// later identical transfer would deterministically pick `config` again —
  /// exactly the bar a captured chain step must meet to compile. The
  /// configuration travels here as a coroutine-local copy because
  /// concurrent transfers interleave at co_await points: by the time the
  /// caller resumes, the shared last_config_ member may already belong to
  /// another in-flight transfer.
  struct UncapturedOutcome {
    bool reproducible = false;
    std::optional<model::TransferConfig> config;
  };
  /// The whole non-recovery transfer body minus chain interplay.
  [[nodiscard]] sim::Task<UncapturedOutcome> transfer_uncaptured(
      gpusim::DeviceBuffer& dst, std::size_t dst_offset,
      const gpusim::DeviceBuffer& src, std::size_t src_offset,
      std::size_t bytes);

  PipelineEngine* engine_;
  ChainController* chain_ = nullptr;
  model::PathConfigurator* configurator_;
  TransferScheduler* scheduler_ = nullptr;
  topo::PathPolicy policy_;
  ModelDrivenOptions options_;
  PathHealthManager health_;
  RecoveryStats stats_;
  GraphUseStats graph_stats_;
  std::optional<model::TransferConfig> last_config_;
  // Candidate path cache per (src, dst).
  std::map<std::pair<topo::DeviceId, topo::DeviceId>,
           std::vector<topo::PathPlan>>
      path_cache_;
};

/// Offline-tuned fixed distribution: fraction[i] of every message rides
/// plan paths[i] with chunks[i] pipeline depth. Fractions must sum to ~1.
struct StaticPlan {
  std::vector<topo::PathPlan> paths;
  std::vector<double> fractions;
  std::vector<int> chunks;
};

class StaticPlanChannel final : public gpusim::DataChannel {
 public:
  StaticPlanChannel(PipelineEngine& engine, StaticPlan plan,
                    std::size_t min_multipath_bytes = 256 * 1024);

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "static"; }
  [[nodiscard]] const StaticPlan& plan() const { return plan_; }

 private:
  PipelineEngine* engine_;
  StaticPlan plan_;
  std::size_t min_multipath_bytes_;
};

}  // namespace mpath::pipeline
