// DataChannel implementations over the pipeline engine:
//   * SinglePathChannel — the UCX default: everything on the direct path
//     (the paper's baseline),
//   * ModelDrivenChannel — Fig. 2a Steps 3-5: invoke the performance model
//     per transfer, execute the optimal configuration (the paper's
//     "Dynamic Path Distribution"),
//   * StaticPlanChannel — a fixed fraction/chunk assignment found offline
//     by exhaustive search (the paper's "Static Path Distribution", [35]).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "mpath/gpusim/channel.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/model/recalibrator.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/pipeline/health.hpp"

namespace mpath::pipeline {

class TransferScheduler;

class SinglePathChannel final : public gpusim::DataChannel {
 public:
  explicit SinglePathChannel(PipelineEngine& engine) : engine_(&engine) {}

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "direct"; }

 private:
  PipelineEngine* engine_;
};

/// Degradation-aware recovery policy: every path of a transfer runs under a
/// watchdog whose deadline is the model-predicted per-path time T_i times
/// `slack`; on timeout the failed path is dropped from the candidate set,
/// theta is re-solved over the survivors for the undelivered remainder, and
/// the remainder is re-issued as a fresh ExecPlan. After `max_replans`
/// failed attempts (or when no path survives) the transfer throws
/// gpusim::TransferError with partial-progress accounting.
struct RecoveryOptions {
  bool enabled = false;
  double slack = 4.0;          ///< deadline = slack * predicted T_i
  double min_deadline_s = 1e-3;  ///< floor so noise cannot trip tiny shares
  int max_replans = 3;
  /// Per-retry watchdog slack escalation: re-plan r of one transfer uses
  /// slack * min(retry_backoff^r, max_slack_factor). A flapping path then
  /// has to misbehave for exponentially longer to burn each remaining
  /// re-plan, instead of tripping max_replans in one burst. retry_backoff
  /// of 1 restores the fixed-slack PR 2 behaviour.
  double retry_backoff = 2.0;
  double max_slack_factor = 8.0;
};

/// Watchdog slack for re-plan number `replans` (0 = the initial plan, so
/// the first attempt always runs at exactly `rec.slack`).
[[nodiscard]] double escalated_slack(const RecoveryOptions& rec, int replans);

/// Monotonic counters describing recovery activity on a channel.
struct RecoveryStats {
  std::uint64_t path_timeouts = 0;      ///< watchdogs that fired
  std::uint64_t replans = 0;            ///< remainder re-plans issued
  std::uint64_t transfers_recovered = 0;  ///< completed after >= 1 re-plan
  std::uint64_t transfers_failed = 0;   ///< ended in TransferError
  double recovery_time_s = 0.0;  ///< sim time from first timeout to finish
};

struct ModelDrivenOptions {
  /// Transfers below this size skip the model and go direct (matching the
  /// runtime integration, which leaves small messages on the default path).
  std::size_t min_multipath_bytes = 256 * 1024;
  RecoveryOptions recovery;
  /// Path probation/readmission policy. Requires recovery.enabled (health
  /// is driven by the watchdog outcomes); ignored otherwise.
  HealthOptions health;
  /// When set, every cleanly completed model-driven transfer feeds its
  /// (predicted, actual) pair back for online alpha/beta refinement. The
  /// recalibrator must outlive the channel. Null (default) keeps the model
  /// static — paper-faithful mode.
  model::Recalibrator* recalibrator = nullptr;
};

class ModelDrivenChannel final : public gpusim::DataChannel {
 public:
  ModelDrivenChannel(PipelineEngine& engine,
                     model::PathConfigurator& configurator,
                     topo::PathPolicy policy, ModelDrivenOptions options = {});

  /// Scheduled variant: every multi-path transfer is admitted through
  /// `scheduler` (joint contention-aware planning); recovery re-plans go
  /// through TransferScheduler::replan so they see live contention too.
  /// The scheduler must outlive the channel and share `configurator`.
  ModelDrivenChannel(PipelineEngine& engine, TransferScheduler& scheduler,
                     model::PathConfigurator& configurator,
                     topo::PathPolicy policy, ModelDrivenOptions options = {});

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "model-driven"; }

  /// The configuration chosen for the most recent transfer (theta
  /// reporting, Fig. 4). Empty until the first multi-path transfer.
  [[nodiscard]] const std::optional<model::TransferConfig>& last_config()
      const {
    return last_config_;
  }
  [[nodiscard]] const topo::PathPolicy& policy() const { return policy_; }
  [[nodiscard]] const RecoveryStats& recovery_stats() const { return stats_; }
  [[nodiscard]] const ModelDrivenOptions& options() const { return options_; }
  /// The node-level scheduler this channel admits through (null when
  /// constructed without one — solo planning, legacy behaviour).
  [[nodiscard]] TransferScheduler* scheduler() const { return scheduler_; }
  /// The channel-lifetime path-health state machine (tracks nothing and
  /// changes nothing unless options().health.enabled with recovery on).
  [[nodiscard]] const PathHealthManager& health() const { return health_; }

 private:
  [[nodiscard]] const std::vector<topo::PathPlan>& candidate_paths(
      topo::DeviceId src, topo::DeviceId dst);
  [[nodiscard]] sim::Task<void> transfer_with_recovery(
      gpusim::DeviceBuffer& dst, std::size_t dst_offset,
      const gpusim::DeviceBuffer& src, std::size_t src_offset,
      std::size_t bytes);

  PipelineEngine* engine_;
  model::PathConfigurator* configurator_;
  TransferScheduler* scheduler_ = nullptr;
  topo::PathPolicy policy_;
  ModelDrivenOptions options_;
  PathHealthManager health_;
  RecoveryStats stats_;
  std::optional<model::TransferConfig> last_config_;
  // Candidate path cache per (src, dst).
  std::map<std::pair<topo::DeviceId, topo::DeviceId>,
           std::vector<topo::PathPlan>>
      path_cache_;
};

/// Offline-tuned fixed distribution: fraction[i] of every message rides
/// plan paths[i] with chunks[i] pipeline depth. Fractions must sum to ~1.
struct StaticPlan {
  std::vector<topo::PathPlan> paths;
  std::vector<double> fractions;
  std::vector<int> chunks;
};

class StaticPlanChannel final : public gpusim::DataChannel {
 public:
  StaticPlanChannel(PipelineEngine& engine, StaticPlan plan,
                    std::size_t min_multipath_bytes = 256 * 1024);

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "static"; }
  [[nodiscard]] const StaticPlan& plan() const { return plan_; }

 private:
  PipelineEngine* engine_;
  StaticPlan plan_;
  std::size_t min_multipath_bytes_;
};

}  // namespace mpath::pipeline
