// DataChannel implementations over the pipeline engine:
//   * SinglePathChannel — the UCX default: everything on the direct path
//     (the paper's baseline),
//   * ModelDrivenChannel — Fig. 2a Steps 3-5: invoke the performance model
//     per transfer, execute the optimal configuration (the paper's
//     "Dynamic Path Distribution"),
//   * StaticPlanChannel — a fixed fraction/chunk assignment found offline
//     by exhaustive search (the paper's "Static Path Distribution", [35]).
#pragma once

#include <optional>

#include "mpath/gpusim/channel.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/engine.hpp"

namespace mpath::pipeline {

class SinglePathChannel final : public gpusim::DataChannel {
 public:
  explicit SinglePathChannel(PipelineEngine& engine) : engine_(&engine) {}

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "direct"; }

 private:
  PipelineEngine* engine_;
};

struct ModelDrivenOptions {
  /// Transfers below this size skip the model and go direct (matching the
  /// runtime integration, which leaves small messages on the default path).
  std::size_t min_multipath_bytes = 256 * 1024;
};

class ModelDrivenChannel final : public gpusim::DataChannel {
 public:
  ModelDrivenChannel(PipelineEngine& engine,
                     model::PathConfigurator& configurator,
                     topo::PathPolicy policy, ModelDrivenOptions options = {});

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "model-driven"; }

  /// The configuration chosen for the most recent transfer (theta
  /// reporting, Fig. 4). Empty until the first multi-path transfer.
  [[nodiscard]] const std::optional<model::TransferConfig>& last_config()
      const {
    return last_config_;
  }
  [[nodiscard]] const topo::PathPolicy& policy() const { return policy_; }

 private:
  PipelineEngine* engine_;
  model::PathConfigurator* configurator_;
  topo::PathPolicy policy_;
  ModelDrivenOptions options_;
  std::optional<model::TransferConfig> last_config_;
  // Candidate path cache per (src, dst).
  std::map<std::pair<topo::DeviceId, topo::DeviceId>,
           std::vector<topo::PathPlan>>
      path_cache_;
};

/// Offline-tuned fixed distribution: fraction[i] of every message rides
/// plan paths[i] with chunks[i] pipeline depth. Fractions must sum to ~1.
struct StaticPlan {
  std::vector<topo::PathPlan> paths;
  std::vector<double> fractions;
  std::vector<int> chunks;
};

class StaticPlanChannel final : public gpusim::DataChannel {
 public:
  StaticPlanChannel(PipelineEngine& engine, StaticPlan plan,
                    std::size_t min_multipath_bytes = 256 * 1024);

  [[nodiscard]] sim::Task<void> transfer(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_offset,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_offset,
                                         std::size_t bytes) override;
  [[nodiscard]] std::string name() const override { return "static"; }
  [[nodiscard]] const StaticPlan& plan() const { return plan_; }

 private:
  PipelineEngine* engine_;
  StaticPlan plan_;
  std::size_t min_multipath_bytes_;
};

}  // namespace mpath::pipeline
