// Compiled transfer graphs: build the plan once, replay it per message.
//
// The authors' follow-up work moves multi-path transfers into CUDA Graphs —
// capture the chunk-op DAG once, then replay it at ~zero launch cost. This
// mirrors that shape in the simulator: PipelineEngine::compile_graph bakes a
// TransferConfig into a TransferGraph holding every host-side decision the
// per-transfer path would otherwise redo (stream resolution, event
// reservation, staging-slot acquisition, chunk splits, and the flattened
// issue-order op list), and PipelineEngine::replay walks the precompiled op
// list in one driver frame. A GraphCache keyed like the config cache makes
// the steady state: lookup, replay, done — no theta solve, no plan
// construction, no per-chunk setup.
//
// Replay is timing-identical to the uncompiled path by construction: the op
// list reproduces execute_monitored's exact runtime-call/issue-cost
// sequence (same rng draws under jitter), and compile itself takes no
// simulated time. The one intentional divergence is resource residency —
// a graph keeps its staging lease and events across replays — so identity
// holds whenever the staging pool is uncontended (sized at least as large
// as the live template + transfer count per device).
//
// Lifetime: a graph borrows streams/events/staging from the runtime that
// compiled it; graphs (and any cache holding them) must be destroyed before
// that runtime. Graphs are shared_ptr-held so LRU eviction while a replay
// is executing is safe (the replay frame keeps its snapshot alive — the
// same by-value discipline as the PR 6 config-cache fix).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "mpath/gpusim/runtime.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/staging.hpp"
#include "mpath/topo/paths.hpp"
#include "mpath/util/small_vec.hpp"

namespace mpath::pipeline {

class PipelineEngine;

/// One precompiled operation. Ops store indices, not sizes: chunk offsets
/// and lengths live in the per-path arrays, so patching a new message size
/// rewrites those arrays without touching the op list structure.
struct GraphOp {
  enum class Kind : std::uint8_t {
    kCopyDirect,     ///< direct path: memcpy src -> dst on the first stream
    kWaitSlot,       ///< first stream waits bwd[c-2] (staging slot reuse)
    kCopyToStage,    ///< memcpy src -> staging slot on the first stream
    kRecordFwd,      ///< record fwd[c] on the first stream
    kWaitFwd,        ///< second stream waits fwd[c]
    kStageDelay,     ///< host-staging sync delay on the second stream
    kCopyFromStage,  ///< memcpy staging slot -> dst on the second stream
    kRecordBwd,      ///< record bwd[c] on the second stream
  };
  Kind kind{};
  /// First op of its (path, chunk) group. Replay re-checks the path's
  /// watchdog here and nowhere else — exactly where the uncompiled issue
  /// loop checks once per (path, round) before issuing the chunk's ops.
  bool chunk_head = false;
  std::uint16_t path = 0;   ///< index into TransferGraph path state
  std::uint16_t chunk = 0;  ///< chunk index within the path
};

/// A reusable compiled transfer template for one (src, dst, bytes,
/// candidate-path-set) tuple. Built by PipelineEngine::compile_graph;
/// executed by PipelineEngine::replay. Default-constructed graphs are empty
/// shells (no resources) — valid() is false; the cache machinery accepts
/// them, which is what the concurrent cache tests exercise.
class TransferGraph {
 public:
  /// Pre-resolved per-path issue state (the compiled twin of the engine's
  /// per-transfer PathIssue).
  struct Path {
    topo::PathPlan plan;
    std::uint64_t bytes = 0;
    int chunks = 1;              ///< after the min(chunks, bytes) clamp
    std::size_t offset = 0;      ///< slice start within the message
    std::size_t plan_index = 0;  ///< index into config().paths and watches
    bool staged = false;
    double extra_sync_s = 0.0;
    gpusim::StreamId first_stream = 0;
    gpusim::StreamId second_stream = 0;
    std::size_t slot_bytes = 0;  ///< staging slot capacity (half the buffer)
    StagingPool::Lease lease;    ///< persistent staging reservation
    util::SmallVec<gpusim::EventId, 16> fwd_events;
    util::SmallVec<gpusim::EventId, 16> bwd_events;
    util::SmallVec<std::size_t, 16> chunk_offsets;
    util::SmallVec<std::size_t, 16> chunk_sizes;
  };

  TransferGraph() = default;
  ~TransferGraph();
  TransferGraph(const TransferGraph&) = delete;
  TransferGraph& operator=(const TransferGraph&) = delete;

  [[nodiscard]] bool valid() const { return runtime_ != nullptr; }
  [[nodiscard]] topo::DeviceId src_device() const { return src_dev_; }
  [[nodiscard]] topo::DeviceId dst_device() const { return dst_dev_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  /// The full candidate list the template was planned over (cache
  /// identity), including zero-byte shares.
  [[nodiscard]] std::span<const topo::PathPlan> key_paths() const {
    return key_paths_;
  }
  /// The compiled configuration (by-value snapshot; patch() keeps its byte
  /// shares, thetas, and predicted times in sync with the template).
  [[nodiscard]] const model::TransferConfig& config() const { return config_; }
  [[nodiscard]] std::span<const Path> paths() const {
    return {paths_.data(), paths_.size()};
  }
  [[nodiscard]] std::span<const GraphOp> ops() const {
    return {ops_.data(), ops_.size()};
  }
  /// A replay of this template is currently executing. Templates are not
  /// reentrant (they share events and the staging slot); callers fall back
  /// to the uncompiled path instead of queueing.
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::uint64_t replays() const { return replays_; }
  /// Scheduler capacity-event count at compile time: a joint-theta channel
  /// refuses to replay a template compiled under superseded link
  /// capacities. Opaque to the graph itself.
  [[nodiscard]] std::uint64_t capacity_epoch() const {
    return capacity_epoch_;
  }
  void set_capacity_epoch(std::uint64_t epoch) { capacity_epoch_ = epoch; }

  /// Re-split the template for a new total size, keeping the compiled theta
  /// split points and chunk counts: per-path bytes are re-derived exactly
  /// as config_from_theta would (floor(theta_i * n), remainder to the
  /// anchor), chunk arrays are rebuilt, and the config's byte shares and
  /// predicted times are refreshed. Returns false — leaving the template
  /// untouched — when the new size does not fit the compiled resources
  /// (a staged chunk would overflow its staging slot, or a share that
  /// compiled to zero bytes would need resources it never acquired);
  /// callers then recompile. patch(total_bytes()) is a no-op.
  [[nodiscard]] bool patch(std::uint64_t new_bytes);

 private:
  friend class PipelineEngine;

  /// Rebuild chunk_offsets/chunk_sizes and the flattened op list from the
  /// current per-path byte shares (interleaved round-robin issue order,
  /// matching the uncompiled loop).
  void rebuild_ops();

  gpusim::GpuRuntime* runtime_ = nullptr;
  topo::DeviceId src_dev_ = topo::kInvalidDevice;
  topo::DeviceId dst_dev_ = topo::kInvalidDevice;
  std::uint64_t total_bytes_ = 0;
  std::vector<topo::PathPlan> key_paths_;
  model::TransferConfig config_;
  util::SmallVec<Path, 4> paths_;  ///< active (bytes > 0) shares only
  std::vector<GraphOp> ops_;
  bool busy_ = false;
  std::uint64_t replays_ = 0;
  std::uint64_t capacity_epoch_ = 0;
};

using GraphPtr = std::shared_ptr<TransferGraph>;

struct GraphCacheOptions {
  /// Maximum cached templates; least-recently-used entries are evicted past
  /// this (releasing their staging slot and events unless a replay still
  /// holds the graph). 0 = unbounded. Size this at most as large as the
  /// staging pool's buffers_per_device, or templates starve transfers.
  std::size_t capacity = 32;
  /// Key width test hook, exactly as ConfiguratorOptions::cache_key_bits:
  /// narrowing forces FNV collisions between distinct tuples.
  int key_bits = 64;
};

struct GraphCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  /// Entries whose tuple matched but were compiled under a superseded
  /// calibration snapshot; each is dropped so the caller recompiles.
  std::uint64_t invalidations = 0;
  /// Distinct tuples that hashed onto an occupied key (lookup must miss).
  std::uint64_t collisions = 0;
};

/// LRU-bounded, calibration-version-stamped template cache, keyed like the
/// config cache on the full (src, dst, bytes, path-set) tuple with FNV-1a
/// bucket addressing plus full-tuple verification on hit. Mutex-protected:
/// the replay hot path is engine-single-threaded (the lock is uncontended),
/// but sweep tooling may build/inspect caches from multiple threads.
class GraphCache {
 public:
  explicit GraphCache(GraphCacheOptions options = {});
  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;

  /// The cached template for the tuple, or nullptr (miss, collision, or a
  /// stale calibration stamp — stale entries are dropped so the caller
  /// recompiles under the current snapshot).
  [[nodiscard]] GraphPtr lookup(topo::DeviceId src, topo::DeviceId dst,
                                std::uint64_t bytes,
                                std::span<const topo::PathPlan> paths,
                                std::uint64_t cal_version);

  /// Insert (or replace) the template under its own tuple, stamped with the
  /// calibration version it was compiled under.
  void insert(GraphPtr graph, std::uint64_t cal_version);

  /// Drop the entry for the tuple if present (explicit invalidation, e.g. a
  /// template path entered health probation). Returns true if removed.
  bool remove(topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
              std::span<const topo::PathPlan> paths);

  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] GraphCacheStats stats() const;  ///< by-value snapshot
  [[nodiscard]] const GraphCacheOptions& options() const { return options_; }

  /// FNV-1a bucket address (same mixing as PathConfigurator::cache_key).
  [[nodiscard]] std::uint64_t cache_key(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths) const;

 private:
  struct Entry {
    GraphPtr graph;
    std::uint64_t cal_version = 0;
    std::list<std::uint64_t>::iterator recency;
  };
  [[nodiscard]] static bool entry_matches(
      const Entry& e, topo::DeviceId src, topo::DeviceId dst,
      std::uint64_t bytes, std::span<const topo::PathPlan> paths);

  mutable std::mutex mutex_;
  GraphCacheOptions options_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< keys, most-recently-used first
  GraphCacheStats stats_;
};

}  // namespace mpath::pipeline
