// Staging buffer pool. Staged paths bounce chunks through an intermediate
// device; the pool bounds concurrent staging buffers per device (as the
// real engine pre-allocates them) and recycles buffers across transfers.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "mpath/gpusim/buffer.hpp"
#include "mpath/gpusim/runtime.hpp"
#include "mpath/sim/sync.hpp"

namespace mpath::pipeline {

class StagingPool {
 public:
  /// At most `buffers_per_device` staging buffers may be live on one device
  /// at a time; further acquisitions wait. `payload` controls whether
  /// staging buffers carry real bytes (needed when the transfer endpoints
  /// are materialized) or are timing-only.
  explicit StagingPool(gpusim::GpuRuntime& runtime,
                       std::size_t buffers_per_device = 4,
                       gpusim::Payload payload = gpusim::Payload::Materialized);
  StagingPool(const StagingPool&) = delete;
  StagingPool& operator=(const StagingPool&) = delete;

  using PoolKey = std::pair<topo::DeviceId, topo::DeviceId>;

  class Lease {
   public:
    Lease() = default;
    Lease(StagingPool* pool, PoolKey key,
          std::unique_ptr<gpusim::DeviceBuffer> buffer)
        : pool_(pool), key_(key), buffer_(std::move(buffer)) {}
    Lease(Lease&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)),
          key_(o.key_),
          buffer_(std::move(o.buffer_)) {}
    Lease& operator=(Lease&& o) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] gpusim::DeviceBuffer& buffer() { return *buffer_; }
    [[nodiscard]] bool valid() const { return buffer_ != nullptr; }
    void release();

   private:
    StagingPool* pool_ = nullptr;
    PoolKey key_{topo::kInvalidDevice, topo::kInvalidDevice};
    std::unique_ptr<gpusim::DeviceBuffer> buffer_;
  };

  /// Acquire a staging buffer of at least `bytes` on `device`, on behalf
  /// of `initiator` (the transfer's source device). Pools are partitioned
  /// per (initiator, device) because real staging buffers live in the
  /// sending process: independent senders never contend for each other's
  /// buffers.
  [[nodiscard]] sim::Task<Lease> acquire(topo::DeviceId device,
                                         std::size_t bytes,
                                         topo::DeviceId initiator);

  /// Non-blocking acquire: returns an invalid Lease when the pool has no
  /// free slot instead of waiting. Used by the graph compiler, which holds
  /// a slot persistently and must never deadlock against per-transfer
  /// acquisitions. When a slot is free this is indistinguishable from
  /// acquire() (the uncontended path takes no engine events either way).
  [[nodiscard]] Lease try_acquire(topo::DeviceId device, std::size_t bytes,
                                  topo::DeviceId initiator);

  [[nodiscard]] std::size_t buffers_per_device() const { return capacity_; }
  /// Buffers currently leased on `device` by `initiator`.
  [[nodiscard]] std::size_t in_use(topo::DeviceId device,
                                   topo::DeviceId initiator) const;

 private:
  struct PerDevice {
    std::unique_ptr<sim::Semaphore> slots;
    std::vector<std::unique_ptr<gpusim::DeviceBuffer>> free_buffers;
    std::size_t leased = 0;
  };
  PerDevice& per_pool(PoolKey key);
  void give_back(PoolKey key,
                 std::unique_ptr<gpusim::DeviceBuffer> buffer);

  gpusim::GpuRuntime* runtime_;
  std::size_t capacity_;
  gpusim::Payload payload_;
  std::map<PoolKey, PerDevice> pools_;
};

}  // namespace mpath::pipeline
