// Node-level joint transfer scheduler.
//
// Each ModelDrivenChannel used to run Algorithm 1 as if it owned the node:
// under concurrent transfers the fluid network's max-min arbitration makes
// every solo plan's predicted T_i wrong, and the theta splits fight each
// other for the same links. The scheduler is the node-wide fix: every
// transfer is admitted through it, so planning sees the live contention
// state —
//
//   * admission plans the arriving transfer (or a whole batch, e.g. an
//     allreduce storm) with model::JointThetaSolver: a capped max-min
//     water-fill over the fluid links' capacities, with every in-flight
//     transfer's paths as fixed flows and (optionally) non-scheduler
//     traffic folded in as per-link background weight snapshotted from
//     FluidNetwork::link_flow_weight;
//   * the resulting per-path rates replace the solo Omegas in the Eq. 24
//     equal-time solve, so both the split and the predicted times are
//     contention-aware (recovery watchdog deadlines inherit the slack
//     automatically);
//   * departures / failures / recovery re-plans update the footprint, so
//     later admissions water-fill against reality.
//
// Prediction accounting: each admission records a predicted duration. The
// record stays live ("unfrozen") while the simulated clock has not advanced
// past the admit instant, and same-timestamp admissions refresh each
// other's predictions — a K-transfer storm arriving at one instant ends up
// with all K predictions solved against the full set. The first event at a
// strictly later time freezes the prediction; `history()` then pairs it
// with the measured completion for |predicted - simulated| / simulated
// reporting (the bench/multi_tenant gate).
//
// Single-threaded like the rest of the simulator: the scheduler is driven
// from coroutines on one sim::Engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpath/model/configurator.hpp"
#include "mpath/model/theta.hpp"
#include "mpath/pipeline/engine.hpp"

namespace mpath::pipeline {

struct SchedulerOptions {
  /// When false, admissions solve solo Eq. 24 exactly like an unscheduled
  /// ModelDrivenChannel — same admission bookkeeping, same history records.
  /// This is the ablation baseline the joint gate compares against.
  bool joint = true;
  /// Fold fluid flows the scheduler does not own (per-link flow weight
  /// minus the scheduler's own live paths) into the water-fill as
  /// background load.
  bool network_snapshot = true;
  /// Subscribe to FluidNetwork capacity-change notifications: the modeled
  /// residue of in-flight transfers is integrated up to the instant of
  /// every sever/degrade/restore at the rates that actually governed the
  /// elapsed window. Without it a restore mid-transfer is applied
  /// retroactively across the whole window at the next admission, so
  /// readmission probes plan against capacities that never existed. No
  /// effect on fault-free runs (the listener never fires).
  bool observe_capacity = true;
};

class TransferScheduler {
 public:
  using TicketId = std::uint64_t;
  static constexpr TicketId kInvalidTicket = 0;

  struct Request {
    topo::DeviceId src = 0;
    topo::DeviceId dst = 0;
    std::uint64_t bytes = 0;
    std::span<const topo::PathPlan> paths;  ///< paths[0] = anchor
  };

  struct Admission {
    TicketId ticket = kInvalidTicket;
    model::TransferConfig config;
    /// The plan was solved with nothing else on its links: no live flow
    /// shares them, no background traffic, and the joint water-fill applied
    /// no rate override (or the scheduler runs in solo mode, where plans
    /// never depend on contention). Only uncontended admissions produce
    /// configs worth compiling into a replay template — their split is a
    /// pure function of (tuple, calibration), so a later admit_replay can
    /// reproduce the identical ledger entry.
    bool uncontended = false;
  };

  /// One admitted transfer's ledger entry (kept after departure).
  struct Record {
    double t_admit = 0.0;
    double t_depart = -1.0;    ///< simulated completion; -1 while in flight
    double predicted_s = 0.0;  ///< frozen planner prediction (duration)
    std::uint64_t bytes = 0;
    int replans = 0;
    bool failed = false;
    [[nodiscard]] bool completed() const { return t_depart >= 0.0 && !failed; }
    [[nodiscard]] double actual_s() const { return t_depart - t_admit; }
  };

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t departed = 0;
    std::uint64_t failed = 0;
    std::uint64_t replans = 0;
    std::uint64_t joint_iterations = 0;  ///< summed solver rounds
    std::uint64_t capacity_events = 0;   ///< observed link capacity changes
    std::uint64_t replay_admits = 0;     ///< admit_replay accepted
    std::uint64_t replay_rejects = 0;    ///< admit_replay: links contended
    /// admit_replay: compiled config no longer describes the request
    /// (size/path-set drift) — caller must recompile.
    std::uint64_t replay_plan_mismatches = 0;
    /// Departure-side invariant: every depart/fail re-derives the ticket's
    /// link footprint and checks it against what admission charged.
    std::uint64_t footprint_checks = 0;
    std::uint64_t footprint_mismatches = 0;  ///< should stay 0
    /// Collective-round batch admissions (admit_chain): rounds accepted,
    /// rounds refused (a flow would be squeezed below its solo cap, or
    /// background traffic sits on a round link), and per-step tickets
    /// registered by accepted rounds.
    std::uint64_t chain_round_admits = 0;
    std::uint64_t chain_round_rejects = 0;
    std::uint64_t chain_step_admits = 0;
    /// admit_chain: a step's compiled config no longer describes its
    /// request (size/path-set drift) — the whole round is refused.
    std::uint64_t chain_plan_mismatches = 0;
    /// Tickets released by depart_chain without ever carrying a replay
    /// (chain died mid-round; the pre-admitted remainder is unwound).
    std::uint64_t chain_unwound = 0;
  };

  /// Both references must outlive the scheduler. The configurator supplies
  /// Algorithm 1's prepare/config halves; theta comes from the joint solve.
  TransferScheduler(PipelineEngine& engine,
                    model::PathConfigurator& configurator,
                    SchedulerOptions options = {});
  ~TransferScheduler();
  TransferScheduler(const TransferScheduler&) = delete;
  TransferScheduler& operator=(const TransferScheduler&) = delete;

  /// Plan one transfer against the live contention state and register it as
  /// in-flight. `paths` must be non-empty; paths[0] is the anchor.
  [[nodiscard]] Admission admit(topo::DeviceId src, topo::DeviceId dst,
                                std::uint64_t bytes,
                                std::span<const topo::PathPlan> paths);

  /// Jointly plan a batch of simultaneous transfers (the K-transfer solve):
  /// every request's split accounts for all the others plus live traffic.
  [[nodiscard]] std::vector<Admission> admit_batch(
      std::span<const Request> requests);

  /// Admit a transfer that will *replay* a compiled template instead of
  /// being freshly planned. Accepts only when the compiled split is still
  /// exactly what a fresh admission would produce: the template must
  /// describe this request (same bytes and candidate paths — else
  /// replay_plan_mismatches), and under joint planning nothing else may
  /// touch the template's links (no live scheduled flow, no background
  /// traffic — else replay_rejects). On acceptance the ticket and history
  /// record are registered exactly as admit() would, using the compiled
  /// config's terms, so the departure-side ledger is indistinguishable
  /// from a fresh admission. A rejected admission returns kInvalidTicket;
  /// the caller falls back to a fresh compile.
  [[nodiscard]] Admission admit_replay(topo::DeviceId src, topo::DeviceId dst,
                                       std::uint64_t bytes,
                                       std::span<const topo::PathPlan> paths,
                                       const model::TransferConfig& compiled);

  /// One step of a chained collective round offered for batched replay
  /// admission. `compiled` is the step's template config (solo terms — the
  /// graph was compiled from an uncontended admission) and must outlive the
  /// admit_chain call.
  struct ChainStepRequest {
    topo::DeviceId src = 0;
    topo::DeviceId dst = 0;
    std::uint64_t bytes = 0;
    std::span<const topo::PathPlan> paths;  ///< full candidate set
    const model::TransferConfig* compiled = nullptr;
  };

  /// Batched replay admission for one chained collective round: all K steps
  /// are validated with ONE JointThetaSolver water-fill (the PR 6 storm
  /// solve inverted into a gate) instead of K independent admit_replay
  /// probes. The round is accepted iff every compiled config still
  /// describes its request AND the joint water-fill of the round's carrying
  /// paths plus every live flow leaves *all* of them at their solo caps
  /// with no background traffic on a round link — exactly the condition
  /// under which a fresh joint solve of any step, at any instant while the
  /// round is in flight, would reproduce the compiled solo split. On
  /// acceptance each step gets a ticket registered from its compiled
  /// shares (admit_replay ledger semantics — departures are
  /// indistinguishable from fresh admissions); the returned ids align with
  /// `steps`. An empty vector means the round was refused and the caller
  /// must fall back to per-step fresh admission.
  [[nodiscard]] std::vector<TicketId> admit_chain(
      std::span<const ChainStepRequest> steps);

  /// Unwind tickets pre-registered by admit_chain that no replay ever
  /// claimed (the chain died mid-round): verify and release each footprint
  /// and mark the records failed so the history never confuses them with
  /// transfers that ran. Invalid ids are skipped.
  void depart_chain(std::span<const TicketId> tickets);

  /// Recovery re-plan: replace the ticket's footprint with a fresh joint
  /// plan for the undelivered `bytes` over the `survivors` subset
  /// (survivors[0] is the anchor, configure_over semantics). The ticket's
  /// history record is continued, not re-created.
  [[nodiscard]] model::TransferConfig replan(
      TicketId ticket, std::uint64_t bytes,
      std::span<const topo::PathPlan> survivors);

  /// The transfer completed: stamp its record and release its footprint.
  void depart(TicketId ticket);
  /// The transfer aborted (TransferError): record the failure and release
  /// its footprint so later plans stop water-filling against it.
  void fail(TicketId ticket);

  [[nodiscard]] std::size_t live_count() const { return live_.size(); }
  [[nodiscard]] const std::vector<Record>& history() const { return records_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }
  [[nodiscard]] model::PathConfigurator& configurator() {
    return *configurator_;
  }

 private:
  /// One live path's modeled residue: which fluid links it occupies, its
  /// solo rate cap, and how much latency/payload is still ahead of it.
  struct LivePath {
    util::SmallVec<std::uint32_t, 4> links;
    double cap_bps = 0.0;
    double remaining_delta = 0.0;
    double remaining_bytes = 0.0;
  };
  struct Ticket {
    TicketId id = kInvalidTicket;
    std::size_t record = 0;  ///< index into records_
    double t_admit = 0.0;
    topo::DeviceId src = 0;
    topo::DeviceId dst = 0;
    bool frozen = false;  ///< prediction final (clock moved past t_admit)
    util::SmallVec<LivePath, 4> paths;
    /// Sorted link ids admission charged to this ticket (its attributed
    /// water-fill weight). depart/fail re-derive the footprint from the
    /// live paths and verify it matches — a mismatch means a replay or
    /// replan released different weight than admission charged.
    util::SmallVec<std::uint32_t, 8> charged;
  };

  /// Advance every live path's modeled residue to `now` at the current
  /// water-fill rates and freeze predictions whose admit instant has
  /// passed. Called at the top of every public mutation.
  void integrate_to(double now);
  /// Current per-link capacities + non-scheduler background weight.
  [[nodiscard]] std::vector<model::JointLink> snapshot_links();
  /// All live paths still moving data, as water-fill flows. `owners`
  /// receives (ticket index, path index) per flow, aligned with the result.
  [[nodiscard]] std::vector<model::FixedFlow> live_flows(
      std::vector<std::pair<std::size_t, std::size_t>>* owners) const;
  /// Fluid links occupied by `plan` while streaming (both hops of a staged
  /// path — they are pipelined, so they are concurrently loaded).
  [[nodiscard]] util::SmallVec<std::uint32_t, 4> plan_links(
      topo::DeviceId src, topo::DeviceId dst, const topo::PathPlan& plan);
  /// Refresh the prediction of every unfrozen ticket from its residue and
  /// the given per-flow rates (same alignment as live_flows).
  void refresh_predictions(
      std::span<const double> rates,
      std::span<const std::pair<std::size_t, std::size_t>> owners);
  [[nodiscard]] std::size_t find(TicketId ticket);
  void release(std::size_t index);
  /// Sorted union (with multiplicity) of the ticket's live-path links.
  [[nodiscard]] static util::SmallVec<std::uint32_t, 8> footprint_of(
      const Ticket& t);
  /// Check the satellite invariant before releasing `index`: the footprint
  /// being released is the one admission charged.
  void verify_footprint(std::size_t index);
  /// True when any live scheduled flow or (if snapshotting) background
  /// traffic touches one of `cand` (sorted link ids).
  [[nodiscard]] bool links_contended(std::span<const std::uint32_t> cand);

  PipelineEngine* engine_;
  model::PathConfigurator* configurator_;
  SchedulerOptions options_;
  sim::FluidNetwork* net_ = nullptr;   ///< set iff observe_capacity
  std::uint64_t capacity_listener_ = 0;
  std::vector<Ticket> live_;
  std::vector<Record> records_;
  Stats stats_;
  TicketId next_id_ = 1;
  double last_event_ = 0.0;
};

}  // namespace mpath::pipeline
