// UCX-like intra-node transport: workers with tag matching, an eager
// protocol for small messages and a rendezvous protocol (RTS/CTS + CUDA-IPC
// mapping) for large ones. Bulk data moves through a pluggable DataChannel —
// the seam where the paper integrates its model-driven multi-path engine
// into the cuda_ipc code path (Fig. 2a Step 3).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mpath/gpusim/channel.hpp"
#include "mpath/gpusim/runtime.hpp"
#include "mpath/sim/engine.hpp"

namespace mpath::transport {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct TransportOptions {
  /// Messages at or below this size use the eager protocol (no rendezvous
  /// handshake, no IPC mapping).
  std::size_t eager_threshold = 64 * 1024;
  /// Host-side overhead of an eager message.
  double eager_overhead_s = 1.0e-6;
  /// Rendezvous-sized send/recv operations that find no match within this
  /// window are aborted with gpusim::TransferError instead of waiting
  /// forever (a dead peer otherwise deadlocks the whole simulation).
  /// 0 disables the timeout (legacy behaviour).
  double rendezvous_timeout_s = 0.0;
};

class Worker;

class Fabric {
 public:
  Fabric(gpusim::GpuRuntime& runtime, gpusim::DataChannel& channel,
         TransportOptions options = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// Create the worker for `rank` (ranks must be created densely from 0).
  Worker& add_worker(int rank, topo::DeviceId device);
  [[nodiscard]] Worker& worker(int rank);
  [[nodiscard]] int worker_count() const {
    return static_cast<int>(workers_.size());
  }

  [[nodiscard]] gpusim::GpuRuntime& runtime() { return *runtime_; }
  [[nodiscard]] gpusim::DataChannel& channel() { return *channel_; }
  [[nodiscard]] const TransportOptions& options() const { return options_; }

  // -- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::uint64_t rendezvous_count() const { return rendezvous_; }
  [[nodiscard]] std::uint64_t eager_count() const { return eager_; }
  /// Send/recv operations aborted by the rendezvous timeout.
  [[nodiscard]] std::uint64_t rendezvous_timeouts() const {
    return rendezvous_timeouts_;
  }

 private:
  friend class Worker;
  gpusim::GpuRuntime* runtime_;
  gpusim::DataChannel* channel_;
  TransportOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t rendezvous_ = 0;
  std::uint64_t eager_ = 0;
  std::uint64_t rendezvous_timeouts_ = 0;
};

class Worker {
 public:
  Worker(Fabric& fabric, int rank, topo::DeviceId device)
      : fabric_(&fabric), rank_(rank), device_(device) {}
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] topo::DeviceId device() const { return device_; }

  /// Tagged send to `dst_rank`. Completes when the data is delivered into
  /// the matched receive buffer (synchronous-send semantics; buffered
  /// sends are modeled by spawning this task).
  [[nodiscard]] sim::Task<void> send(int dst_rank, const gpusim::DeviceBuffer& buf,
                                     std::size_t offset, std::size_t bytes,
                                     int tag);

  /// Tagged receive. `src_rank` may be kAnySource and `tag` kAnyTag.
  /// The receive buffer region must be at least `bytes` long; the matched
  /// send must not be longer (MPI truncation is an error).
  [[nodiscard]] sim::Task<void> recv(int src_rank, gpusim::DeviceBuffer& buf,
                                     std::size_t offset, std::size_t bytes,
                                     int tag);

  [[nodiscard]] std::size_t unexpected_count() const {
    return unexpected_.size();
  }
  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }

 private:
  struct SendEntry {
    int src_rank;
    int tag;
    std::size_t bytes;
    const gpusim::DeviceBuffer* buf;
    std::size_t offset;
    topo::DeviceId src_device;
    sim::Latch* done;
    std::uint64_t seq = 0;  ///< unique id for timeout cancellation
  };
  struct RecvEntry {
    int src_rank;  // kAnySource allowed
    int tag;       // kAnyTag allowed
    std::size_t bytes;
    gpusim::DeviceBuffer* buf;
    std::size_t offset;
    sim::Latch* done;
    std::uint64_t seq = 0;  ///< unique id for timeout cancellation
  };

  /// Move the payload for a matched (send, recv) pair; runs on whichever
  /// side arrived second.
  [[nodiscard]] sim::Task<void> do_transfer(const SendEntry& send,
                                            const RecvEntry& recv);

  Fabric* fabric_;
  int rank_;
  topo::DeviceId device_;
  std::deque<SendEntry> unexpected_;  // sends awaiting a matching recv
  std::deque<RecvEntry> posted_;      // recvs awaiting a matching send
  std::uint64_t next_seq_ = 0;        // parked-entry ids (timeouts)
};

}  // namespace mpath::transport
