// UCX-like intra-node transport: workers with tag matching, an eager
// protocol for small messages and a rendezvous protocol (RTS/CTS + CUDA-IPC
// mapping) for large ones. Bulk data moves through a pluggable DataChannel —
// the seam where the paper integrates its model-driven multi-path engine
// into the cuda_ipc code path (Fig. 2a Step 3).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "mpath/gpusim/channel.hpp"
#include "mpath/gpusim/runtime.hpp"
#include "mpath/sim/engine.hpp"

namespace mpath::transport {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct TransportOptions {
  /// Messages at or below this size use the eager protocol (no rendezvous
  /// handshake, no IPC mapping).
  std::size_t eager_threshold = 64 * 1024;
  /// Host-side overhead of an eager message.
  double eager_overhead_s = 1.0e-6;
  /// Rendezvous-sized send/recv operations that find no match within this
  /// window are aborted with gpusim::TransferError instead of waiting
  /// forever (a dead peer otherwise deadlocks the whole simulation).
  /// 0 disables the timeout (legacy behaviour).
  double rendezvous_timeout_s = 0.0;
};

class Worker;

/// One matched message about to move through the data channel, as observed
/// by the transfer tap: the rendezvous (or eager) handshake is done and the
/// very next awaited operation is the channel transfer itself. Collective
/// graph capture keys on (tag, src_rank, dst_rank) to identify the step.
struct TransferSite {
  int src_rank = -1;
  int dst_rank = -1;
  int tag = -1;
  std::size_t bytes = 0;
  topo::DeviceId src_device = topo::kInvalidDevice;
  topo::DeviceId dst_device = topo::kInvalidDevice;
};

/// Synchronous observer invoked immediately before every channel transfer
/// (same coroutine frame — no suspension between the tap and the transfer,
/// so a tap-side "pending step" slot cannot be raced by another message).
/// Inline storage: the observer is one controller pointer.
using TransferTap = sim::InlineFn<void(const TransferSite&), 32>;

class Fabric {
 public:
  Fabric(gpusim::GpuRuntime& runtime, gpusim::DataChannel& channel,
         TransportOptions options = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// Create the worker for `rank` (ranks must be created densely from 0).
  Worker& add_worker(int rank, topo::DeviceId device);
  [[nodiscard]] Worker& worker(int rank);
  [[nodiscard]] int worker_count() const {
    return static_cast<int>(workers_.size());
  }

  [[nodiscard]] gpusim::GpuRuntime& runtime() { return *runtime_; }
  [[nodiscard]] gpusim::DataChannel& channel() { return *channel_; }
  [[nodiscard]] const TransportOptions& options() const { return options_; }

  /// Install (or clear, with a default-constructed tap) the transfer
  /// observer. At most one; the caller owns the observed controller's
  /// lifetime and must clear the tap before destroying it.
  void set_transfer_tap(TransferTap tap) { tap_ = std::move(tap); }

  // -- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::uint64_t rendezvous_count() const { return rendezvous_; }
  [[nodiscard]] std::uint64_t eager_count() const { return eager_; }
  /// Send/recv operations aborted by the rendezvous timeout.
  [[nodiscard]] std::uint64_t rendezvous_timeouts() const {
    return rendezvous_timeouts_;
  }
  /// NACK control messages emitted by timed-out rendezvous operations.
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  /// NACKs that arrived after their channel already re-matched (no-ops).
  [[nodiscard]] std::uint64_t nacks_stale() const { return nacks_stale_; }
  /// Distinct wakeup deadlines that got their own engine event.
  [[nodiscard]] std::uint64_t wakeups_scheduled() const {
    return wakeups_scheduled_;
  }
  /// Wakeups absorbed into an already-scheduled same-deadline event.
  [[nodiscard]] std::uint64_t wakeups_coalesced() const {
    return wakeups_coalesced_;
  }

 private:
  friend class Worker;

  /// Same-deadline coalescing slot: every eager delivery, rendezvous
  /// handshake delay, and watchdog deadline that lands on the same absolute
  /// time shares one engine event. Waiters park on the (lazily created)
  /// latch; callbacks queue in `fns`.
  struct Wake {
    std::shared_ptr<sim::Latch> latch;
    util::SmallVec<sim::EventFn, 2> fns;
  };
  Wake& wake_slot(double t);
  /// Suspend until absolute time `t`, sharing the event with every other
  /// waiter on the same deadline.
  [[nodiscard]] sim::Task<void> wake_at(double t);
  /// Invoke `fn` at absolute time `t`, coalesced per distinct deadline.
  void call_at(double t, sim::EventFn fn);

  gpusim::GpuRuntime* runtime_;
  gpusim::DataChannel* channel_;
  TransportOptions options_;
  TransferTap tap_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<double, Wake> wakes_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t rendezvous_ = 0;
  std::uint64_t eager_ = 0;
  std::uint64_t rendezvous_timeouts_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t nacks_stale_ = 0;
  std::uint64_t wakeups_scheduled_ = 0;
  std::uint64_t wakeups_coalesced_ = 0;
};

class Worker {
 public:
  Worker(Fabric& fabric, int rank, topo::DeviceId device)
      : fabric_(&fabric), rank_(rank), device_(device) {}
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] topo::DeviceId device() const { return device_; }

  /// Tagged send to `dst_rank`. Completes when the data is delivered into
  /// the matched receive buffer (synchronous-send semantics; buffered
  /// sends are modeled by spawning this task).
  [[nodiscard]] sim::Task<void> send(int dst_rank, const gpusim::DeviceBuffer& buf,
                                     std::size_t offset, std::size_t bytes,
                                     int tag);

  /// Tagged receive. `src_rank` may be kAnySource and `tag` kAnyTag.
  /// The receive buffer region must be at least `bytes` long; the matched
  /// send must not be longer (MPI truncation is an error).
  [[nodiscard]] sim::Task<void> recv(int src_rank, gpusim::DeviceBuffer& buf,
                                     std::size_t offset, std::size_t bytes,
                                     int tag);

  [[nodiscard]] std::size_t unexpected_count() const {
    return unexpected_.size();
  }
  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }
  /// NACK records currently waiting to fail a future matching operation.
  [[nodiscard]] std::size_t pending_nack_count() const {
    return nacks_.size();
  }

 private:
  friend class Fabric;

  struct SendEntry {
    int src_rank;
    int tag;
    std::size_t bytes;
    const gpusim::DeviceBuffer* buf;
    std::size_t offset;
    topo::DeviceId src_device;
    sim::Latch* done;
    std::uint64_t seq = 0;    ///< unique id for timeout / NACK resolution
    bool* nacked = nullptr;   ///< set before fire() when killed by a NACK
  };
  struct RecvEntry {
    int src_rank;  // kAnySource allowed
    int tag;       // kAnyTag allowed
    std::size_t bytes;
    gpusim::DeviceBuffer* buf;
    std::size_t offset;
    sim::Latch* done;
    std::uint64_t seq = 0;    ///< unique id for timeout / NACK resolution
    bool* nacked = nullptr;   ///< set before fire() when killed by a NACK
  };

  /// Control message making a rendezvous timeout symmetric: when one side
  /// of a channel aborts, the peer's side of the same (src, tag) channel
  /// must observe the same failure. All state for the channel S->R lives at
  /// the receiver-side worker R (both parked sends and parked recvs queue
  /// there), so NACKs are delivered to R regardless of which side died.
  struct Nack {
    int src_rank;        ///< sender rank of the failed channel (concrete)
    int tag;             ///< failed op's tag (concrete)
    std::uint64_t seq;   ///< dead entry's id in this worker's seq space
    bool from_send;      ///< true: a parked send died (fails the recv side);
                         ///< false: a parked recv died (fails future sends)
  };

  /// A successful match on channel (src, tag) advances the high-water mark
  /// and purges NACK records it supersedes: a NACK whose seq is at or below
  /// the mark refers to an already-resolved exchange and must be a no-op.
  void note_matched(int src, int tag, std::uint64_t seq);
  [[nodiscard]] bool nack_is_stale(const Nack& n) const;
  /// Deliver a NACK at this worker: kill a matching parked entry if one
  /// exists, otherwise record it to fail the next matching operation.
  void deliver_nack(Nack n);

  /// Move the payload for a matched (send, recv) pair; runs on whichever
  /// side arrived second.
  [[nodiscard]] sim::Task<void> do_transfer(const SendEntry& send,
                                            const RecvEntry& recv);

  Fabric* fabric_;
  int rank_;
  topo::DeviceId device_;
  std::deque<SendEntry> unexpected_;  // sends awaiting a matching recv
  std::deque<RecvEntry> posted_;      // recvs awaiting a matching send
  std::deque<Nack> nacks_;            // undelivered peer-failure records
  // Highest parked-entry seq completed per concrete (src, tag) channel.
  std::map<std::pair<int, int>, std::uint64_t> matched_hwm_;
  std::uint64_t next_seq_ = 0;        // parked-entry ids (timeouts/NACKs)
};

}  // namespace mpath::transport
