// Optimal message-fraction solver (paper Section 3.2-3.4).
//
// Theorem 1: the split minimizing T = max_i T_i equalizes per-path times.
// With linear terms T_i = theta_i * n * Omega_i + Delta_i, the closed form
// is Eq. 24 (which subsumes Eq. 8 and Eq. 11):
//
//   theta_i = 1/(Omega_i * S) * (1 - Delta_i/n * S + D/n),
//     where S = sum_j 1/Omega_j and D = sum_j Delta_j/Omega_j.
//
// For small n, high-Delta paths get negative fractions: such paths cannot
// help and are excluded (Algorithm 1 allows every path except the direct
// one to be dropped), then the solve repeats on the active set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mpath/model/params.hpp"
#include "mpath/util/small_vec.hpp"

namespace mpath::model {

struct ThetaSolution {
  /// Message fractions per input path; excluded paths have theta == 0.
  std::vector<double> theta;
  /// Predicted transfer time (equalized time of the active paths).
  double predicted_time = 0.0;
  /// Indices of paths that received a positive share.
  std::vector<std::size_t> active;
};

class ThetaSolver {
 public:
  /// Solve for fractions over `paths` for a message of n_bytes. Index 0 is
  /// treated as the direct path and is never excluded. Requires at least
  /// one path and n_bytes > 0.
  [[nodiscard]] static ThetaSolution solve(std::span<const PathTerms> paths,
                                           double n_bytes);

  /// Theorem 1 helper: max_i |T_i - T_j| over active paths, for tests and
  /// the theorem-validation benchmark.
  [[nodiscard]] static double time_spread(std::span<const PathTerms> paths,
                                          std::span<const double> theta,
                                          double n_bytes);

  /// Evaluate T = max_i T_i for an arbitrary (not necessarily optimal)
  /// fraction vector; used by grid-search baselines.
  [[nodiscard]] static double evaluate(std::span<const PathTerms> paths,
                                       std::span<const double> theta,
                                       double n_bytes);
};

// ---------------------------------------------------------------------------
// Joint (K-transfer) planning.
//
// Under concurrent transfers the fluid network arbitrates shared links
// max-min fairly, so a path's effective bandwidth is its max-min share, not
// its solo bandwidth — planning each transfer with Eq. 24 alone makes every
// predicted T_i wrong and the theta splits fight each other. The joint
// solver couples the closed form with a capped max-min water-fill:
//
//   repeat:
//     1. water-fill all active paths of all transfers over the shared links
//        (each path rate-capped at its solo bandwidth 1/Omega_i, each link
//        at its capacity); in-flight transfers participate as fixed flows,
//     2. per transfer, re-run the Eq. 24 equal-time solve with the
//        water-filled effective inverse bandwidths Omega_i' = 1/rate_i,
//     3. drop paths whose theta went non-positive (they free their link
//        shares) and repeat until the active sets stabilize.
//
// With K = 1 and a transfer whose paths do not exceed any shared link (true
// for every shipped topology preset), every rate water-fills to its solo
// cap, Omega' == Omega bit-for-bit, and the result is exactly the
// single-transfer closed form — Eq. 24 is the K=1 special case.
// ---------------------------------------------------------------------------

/// One shared resource (fluid link) in a joint solve.
struct JointLink {
  double capacity_bps = 0.0;
  /// Uncapped flows on this link owned by nobody in the solve (traffic that
  /// bypasses the scheduler); they consume max-min shares but are not
  /// planned or reported.
  double background_flows = 0.0;
};

/// One candidate path of one transfer in a joint solve.
struct JointPath {
  PathTerms terms;  ///< solo-calibrated (Omega, Delta)
  /// Indices into the JointLink array for every link the path occupies
  /// while streaming (both hops of a pipelined staged path). Repeats count
  /// as extra traversals. May be empty (path constrained by its solo
  /// bandwidth only).
  util::SmallVec<std::uint32_t, 4> links;
};

/// A transfer whose split is to be solved. paths[0] is the anchor (direct)
/// path: never excluded, absorbs the closed-form remainder.
struct JointTransfer {
  double n_bytes = 0.0;
  std::span<const JointPath> paths;
};

/// An in-flight path of an already-planned transfer: its split is fixed, but
/// it still consumes max-min shares on the links it occupies.
struct FixedFlow {
  util::SmallVec<std::uint32_t, 4> links;
  double cap_bps = 0.0;  ///< solo path bandwidth (rate never exceeds this)
};

struct JointSolution {
  /// Per input transfer, the equal-time split under contention. theta and
  /// predicted_time use the water-filled effective terms.
  std::vector<ThetaSolution> transfers;
  /// Final water-fill rate (B/s) per (transfer, path); excluded paths get 0.
  std::vector<util::SmallVec<double, 4>> path_rates;
  /// Final water-fill rate per fixed flow, aligned with the input order.
  std::vector<double> fixed_rates;
  int iterations = 0;  ///< water-fill / re-solve rounds until stable
};

class JointThetaSolver {
 public:
  /// Jointly solve K transfers sharing `links`, with `fixed` in-flight
  /// flows as unmovable contention. Requires every transfer to satisfy the
  /// single-transfer preconditions (non-empty paths, positive Omega and
  /// n_bytes) and every link capacity to be positive. Deterministic:
  /// bottleneck ties break on the lowest link index.
  [[nodiscard]] static JointSolution solve(
      std::span<const JointTransfer> transfers,
      std::span<const FixedFlow> fixed, std::span<const JointLink> links);

  /// The capped max-min water-fill alone (exposed for tests and for
  /// departure-time rate refreshes): rates for `flows`, each capped at its
  /// cap_bps, sharing `links` max-min fairly with the links' background
  /// flows. Matches FluidNetwork::reference_rates on cap-free inputs.
  [[nodiscard]] static std::vector<double> maxmin_rates(
      std::span<const FixedFlow> flows, std::span<const JointLink> links);

  /// Batched replay admission check (collective graph chaining): one
  /// water-fill over `flows` — an arriving round's compiled carrying paths
  /// plus every already-live flow — against `links`. `at_cap` is true iff
  /// every flow water-fills to its own cap_bps (within `tolerance`
  /// relative): then no flow is squeezed anywhere, a fresh joint solve of
  /// any of them would apply no omega override, and the compiled solo
  /// configs replay the exact split a fresh admission would produce. One
  /// solve answers the whole round — this is PR 6's same-instant storm
  /// machinery inverted into a yes/no gate.
  struct RoundValidation {
    bool at_cap = false;
    std::vector<double> rates;  ///< water-fill rates, aligned with flows
  };
  [[nodiscard]] static RoundValidation validate_round(
      std::span<const FixedFlow> flows, std::span<const JointLink> links,
      double tolerance = 1e-9);
};

}  // namespace mpath::model
