// Optimal message-fraction solver (paper Section 3.2-3.4).
//
// Theorem 1: the split minimizing T = max_i T_i equalizes per-path times.
// With linear terms T_i = theta_i * n * Omega_i + Delta_i, the closed form
// is Eq. 24 (which subsumes Eq. 8 and Eq. 11):
//
//   theta_i = 1/(Omega_i * S) * (1 - Delta_i/n * S + D/n),
//     where S = sum_j 1/Omega_j and D = sum_j Delta_j/Omega_j.
//
// For small n, high-Delta paths get negative fractions: such paths cannot
// help and are excluded (Algorithm 1 allows every path except the direct
// one to be dropped), then the solve repeats on the active set.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpath/model/params.hpp"

namespace mpath::model {

struct ThetaSolution {
  /// Message fractions per input path; excluded paths have theta == 0.
  std::vector<double> theta;
  /// Predicted transfer time (equalized time of the active paths).
  double predicted_time = 0.0;
  /// Indices of paths that received a positive share.
  std::vector<std::size_t> active;
};

class ThetaSolver {
 public:
  /// Solve for fractions over `paths` for a message of n_bytes. Index 0 is
  /// treated as the direct path and is never excluded. Requires at least
  /// one path and n_bytes > 0.
  [[nodiscard]] static ThetaSolution solve(std::span<const PathTerms> paths,
                                           double n_bytes);

  /// Theorem 1 helper: max_i |T_i - T_j| over active paths, for tests and
  /// the theorem-validation benchmark.
  [[nodiscard]] static double time_spread(std::span<const PathTerms> paths,
                                          std::span<const double> theta,
                                          double n_bytes);

  /// Evaluate T = max_i T_i for an arbitrary (not necessarily optimal)
  /// fraction vector; used by grid-search baselines.
  [[nodiscard]] static double evaluate(std::span<const PathTerms> paths,
                                       std::span<const double> theta,
                                       double n_bytes);
};

}  // namespace mpath::model
