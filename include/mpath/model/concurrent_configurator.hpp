// Sharded, read-mostly concurrent front of Algorithm 1.
//
// PathConfigurator is deliberately single-threaded: its configure() returns
// a reference into the LRU cache, which is what keeps the simulator's hot
// path at zero allocations. Production serving wants the opposite trade:
// many threads resolving configurations concurrently, each getting its own
// copy. ConcurrentConfigurator layers a sharded-mutex LRU cache over the
// pure compute_config() split (PR 5): lookups take one shard mutex for a
// map probe + splice, the Algorithm 1 solve runs outside any lock, and
// every entry is stamped with the CalibrationStore snapshot version it was
// computed under — a publication atomically invalidates stale entries
// everywhere without flushing (the generation check happens on hit).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "mpath/model/calibration_store.hpp"
#include "mpath/model/configurator.hpp"

namespace mpath::model {

/// Aggregated cache counters across all shards (same taxonomy as the
/// serial PathConfigurator's).
struct ConcurrentConfiguratorStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t collisions = 0;     ///< tuple mismatch on an occupied key
  std::uint64_t invalidations = 0;  ///< stale calibration version on hit
  std::uint64_t evictions = 0;      ///< LRU drops past per-shard capacity
};

class ConcurrentConfigurator {
 public:
  /// `registry` (and `calibration`, when given) must outlive the
  /// configurator. `options.cache_capacity` is split evenly across shards
  /// (0 = unbounded); `shards` is rounded up to a power of two.
  explicit ConcurrentConfigurator(const ModelRegistry& registry,
                                  ConfiguratorOptions options = {},
                                  const CalibrationStore* calibration = nullptr,
                                  std::size_t shards = 8);
  ConcurrentConfigurator(const ConcurrentConfigurator&) = delete;
  ConcurrentConfigurator& operator=(const ConcurrentConfigurator&) = delete;

  /// Algorithm 1 with concurrent caching: by-value result, callable from
  /// any thread. Two threads racing on the same cold tuple may both
  /// compute; the last insert wins (both results are identical for one
  /// calibration version, so this is benign duplicated work, not a
  /// correctness hazard).
  [[nodiscard]] TransferConfig configure(topo::DeviceId src,
                                         topo::DeviceId dst,
                                         std::uint64_t bytes,
                                         std::span<const topo::PathPlan> paths);

  [[nodiscard]] ConcurrentConfiguratorStats stats() const;
  [[nodiscard]] std::size_t cache_size() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// The wrapped pure configurator (compute_config / prepare only — its
  /// serial cache is never used here).
  [[nodiscard]] const PathConfigurator& core() const { return core_; }

 private:
  struct Entry {
    TransferConfig config;
    topo::DeviceId src = 0;
    topo::DeviceId dst = 0;
    std::uint64_t bytes = 0;
    std::vector<topo::PathPlan> paths;
    std::uint64_t cal_version = 0;
    std::list<std::uint64_t>::iterator recency;

    [[nodiscard]] bool matches(topo::DeviceId s, topo::DeviceId d,
                               std::uint64_t b,
                               std::span<const topo::PathPlan> p) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> lru;  ///< keys, most-recently-used first
    ConcurrentConfiguratorStats counters;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) {
    // The FNV key's low bits may be masked off by the cache_key_bits test
    // hook, so mix before taking the top bits for shard selection.
    const std::uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
    return *shards_[(mixed >> 32) & (shards_.size() - 1)];
  }

  PathConfigurator core_;
  const CalibrationStore* calibration_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_;  ///< 0 = unbounded
};

}  // namespace mpath::model
