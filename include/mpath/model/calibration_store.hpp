// Versioned per-path calibration snapshots.
//
// The paper's Algorithm 1 runs from offline-fitted Hockney (alpha, beta);
// on a real node those drift (thermals, PCIe renegotiation, neighbour
// traffic). The CalibrationStore closes that gap without perturbing the
// paper-faithful arithmetic: it holds immutable snapshots of per-path
// multiplicative corrections {alpha_scale, beta_scale}, published
// copy-on-write under a writer mutex while readers take an atomic
// reference-counted copy of the current snapshot pointer. A monotonically
// increasing version number travels with every snapshot so configuration
// caches can stamp entries and invalidate them on publication instead of
// being flushed.
//
// A path with no entry in the current snapshot gets *no* correction applied
// — not a multiply by 1.0 — so an empty store is bit-identical to running
// without one (the paper-faithful mode the benches gate on).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>

#include "mpath/topo/paths.hpp"

namespace mpath::model {

/// Multiplicative correction to every hop of one candidate path:
/// alpha' = alpha * alpha_scale, beta' = beta * beta_scale. A beta_scale
/// below 1 models a link delivering less bandwidth than the offline fit.
struct PathCalibration {
  double alpha_scale = 1.0;
  double beta_scale = 1.0;
  std::uint64_t samples = 0;  ///< observations folded into this entry

  [[nodiscard]] bool identity() const {
    return alpha_scale == 1.0 && beta_scale == 1.0;
  }
};

/// Identity of one calibrated path: the (src, dst, plan) tuple the
/// configurator resolves parameters for.
struct PathCalKey {
  topo::DeviceId src = 0;
  topo::DeviceId dst = 0;
  topo::PathKind kind = topo::PathKind::Direct;
  topo::DeviceId stage = topo::kInvalidDevice;

  friend auto operator<=>(const PathCalKey&, const PathCalKey&) = default;

  [[nodiscard]] static PathCalKey of(topo::DeviceId src, topo::DeviceId dst,
                                     const topo::PathPlan& plan) {
    return PathCalKey{src, dst, plan.kind, plan.stage};
  }
};

/// One immutable published calibration state. Never mutated after
/// publication; safe to read from any thread without synchronization.
class CalibrationSnapshot {
 public:
  [[nodiscard]] std::uint64_t version() const { return version_; }
  /// The correction for this path, or nullptr when none was learned (the
  /// caller must then leave the base parameters untouched).
  [[nodiscard]] const PathCalibration* find(topo::DeviceId src,
                                            topo::DeviceId dst,
                                            const topo::PathPlan& plan) const {
    const auto it = entries_.find(PathCalKey::of(src, dst, plan));
    return it != entries_.end() ? &it->second : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<PathCalKey, PathCalibration>& entries() const {
    return entries_;
  }

 private:
  friend class CalibrationStore;
  std::uint64_t version_ = 0;
  std::map<PathCalKey, PathCalibration> entries_;
};

/// Read-mostly store of calibration snapshots. Readers (`snapshot()`,
/// `version()`) take an atomic copy of the current shared snapshot pointer;
/// writers (`publish()`) serialize on a mutex, copy the current entry map,
/// apply their updates and install the copy as version N+1. A snapshot
/// lives exactly as long as the store or an outstanding reader still
/// references it, so a reader holding a snapshot across a publication never
/// races reclamation, and superseded snapshots are reclaimed instead of
/// accumulating for the store's lifetime.
class CalibrationStore {
 public:
  using SnapshotPtr = std::shared_ptr<const CalibrationSnapshot>;

  CalibrationStore() : current_(std::make_shared<CalibrationSnapshot>()) {}
  CalibrationStore(const CalibrationStore&) = delete;
  CalibrationStore& operator=(const CalibrationStore&) = delete;

  /// The current snapshot. The returned pointer keeps it alive even if
  /// newer versions are published (and reclaim older ones) meanwhile.
  [[nodiscard]] SnapshotPtr snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the current snapshot (0 = pristine identity store).
  [[nodiscard]] std::uint64_t version() const {
    return current_.load(std::memory_order_acquire)->version();
  }

  /// Publish one updated entry. Returns the new snapshot's version.
  std::uint64_t publish(const PathCalKey& key, const PathCalibration& cal) {
    const std::pair<PathCalKey, PathCalibration> one{key, cal};
    return publish(std::span<const std::pair<PathCalKey, PathCalibration>>(
        &one, 1));
  }

  /// Publish a batch of updated entries as a single new version (entries
  /// not mentioned carry over from the current snapshot).
  std::uint64_t publish(
      std::span<const std::pair<PathCalKey, PathCalibration>> updates) {
    const std::lock_guard<std::mutex> lock(write_mu_);
    const SnapshotPtr cur = current_.load(std::memory_order_relaxed);
    auto next = std::make_shared<CalibrationSnapshot>();
    next->entries_ = cur->entries_;
    for (const auto& [key, cal] : updates) next->entries_[key] = cal;
    next->version_ = cur->version_ + 1;
    const std::uint64_t version = next->version_;
    current_.store(std::move(next), std::memory_order_release);
    return version;
  }

  /// Snapshots published so far, including the initial identity snapshot.
  /// (Superseded snapshots are freed once the last reader drops them.)
  [[nodiscard]] std::size_t snapshot_count() const {
    return static_cast<std::size_t>(version()) + 1;
  }

 private:
  mutable std::mutex write_mu_;
  std::atomic<SnapshotPtr> current_;
};

}  // namespace mpath::model
