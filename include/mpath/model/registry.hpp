// Per-system store of fitted model parameters (paper Fig. 2a, Steps 1-2):
// Hockney (alpha, beta) for every measured route, per-path-kind staging
// epsilon, and the host-side issue overhead used for sequential-initiation
// accounting (Algorithm 1, line 18). Persisted as CSV so extraction happens
// "once per system topology".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>

#include "mpath/model/params.hpp"
#include "mpath/topo/paths.hpp"
#include "mpath/topo/topology.hpp"

namespace mpath::model {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  explicit ModelRegistry(std::string system_name)
      : system_name_(std::move(system_name)) {}

  [[nodiscard]] const std::string& system_name() const {
    return system_name_;
  }

  // -- route (hop) parameters ------------------------------------------------
  void set_route_params(topo::DeviceId from, topo::DeviceId to,
                        LinkParams params);
  [[nodiscard]] bool has_route_params(topo::DeviceId from,
                                      topo::DeviceId to) const;
  /// Throws std::out_of_range if the route was never measured.
  [[nodiscard]] const LinkParams& route_params(topo::DeviceId from,
                                               topo::DeviceId to) const;
  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

  // -- staging overheads -------------------------------------------------------
  void set_epsilon(topo::PathKind kind, double epsilon_s);
  [[nodiscard]] double epsilon(topo::PathKind kind) const;

  /// Host-side cost of initiating one path's transfers, accumulated into
  /// Delta of later-scheduled paths.
  void set_issue_alpha(double seconds) { issue_alpha_ = seconds; }
  [[nodiscard]] double issue_alpha() const { return issue_alpha_; }

  /// Per-message protocol prefix (rendezvous handshake, completion ack)
  /// paid once per transfer before any path moves data; added to every
  /// path's Delta (shifts T without changing the optimal split).
  void set_protocol_alpha(double seconds) { protocol_alpha_ = seconds; }
  [[nodiscard]] double protocol_alpha() const { return protocol_alpha_; }

  // -- contention-aware path factors (extension; paper future work) ----------
  /// Scale factor (>= 1) applied to the effective inverse bandwidth of one
  /// candidate path. Set by contention-aware calibration: the ratio of the
  /// path's measured end-to-end pipelined slope to the slope composed from
  /// its independently measured hops. A factor near 1 means the hops are
  /// independent; > 1 means they share a resource (e.g. a host memory
  /// channel traversed by both hops) that the Section 3.3/3.4 composition
  /// cannot see.
  void set_contention_factor(topo::DeviceId src, topo::DeviceId dst,
                             const topo::PathPlan& plan, double factor);
  [[nodiscard]] std::optional<double> contention_factor(
      topo::DeviceId src, topo::DeviceId dst,
      const topo::PathPlan& plan) const;
  [[nodiscard]] std::size_t contention_factor_count() const {
    return contention_factors_.size();
  }

  // -- assembly ---------------------------------------------------------------
  /// Assemble the model parameters of one candidate path from the stored
  /// route measurements (the get_link calls of Algorithm 1, lines 7-15).
  [[nodiscard]] PathParams path_params(topo::DeviceId src, topo::DeviceId dst,
                                       const topo::PathPlan& plan) const;

  // -- persistence --------------------------------------------------------------
  void save_csv(const std::string& path) const;
  [[nodiscard]] static ModelRegistry load_csv(const std::string& path);

 private:
  std::string system_name_;
  std::map<std::pair<topo::DeviceId, topo::DeviceId>, LinkParams> routes_;
  std::map<topo::PathKind, double> epsilons_;
  using OverrideKey = std::tuple<topo::DeviceId, topo::DeviceId, int,
                                 topo::DeviceId>;
  std::map<OverrideKey, double> contention_factors_;
  double issue_alpha_ = 0.0;
  double protocol_alpha_ = 0.0;
};

/// Least-squares Hockney fit from (message size, measured time) samples —
/// the per-link parameter extraction of Fig. 2a Step 1.
class HockneyFitter {
 public:
  void add_sample(double n_bytes, double seconds);
  [[nodiscard]] std::size_t sample_count() const { return ns_.size(); }
  /// Fits T = alpha + n/beta; alpha clamped to >= 0. Throws
  /// std::invalid_argument with fewer than two samples.
  [[nodiscard]] LinkParams fit() const;

 private:
  std::vector<double> ns_;
  std::vector<double> ts_;
};

}  // namespace mpath::model
