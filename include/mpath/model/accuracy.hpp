// Prediction-accuracy and policy-regret metrics for the mispredict hunter
// (benchcore/hunter.hpp) and the corpus replay tests.
//
// Two orthogonal failure modes of the model are measured:
//   * prediction error — the model's predicted bandwidth for the CHOSEN
//     configuration deviates from what the simulated fabric delivers
//     (the paper's Section 5.2 "percentage deviation" metric);
//   * policy regret — the configuration the model picked under its policy
//     delivers less bandwidth than the best policy in the enumerated set
//     would have (the model was confidently wrong about the ranking).
// A scenario can exhibit either alone: a uniformly-biased model has error
// but zero regret; a model wrong only about path ORDER has regret with
// small per-config error.
#pragma once

#include <string_view>

namespace mpath::model {

/// |predicted - observed| / observed. Zero when observed <= 0 (a transfer
/// that delivered nothing is a simulation failure, not a model error —
/// callers surface those separately).
[[nodiscard]] double prediction_error(double predicted, double observed);

/// (best - chosen) / best, clamped to [0, 1]. Zero when best <= 0 or the
/// chosen policy matched (or beat) the best enumerated one.
[[nodiscard]] double policy_regret(double chosen_bw, double best_bw);

/// Flagging thresholds for the hunter. Defaults are deliberately loose
/// relative to the paper's <6% headline claim: fuzzed topologies are far
/// outside the calibrated envelope and small structural error is expected;
/// the hunter is after gross mispredictions.
struct AccuracyThresholds {
  double max_error = 0.25;
  double max_regret = 0.20;
};

enum class MispredictKind {
  kNone,    ///< both metrics under threshold
  kError,   ///< prediction error exceeded
  kRegret,  ///< policy regret exceeded
  kBoth,
};

[[nodiscard]] MispredictKind classify(double error, double regret,
                                      const AccuracyThresholds& thresholds);

/// True when `kind` covers every failure mode of `wanted` (kBoth covers
/// kError and kRegret; everything covers kNone). The minimizer uses this:
/// a shrunken scenario must still reproduce the ORIGINAL flag kind, not
/// merely some flag.
[[nodiscard]] bool covers(MispredictKind kind, MispredictKind wanted);

[[nodiscard]] std::string_view to_string(MispredictKind kind);
[[nodiscard]] MispredictKind mispredict_kind_from_string(std::string_view s);

}  // namespace mpath::model
