// Model parameters and per-path derived terms.
//
// Implements the notation of the paper's Table 1 and the term derivations
// of Sections 3.1-3.4:
//   * LinkParams         — Hockney (alpha, beta) of one link      (Eq. 1)
//   * PathParams         — a candidate path: one or two links + the
//                          staging synchronization overhead epsilon (Eq. 2)
//   * PathTerms          — the (Omega_i, Delta_i) pair such that
//                          T_i = theta_i * n * Omega_i + Delta_i   (Eq. 21)
// Three term derivations are provided:
//   * direct             — Omega = 1/beta,        Delta = alpha
//   * staged unpipelined — Omega = 1/b + 1/b',    Delta = a + a' + eps (S3.3)
//   * staged pipelined   — the phi-linearized Eq. 22 of Section 3.4
#pragma once

#include <optional>
#include <stdexcept>

#include "mpath/topo/paths.hpp"

namespace mpath::model {

/// Hockney parameters of one link: T(n) = alpha + n / beta.
struct LinkParams {
  double alpha = 0.0;  ///< startup latency, seconds
  double beta = 1.0;   ///< asymptotic bandwidth, bytes/second

  [[nodiscard]] double time(double n_bytes) const {
    return alpha + n_bytes / beta;
  }
};

/// A candidate path in model terms (paper Eq. 2). Direct paths have no
/// second link and zero epsilon.
struct PathParams {
  topo::PathPlan plan;
  LinkParams first;                  ///< src -> stage (or src -> dst)
  std::optional<LinkParams> second;  ///< stage -> dst, staged paths only
  double epsilon = 0.0;              ///< sync overhead at the staging device

  [[nodiscard]] bool staged() const { return second.has_value(); }
};

/// Linear per-path cost terms: T_i = theta_i * n * Omega_i + Delta_i.
struct PathTerms {
  double omega = 0.0;  ///< effective inverse bandwidth, s/byte
  double delta = 0.0;  ///< effective fixed overhead, s

  [[nodiscard]] double time(double theta, double n_bytes) const {
    return theta * n_bytes * omega + delta;
  }
};

/// Topology constants phi for the chunk-count linearization (paper Eq. 19).
/// phi1 applies when the first link is the bottleneck (beta < beta'),
/// phi2 when the second is.
struct PhiConstants {
  double phi1 = 1.0;
  double phi2 = 1.0;
};

/// Direct path:      Omega = 1/beta, Delta = alpha (Eq. 8 special case).
/// Staged (no pipe): Omega = 1/beta + 1/beta', Delta = alpha+alpha'+epsilon
/// (Section 3.3).
[[nodiscard]] PathTerms terms_unpipelined(const PathParams& p);

/// Staged with pipelining, phi-linearized (Eq. 22). For direct paths this
/// falls back to terms_unpipelined. Throws std::invalid_argument if phi
/// constants are non-positive.
[[nodiscard]] PathTerms terms_pipelined(const PathParams& p,
                                        const PhiConstants& phi);

/// Exact (non-linearized) pipelined path time with the optimal real-valued
/// chunk count substituted (Eqs. 17/18); used to quantify the phi
/// linearization error in the ablation benchmarks.
[[nodiscard]] double exact_pipelined_time(const PathParams& p, double theta,
                                          double n_bytes);

}  // namespace mpath::model
