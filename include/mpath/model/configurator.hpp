// Algorithm 1 of the paper: populate_path_config.
//
// Given (src, dst, message size, candidate paths), compute the optimal
// multi-path configuration — per-path byte shares and chunk counts — from
// the fitted model parameters, with a configuration cache in front.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "mpath/model/calibration_store.hpp"
#include "mpath/model/chunking.hpp"
#include "mpath/model/registry.hpp"
#include "mpath/model/theta.hpp"

namespace mpath::model {

struct ConfiguratorOptions {
  /// Model pipelined staged transfers (Section 3.4). When false, staged
  /// paths are modeled as two sequential transfers (Section 3.3) and always
  /// use one chunk.
  bool pipelining = true;
  /// How chunk counts are derived for staged paths.
  ChunkMode chunk_mode = ChunkMode::LinearPhi;
  int max_chunks = 64;
  /// Accumulate host-side issue latency of earlier paths into Delta of
  /// later paths (Algorithm 1, line 18).
  bool sequential_initiation = true;
  /// The paper's topology constants have the form c*f(n). When true
  /// (default), phi is refit at each request's message size — the tangent
  /// construction phi(n) = 1/sqrt(X(theta_hint, n)), which keeps Eq. 19
  /// exact at the operating point while remaining linear in theta. When
  /// false, one global phi is least-squares fit over
  /// [phi_fit_n_min, phi_fit_n_max] (ablation: substantially less accurate).
  bool phi_per_message = true;
  /// Operating range used to fit global phi constants (Eq. 19) when
  /// phi_per_message is false.
  double phi_fit_n_min = 2.0 * (1 << 20);
  double phi_fit_n_max = 512.0 * (1 << 20);
  /// Contention factors are measured in the large-message regime; below
  /// this size the per-hop composition is more faithful, so factors are
  /// ignored.
  std::uint64_t omega_override_min_bytes = 16u << 20;
  bool cache_enabled = true;
  /// Maximum number of cached configurations; least-recently-used entries
  /// are evicted past this. 0 (default) means unbounded — the legacy
  /// behaviour, fine for steady workloads but a slow leak for long-running
  /// processes with high request diversity (fault-driven re-plans).
  std::size_t cache_capacity = 0;
  /// Width of the cache key in bits (1..64). Test hook: narrowing it forces
  /// hash collisions between distinct request tuples, exercising the
  /// collision-detection path without hunting for real 64-bit FNV
  /// collisions. Production code leaves this at 64.
  int cache_key_bits = 64;
};

/// The model-side half of Algorithm 1 (lines 7-21): per-path link
/// parameters, topology constants, and fully adjusted (Omega, Delta) terms
/// for one transfer request, before any theta solve. Exposed so the joint
/// scheduler can run its own contention-aware solve over these terms and
/// still share the config-building code with the solo path.
struct PreparedTransfer {
  std::vector<PathParams> params;
  std::vector<PhiConstants> phis;  ///< empty slots when not pipelining
  std::vector<PathTerms> terms;
};

/// One path's slice of the transfer.
struct PathShare {
  topo::PathPlan plan;
  double theta = 0.0;          ///< fraction of the message
  std::uint64_t bytes = 0;     ///< rounded byte share
  int chunks = 1;              ///< pipeline chunk count k_i
  double predicted_time = 0.0; ///< model time for this share
  PathTerms terms;             ///< (Omega, Delta) used for this path
};

struct TransferConfig {
  std::vector<PathShare> paths;  ///< same order as the input candidates
  std::uint64_t total_bytes = 0;
  double predicted_time = 0.0;   ///< max over active paths
  /// Predicted aggregate bandwidth n / T, bytes per second.
  [[nodiscard]] double predicted_bandwidth() const {
    return predicted_time > 0.0
               ? static_cast<double>(total_bytes) / predicted_time
               : 0.0;
  }
};

class PathConfigurator {
 public:
  /// `registry` must hold parameters for every hop of every candidate path
  /// passed to configure(); both references must outlive the configurator.
  PathConfigurator(const ModelRegistry& registry,
                   ConfiguratorOptions options = {});

  /// Attach (or detach, with nullptr) a calibration store. prepare() then
  /// applies the current snapshot's per-path {alpha_scale, beta_scale} on
  /// top of the registry parameters; paths with no learned entry are left
  /// untouched, so an empty store is bit-identical to running without one.
  /// Cached configs are stamped with the snapshot version they were
  /// computed under and recomputed (not trusted) after a publication.
  /// The store must outlive the configurator.
  void set_calibration(const CalibrationStore* store) { calibration_ = store; }
  [[nodiscard]] const CalibrationStore* calibration() const {
    return calibration_;
  }

  /// Attach (or detach, with nullptr) the topology the candidate paths are
  /// routed over. prepare() then derates paths whose hop routes share a
  /// fluid edge with another candidate: per-path composition alone treats
  /// each candidate's bottleneck as private, but when e.g. a transit-routed
  /// direct path and a staged copy both cross the same link of a parallel
  /// duplicate pair, max-min arbitration splits that link between them.
  /// Without a topology (default) the composition is unchanged — the legacy
  /// per-path model. The topology must outlive the configurator.
  void set_topology(const topo::Topology* topo) { topology_ = topo; }
  [[nodiscard]] const topo::Topology* topology() const { return topology_; }

  /// Algorithm 1: returns the cached or freshly computed optimal
  /// configuration. `paths` must be non-empty with the direct path first.
  [[nodiscard]] const TransferConfig& configure(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths);

  /// Like configure(), but over an arbitrary non-empty path subset: the
  /// first candidate plays the anchor role (absorbs the rounding remainder
  /// and is never excluded by the theta solver) regardless of its kind.
  /// Used by the recovery re-planner when the direct path itself is dead
  /// and the remainder must be re-split over the surviving paths.
  [[nodiscard]] const TransferConfig& configure_over(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths);

  /// Pure read path: compute the optimal configuration WITHOUT touching
  /// the cache, LRU list, or hit counters. This is the snapshot-shareable
  /// entry point for parallel sweeps — many threads may call it
  /// concurrently on one const PathConfigurator over an immutable
  /// ModelRegistry, and it returns bit-identical results to configure()
  /// on a cold cache (same arithmetic, same order).
  [[nodiscard]] TransferConfig compute_config(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths) const {
    return compute(src, dst, bytes, paths);
  }

  /// Algorithm 1 lines 7-21 only: resolve parameters and adjusted terms,
  /// no theta solve. Pure (cache untouched).
  [[nodiscard]] PreparedTransfer prepare(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths) const;

  /// Algorithm 1 lines 22-29 from an externally supplied theta solution
  /// (e.g. the joint scheduler's contention-aware solve): integer byte
  /// shares with the remainder on paths[0], chunk counts, and per-path
  /// predicted times from `prepared.terms`. Pure (cache untouched).
  /// compute_config(...) == config_from_theta(prepare(...), solve(...)).
  [[nodiscard]] TransferConfig config_from_theta(
      const PreparedTransfer& prepared, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths, const ThetaSolution& sol) const;

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }
  /// Distinct request tuples that hashed onto an occupied key. Each one
  /// recomputes and replaces the entry instead of returning the colliding
  /// config.
  [[nodiscard]] std::uint64_t cache_collisions() const {
    return cache_collisions_;
  }
  /// Entries dropped by the LRU bound (always 0 with cache_capacity == 0).
  [[nodiscard]] std::uint64_t cache_evictions() const {
    return cache_evictions_;
  }
  /// Cached entries that matched their tuple but were computed under an
  /// older calibration snapshot; each recomputes under the current one.
  [[nodiscard]] std::uint64_t cache_invalidations() const {
    return cache_invalidations_;
  }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  void clear_cache() {
    cache_.clear();
    lru_.clear();
  }

  [[nodiscard]] const ConfiguratorOptions& options() const { return options_; }

  /// FNV-1a bucket address of a request tuple (distinct tuples can collide;
  /// callers must verify the full tuple on lookup). Public so the sharded
  /// ConcurrentConfigurator shares the exact keying — including the
  /// cache_key_bits collision test hook — with the serial cache.
  [[nodiscard]] std::uint64_t cache_key(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths) const;

 private:
  [[nodiscard]] TransferConfig compute(
      topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
      std::span<const topo::PathPlan> paths) const;

  struct CacheEntry {
    TransferConfig config;
    /// The full request tuple the entry was computed for. A hash collision
    /// between distinct tuples must miss, not alias: the key alone is not
    /// proof of identity.
    topo::DeviceId src = 0;
    topo::DeviceId dst = 0;
    std::uint64_t bytes = 0;
    std::vector<topo::PathPlan> paths;
    /// Calibration snapshot version the config was computed under. A
    /// version bump makes the entry stale: the stored split would reflect
    /// superseded alpha/beta.
    std::uint64_t cal_version = 0;
    /// Position in lru_ (most-recent at the front).
    std::list<std::uint64_t>::iterator recency;

    [[nodiscard]] bool matches(
        topo::DeviceId s, topo::DeviceId d, std::uint64_t b,
        std::span<const topo::PathPlan> p) const {
      return src == s && dst == d && bytes == b &&
             std::equal(paths.begin(), paths.end(), p.begin(), p.end());
    }
  };

  /// Shared-edge bandwidth derates for one request's candidate set: 1.0
  /// for paths whose hop routes touch no edge used by another candidate,
  /// else bottleneck(cap_e) / bottleneck(cap_e / users_e) >= 1.
  [[nodiscard]] std::vector<double> shared_edge_derates(
      topo::DeviceId src, topo::DeviceId dst,
      std::span<const topo::PathPlan> paths) const;

  const ModelRegistry* registry_;
  ConfiguratorOptions options_;
  const CalibrationStore* calibration_ = nullptr;
  const topo::Topology* topology_ = nullptr;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::list<std::uint64_t> lru_;  ///< keys, most-recently-used first
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::uint64_t cache_collisions_ = 0;
  std::uint64_t cache_invalidations_ = 0;
};

}  // namespace mpath::model
