// Chunk-count optimization for pipelined staged transfers (Section 3.4).
//
// The closed-form optimum (Eqs. 14/15) is a square root:
//   Case 1 (beta < beta'):  k* = sqrt(theta*n / (alpha * beta'))
//   Case 2 (beta >= beta'): k* = sqrt(theta*n / (beta * (eps + alpha')))
//
// Because sqrt makes the per-path time nonlinear in theta (Eqs. 17/18), the
// paper approximates k with a linear form (Eq. 19) using topology-specific
// constants phi, restoring a closed-form theta. PhiFitter computes those
// constants per path by least squares over the system's operating range —
// the "details omitted for brevity" step of the paper, made concrete.
#pragma once

#include "mpath/model/params.hpp"

namespace mpath::model {

enum class ChunkMode {
  ExactSqrt,  ///< Eqs. 14/15 (nonlinear; theta solved with linear terms)
  LinearPhi,  ///< Eq. 19 (paper's runtime scheme)
};

class ChunkOptimizer {
 public:
  /// Optimal real-valued chunk count per Eqs. 14/15. Returns 1 for direct
  /// paths or degenerate parameters.
  [[nodiscard]] static double exact_chunks(const PathParams& p, double theta,
                                           double n_bytes);

  /// Linearized chunk count per Eq. 19: k = phi * X with X the argument of
  /// the exact square root.
  [[nodiscard]] static double linear_chunks(const PathParams& p,
                                            const PhiConstants& phi,
                                            double theta, double n_bytes);

  /// Round to an integer chunk count in [1, max_chunks].
  [[nodiscard]] static int clamp_chunks(double k, int max_chunks);
};

class PhiFitter {
 public:
  /// Least-squares constant phi minimizing the L2 error of phi*x ~ sqrt(x)
  /// over x in [x_min, x_max]:
  ///   phi = integral(x^1.5) / integral(x^2)
  ///       = (3/2.5) * (b^2.5 - a^2.5) / (b^3 - a^3).
  /// Degenerate ranges fall back to the tangent constant 1/sqrt(x_mid).
  [[nodiscard]] static double fit_over_range(double x_min, double x_max);

  /// Fit (phi1, phi2) for one staged path over message sizes
  /// [n_min, n_max], assuming the path receives about `theta_hint` of the
  /// message. Direct paths get {1, 1}.
  [[nodiscard]] static PhiConstants fit_for_path(const PathParams& p,
                                                 double n_min, double n_max,
                                                 double theta_hint);
};

}  // namespace mpath::model
