// Online alpha/beta recalibration from observed transfer times.
//
// The feedback half of the learned-link-health loop (Bienz/Gropp-style
// measured-vs-modeled refinement): every completed transfer contributes
// one observation ratio r = actual / predicted per active path. The ratios
// are folded into a per-path EWMA (gain weighted by the path's theta share
// — a path that carried 5% of the message says little about its own
// bandwidth); when a path's smoothed ratio drifts past a threshold, the
// correction is attributed between the latency and bandwidth terms by the
// path's modeled time composition w = theta*n*Omega / (theta*n*Omega +
// Delta), clamped to guard rails against the *base* model, and published
// to the CalibrationStore as a new snapshot. Downstream, configurators
// stamped with the old version recompute on their next lookup.
//
// Observation policy: callers should only feed transfers that completed
// without watchdog timeouts — a severed path's stall is a fault (the
// PathHealthManager's job), not parameter drift, and folding it in would
// slam the guard rails for no benefit.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "mpath/model/calibration_store.hpp"
#include "mpath/model/configurator.hpp"

namespace mpath::model {

struct RecalibratorOptions {
  /// EWMA gain per unit theta: a path carrying the whole message moves its
  /// smoothed ratio by `gain` of the residual per observation.
  double gain = 0.25;
  /// Publish once |smoothed ratio - 1| exceeds this (and min_samples met).
  double drift_threshold = 0.05;
  /// Observations required on a path before its first publication.
  int min_samples = 3;
  /// Guard rails: cumulative scales are clamped into
  /// [min_scale, max_scale] relative to the base (registry) parameters.
  double min_scale = 0.25;
  double max_scale = 4.0;
};

struct RecalibratorStats {
  std::uint64_t observations = 0;  ///< transfers folded in
  std::uint64_t publications = 0;  ///< snapshots published
  std::uint64_t clamped = 0;       ///< scale updates limited by guard rails
};

class Recalibrator {
 public:
  /// The store must outlive the recalibrator.
  explicit Recalibrator(CalibrationStore& store,
                        RecalibratorOptions options = {});
  Recalibrator(const Recalibrator&) = delete;
  Recalibrator& operator=(const Recalibrator&) = delete;

  /// Fold one completed transfer in: `config` is the plan it ran under
  /// (per-path theta, terms and predicted times), `actual_s` its measured
  /// duration. Publishes a new calibration snapshot when any path's drift
  /// crosses the threshold. Thread-safe.
  void observe(topo::DeviceId src, topo::DeviceId dst,
               const TransferConfig& config, double actual_s);

  [[nodiscard]] RecalibratorStats stats() const;
  [[nodiscard]] const RecalibratorOptions& options() const {
    return options_;
  }

 private:
  struct Ewma {
    double ratio = 1.0;  ///< smoothed actual/predicted
    int samples = 0;     ///< observations since the last publication
  };

  CalibrationStore* store_;
  RecalibratorOptions options_;
  mutable std::mutex mu_;
  std::map<PathCalKey, Ewma> ewma_;
  RecalibratorStats stats_;
};

}  // namespace mpath::model
