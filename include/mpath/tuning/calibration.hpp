// Model parameter extraction (paper Fig. 2a, Step 1): run per-route
// microbenchmarks on the system, fit Hockney (alpha, beta) per hop, and
// measure the staging synchronization overhead epsilon. Done once per
// system topology; the result persists via ModelRegistry::save_csv.
//
// Two flavors:
//   * calibrate()             — measurement-based, as on real hardware: the
//                               registry inherits the microbenchmark's
//                               noise and protocol costs, so the model's
//                               predictions carry realistic error.
//   * registry_from_topology() — analytic shortcut from ground-truth link
//                               specs (useful for tests and ablations that
//                               need a noise-free model).
#pragma once

#include <cstdint>
#include <vector>

#include "mpath/model/registry.hpp"
#include "mpath/topo/system.hpp"

namespace mpath::tuning {

struct CalibrationOptions {
  /// Message sizes sampled per route for the Hockney fit.
  std::vector<std::size_t> sizes = {1u << 20,  4u << 20,  16u << 20,
                                    64u << 20, 256u << 20};
  int iterations = 3;       ///< timed repetitions per size (median taken)
  std::uint64_t seed = 42;  ///< jitter seed for the calibration runs
  /// Extension beyond the paper (its stated future work: contention-aware
  /// models). When true, every staged candidate path between the first two
  /// GPUs is additionally measured END TO END with both hops pipelined
  /// concurrently, and its effective inverse bandwidth is stored as an
  /// omega override. This captures intra-path shared-resource contention
  /// (a host memory channel traversed by both hops) that the per-hop
  /// Hockney composition of Section 3.3/3.4 misses — the error source the
  /// paper's Observation 3 describes.
  bool contention_aware = false;
};

/// Measure alpha/beta for every GPU-GPU, GPU-host and host-GPU route of
/// `system` on a private simulation, measure epsilon from an event
/// ping-pong microbenchmark, and return the populated registry.
[[nodiscard]] model::ModelRegistry calibrate(const topo::System& system,
                                             const CalibrationOptions& options = {});

/// Analytic registry straight from topology ground truth (no measurement
/// noise): beta = bottleneck route capacity, alpha = route latency plus the
/// per-op dispatch cost, epsilon from the configured sync costs.
[[nodiscard]] model::ModelRegistry registry_from_topology(
    const topo::System& system);

}  // namespace mpath::tuning
