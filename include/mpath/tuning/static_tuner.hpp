// Static path distribution by exhaustive offline search — the baseline the
// paper compares against ("chosen statically (offline), where the
// distribution strategy is extracted by exhaustive search, similar to
// [35]"). For one message size, every fraction composition on a grid and
// every chunk count in a grid is actually executed on a fresh simulation,
// and the best-measuring plan wins. This is exactly the cost the paper's
// analytical model exists to avoid.
#pragma once

#include <string>
#include <vector>

#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/system.hpp"

namespace mpath::tuning {

enum class TuneMetric { Unidirectional, Bidirectional };

struct StaticTunerOptions {
  /// Fraction grid granularity (1/8 = 12.5% steps).
  double fraction_step = 0.125;
  /// Chunk counts tried for the staged paths (shared across them).
  std::vector<int> chunk_grid = {1, 2, 4, 8, 16, 32};
  TuneMetric metric = TuneMetric::Unidirectional;
  int window = 1;
  int iterations = 3;
  int warmup = 1;
  std::uint64_t seed = 7;
  /// When non-empty, tuning results are cached as CSV files under this
  /// directory and reused on repeat calls.
  std::string cache_dir;
};

struct StaticTuneResult {
  pipeline::StaticPlan plan;
  double bandwidth_bps = 0.0;  ///< best measured bandwidth
  int evaluated = 0;           ///< candidate configurations simulated
  bool from_cache = false;
};

class StaticTuner {
 public:
  StaticTuner(topo::System system, topo::PathPolicy policy,
              StaticTunerOptions options = {});

  /// Exhaustively search the (theta grid x chunk grid) space for messages
  /// of `bytes` between GPUs src and dst (default: first two GPUs).
  [[nodiscard]] StaticTuneResult tune(std::size_t bytes);

  [[nodiscard]] const topo::PathPolicy& policy() const { return policy_; }

 private:
  [[nodiscard]] double measure(const pipeline::StaticPlan& plan,
                               std::size_t bytes) const;
  [[nodiscard]] std::string cache_path(std::size_t bytes) const;
  [[nodiscard]] bool load_cached(std::size_t bytes, StaticTuneResult& out) const;
  void store_cached(std::size_t bytes, const StaticTuneResult& result) const;

  topo::System system_;
  topo::PathPolicy policy_;
  StaticTunerOptions options_;
  std::vector<topo::PathPlan> paths_;
};

}  // namespace mpath::tuning
