// Simulated device memory. Buffers carry real payload bytes so that every
// layer above (pipeline engine, transport, collectives) can be verified for
// data integrity, not just timing: a multi-path chunked transfer must
// deliver exactly the source bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mpath/topo/topology.hpp"

namespace mpath::gpusim {

using BufferId = std::uint64_t;

/// Whether a buffer carries real bytes. Benchmarks move hundreds of MB per
/// simulated transfer; materializing (and copying) that payload costs real
/// memory bandwidth without affecting simulated timing, so they use
/// Simulated buffers. Correctness tests use Materialized (the default).
enum class Payload { Materialized, Simulated };

class DeviceBuffer {
 public:
  DeviceBuffer(topo::DeviceId device, std::size_t size,
               Payload payload = Payload::Materialized);

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&&) noexcept = default;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept = default;

  [[nodiscard]] BufferId id() const { return id_; }
  [[nodiscard]] topo::DeviceId device() const { return device_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool materialized() const { return !bytes_.empty() || size_ == 0; }

  /// Bounds check without touching storage (valid for Simulated buffers).
  void check_region(std::size_t offset, std::size_t len) const;

  /// Byte access; throws std::logic_error on Simulated buffers.
  [[nodiscard]] std::span<std::byte> bytes();
  [[nodiscard]] std::span<const std::byte> bytes() const;
  [[nodiscard]] std::span<std::byte> region(std::size_t offset,
                                            std::size_t len);
  [[nodiscard]] std::span<const std::byte> region(std::size_t offset,
                                                  std::size_t len) const;

  /// Fill with a deterministic pattern derived from `seed` (test/bench
  /// aid); no-op on Simulated buffers.
  void fill_pattern(std::uint64_t seed);
  /// Byte-wise equality of the full payload; throws std::logic_error if
  /// either buffer is Simulated (a simulated payload has no content to
  /// compare — the check would be meaningless).
  [[nodiscard]] bool same_content(const DeviceBuffer& other) const;

  /// Typed views for collective reductions (size must divide evenly);
  /// throws std::logic_error on Simulated buffers.
  template <typename T>
  [[nodiscard]] std::span<T> as() {
    return {reinterpret_cast<T*>(bytes().data()), size_ / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> as() const {
    return {reinterpret_cast<const T*>(bytes().data()), size_ / sizeof(T)};
  }

 private:
  BufferId id_;
  topo::DeviceId device_;
  std::size_t size_;
  std::vector<std::byte> bytes_;  // empty for Simulated buffers
};

}  // namespace mpath::gpusim
