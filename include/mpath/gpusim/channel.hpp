// Abstract bulk-data channel: the seam between the transport layer (which
// decides *when* to move bytes) and the path engines (which decide *how*).
// The UCX cuda_ipc module of the paper corresponds to a DataChannel
// implementation; the model-driven multi-path engine is another.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

#include "mpath/gpusim/buffer.hpp"
#include "mpath/sim/task.hpp"

namespace mpath::gpusim {

/// A transfer that could not be completed (all paths dead, retries
/// exhausted, rendezvous timed out). Carries partial-progress accounting so
/// callers can distinguish "nothing moved" from "died at 90%".
class TransferError : public std::runtime_error {
 public:
  struct Info {
    std::string detail;  ///< failing path / stage description
    std::size_t bytes_requested = 0;
    std::size_t bytes_delivered = 0;  ///< bytes visible at the destination
    double elapsed_s = 0.0;           ///< sim time from issue to failure
    int retries = 0;                  ///< re-plan / retry attempts made
  };

  TransferError(const std::string& what, Info info)
      : std::runtime_error(what), info_(std::move(info)) {}

  [[nodiscard]] const Info& info() const { return info_; }

 private:
  Info info_;
};

class DataChannel {
 public:
  virtual ~DataChannel() = default;

  /// Move `bytes` from src[src_offset..] to dst[dst_offset..]. Completes
  /// when the data is fully visible at the destination. Implementations
  /// must be safe under concurrent transfers (windowed sends, collectives).
  [[nodiscard]] virtual sim::Task<void> transfer(DeviceBuffer& dst,
                                                 std::size_t dst_offset,
                                                 const DeviceBuffer& src,
                                                 std::size_t src_offset,
                                                 std::size_t bytes) = 0;

  /// Short human-readable name for benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mpath::gpusim
