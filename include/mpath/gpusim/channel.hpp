// Abstract bulk-data channel: the seam between the transport layer (which
// decides *when* to move bytes) and the path engines (which decide *how*).
// The UCX cuda_ipc module of the paper corresponds to a DataChannel
// implementation; the model-driven multi-path engine is another.
#pragma once

#include <cstddef>
#include <string>

#include "mpath/gpusim/buffer.hpp"
#include "mpath/sim/task.hpp"

namespace mpath::gpusim {

class DataChannel {
 public:
  virtual ~DataChannel() = default;

  /// Move `bytes` from src[src_offset..] to dst[dst_offset..]. Completes
  /// when the data is fully visible at the destination. Implementations
  /// must be safe under concurrent transfers (windowed sends, collectives).
  [[nodiscard]] virtual sim::Task<void> transfer(DeviceBuffer& dst,
                                                 std::size_t dst_offset,
                                                 const DeviceBuffer& src,
                                                 std::size_t src_offset,
                                                 std::size_t bytes) = 0;

  /// Short human-readable name for benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mpath::gpusim
