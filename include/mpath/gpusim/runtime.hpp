// CUDA-like asynchronous runtime over the discrete-event simulator.
//
// Semantics mirror the subset of CUDA the UCX cuda_ipc path relies on:
//   * streams execute enqueued operations in order,
//   * events capture a point in a stream; other streams can wait on them,
//   * async copies move bytes between device buffers along the topology
//     route, sharing links with all concurrent traffic (fluid model),
//   * opening a peer buffer for IPC pays a one-time cost per
//     (opener device, buffer) pair, amortized by a handle cache —
//     UCX's cuda_ipc registration cache.
//
// Enqueue calls are non-blocking (they return immediately at the current
// simulated instant); host-side issue overhead is modeled by the callers
// (pipeline engine) so that sequential path initiation shows up exactly
// where the paper's Algorithm 1 accounts for it (line 18).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "mpath/gpusim/buffer.hpp"
#include "mpath/sim/engine.hpp"
#include "mpath/sim/fluid.hpp"
#include "mpath/sim/inline_fn.hpp"
#include "mpath/sim/owner.hpp"
#include "mpath/sim/pool.hpp"
#include "mpath/sim/trace.hpp"
#include "mpath/topo/binding.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/rng.hpp"
#include "mpath/util/small_vec.hpp"

namespace mpath::gpusim {

using StreamId = std::uint32_t;
using EventId = std::uint32_t;

/// Cooperative cancellation handle for in-flight copies. A token is shared
/// between the issuer (e.g. a pipeline watchdog) and every memcpy_async it
/// governs: cancel() aborts the governed copies' live fluid flows via
/// FluidNetwork::cancel_flow and marks the token, after which governed ops
/// that have not yet started drain without moving data. Single-simulation
/// use only (no thread safety needed — the engine is single-threaded).
class CancelToken {
 public:
  explicit CancelToken(sim::FluidNetwork& net) : net_(&net) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Abort: cancels every governed fluid flow currently in flight. Later
  /// governed copies become no-ops. Idempotent.
  void cancel();
  [[nodiscard]] bool cancelled() const { return cancelled_; }
  /// Flows actually aborted mid-flight by cancel() (not merely skipped).
  [[nodiscard]] std::size_t flows_cancelled() const {
    return cancelled_ids_.size();
  }

 private:
  friend class GpuRuntime;
  [[nodiscard]] bool was_cancelled(sim::FlowId id) const;

  sim::FluidNetwork* net_;
  bool cancelled_ = false;
  // A token typically governs the chunks of one path (a handful in flight
  // at once); inline storage keeps the cancellable-copy path off the heap.
  util::SmallVec<sim::FlowId, 4> in_flight_;      ///< flows streaming now
  util::SmallVec<sim::FlowId, 4> cancelled_ids_;  ///< aborted by cancel()
};
using CancelTokenPtr = std::shared_ptr<CancelToken>;

class GpuRuntime {
 public:
  /// The runtime builds its own fluid network binding over `system`'s
  /// topology. `system` and `engine` must outlive the runtime.
  GpuRuntime(const topo::System& system, sim::Engine& engine,
             sim::FluidNetwork& network, std::uint64_t seed = 1);
  GpuRuntime(const GpuRuntime&) = delete;
  GpuRuntime& operator=(const GpuRuntime&) = delete;

  // -- object creation ------------------------------------------------------
  [[nodiscard]] StreamId create_stream(topo::DeviceId device);
  [[nodiscard]] EventId create_event();
  /// Recycled event reservation: pop a previously released event or create
  /// a fresh one. Reuse is safe because every consumer captures an event's
  /// latch when its op is *enqueued* and record_event re-arms the latch
  /// synchronously at enqueue — a reacquired id can never be observed
  /// through stale state. Long-lived holders (compiled transfer graphs)
  /// reserve events once and keep them across replays.
  [[nodiscard]] EventId acquire_event();
  /// Return an event to the runtime free list for acquire_event reuse. The
  /// caller must no longer use the id.
  void release_event(EventId event);
  [[nodiscard]] std::size_t events_pooled() const {
    return event_free_list_.size();
  }
  /// Events currently reserved via acquire_event and not yet released.
  /// Long-lived holders (compiled transfer graphs, chained collectives)
  /// must return this to its pre-acquisition baseline on destruction — the
  /// chain/graph leak check in the tests asserts exactly that.
  [[nodiscard]] std::uint64_t events_outstanding() const {
    return events_acquired_ - events_released_;
  }
  /// Make a cancellation token bound to this runtime's fluid network.
  [[nodiscard]] CancelTokenPtr make_cancel_token() const;

  // -- stream operations (enqueue, non-blocking) ----------------------------
  /// Completion hook for memcpy_async: runs at the simulated instant the
  /// copy finishes, with `delivered == false` when the copy was cancelled
  /// (drained without moving data). Lets callers observe per-chunk progress
  /// passively instead of enqueueing an extra event record per chunk.
  /// Inline-storage callable: hooks are enqueued per chunk, so a capture
  /// that allocated would undo the zero-allocation hot path.
  using DoneHook = sim::InlineFn<void(bool delivered), 48>;

  /// Copy `len` bytes between buffer regions along the topology route from
  /// src.device() to dst.device(). Payload bytes are copied at completion
  /// time. Both buffers must outlive the operation. A non-null `token`
  /// makes the copy abortable: token->cancel() kills the in-flight fluid
  /// flow (partial link bytes stay accounted, payload is not copied) and
  /// turns not-yet-started governed copies into no-ops, so a stream backed
  /// by a severed link drains instead of stalling forever. A non-null
  /// `on_done` is invoked once at copy completion (delivered or drained).
  void memcpy_async(DeviceBuffer& dst, std::size_t dst_offset,
                    const DeviceBuffer& src, std::size_t src_offset,
                    std::size_t len, StreamId stream,
                    CancelTokenPtr token = nullptr, DoneHook on_done = {});
  /// Record `event` at the current tail of `stream` (CUDA semantics: a
  /// later wait_event observes this record).
  void record_event(EventId event, StreamId stream);
  /// Make `stream` wait for the most recent record of `event`. Waiting on
  /// a never-recorded event is a no-op (as in CUDA).
  void wait_event(StreamId stream, EventId event);
  /// Enqueue a fixed on-stream delay (models per-chunk staging work that is
  /// not a data movement, e.g. host-side synchronization in host staging).
  void stream_delay(StreamId stream, double seconds);

  // -- synchronization (awaitable) ------------------------------------------
  /// Complete when every operation currently enqueued on `stream` is done.
  [[nodiscard]] sim::Task<void> synchronize(StreamId stream);
  /// Complete when the most recent record of `event` has fired.
  [[nodiscard]] sim::Task<void> synchronize_event(EventId event);
  /// True if the most recent record of `event` has fired (non-blocking
  /// query, cudaEventQuery semantics). Never-recorded events read as fired.
  [[nodiscard]] bool event_fired(EventId event) const;
  /// Complete when all streams are drained.
  [[nodiscard]] sim::Task<void> device_synchronize();

  // -- CUDA IPC handle cache --------------------------------------------------
  /// Open `buffer` for access from `opener`. First open per (opener,
  /// buffer) pays the system's ipc_open cost; later opens are free.
  [[nodiscard]] sim::Task<void> ipc_open(topo::DeviceId opener,
                                         const DeviceBuffer& buffer);
  [[nodiscard]] bool ipc_cached(topo::DeviceId opener,
                                const DeviceBuffer& buffer) const;
  /// Drop all cached handles (tests / cache-behaviour benchmarks).
  void ipc_cache_clear();
  [[nodiscard]] std::size_t ipc_cache_size() const { return ipc_cache_.size(); }

  // -- accessors --------------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const topo::System& system() const { return *system_; }
  [[nodiscard]] const topo::Topology& topology() const {
    return system_->topology;
  }
  [[nodiscard]] const topo::SoftwareCosts& costs() const {
    return system_->costs;
  }
  [[nodiscard]] const topo::NetworkBinding& binding() const {
    return binding_;
  }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Total simulated bytes copied through memcpy_async so far.
  [[nodiscard]] std::uint64_t bytes_copied() const { return bytes_copied_; }
  [[nodiscard]] std::uint64_t ops_issued() const { return ops_issued_; }

  /// Attach an activity tracer (nullptr detaches). While attached, every
  /// stream operation emits a span on the track "streamN (device)", and a
  /// "streams_busy" occupancy counter ("ph":"C") is sampled on track
  /// "gpusim" once every `counter_stride` enqueues.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] sim::Tracer* tracer() const { return tracer_; }
  /// Stride (in enqueued ops) between stream-occupancy counter samples.
  void set_counter_stride(std::uint64_t stride) {
    counter_stride_ = stride > 0 ? stride : 1;
    ops_until_sample_ = counter_stride_;
  }

 private:
  struct Stream {
    topo::DeviceId device;
    // Completion latch of the last enqueued op; ops chain on it.
    std::shared_ptr<sim::Latch> tail;
  };
  struct Event {
    // Latch of the most recent record; starts pre-fired (CUDA semantics).
    std::shared_ptr<sim::Latch> latch;
  };

  /// Chain `op` after the current tail of `stream`; returns the new tail.
  template <typename MakeOp>
  void enqueue(StreamId stream, MakeOp&& make_op);

  [[nodiscard]] sim::Task<void> run_copy(
      std::shared_ptr<sim::Latch> prev, std::shared_ptr<sim::Latch> done,
      DeviceBuffer& dst, std::size_t dst_offset, const DeviceBuffer& src,
      std::size_t src_offset, std::size_t len, StreamId stream,
      CancelTokenPtr token, DoneHook on_done);

  [[nodiscard]] std::string stream_track(StreamId stream) const;

  // Like the engine it drives, a runtime belongs to exactly one thread
  // (checked in debug builds); parallel sweeps build one per worker.
  [[no_unique_address]] sim::ThreadOwner owner_;
  const topo::System* system_;
  sim::Engine* engine_;
  sim::FluidNetwork* network_;
  topo::NetworkBinding binding_;
  util::Rng rng_;
  std::vector<Stream> streams_;
  std::vector<Event> events_;
  std::vector<EventId> event_free_list_;  ///< released ids, LIFO reuse
  std::uint64_t events_acquired_ = 0;     ///< acquire_event calls
  std::uint64_t events_released_ = 0;     ///< release_event calls
  std::set<std::pair<topo::DeviceId, BufferId>> ipc_cache_;
  std::uint64_t bytes_copied_ = 0;
  std::uint64_t ops_issued_ = 0;
  sim::Tracer* tracer_ = nullptr;
  std::uint64_t counter_stride_ = 256;
  std::uint64_t ops_until_sample_ = 256;
};

}  // namespace mpath::gpusim
