// Minimal CSV writer for benchmark result files (one file per figure).
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mpath::util {

/// Writes rows of comma-separated values with RFC-4180-style quoting.
/// Opens lazily on the first row so constructing a writer for an unused
/// output costs nothing. Rows accumulate in a temporary sibling file that
/// is atomically renamed onto `path` by close() (or the destructor), so an
/// interrupted run never leaves a truncated CSV at the published path.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  ~CsvWriter();

  void header(std::initializer_list<std::string_view> columns);
  void row(std::initializer_list<std::string_view> cells);
  void row(const std::vector<std::string>& cells);
  /// Publish the file: flush, close the temporary, and atomically rename it
  /// to the final path. No-op when no row was ever written (no file is
  /// created) or when already closed. Called by the destructor; call it
  /// explicitly to read the file back while the writer is still in scope.
  void close();
  /// True once the file has been opened (i.e. at least one row written).
  [[nodiscard]] bool opened() const { return out_.is_open() || closed_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Format a double with enough digits for downstream plotting.
  static std::string num(double v);

 private:
  void ensure_open();
  void write_cells(std::span<const std::string_view> cells);
  static std::string escape(std::string_view cell);

  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool closed_ = false;
};

}  // namespace mpath::util
