// Minimal CSV writer for benchmark result files (one file per figure).
#pragma once

#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mpath::util {

/// Writes rows of comma-separated values with RFC-4180-style quoting.
/// Opens lazily on the first row so constructing a writer for an unused
/// output costs nothing.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(std::initializer_list<std::string_view> columns);
  void row(std::initializer_list<std::string_view> cells);
  void row(const std::vector<std::string>& cells);
  /// True once the file has been opened (i.e. at least one row written).
  [[nodiscard]] bool opened() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Format a double with enough digits for downstream plotting.
  static std::string num(double v);

 private:
  void ensure_open();
  void write_cells(std::span<const std::string_view> cells);
  static std::string escape(std::string_view cell);

  std::string path_;
  std::ofstream out_;
};

}  // namespace mpath::util
