// Atomic file publication. Result files (bench CSVs, tuner caches, sweep
// stats) are written to a temporary sibling and renamed into place, so a
// reader — or a re-run interrupted mid-write — never observes a truncated
// file. rename(2) within one directory is atomic on POSIX.
#pragma once

#include <string>
#include <string_view>

namespace mpath::util {

/// Atomically replace `final_path` with `tmp_path` (must be on the same
/// filesystem; both paths should share a directory). Throws
/// std::runtime_error on failure.
void atomic_replace(const std::string& tmp_path, const std::string& final_path);

/// Write `content` to `path` through a uniquely-named temporary sibling and
/// an atomic rename. Safe to call concurrently for the same `path` from
/// multiple threads: each writer publishes a complete file, last one wins.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace mpath::util
