// Console table printer used by the benchmark harness to print the same
// rows/series the paper's figures report.
#pragma once

#include <string>
#include <vector>

namespace mpath::util {

/// Column-aligned ASCII table. Collects rows, then renders with widths sized
/// to the content. Right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;
  void print() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Fixed-point formatting helpers for table cells.
  static std::string fixed(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpath::util
