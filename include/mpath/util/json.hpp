// Minimal JSON reader/writer for the fuzz-scenario corpus (tests/corpus/)
// and structured bench artifacts. Supports the full JSON value grammar;
// objects preserve insertion order so that serialization is deterministic
// (byte-identical dumps for identical values — the fuzz corpus and the
// fuzz_hunt determinism gate depend on that).
//
// Deliberately tiny: no SAX interface, no allocator hooks, no UTF-16
// surrogate handling beyond pass-through of \uXXXX escapes for the BMP.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpath::util::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object representation. Lookup is linear — corpus
/// documents have a handful of keys; determinism beats asymptotics here.
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

/// Thrown on malformed input (parse) and on kind-mismatched access.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  Value(double d) : kind_(Kind::kNumber), num_(d) {}             // NOLINT
  Value(int v) : kind_(Kind::kNumber), num_(v) {}                // NOLINT
  Value(std::int64_t v)                                          // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Value(std::uint64_t v)                                         // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}        // NOLINT
  Value(std::string s)                                           // NOLINT
      : kind_(Kind::kString), str_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), str_(s) {}   // NOLINT
  Value(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}    // NOLINT
  Value(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT

  /// Parse a complete JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Throws json::Error with position info.
  [[nodiscard]] static Value parse(std::string_view text);

  /// Serialize. indent > 0 pretty-prints with that many spaces per level;
  /// indent == 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 2) const;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number() checked to be integral and in range of the target type.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  // -- object helpers -----------------------------------------------------
  /// First member with `key`, or nullptr. Null (not a throw) on non-objects
  /// would hide bugs, so this throws on kind mismatch like the accessors.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Member access that throws json::Error when the key is absent.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// `at(key)` if present, else `fallback` — for optional corpus fields.
  [[nodiscard]] const Value& get_or(std::string_view key,
                                    const Value& fallback) const;
  /// Append/overwrite a member (object kind required; a default-constructed
  /// null value is promoted to an empty object first).
  Value& set(std::string_view key, Value v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Deterministic number formatting: integral doubles in the exactly-
/// representable range print without a decimal point, everything else with
/// the shortest round-trip form ("%.17g"). Exposed for tests.
[[nodiscard]] std::string format_number(double v);

}  // namespace mpath::util::json
