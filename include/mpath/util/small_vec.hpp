// Small-buffer vector: the first N elements live inline (no heap), larger
// sizes spill to the heap like std::vector. clear() destroys elements but
// keeps whatever capacity was reached, so recycled containers (flow slots,
// event arrays) stop touching the allocator once a workload's high-water
// mark is reached — the core of the zero-allocation steady state.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

namespace mpath::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(inline_ptr()) {}
  SmallVec(std::initializer_list<T> init) : SmallVec() {
    reserve(init.size());
    for (const T& v : init) emplace_back(v);
  }
  /// Copy from any contiguous view (vectors, arrays, other SmallVecs).
  SmallVec(std::span<const T> src) : SmallVec() {  // NOLINT(runtime/explicit)
    reserve(src.size());
    for (const T& v : src) emplace_back(v);
  }

  SmallVec(const SmallVec& other) : SmallVec() {
    reserve(other.size_);
    for (const T& v : other) emplace_back(v);
  }
  SmallVec(SmallVec&& other) noexcept : SmallVec() { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) emplace_back(v);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool inlined() const noexcept { return data_ == inline_ptr(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  void reserve(std::size_t want) {
    if (want > cap_) grow_to(want);
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow_to(cap_ * 2);
    T* p = ::new (static_cast<void*>(data_ + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }
  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() noexcept {
    --size_;
    data_[size_].~T();
  }

  /// Remove the element at `pos`, shifting later elements left (stable
  /// order, like std::vector::erase).
  iterator erase(iterator pos) noexcept {
    std::move(pos + 1, end(), pos);
    pop_back();
    return pos;
  }

  /// Insert a single element before `pos` (std::vector::insert analogue).
  iterator insert(iterator pos, T v) {
    const std::size_t idx = static_cast<std::size_t>(pos - begin());
    emplace_back(std::move(v));  // may grow, invalidating pos
    std::rotate(begin() + idx, end() - 1, end());
    return begin() + idx;
  }

  /// Destroys elements; keeps the current (inline or heap) capacity.
  void clear() noexcept {
    std::destroy_n(data_, size_);
    size_ = 0;
  }

  void resize(std::size_t n) {
    if (n < size_) {
      std::destroy_n(data_ + n, size_ - n);
      size_ = n;
      return;
    }
    reserve(n);
    while (size_ < n) emplace_back();
  }

  operator std::span<const T>() const noexcept { return {data_, size_}; }
  operator std::span<T>() noexcept { return {data_, size_}; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* inline_ptr() noexcept { return reinterpret_cast<T*>(inline_); }
  const T* inline_ptr() const noexcept {
    return reinterpret_cast<const T*>(inline_);
  }

  void grow_to(std::size_t want) {
    const std::size_t new_cap = std::max<std::size_t>(want, 2 * cap_);
    T* fresh = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!inlined()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    cap_ = new_cap;
  }

  /// Move contents out of `other`, leaving it empty with inline capacity.
  void steal(SmallVec& other) noexcept {
    static_assert(std::is_nothrow_move_constructible_v<T>,
                  "SmallVec elements must be nothrow-movable");
    if (other.inlined()) {
      data_ = inline_ptr();
      cap_ = N;
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      other.size_ = 0;
    } else {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.cap_ = N;
      other.size_ = 0;
    }
  }

  /// Destroy elements and free heap storage (used by dtor / move-assign).
  void release() noexcept {
    clear();
    if (!inlined()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = inline_ptr();
      cap_ = N;
    }
  }

  T* data_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  alignas(T) std::byte inline_[N * sizeof(T)];
};

}  // namespace mpath::util
