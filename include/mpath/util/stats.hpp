// Small statistics helpers for benchmark measurement and model fitting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mpath::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
/// Median; copies and partially sorts. Zero for empty input.
[[nodiscard]] double median(std::vector<double> xs);
/// Linear-interpolated percentile in [0, 100]. Zero for empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Relative error |observed - reference| / |reference|, guarded against a
/// zero reference (returns absolute difference in that case).
[[nodiscard]] double relative_error(double observed, double reference);

}  // namespace mpath::util
