// Leveled logging. Default level is Warn so library internals stay quiet in
// benchmarks; set MPATH_LOG=debug|info|warn|error or call set_level().
#pragma once

#include <sstream>
#include <string_view>

namespace mpath::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
/// Parse "debug"/"info"/"warn"/"error"/"off"; unknown strings keep current.
void set_log_level(std::string_view name);

namespace detail {
void emit(LogLevel level, std::string_view msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mpath::util

#define MPATH_LOG(level)                                      \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::mpath::util::log_level())) {         \
  } else                                                      \
    ::mpath::util::detail::LogLine(level)

#define MPATH_DEBUG MPATH_LOG(::mpath::util::LogLevel::Debug)
#define MPATH_INFO MPATH_LOG(::mpath::util::LogLevel::Info)
#define MPATH_WARN MPATH_LOG(::mpath::util::LogLevel::Warn)
#define MPATH_ERROR MPATH_LOG(::mpath::util::LogLevel::Error)
