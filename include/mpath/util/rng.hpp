// Deterministic RNG wrapper. Every stochastic element of the simulator
// (measurement jitter, workload payloads) draws from a seeded Rng so that
// benchmark runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace mpath::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Multiplicative jitter: 1 + gaussian(0, rel_sigma), clamped positive.
  double jitter(double rel_sigma) {
    double j = gaussian(1.0, rel_sigma);
    return j > 0.01 ? j : 0.01;
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mpath::util
