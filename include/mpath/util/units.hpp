// Units and conversion helpers used across the library.
//
// Conventions (uniform across mpath):
//   * time is `double` seconds,
//   * sizes are `std::size_t` bytes,
//   * bandwidth is `double` bytes per second.
//
// Helpers below exist so that call sites read in the units the paper uses
// (MB message sizes, GB/s link bandwidths, microsecond latencies) while the
// internal representation stays uniform.
#pragma once

#include <cstddef>
#include <string>

namespace mpath::util {

inline constexpr std::size_t kKiB = std::size_t{1} << 10;
inline constexpr std::size_t kMiB = std::size_t{1} << 20;
inline constexpr std::size_t kGiB = std::size_t{1} << 30;

/// Gigabytes-per-second (decimal, as interconnect specs are quoted) to B/s.
constexpr double gbps(double gigabytes_per_second) {
  return gigabytes_per_second * 1e9;
}

/// Microseconds to seconds.
constexpr double usec(double microseconds) { return microseconds * 1e-6; }

/// Milliseconds to seconds.
constexpr double msec(double milliseconds) { return milliseconds * 1e-3; }

/// Seconds to microseconds (for reporting).
constexpr double to_usec(double seconds) { return seconds * 1e6; }

/// Bytes/second to GB/s (for reporting).
constexpr double to_gbps(double bytes_per_second) {
  return bytes_per_second / 1e9;
}

/// Human-readable byte count, e.g. "64MB", "512KB", used for table rows.
std::string format_bytes(std::size_t bytes);

/// Human-readable time, e.g. "12.3us", "4.56ms".
std::string format_time(double seconds);

namespace literals {
constexpr std::size_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::size_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::size_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

}  // namespace mpath::util
