// Ordinary least-squares line fit, used to extract Hockney model parameters
// (alpha, 1/beta) from measured (message size, transfer time) pairs — the
// "extract once per system topology" step of the paper (Fig. 2a, Step 1).
#pragma once

#include <span>

namespace mpath::util {

struct LineFit {
  double intercept = 0.0;  ///< a in y = a + b*x  (Hockney alpha)
  double slope = 0.0;      ///< b in y = a + b*x  (Hockney 1/beta)
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Fit y = a + b*x by ordinary least squares. Requires xs.size() ==
/// ys.size() and at least two distinct x values; throws std::invalid_argument
/// otherwise.
[[nodiscard]] LineFit fit_line(std::span<const double> xs,
                               std::span<const double> ys);

/// Fit y = b*x (no intercept), for bandwidth-only estimation.
[[nodiscard]] double fit_proportional(std::span<const double> xs,
                                      std::span<const double> ys);

}  // namespace mpath::util
