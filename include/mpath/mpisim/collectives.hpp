// Collective operations built from the same non-blocking P2P steps the
// MPI+UCC+UCX stack decomposes them into (paper Section 5.3):
//   * Allreduce — recursive-halving scatter-reduce + recursive-doubling
//     allgather (the K-nomial scheme UCP picks for large messages, K=2),
//     plus a ring variant for non-power-of-two worlds and ablations.
//   * Alltoall  — Bruck's algorithm (UCP's choice), plus a pairwise
//     exchange variant used as the correctness reference.
//   * Allgather (ring) and Broadcast (binomial) as supporting operations.
//
// All collectives operate on float32 payloads for reductions and raw bytes
// otherwise, and verify their preconditions eagerly.
#pragma once

#include "mpath/gpusim/buffer.hpp"
#include "mpath/mpisim/world.hpp"

namespace mpath::mpisim {

enum class AllreduceAlgo {
  RecursiveHalvingDoubling,  ///< requires power-of-two world size
  Ring,                      ///< any world size
};

enum class AlltoallAlgo {
  Bruck,     ///< log(p) rounds with pack/unpack (UCP's large-message pick)
  Pairwise,  ///< p-1 pairwise exchanges (reference implementation)
};

/// In-place float32 sum-allreduce over `data` (all ranks pass equally sized
/// buffers). Element count must divide evenly by the world size.
[[nodiscard]] sim::Task<void> allreduce_sum(
    Communicator& comm, gpusim::DeviceBuffer& data,
    AllreduceAlgo algo = AllreduceAlgo::RecursiveHalvingDoubling);

/// Alltoall: block j of `send` goes to rank j; block i of `recv` comes from
/// rank i. Both buffers must hold world_size * block_bytes.
[[nodiscard]] sim::Task<void> alltoall(Communicator& comm,
                                       const gpusim::DeviceBuffer& send,
                                       gpusim::DeviceBuffer& recv,
                                       std::size_t block_bytes,
                                       AlltoallAlgo algo = AlltoallAlgo::Bruck);

/// Ring allgather: on entry rank r's block lives at [r * block_bytes, ...);
/// on exit every rank holds all blocks.
[[nodiscard]] sim::Task<void> allgather(Communicator& comm,
                                        gpusim::DeviceBuffer& data,
                                        std::size_t block_bytes);

/// Binomial-tree broadcast of `bytes` from `root`.
[[nodiscard]] sim::Task<void> broadcast(Communicator& comm,
                                        gpusim::DeviceBuffer& data,
                                        std::size_t bytes, int root);

}  // namespace mpath::mpisim
