// MPI-like runtime over the transport fabric: ranks are coroutines in one
// discrete-event simulation, bound round-robin to the topology's GPUs.
// Provides the subset of MPI the paper's evaluation needs: blocking and
// nonblocking tagged P2P, barrier, and (in collectives.hpp) Allreduce and
// Alltoall built from the same P2P steps UCX handles under UCC.
#pragma once

#include <memory>
#include <vector>

#include "mpath/sim/inline_fn.hpp"
#include "mpath/sim/sync.hpp"
#include "mpath/transport/fabric.hpp"

namespace mpath::pipeline {
class ChainController;
}  // namespace mpath::pipeline

namespace mpath::mpisim {

struct WorldOptions {
  /// Local reduction throughput (bytes/s) used to model the compute part
  /// of Allreduce (paper Observation 3: compute overhead caps its gains).
  double reduce_bps = 75e9;
  transport::TransportOptions transport;
};

class Communicator;

class World {
 public:
  /// One rank per GPU by default (nranks = 0); otherwise ranks bind to
  /// GPUs round-robin.
  World(gpusim::GpuRuntime& runtime, gpusim::DataChannel& channel,
        int nranks = 0, WorldOptions options = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] int size() const { return static_cast<int>(comms_.size()); }
  [[nodiscard]] Communicator& comm(int rank);

  /// Per-rank entry point. Inline-storage callable (no heap): world wiring
  /// is setup-time, but benches build thousands of worlds per sweep, so
  /// their plumbing stays off the allocator too. A coroutine lambda's frame
  /// references its closure, so the RankMain object must stay alive until
  /// every rank finishes — run() guarantees this; launch() callers keep the
  /// callable alive themselves (hence the reference parameter).
  using RankMain = sim::InlineFn<sim::Task<void>(Communicator&), 128>;

  /// Spawn `rank_main` on every rank; returns the processes (join or run
  /// the engine to completion). `rank_main` must outlive the ranks.
  std::vector<sim::Process> launch(RankMain& rank_main);
  /// launch() + engine().run(); holds `rank_main` alive throughout.
  void run(RankMain rank_main);

  [[nodiscard]] sim::Engine& engine() { return runtime_->engine(); }
  [[nodiscard]] gpusim::GpuRuntime& runtime() { return *runtime_; }
  [[nodiscard]] transport::Fabric& fabric() { return fabric_; }
  [[nodiscard]] sim::Barrier& barrier() { return barrier_; }
  [[nodiscard]] const WorldOptions& options() const { return options_; }

  /// Enable collective graph chaining: installs the fabric's transfer tap
  /// pointing at `ctl` (also attaching it to the channel) so the
  /// collectives capture/replay whole invocations. Null detaches. The
  /// controller must outlive the attachment; destroy this World (or detach)
  /// before destroying the controller.
  void set_chain_controller(pipeline::ChainController* ctl);
  [[nodiscard]] pipeline::ChainController* chain_controller() const {
    return chain_ctl_;
  }

 private:
  gpusim::GpuRuntime* runtime_;
  WorldOptions options_;
  transport::Fabric fabric_;
  sim::Barrier barrier_;
  pipeline::ChainController* chain_ctl_ = nullptr;
  std::vector<std::unique_ptr<Communicator>> comms_;
};

class Communicator {
 public:
  Communicator(World& world, int rank, topo::DeviceId device);
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return world_->size(); }
  [[nodiscard]] topo::DeviceId device() const { return device_; }
  [[nodiscard]] World& world() { return *world_; }

  // -- point-to-point -----------------------------------------------------
  [[nodiscard]] sim::Task<void> send(const gpusim::DeviceBuffer& buf,
                                     std::size_t offset, std::size_t bytes,
                                     int dst, int tag);
  [[nodiscard]] sim::Task<void> recv(gpusim::DeviceBuffer& buf,
                                     std::size_t offset, std::size_t bytes,
                                     int src, int tag);
  /// Nonblocking variants: the returned Process is the request handle.
  sim::Process isend(const gpusim::DeviceBuffer& buf, std::size_t offset,
                     std::size_t bytes, int dst, int tag);
  sim::Process irecv(gpusim::DeviceBuffer& buf, std::size_t offset,
                     std::size_t bytes, int src, int tag);
  [[nodiscard]] sim::Task<void> wait_all(std::vector<sim::Process> requests);

  /// Combined send+recv (deadlock-free pairwise exchange step).
  [[nodiscard]] sim::Task<void> sendrecv(const gpusim::DeviceBuffer& sendbuf,
                                         std::size_t send_off,
                                         std::size_t send_bytes, int dst,
                                         gpusim::DeviceBuffer& recvbuf,
                                         std::size_t recv_off,
                                         std::size_t recv_bytes, int src,
                                         int tag);

  // -- utility ---------------------------------------------------------------
  [[nodiscard]] sim::Task<void> barrier();
  /// Same-device copy through this rank's private stream.
  [[nodiscard]] sim::Task<void> local_copy(gpusim::DeviceBuffer& dst,
                                           std::size_t dst_off,
                                           const gpusim::DeviceBuffer& src,
                                           std::size_t src_off,
                                           std::size_t bytes);
  /// Model a local reduction over `bytes` of data (time = bytes/reduce_bps).
  [[nodiscard]] sim::Task<void> reduce_compute(std::size_t bytes);

  /// Per-communicator collective sequence number; every rank calling the
  /// same collective in the same order derives the same tag block.
  [[nodiscard]] int next_collective_tag();

 private:
  World* world_;
  int rank_;
  topo::DeviceId device_;
  gpusim::StreamId local_stream_;
  int collective_seq_ = 0;
};

}  // namespace mpath::mpisim
