// ABL-3 — Empirical validation of Theorem 1: the equal-time split is
// optimal. Two levels:
//   (1) model level: for calibrated path terms on both systems, a dense
//       theta grid never beats the closed-form solution (Eq. 24);
//   (2) simulation level: executing theta perturbations around the model's
//       split on the simulator shows the measured optimum at (or adjacent
//       to) the equal-time point.
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace mu = mpath::util;
using namespace mpath::util::literals;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  std::printf("ABL-3: Theorem 1 (equal-time split optimality) check\n\n");

  // ---- (1) model-level grid check ----------------------------------------
  std::printf("(1) closed form vs dense theta grid (model level)\n");
  mu::Table grid_table({"system", "size", "closed-form T", "grid-best T",
                        "closed <= grid"});
  for (const char* system_name : {"beluga", "narval"}) {
    mb::CalibratedSystem cal(mt::make_system(system_name));
    const auto gpus = cal.system.topology.gpus();
    const auto paths =
        mt::enumerate_paths(cal.system.topology, gpus[0], gpus[1],
                            mt::PathPolicy::three_gpus());
    std::vector<mm::PathTerms> terms;
    for (const auto& plan : paths) {
      const auto params = cal.registry.path_params(gpus[0], gpus[1], plan);
      const auto phi = mm::PhiFitter::fit_for_path(params, 64_MiB, 64_MiB,
                                                   1.0 / 3.0);
      terms.push_back(mm::terms_pipelined(params, phi));
    }
    for (std::size_t bytes : mb::message_sizes(quick)) {
      const double n = static_cast<double>(bytes);
      const auto sol = mm::ThetaSolver::solve(terms, n);
      const int steps = 100;
      double grid_best = 1e300;
      for (int i = 0; i <= steps; ++i) {
        for (int j = 0; i + j <= steps; ++j) {
          const double t0 = static_cast<double>(i) / steps;
          const double t1 = static_cast<double>(j) / steps;
          std::vector<double> theta{t0, t1, 1.0 - t0 - t1};
          grid_best =
              std::min(grid_best, mm::ThetaSolver::evaluate(terms, theta, n));
        }
      }
      grid_table.add_row(
          {system_name, mu::format_bytes(bytes),
           mu::format_time(sol.predicted_time), mu::format_time(grid_best),
           sol.predicted_time <= grid_best * (1.0 + 1e-9) ? "yes" : "NO"});
    }
  }
  grid_table.print();

  // ---- (2) simulation-level perturbation check ---------------------------
  std::printf(
      "\n(2) measured bandwidth at theta perturbations around the model "
      "split (Beluga, 3_GPUs, 128MB)\n");
  mb::CalibratedSystem beluga(mt::make_beluga());
  const auto gpus = beluga.system.topology.gpus();
  const auto policy = mt::PathPolicy::three_gpus();
  const auto paths =
      mt::enumerate_paths(beluga.system.topology, gpus[0], gpus[1], policy);
  const std::size_t bytes = 128_MiB;
  const auto& config =
      beluga.configurator->configure(gpus[0], gpus[1], bytes, paths);

  mu::Table sim_table({"shift of staged share", "measured GB/s"});
  double center_bw = 0.0;
  double best_bw = 0.0;
  double best_shift = 0.0;
  for (double shift : {-0.2, -0.1, -0.05, 0.0, 0.05, 0.1, 0.2}) {
    // Move `shift` of the whole message from the staged paths (evenly)
    // onto the direct path (negative: the reverse).
    mpath::pipeline::StaticPlan plan;
    plan.paths = paths;
    plan.chunks.assign(paths.size(), 1);
    plan.fractions.assign(paths.size(), 0.0);
    double direct_frac = config.paths[0].theta + shift;
    double staged_total = 0.0;
    for (std::size_t i = 1; i < paths.size(); ++i) {
      staged_total += config.paths[i].theta;
    }
    for (std::size_t i = 1; i < paths.size(); ++i) {
      const double scale = staged_total > 0
                               ? config.paths[i].theta / staged_total
                               : 0.0;
      plan.fractions[i] =
          std::max(0.0, config.paths[i].theta - shift * scale);
      plan.chunks[i] = std::max(1, config.paths[i].chunks);
    }
    double sum = 0.0;
    for (std::size_t i = 1; i < paths.size(); ++i) sum += plan.fractions[i];
    plan.fractions[0] = std::max(0.0, 1.0 - sum);
    // Renormalize exactly.
    double total = 0.0;
    for (double f : plan.fractions) total += f;
    for (double& f : plan.fractions) f /= total;
    (void)direct_frac;

    auto stack = bc::SimStack::static_plan(beluga.system, plan);
    bc::P2POptions p2p;
    p2p.iterations = 4;
    const double bw = bc::measure_bw(stack.world(), bytes, p2p);
    if (shift == 0.0) center_bw = bw;
    if (bw > best_bw) {
      best_bw = bw;
      best_shift = shift;
    }
    sim_table.add_row({mu::Table::fixed(shift, 2), mb::gb(bw)});
  }
  sim_table.print();
  std::printf(
      "\nmodel split measured %.2f GB/s; best perturbation %.2f GB/s at "
      "shift %+.2f (equal-time split within %.1f%% of measured optimum)\n",
      mpath::util::to_gbps(center_bw), mpath::util::to_gbps(best_bw),
      best_shift, 100.0 * (best_bw - center_bw) / best_bw);
  return 0;
}
