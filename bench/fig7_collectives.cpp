// FIG-7 — Reproduces paper Figure 7: latency speedup of MPI_Alltoall and
// MPI_Allreduce over the default (direct-path) MPI+UCC+UCX stack, on
// Beluga and Narval, with 2 and 3 GPU paths (host staging excluded, as in
// the paper, because of its bidirectional contention).
//
// Series per panel: statically tuned multi-path and dynamic (model-driven)
// multi-path, both as speedup over the single-path baseline.
//
// Expected shape (paper): both collectives gain (up to ~1.4x); Alltoall
// gains more than Allreduce (reduction compute caps the latter,
// Observation 3); model-driven matches or beats static (Observation 2);
// gains are larger on Beluga (Observation 1).
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "mpath/mpisim/collectives.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mi = mpath::mpisim;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
namespace mu = mpath::util;
using namespace mpath::util::literals;

namespace {

enum class Op { Alltoall, Allreduce };

/// Latency of one collective at `bytes` per rank on the given stack.
double collective_latency(bc::SimStack& stack, Op op, std::size_t bytes) {
  bc::CollectiveOptions opt;
  opt.iterations = 3;
  opt.warmup = 1;
  return bc::measure_collective_latency(
      stack.world(),
      [op, bytes](mi::Communicator& comm) -> ms::Task<void> {
        if (op == Op::Alltoall) {
          const auto p = static_cast<std::size_t>(comm.size());
          const std::size_t blk = bytes / p;
          mpath::gpusim::DeviceBuffer send(comm.device(), p * blk,
                                           mpath::gpusim::Payload::Simulated);
          mpath::gpusim::DeviceBuffer recv(comm.device(), p * blk,
                                           mpath::gpusim::Payload::Simulated);
          co_await mi::alltoall(comm, send, recv, blk,
                                mi::AlltoallAlgo::Bruck);
        } else {
          // Element count must divide by the world size.
          const std::size_t floats =
              bytes / sizeof(float) / static_cast<std::size_t>(comm.size()) *
              static_cast<std::size_t>(comm.size());
          mpath::gpusim::DeviceBuffer data(comm.device(),
                                           floats * sizeof(float),
                                           mpath::gpusim::Payload::Simulated);
          co_await mi::allreduce_sum(
              comm, data, mi::AllreduceAlgo::RecursiveHalvingDoubling);
        }
      },
      opt);
}

/// --graphs=on|off: run the dynamic stacks with collective graph chaining.
/// Defaults to off; CI diffs the two fingerprints for bit-identity.
bool graphs_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == "--graphs=on") return true;
    if (a == "--graphs=off") return false;
  }
  return false;
}

/// --fingerprint=FILE: dump every cell latency at full precision for CI's
/// byte-identity gates (graphs on vs off, --jobs 1 vs 2).
std::string fingerprint_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--fingerprint=", 0) == 0) return a.substr(14);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const int jobs = mb::jobs_mode(argc, argv);
  const bool graphs = graphs_mode(argc, argv);
  const std::string fp_path = fingerprint_path(argc, argv);
  std::printf("FIG-7: collective latency speedup (paper Figure 7)%s\n\n",
              graphs ? " [collective graphs ON]" : "");

  const std::vector<std::string> systems = {"beluga", "narval"};
  // Host staging is excluded for collectives, as in the paper.
  const std::vector<mt::PathPolicy> policies = {mt::PathPolicy::two_gpus(),
                                                mt::PathPolicy::three_gpus()};
  const std::vector<Op> ops = {Op::Alltoall, Op::Allreduce};
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{32_MiB, 128_MiB}
            : std::vector<std::size_t>{8_MiB, 32_MiB, 128_MiB, 512_MiB};
  const std::size_t n_pol = policies.size();
  const std::size_t n_op = ops.size();
  const std::size_t n_size = sizes.size();

  bc::SweepRunner runner(bc::SweepOptions{jobs});

  // Phase A — calibrate each system once.
  auto cals = runner.run(systems.size(), [&](std::size_t s) {
    return std::make_unique<mb::CalibratedSystem>(
        mt::make_system(systems[s]));
  });

  // Phase B — tune the static baseline per (system, policy, anchor). The
  // static plan targets the per-step P2P size (~bytes/2 is the typical
  // step size of both algorithms at 4 ranks).
  std::vector<std::size_t> anchors;
  for (std::size_t bytes : sizes) {
    const std::size_t a = mb::tuning_anchor(bytes / 2);
    if (std::find(anchors.begin(), anchors.end(), a) == anchors.end()) {
      anchors.push_back(a);
    }
  }
  const std::size_t n_anchor = anchors.size();
  const auto anchor_index = [&](std::size_t bytes) {
    return static_cast<std::size_t>(
        std::find(anchors.begin(), anchors.end(),
                  mb::tuning_anchor(bytes / 2)) -
        anchors.begin());
  };
  auto tuned = runner.run(
      systems.size() * n_pol * n_anchor, [&](std::size_t t) {
        const std::size_t s = t / (n_pol * n_anchor);
        const std::size_t p = (t / n_anchor) % n_pol;
        const std::size_t a = t % n_anchor;
        mpath::tuning::StaticTuner tuner(
            cals[s]->system, policies[p],
            mb::tuner_options(mpath::tuning::TuneMetric::Unidirectional,
                              quick));
        return tuner.tune(anchors[a]).plan;
      });

  // Phase C — the (system, policy, op, size) measurement grid, one
  // private stack trio per cell.
  struct Cell {
    double direct = 0.0;
    double static_s = 0.0;
    double dynamic = 0.0;
    std::uint64_t chain_replays = 0;  ///< chained steps replayed (graphs on)
  };
  auto cells = runner.run(
      systems.size() * n_pol * n_op * n_size, [&](std::size_t idx) {
        const std::size_t s = idx / (n_pol * n_op * n_size);
        const std::size_t p = (idx / (n_op * n_size)) % n_pol;
        const Op op = ops[(idx / n_size) % n_op];
        const std::size_t bytes = sizes[idx % n_size];
        const mb::CalibratedSystem& cal = *cals[s];

        Cell cell;
        auto direct_stack = bc::SimStack::direct(cal.system);
        cell.direct = collective_latency(direct_stack, op, bytes);

        const auto& plan =
            tuned[(s * n_pol + p) * n_anchor + anchor_index(bytes)];
        auto static_stack = bc::SimStack::static_plan(cal.system, plan);
        cell.static_s = collective_latency(static_stack, op, bytes);

        mpath::model::PathConfigurator configurator(cal.registry);
        bc::StackOptions dyn_opt;
        dyn_opt.collective_graphs = graphs;
        auto dyn_stack = bc::SimStack::model_driven(cal.system, configurator,
                                                    policies[p], dyn_opt);
        cell.dynamic = collective_latency(dyn_stack, op, bytes);
        if (dyn_stack.chain() != nullptr) {
          cell.chain_replays = dyn_stack.chain()->stats().replayed_steps;
        }
        return cell;
      });

  // Serial merge in grid order.
  mu::CsvWriter csv(mb::results_dir() + "/fig7_collectives.csv");
  csv.header({"system", "collective", "policy", "bytes_per_rank",
              "direct_latency_s", "static_speedup", "dynamic_speedup"});
  std::size_t idx = 0;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (std::size_t p = 0; p < n_pol; ++p) {
      for (Op op : ops) {
        const char* op_name = op == Op::Alltoall ? "Alltoall" : "Allreduce";
        mu::Table table({"msg/rank", "direct", "static x", "dynamic x"});
        for (std::size_t bytes : sizes) {
          const Cell& cell = cells[idx++];
          table.add_row({mu::format_bytes(bytes),
                         mu::format_time(cell.direct),
                         mu::Table::fixed(cell.direct / cell.static_s, 2),
                         mu::Table::fixed(cell.direct / cell.dynamic, 2)});
          csv.row({systems[s], op_name, policies[p].label(),
                   std::to_string(bytes), mu::CsvWriter::num(cell.direct),
                   mu::CsvWriter::num(cell.direct / cell.static_s),
                   mu::CsvWriter::num(cell.direct / cell.dynamic)});
        }
        std::printf("-- Figure 7 panel: %s, %s, %s --\n", op_name,
                    systems[s].c_str(), policies[p].label().c_str());
        table.print();
        std::printf("\n");
      }
    }
  }
  csv.close();
  std::printf("CSV written to %s/fig7_collectives.csv\n",
              mb::results_dir().c_str());
  mb::report_sweep("fig7", runner.stats());

  if (!fp_path.empty()) {
    // Full-precision latencies in grid order: identical bytes on disk means
    // identical simulated timelines (the chained-replay bit-identity gate).
    std::ostringstream fp;
    std::size_t k = 0;
    for (std::size_t s = 0; s < systems.size(); ++s) {
      for (std::size_t p = 0; p < n_pol; ++p) {
        for (Op op : ops) {
          for (std::size_t bytes : sizes) {
            const Cell& cell = cells[k++];
            char line[256];
            std::snprintf(line, sizeof(line), "%s,%s,%s,%zu,%.17g,%.17g,%.17g\n",
                          systems[s].c_str(),
                          op == Op::Alltoall ? "Alltoall" : "Allreduce",
                          policies[p].label().c_str(), bytes, cell.direct,
                          cell.static_s, cell.dynamic);
            fp << line;
          }
        }
      }
    }
    mu::write_file_atomic(fp_path, fp.str());
    std::printf("fingerprint written to %s\n", fp_path.c_str());
  }
  if (graphs) {
    std::uint64_t replays = 0;
    for (const Cell& cell : cells) replays += cell.chain_replays;
    std::printf("collective graph chaining: %llu chained steps replayed\n",
                static_cast<unsigned long long>(replays));
    if (replays == 0) {
      std::fprintf(stderr,
                   "FIG-7: --graphs=on but no chained step replayed — the "
                   "capture/replay path is not engaging\n");
      return 3;
    }
  }
  return 0;
}
