// FIG-7 — Reproduces paper Figure 7: latency speedup of MPI_Alltoall and
// MPI_Allreduce over the default (direct-path) MPI+UCC+UCX stack, on
// Beluga and Narval, with 2 and 3 GPU paths (host staging excluded, as in
// the paper, because of its bidirectional contention).
//
// Series per panel: statically tuned multi-path and dynamic (model-driven)
// multi-path, both as speedup over the single-path baseline.
//
// Expected shape (paper): both collectives gain (up to ~1.4x); Alltoall
// gains more than Allreduce (reduction compute caps the latter,
// Observation 3); model-driven matches or beats static (Observation 2);
// gains are larger on Beluga (Observation 1).
#include <cstdio>

#include "bench_common.hpp"
#include "mpath/mpisim/collectives.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mi = mpath::mpisim;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
namespace mu = mpath::util;
using namespace mpath::util::literals;

namespace {

enum class Op { Alltoall, Allreduce };

/// Latency of one collective at `bytes` per rank on the given stack.
double collective_latency(bc::SimStack& stack, Op op, std::size_t bytes) {
  bc::CollectiveOptions opt;
  opt.iterations = 3;
  opt.warmup = 1;
  return bc::measure_collective_latency(
      stack.world(),
      [op, bytes](mi::Communicator& comm) -> ms::Task<void> {
        if (op == Op::Alltoall) {
          const auto p = static_cast<std::size_t>(comm.size());
          const std::size_t blk = bytes / p;
          mpath::gpusim::DeviceBuffer send(comm.device(), p * blk,
                                           mpath::gpusim::Payload::Simulated);
          mpath::gpusim::DeviceBuffer recv(comm.device(), p * blk,
                                           mpath::gpusim::Payload::Simulated);
          co_await mi::alltoall(comm, send, recv, blk,
                                mi::AlltoallAlgo::Bruck);
        } else {
          // Element count must divide by the world size.
          const std::size_t floats =
              bytes / sizeof(float) / static_cast<std::size_t>(comm.size()) *
              static_cast<std::size_t>(comm.size());
          mpath::gpusim::DeviceBuffer data(comm.device(),
                                           floats * sizeof(float),
                                           mpath::gpusim::Payload::Simulated);
          co_await mi::allreduce_sum(
              comm, data, mi::AllreduceAlgo::RecursiveHalvingDoubling);
        }
      },
      opt);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  std::printf("FIG-7: collective latency speedup (paper Figure 7)\n\n");
  mu::CsvWriter csv(mb::results_dir() + "/fig7_collectives.csv");
  csv.header({"system", "collective", "policy", "bytes_per_rank",
              "direct_latency_s", "static_speedup", "dynamic_speedup"});

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{32_MiB, 128_MiB}
            : std::vector<std::size_t>{8_MiB, 32_MiB, 128_MiB, 512_MiB};

  for (const char* system_name : {"beluga", "narval"}) {
    mb::CalibratedSystem cal(mt::make_system(system_name));
    // Host staging is excluded for collectives, as in the paper.
    for (const auto& policy :
         {mt::PathPolicy::two_gpus(), mt::PathPolicy::three_gpus()}) {
      mpath::tuning::StaticTuner tuner(
          cal.system, policy,
          mb::tuner_options(mpath::tuning::TuneMetric::Unidirectional,
                            quick));
      for (Op op : {Op::Alltoall, Op::Allreduce}) {
        const char* op_name = op == Op::Alltoall ? "Alltoall" : "Allreduce";
        mu::Table table({"msg/rank", "direct", "static x", "dynamic x"});
        for (std::size_t bytes : sizes) {
          auto direct_stack = bc::SimStack::direct(cal.system);
          const double t_direct = collective_latency(direct_stack, op, bytes);

          // Static plan tuned for the per-step P2P size (~bytes/2 is the
          // typical step size of both algorithms at 4 ranks).
          const auto tuned = tuner.tune(mb::tuning_anchor(bytes / 2));
          auto static_stack =
              bc::SimStack::static_plan(cal.system, tuned.plan);
          const double t_static = collective_latency(static_stack, op, bytes);

          auto dyn_stack = bc::SimStack::model_driven(
              cal.system, *cal.configurator, policy);
          const double t_dynamic = collective_latency(dyn_stack, op, bytes);

          table.add_row({mu::format_bytes(bytes),
                         mu::format_time(t_direct),
                         mu::Table::fixed(t_direct / t_static, 2),
                         mu::Table::fixed(t_direct / t_dynamic, 2)});
          csv.row({system_name, op_name, policy.label(),
                   std::to_string(bytes), mu::CsvWriter::num(t_direct),
                   mu::CsvWriter::num(t_direct / t_static),
                   mu::CsvWriter::num(t_direct / t_dynamic)});
        }
        std::printf("-- Figure 7 panel: %s, %s, %s --\n", op_name,
                    system_name, policy.label().c_str());
        table.print();
        std::printf("\n");
      }
    }
  }
  std::printf("CSV written to %s/fig7_collectives.csv\n",
              mb::results_dir().c_str());
  return 0;
}
