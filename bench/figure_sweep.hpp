// Shared driver for Figures 5 and 6: the {Beluga, Narval} x
// {2_GPUs, 3_GPUs, 3_GPUs_w_host} x {window 1, 16} bandwidth panels, with
// the paper's four series per panel:
//   Direct Path           — single-path UCX baseline,
//   Static Path Dist.     — offline exhaustive-search plan,
//   Dynamic Path Dist.    — runtime model-driven configuration,
//   Model-Driven Pred.    — the model's predicted bandwidth (not measured).
// Prediction error is reported against the observed optimum, as in the
// paper ("percentage deviation from the observed optimal performance").
//
// The sweep is a shared-nothing parallel fan-out in three phases (see
// DESIGN.md, "Parallel sweeps"):
//   A. calibrate each system once — the immutable snapshot every later
//      scenario reads;
//   B. tune the static baseline per (system, policy, anchor size), each
//      task with a private StaticTuner;
//   C. measure every (system, policy, window, size) cell on a private
//      simulation stack with a private PathConfigurator over the shared
//      const registry.
// All order-sensitive output (tables, CSV rows, error accumulation) runs
// in one serial merge over the index-ordered results, so every --jobs
// value emits byte-identical files.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"

namespace mpath::bench {

struct PanelErrors {
  util::RunningStats all;
  util::RunningStats above_4mb;
};

inline void run_bandwidth_figure(const std::string& figure_id,
                                 tuning::TuneMetric metric, bool quick,
                                 int jobs = 0) {
  const bool bidirectional = metric == tuning::TuneMetric::Bidirectional;
  const std::vector<std::string> systems = {"beluga", "narval"};
  const auto policies = figure_policies();
  const std::vector<int> windows = {1, 16};
  const auto sizes = message_sizes(quick);
  const std::size_t n_pol = policies.size();
  const std::size_t n_win = windows.size();
  const std::size_t n_size = sizes.size();

  benchcore::SweepRunner runner(benchcore::SweepOptions{jobs});

  // Phase A — one calibration per system; the resulting registry is the
  // immutable snapshot shared (read-only) by every phase-B/C scenario.
  auto cals = runner.run(systems.size(), [&](std::size_t s) {
    return std::make_unique<CalibratedSystem>(topo::make_system(systems[s]));
  });

  // Phase B — static-plan tuning, deduplicated: the cells only ever ask
  // for anchor sizes, so tune each (system, policy, anchor) exactly once.
  // Tuning the same point twice in parallel would also race on the tuner's
  // disk cache; the dedup removes that by construction.
  std::vector<std::size_t> anchors;
  for (std::size_t bytes : sizes) {
    const std::size_t a = tuning_anchor(bytes);
    if (std::find(anchors.begin(), anchors.end(), a) == anchors.end()) {
      anchors.push_back(a);
    }
  }
  const std::size_t n_anchor = anchors.size();
  const auto anchor_index = [&](std::size_t bytes) {
    return static_cast<std::size_t>(
        std::find(anchors.begin(), anchors.end(), tuning_anchor(bytes)) -
        anchors.begin());
  };
  auto tuned = runner.run(
      systems.size() * n_pol * n_anchor, [&](std::size_t t) {
        const std::size_t s = t / (n_pol * n_anchor);
        const std::size_t p = (t / n_anchor) % n_pol;
        const std::size_t a = t % n_anchor;
        tuning::StaticTuner tuner(cals[s]->system, policies[p],
                                  tuner_options(metric, quick));
        return tuner.tune(anchors[a]).plan;
      });

  // Phase C — the measurement grid. Each cell builds private stacks and a
  // private PathConfigurator; only the calibrated snapshot is shared.
  struct Cell {
    double direct = 0.0;
    double static_bw = 0.0;
    double dynamic = 0.0;
    double predicted = 0.0;
  };
  const std::size_t n_cells = systems.size() * n_pol * n_win * n_size;
  auto cells = runner.run(n_cells, [&](std::size_t idx) {
    const std::size_t s = idx / (n_pol * n_win * n_size);
    const std::size_t p = (idx / (n_win * n_size)) % n_pol;
    const std::size_t w = (idx / n_size) % n_win;
    const std::size_t bytes = sizes[idx % n_size];
    const CalibratedSystem& cal = *cals[s];
    const auto& policy = policies[p];
    const auto gpus = cal.system.topology.gpus();

    benchcore::P2POptions p2p;
    p2p.window = windows[w];
    p2p.iterations = windows[w] == 1 ? 4 : 2;
    p2p.warmup = 1;
    auto measure = [&](benchcore::SimStack& stack) {
      return bidirectional
                 ? benchcore::measure_bibw(stack.world(), bytes, p2p)
                 : benchcore::measure_bw(stack.world(), bytes, p2p);
    };

    Cell cell;
    auto direct_stack = benchcore::SimStack::direct(cal.system);
    cell.direct = measure(direct_stack);

    const auto& plan = tuned[(s * n_pol + p) * n_anchor + anchor_index(bytes)];
    auto static_stack = benchcore::SimStack::static_plan(cal.system, plan);
    cell.static_bw = measure(static_stack);

    // Private configurator: same arithmetic as a shared one (configs are
    // pure functions of the registry), without cross-thread cache traffic.
    model::PathConfigurator configurator(cal.registry);
    auto dynamic_stack =
        benchcore::SimStack::model_driven(cal.system, configurator, policy);
    cell.dynamic = measure(dynamic_stack);

    // The model predicts one transfer's aggregate bandwidth; for the
    // bidirectional test it predicts each direction independently (it does
    // not model cross-direction contention — the gap the paper's
    // Observation 5 discusses).
    cell.predicted = (bidirectional ? 2.0 : 1.0) *
                     benchcore::predicted_bandwidth(configurator,
                                                    cal.system.topology,
                                                    gpus[0], gpus[1], bytes,
                                                    policy);
    return cell;
  });

  // Serial merge in grid order: every table row, CSV row and error-stat
  // update happens here, identically for any worker count.
  util::CsvWriter csv(results_dir() + "/" + figure_id + "_bandwidth.csv");
  csv.header({"system", "policy", "window", "bytes", "direct_gbps",
              "static_gbps", "dynamic_gbps", "predicted_gbps",
              "error_vs_best"});
  PanelErrors errors_no_host, errors_host;
  std::size_t idx = 0;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (std::size_t p = 0; p < n_pol; ++p) {
      const auto& policy = policies[p];
      for (std::size_t w = 0; w < n_win; ++w) {
        util::Table table({"size", "direct GB/s", "static GB/s",
                           "dynamic GB/s", "predicted GB/s", "err vs best"});
        for (std::size_t bytes : sizes) {
          const Cell& cell = cells[idx++];
          const double best =
              std::max({cell.direct, cell.static_bw, cell.dynamic});
          const double err = util::relative_error(cell.predicted, best);
          auto& errs = policy.include_host ? errors_host : errors_no_host;
          errs.all.add(err);
          if (bytes > 4_MiB) errs.above_4mb.add(err);

          table.add_row({util::format_bytes(bytes), gb(cell.direct),
                         gb(cell.static_bw), gb(cell.dynamic),
                         gb(cell.predicted), pct(err)});
          csv.row({systems[s], policy.label(), std::to_string(windows[w]),
                   std::to_string(bytes), util::CsvWriter::num(cell.direct),
                   util::CsvWriter::num(cell.static_bw),
                   util::CsvWriter::num(cell.dynamic),
                   util::CsvWriter::num(cell.predicted),
                   util::CsvWriter::num(err)});
        }
        std::printf("-- %s panel: %s on %s, %s, window=%d --\n",
                    figure_id.c_str(), bidirectional ? "BIBW" : "BW",
                    systems[s].c_str(), policy.label().c_str(), windows[w]);
        table.print();
        std::printf("\n");
      }
    }
  }
  csv.close();

  std::printf("== %s prediction-error summary ==\n", figure_id.c_str());
  std::printf("  without host staging: mean %.1f%% (all sizes), "
              "%.1f%% (>4MB)\n",
              100.0 * errors_no_host.all.mean(),
              100.0 * errors_no_host.above_4mb.mean());
  std::printf("  with host staging:    mean %.1f%% (all sizes), "
              "%.1f%% (>4MB)\n",
              100.0 * errors_host.all.mean(),
              100.0 * errors_host.above_4mb.mean());
  std::printf("CSV written to %s/%s_bandwidth.csv\n\n",
              results_dir().c_str(), figure_id.c_str());
  report_sweep(figure_id, runner.stats());
}

}  // namespace mpath::bench
