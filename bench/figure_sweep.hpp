// Shared driver for Figures 5 and 6: the {Beluga, Narval} x
// {2_GPUs, 3_GPUs, 3_GPUs_w_host} x {window 1, 16} bandwidth panels, with
// the paper's four series per panel:
//   Direct Path           — single-path UCX baseline,
//   Static Path Dist.     — offline exhaustive-search plan,
//   Dynamic Path Dist.    — runtime model-driven configuration,
//   Model-Driven Pred.    — the model's predicted bandwidth (not measured).
// Prediction error is reported against the observed optimum, as in the
// paper ("percentage deviation from the observed optimal performance").
#pragma once

#include <cstdio>

#include "bench_common.hpp"

namespace mpath::bench {

struct PanelErrors {
  util::RunningStats all;
  util::RunningStats above_4mb;
};

inline void run_bandwidth_figure(const std::string& figure_id,
                                 tuning::TuneMetric metric, bool quick) {
  const bool bidirectional = metric == tuning::TuneMetric::Bidirectional;
  util::CsvWriter csv(results_dir() + "/" + figure_id + "_bandwidth.csv");
  csv.header({"system", "policy", "window", "bytes", "direct_gbps",
              "static_gbps", "dynamic_gbps", "predicted_gbps",
              "error_vs_best"});

  PanelErrors errors_no_host, errors_host;

  for (const char* system_name : {"beluga", "narval"}) {
    CalibratedSystem cal(topo::make_system(system_name));
    const auto gpus = cal.system.topology.gpus();
    for (const auto& policy : figure_policies()) {
      tuning::StaticTuner tuner(cal.system, policy,
                                tuner_options(metric, quick));
      for (int window : {1, 16}) {
        util::Table table({"size", "direct GB/s", "static GB/s",
                           "dynamic GB/s", "predicted GB/s", "err vs best"});
        for (std::size_t bytes : message_sizes(quick)) {
          benchcore::P2POptions p2p;
          p2p.window = window;
          p2p.iterations = window == 1 ? 4 : 2;
          p2p.warmup = 1;
          auto measure = [&](benchcore::SimStack& stack) {
            return bidirectional
                       ? benchcore::measure_bibw(stack.world(), bytes, p2p)
                       : benchcore::measure_bw(stack.world(), bytes, p2p);
          };

          auto direct_stack = benchcore::SimStack::direct(cal.system);
          const double bw_direct = measure(direct_stack);

          const auto tuned = tuner.tune(tuning_anchor(bytes));
          auto static_stack =
              benchcore::SimStack::static_plan(cal.system, tuned.plan);
          const double bw_static = measure(static_stack);

          auto dynamic_stack = benchcore::SimStack::model_driven(
              cal.system, *cal.configurator, policy);
          const double bw_dynamic = measure(dynamic_stack);

          // The model predicts one transfer's aggregate bandwidth; for the
          // bidirectional test it predicts each direction independently
          // (it does not model cross-direction contention — the gap the
          // paper's Observation 5 discusses).
          const double predicted =
              (bidirectional ? 2.0 : 1.0) *
              benchcore::predicted_bandwidth(*cal.configurator,
                                             cal.system.topology, gpus[0],
                                             gpus[1], bytes, policy);

          const double best =
              std::max({bw_direct, bw_static, bw_dynamic});
          const double err = util::relative_error(predicted, best);
          auto& errs = policy.include_host ? errors_host : errors_no_host;
          errs.all.add(err);
          if (bytes > 4_MiB) errs.above_4mb.add(err);

          table.add_row({util::format_bytes(bytes), gb(bw_direct),
                         gb(bw_static), gb(bw_dynamic), gb(predicted),
                         pct(err)});
          csv.row({system_name, policy.label(), std::to_string(window),
                   std::to_string(bytes), util::CsvWriter::num(bw_direct),
                   util::CsvWriter::num(bw_static),
                   util::CsvWriter::num(bw_dynamic),
                   util::CsvWriter::num(predicted),
                   util::CsvWriter::num(err)});
        }
        std::printf("-- %s panel: %s on %s, %s, window=%d --\n",
                    figure_id.c_str(),
                    bidirectional ? "BIBW" : "BW", system_name,
                    policy.label().c_str(), window);
        table.print();
        std::printf("\n");
      }
    }
  }

  std::printf("== %s prediction-error summary ==\n", figure_id.c_str());
  std::printf("  without host staging: mean %.1f%% (all sizes), "
              "%.1f%% (>4MB)\n",
              100.0 * errors_no_host.all.mean(),
              100.0 * errors_no_host.above_4mb.mean());
  std::printf("  with host staging:    mean %.1f%% (all sizes), "
              "%.1f%% (>4MB)\n",
              100.0 * errors_host.all.mean(),
              100.0 * errors_host.above_4mb.mean());
  std::printf("CSV written to %s/%s_bandwidth.csv\n\n",
              results_dir().c_str(), figure_id.c_str());
}

}  // namespace mpath::bench
