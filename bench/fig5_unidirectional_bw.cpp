// FIG-5 — Reproduces paper Figure 5: OMB unidirectional bandwidth on
// Beluga and Narval for 2_GPUs / 3_GPUs / 3_GPUs_w_host path sets and
// window sizes 1 and 16, comparing the direct baseline, the statically
// tuned plan, the dynamic model-driven plan, and the model's prediction.
//
// Expected shape (paper): multi-path beats direct by up to ~2.9x at large
// sizes; dynamic matches or beats static; prediction error is small above
// 4-8 MB (<~6%) and larger for small messages (Observation 4) and for
// host-staged configurations on Narval (Observation 3).
#include <cstdio>

#include "figure_sweep.hpp"

int main(int argc, char** argv) {
  const bool quick = mpath::bench::quick_mode(argc, argv);
  const int jobs = mpath::bench::jobs_mode(argc, argv);
  std::printf("FIG-5: unidirectional MPI bandwidth (paper Figure 5)\n\n");
  mpath::bench::run_bandwidth_figure("fig5",
                                     mpath::tuning::TuneMetric::Unidirectional,
                                     quick, jobs);
  return 0;
}
