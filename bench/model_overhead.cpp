// OBS-OVH — google-benchmark microbenchmark backing the paper's claim that
// "the runtime overhead of the model-driven framework is negligible for
// large message sizes (less than 0.1% of the total execution time)".
//
// Measures populate_path_config (Algorithm 1) with a cold cache, a warm
// cache, and theta-solver / chunk-optimizer internals, and relates the
// cost to a 64 MB transfer time.
// PR 9 adds the build-vs-replay columns: BM_GraphColdBuild is the full
// per-transfer CPU path a cache miss pays (theta solve + config + template
// compile), BM_GraphReplay is what a cache hit pays instead (lookup +
// parameter patch). The BENCH_pr9.json gate holds replay to <= 20% of the
// cold build at the same message size.
#include <benchmark/benchmark.h>

#include <span>

#include "mpath/benchcore/metrics.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/pipeline/graph.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;

namespace {

struct Setup {
  mt::System system = mt::make_beluga();
  mm::ModelRegistry registry = mpath::tuning::registry_from_topology(system);
  std::vector<mt::DeviceId> gpus = system.topology.gpus();
  std::vector<mt::PathPlan> paths = mt::enumerate_paths(
      system.topology, gpus[0], gpus[1],
      mt::PathPolicy::three_gpus_with_host());
};

Setup& setup() {
  static Setup s;
  return s;
}

}  // namespace

static void BM_ConfigureColdCache(benchmark::State& state) {
  auto& s = setup();
  mm::ConfiguratorOptions opt;
  opt.cache_enabled = false;
  mm::PathConfigurator cfg(s.registry, opt);
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cfg.configure(s.gpus[0], s.gpus[1], bytes, s.paths));
  }
  // For the <0.1% claim: compare the reported ns/op against this transfer
  // time (a 46 GB/s single-lane transfer of the same size).
  state.counters["transfer_us"] = static_cast<double>(bytes) / 46e9 * 1e6;
}
BENCHMARK(BM_ConfigureColdCache)->Arg(2 << 20)->Arg(64 << 20)->Arg(512 << 20);

static void BM_ConfigureWarmCache(benchmark::State& state) {
  auto& s = setup();
  mm::PathConfigurator cfg(s.registry);
  (void)cfg.configure(s.gpus[0], s.gpus[1], 64 << 20, s.paths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cfg.configure(s.gpus[0], s.gpus[1], 64 << 20, s.paths));
  }
}
BENCHMARK(BM_ConfigureWarmCache);

static void BM_ThetaSolve(benchmark::State& state) {
  auto& s = setup();
  std::vector<mm::PathTerms> terms;
  for (const auto& plan : s.paths) {
    const auto params = s.registry.path_params(s.gpus[0], s.gpus[1], plan);
    terms.push_back(mm::terms_pipelined(
        params, mm::PhiFitter::fit_for_path(params, 64e6, 64e6, 0.25)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm::ThetaSolver::solve(terms, 64e6));
  }
}
BENCHMARK(BM_ThetaSolve);

static void BM_PhiFit(benchmark::State& state) {
  auto& s = setup();
  const auto params = s.registry.path_params(s.gpus[0], s.gpus[1],
                                             s.paths[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mm::PhiFitter::fit_for_path(params, 64e6, 64e6, 0.25));
  }
}
BENCHMARK(BM_PhiFit);

namespace {

// Compile/replay need the pipeline stack (streams, events, staging slots);
// the engine never advances — both paths are host-side only.
struct GraphSetup {
  mt::System system = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{system, engine, net};
  mp::PipelineEngine pipe{rt, /*staging_buffers_per_device=*/16,
                          mg::Payload::Simulated};
  mm::ModelRegistry registry = mpath::tuning::registry_from_topology(system);
  std::vector<mt::DeviceId> gpus = system.topology.gpus();
  std::vector<mt::PathPlan> paths = mt::enumerate_paths(
      system.topology, gpus[0], gpus[1], mt::PathPolicy::three_gpus());
};

GraphSetup& graph_setup() {
  static GraphSetup s;
  return s;
}

}  // namespace

// Cache-miss cost: theta solve + TransferConfig + template compile (stream
// resolution, event reservation, staging lease, op-DAG flattening). The
// graph is dropped each iteration so its staging slot recycles.
static void BM_GraphColdBuild(benchmark::State& state) {
  auto& s = graph_setup();
  mm::ConfiguratorOptions opt;
  opt.cache_enabled = false;
  mm::PathConfigurator cfg(s.registry, opt);
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const mm::TransferConfig config =
        cfg.compute_config(s.gpus[0], s.gpus[1], bytes, s.paths);
    auto g = s.pipe.compile_graph(s.gpus[0], s.gpus[1], config);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GraphColdBuild)->Arg(2 << 20)->Arg(64 << 20);

// Cache-hit cost: the entire CPU-side work the replay fast path performs
// before issuing — keyed lookup (FNV + tuple verify + LRU splice) plus the
// parameter patch. This is the number the <= 20%-of-cold-build gate holds.
static void BM_GraphReplay(benchmark::State& state) {
  auto& s = graph_setup();
  mm::PathConfigurator cfg(s.registry);
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  mp::GraphCache cache;
  const mm::TransferConfig config =
      cfg.compute_config(s.gpus[0], s.gpus[1], bytes, s.paths);
  cache.insert(s.pipe.compile_graph(s.gpus[0], s.gpus[1], config), 0);
  const std::span<const mt::PathPlan> key{s.paths.data(), s.paths.size()};
  for (auto _ : state) {
    auto g = cache.lookup(s.gpus[0], s.gpus[1], bytes, key, 0);
    const bool ok = g != nullptr && g->patch(bytes);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_GraphReplay)->Arg(2 << 20)->Arg(64 << 20);

// Re-split cost when a replay patches a template to a different message
// size (theta fraction kept, chunk sizes recomputed): still far below a
// fresh build because nothing is re-solved or re-resolved.
static void BM_GraphPatchResplit(benchmark::State& state) {
  auto& s = graph_setup();
  mm::PathConfigurator cfg(s.registry);
  const mm::TransferConfig config =
      cfg.compute_config(s.gpus[0], s.gpus[1], 64 << 20, s.paths);
  auto g = s.pipe.compile_graph(s.gpus[0], s.gpus[1], config);
  const std::uint64_t sizes[2] = {48ull << 20, 64ull << 20};
  int flip = 0;
  for (auto _ : state) {
    const bool ok = g->patch(sizes[flip ^= 1]);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_GraphPatchResplit);

static void BM_PredictedBandwidth(benchmark::State& state) {
  auto& s = setup();
  mm::PathConfigurator cfg(s.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpath::benchcore::predicted_bandwidth(
        cfg, s.system.topology, s.gpus[0], s.gpus[1], 64 << 20,
        mt::PathPolicy::three_gpus()));
  }
}
BENCHMARK(BM_PredictedBandwidth);

BENCHMARK_MAIN();
