// OBS-OVH — google-benchmark microbenchmark backing the paper's claim that
// "the runtime overhead of the model-driven framework is negligible for
// large message sizes (less than 0.1% of the total execution time)".
//
// Measures populate_path_config (Algorithm 1) with a cold cache, a warm
// cache, and theta-solver / chunk-optimizer internals, and relates the
// cost to a 64 MB transfer time.
#include <benchmark/benchmark.h>

#include "mpath/benchcore/metrics.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"

namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {

struct Setup {
  mt::System system = mt::make_beluga();
  mm::ModelRegistry registry = mpath::tuning::registry_from_topology(system);
  std::vector<mt::DeviceId> gpus = system.topology.gpus();
  std::vector<mt::PathPlan> paths = mt::enumerate_paths(
      system.topology, gpus[0], gpus[1],
      mt::PathPolicy::three_gpus_with_host());
};

Setup& setup() {
  static Setup s;
  return s;
}

}  // namespace

static void BM_ConfigureColdCache(benchmark::State& state) {
  auto& s = setup();
  mm::ConfiguratorOptions opt;
  opt.cache_enabled = false;
  mm::PathConfigurator cfg(s.registry, opt);
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cfg.configure(s.gpus[0], s.gpus[1], bytes, s.paths));
  }
  // For the <0.1% claim: compare the reported ns/op against this transfer
  // time (a 46 GB/s single-lane transfer of the same size).
  state.counters["transfer_us"] = static_cast<double>(bytes) / 46e9 * 1e6;
}
BENCHMARK(BM_ConfigureColdCache)->Arg(2 << 20)->Arg(64 << 20)->Arg(512 << 20);

static void BM_ConfigureWarmCache(benchmark::State& state) {
  auto& s = setup();
  mm::PathConfigurator cfg(s.registry);
  (void)cfg.configure(s.gpus[0], s.gpus[1], 64 << 20, s.paths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cfg.configure(s.gpus[0], s.gpus[1], 64 << 20, s.paths));
  }
}
BENCHMARK(BM_ConfigureWarmCache);

static void BM_ThetaSolve(benchmark::State& state) {
  auto& s = setup();
  std::vector<mm::PathTerms> terms;
  for (const auto& plan : s.paths) {
    const auto params = s.registry.path_params(s.gpus[0], s.gpus[1], plan);
    terms.push_back(mm::terms_pipelined(
        params, mm::PhiFitter::fit_for_path(params, 64e6, 64e6, 0.25)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mm::ThetaSolver::solve(terms, 64e6));
  }
}
BENCHMARK(BM_ThetaSolve);

static void BM_PhiFit(benchmark::State& state) {
  auto& s = setup();
  const auto params = s.registry.path_params(s.gpus[0], s.gpus[1],
                                             s.paths[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mm::PhiFitter::fit_for_path(params, 64e6, 64e6, 0.25));
  }
}
BENCHMARK(BM_PhiFit);

static void BM_PredictedBandwidth(benchmark::State& state) {
  auto& s = setup();
  mm::PathConfigurator cfg(s.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpath::benchcore::predicted_bandwidth(
        cfg, s.system.topology, s.gpus[0], s.gpus[1], 64 << 20,
        mt::PathPolicy::three_gpus()));
  }
}
BENCHMARK(BM_PredictedBandwidth);

BENCHMARK_MAIN();
