// FIG-6 — Reproduces paper Figure 6: OMB bidirectional bandwidth, same
// panel grid as Figure 5.
//
// Expected shape (paper): BIBW roughly doubles BW on duplex NVLink lanes;
// the host-staged configuration DEGRADES under bidirectional load because
// four concurrent staging streams share the host memory channel, which the
// model does not capture (Observation 5) — so prediction error is clearly
// higher than in Figure 5, especially with host staging enabled.
#include <cstdio>

#include "figure_sweep.hpp"

int main(int argc, char** argv) {
  const bool quick = mpath::bench::quick_mode(argc, argv);
  const int jobs = mpath::bench::jobs_mode(argc, argv);
  std::printf("FIG-6: bidirectional MPI bandwidth (paper Figure 6)\n\n");
  mpath::bench::run_bandwidth_figure("fig6",
                                     mpath::tuning::TuneMetric::Bidirectional,
                                     quick, jobs);
  return 0;
}
