// COLLECTIVE LOOP — collective graph chaining as a gated benchmark (the
// steady-state replay economics the chaining PR claims).
//
// Part 1 (host-cost gate, hard): each of the four chained collectives
// (allreduce-rhd, alltoall-bruck, allgather-ring, bcast-binomial) runs N
// iterations on a fresh model-driven Beluga stack with chaining on. Every
// iteration is one World::run, wall-clocked on the host. Iteration 0 pays
// capture: per-step theta solves + path configuration + template
// compilation at seal. Steady iterations replay the sealed chain — index
// lookup + op walk, zero solves. The bench fails (exit 1) unless the mean
// steady-state iteration costs at most 10% of the capture iteration for
// every collective.
//
// Part 2 (identity gate, hard): the same loops re-run with chaining off on
// an identically seeded stack; the per-iteration simulated completion
// instants must match the chained run bit for bit (the replay fast path
// must be invisible in simulated time).
//
// Part 3 (batched admission gate, hard): a 2-rank *scheduled* stack — whose
// allreduce rounds use directed-disjoint links, so batched admission can
// accept them — replays through TransferScheduler::admit_chain. Requires at
// least one admitted round, at least one chain-registered ticket, and a
// clean departure ledger (footprint_mismatches == 0).
//
// Part 4 (fault soak, MPATH_NIGHTLY_SOAK=1 only): chained replay while a
// seeded FaultInjector degradation plan (sever_probability = 0) churns the
// GPU links. Capacity events supersede the chain's epoch, killing it;
// every iteration must still complete (fallback to fresh admission), and
// once the plan is exhausted re-capture must converge back to replaying.
//
// Writes BENCH_pr10.json (override with --out=PATH or MPATH_BENCH_OUT).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mpath/mpisim/collectives.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/sim/fault.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mg = mpath::gpusim;
namespace mi = mpath::mpisim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

std::string out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--out=", 0) == 0) return a.substr(6);
  }
  if (const char* env = std::getenv("MPATH_BENCH_OUT")) return env;
  return "BENCH_pr10.json";
}

enum class Coll { AllreduceRhd, AlltoallBruck, AllgatherRing, BcastBinomial };

constexpr const char* coll_name(Coll c) {
  switch (c) {
    case Coll::AllreduceRhd: return "allreduce-rhd";
    case Coll::AlltoallBruck: return "alltoall-bruck";
    case Coll::AllgatherRing: return "allgather-ring";
    case Coll::BcastBinomial: return "bcast-binomial";
  }
  return "?";
}

/// One invocation of `c` at `bytes` per rank (buffers are allocated fresh
/// per iteration in both modes, so allocation cost cancels in the ratio).
ms::Task<void> run_once(mi::Communicator& comm, Coll c, std::size_t bytes) {
  const auto p = static_cast<std::size_t>(comm.size());
  switch (c) {
    case Coll::AllreduceRhd: {
      const std::size_t floats = bytes / sizeof(float) / p * p;
      mg::DeviceBuffer data(comm.device(), floats * sizeof(float),
                            mg::Payload::Simulated);
      co_await mi::allreduce_sum(comm, data,
                                 mi::AllreduceAlgo::RecursiveHalvingDoubling);
      break;
    }
    case Coll::AlltoallBruck: {
      const std::size_t blk = bytes / p;
      mg::DeviceBuffer send(comm.device(), p * blk, mg::Payload::Simulated);
      mg::DeviceBuffer recv(comm.device(), p * blk, mg::Payload::Simulated);
      co_await mi::alltoall(comm, send, recv, blk, mi::AlltoallAlgo::Bruck);
      break;
    }
    case Coll::AllgatherRing: {
      const std::size_t blk = bytes / p;
      mg::DeviceBuffer data(comm.device(), p * blk, mg::Payload::Simulated);
      co_await mi::allgather(comm, data, blk);
      break;
    }
    case Coll::BcastBinomial: {
      mg::DeviceBuffer data(comm.device(), bytes, mg::Payload::Simulated);
      co_await mi::broadcast(comm, data, bytes, 0);
      break;
    }
  }
}

struct LoopRun {
  std::vector<double> wall_s;  ///< host wall-clock per iteration
  std::vector<double> sim_t;   ///< engine clock after each iteration
  /// Cumulative GraphUseStats::plan_ns after each iteration: the host
  /// nanoseconds the channel spent in synchronous planning sections
  /// (configure solves, admissions, template compiles, chain claims) —
  /// simulated device/network time excluded. Per-iteration deltas of this
  /// are the "host-side CPU cost" the steady-state gate compares.
  std::vector<std::uint64_t> plan_ns;
};

/// Per-iteration planning cost from the cumulative snapshots.
double plan_delta_ns(const LoopRun& r, std::size_t i) {
  const std::uint64_t prev = i == 0 ? 0 : r.plan_ns[i - 1];
  return static_cast<double>(r.plan_ns[i] - prev);
}

/// N barrier-free iterations, one World::run each: the wall-clock of a run
/// is exactly that iteration's host cost (planning + simulation), with no
/// cross-iteration attribution smear. The engine clock persists across
/// runs, so sim_t is a cumulative timeline fingerprint.
LoopRun run_loop(bc::SimStack& stack, Coll c, std::size_t bytes, int iters) {
  LoopRun r;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    stack.world().run([&](mi::Communicator& comm) -> ms::Task<void> {
      co_await run_once(comm, c, bytes);
    });
    const auto t1 = std::chrono::steady_clock::now();
    r.wall_s.push_back(std::chrono::duration<double>(t1 - t0).count());
    r.sim_t.push_back(stack.engine().now());
    r.plan_ns.push_back(
        static_cast<mp::ModelDrivenChannel&>(stack.channel())
            .graph_stats()
            .plan_ns);
    if (std::getenv("MPATH_LOOP_DEBUG") != nullptr) {
      auto& ch = static_cast<mp::ModelDrivenChannel&>(stack.channel());
      const auto& gs = ch.graph_stats();
      std::printf("    iter %d: now=%.17g replays=%llu fresh=%llu "
                  "busy=%llu compfail=%llu\n",
                  i, stack.engine().now(),
                  static_cast<unsigned long long>(gs.replays),
                  static_cast<unsigned long long>(gs.replays_fresh),
                  static_cast<unsigned long long>(gs.busy_fallbacks),
                  static_cast<unsigned long long>(gs.compile_failures));
    }
  }
  return r;
}

double mean(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  if (hi <= lo || hi > v.size()) return 0.0;
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(lo),
                         v.begin() + static_cast<std::ptrdiff_t>(hi), 0.0) /
         static_cast<double>(hi - lo);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const bool soak = [] {
    const char* env = std::getenv("MPATH_NIGHTLY_SOAK");
    return env != nullptr && std::string(env) == "1";
  }();
  std::printf("COLLECTIVE LOOP: chained-replay steady-state gates\n\n");

  const int iters = quick ? 12 : 40;
  const std::size_t bytes = 32_MiB;
  constexpr double kMaxSteadyFraction = 0.10;
  const std::vector<Coll> colls = {Coll::AllreduceRhd, Coll::AlltoallBruck,
                                   Coll::AllgatherRing, Coll::BcastBinomial};
  bool gate_failed = false;
  std::ostringstream json;
  json.precision(6);
  json << "{\n  \"host_cost\": {\n";

  // -- Parts 1 + 2: host-cost ratio and timeline identity per collective --
  mb::CalibratedSystem cal(mt::make_system("beluga"));
  bool identity_ok = true;
  for (std::size_t ci = 0; ci < colls.size(); ++ci) {
    const Coll c = colls[ci];

    mm::PathConfigurator cfg_on(cal.registry);
    bc::StackOptions opt_on;
    opt_on.collective_graphs = true;
    auto on = bc::SimStack::model_driven(cal.system, cfg_on,
                                         mt::PathPolicy::three_gpus(), opt_on);
    const LoopRun chained = run_loop(on, c, bytes, iters);
    const mp::ChainStats st = on.chain()->stats();

    mm::PathConfigurator cfg_off(cal.registry);
    bc::StackOptions opt_off;
    auto off = bc::SimStack::model_driven(cal.system, cfg_off,
                                          mt::PathPolicy::three_gpus(),
                                          opt_off);
    const LoopRun fresh = run_loop(off, c, bytes, iters);

    // Host planning cost, not whole-iteration wall-clock: simulating the
    // transfers costs the same host time captured or chained (the event
    // timeline is bit-identical, gated below), so the wall ratio only
    // measures how much of an iteration the simulator spends on physics.
    // What chaining amortises is the planning layer — solves, compiles,
    // admissions — and that is what plan_ns isolates.
    const double capture = plan_delta_ns(chained, 0);
    double steady = 0.0;
    for (std::size_t i = 2; i < chained.plan_ns.size(); ++i) {
      steady += plan_delta_ns(chained, i);
    }
    steady /= static_cast<double>(chained.plan_ns.size() - 2);
    const double ratio = steady / capture;
    const double capture_wall = chained.wall_s[0];
    const double steady_wall = mean(chained.wall_s, 2, chained.wall_s.size());
    std::size_t diverged = 0;
    for (std::size_t i = 0; i < chained.sim_t.size(); ++i) {
      if (chained.sim_t[i] != fresh.sim_t[i]) ++diverged;
    }
    const bool chained_ok = st.captures >= 1 && st.replayed_steps > 0 &&
                            st.mismatch_kills == 0 && st.capture_aborts == 0;
    const bool ratio_ok = ratio <= kMaxSteadyFraction;
    std::printf(
        "%-15s plan: capture %8.1f us, steady %7.2f us (ratio %.4f)  "
        "wall %.2f/%.2f ms  replayed %llu, passthrough %llu%s\n",
        coll_name(c), 1e-3 * capture, 1e-3 * steady, ratio,
        1e3 * capture_wall, 1e3 * steady_wall,
        static_cast<unsigned long long>(st.replayed_steps),
        static_cast<unsigned long long>(st.passthrough_steps),
        diverged == 0 ? "" : "  [TIMELINE DIVERGED]");
    if (!ratio_ok) {
      std::printf("::error::%s: steady-state planning cost is %.1f%% of the "
                  "capture iteration's (gate: <= %.0f%%)\n",
                  coll_name(c), 100.0 * ratio, 100.0 * kMaxSteadyFraction);
      gate_failed = true;
    }
    if (!chained_ok) {
      std::printf("::error::%s: chaining did not engage cleanly "
                  "(captures %llu, replayed %llu, mismatch kills %llu, "
                  "aborts %llu)\n",
                  coll_name(c), static_cast<unsigned long long>(st.captures),
                  static_cast<unsigned long long>(st.replayed_steps),
                  static_cast<unsigned long long>(st.mismatch_kills),
                  static_cast<unsigned long long>(st.capture_aborts));
      gate_failed = true;
    }
    if (diverged != 0) {
      std::printf("::error::%s: %zu of %d chained iterations diverged from "
                  "the uncaptured timeline\n",
                  coll_name(c), diverged, iters);
      identity_ok = false;
      gate_failed = true;
    }
    json << "    \"" << coll_name(c)
         << "\": {\"capture_plan_ns\": " << capture
         << ", \"steady_plan_ns\": " << steady << ", \"ratio\": " << ratio
         << ", \"capture_wall_s\": " << capture_wall
         << ", \"steady_wall_s\": " << steady_wall
         << ", \"iterations\": " << iters
         << ", \"replayed_steps\": " << st.replayed_steps
         << ", \"passthrough_steps\": " << st.passthrough_steps
         << ", \"patches\": " << st.patches
         << ", \"timeline_identical\": " << (diverged == 0 ? "true" : "false")
         << ", \"passed\": "
         << (ratio_ok && chained_ok && diverged == 0 ? "true" : "false")
         << "}" << (ci + 1 < colls.size() ? "," : "") << "\n";
  }
  json << "  },\n  \"max_steady_fraction\": " << kMaxSteadyFraction << ",\n"
       << "  \"timeline_identical\": " << (identity_ok ? "true" : "false")
       << ",\n";

  // -- Part 3: batched admission on a scheduled 2-rank stack --------------
  {
    mm::PathConfigurator cfg(cal.registry);
    bc::StackOptions opt;
    opt.collective_graphs = true;
    opt.nranks = 2;
    auto stack = bc::SimStack::model_driven_scheduled(
        cal.system, cfg, mt::PathPolicy::two_gpus(), {}, opt);
    const int sched_iters = quick ? 8 : 16;
    (void)run_loop(stack, Coll::AllreduceRhd, bytes, sched_iters);
    const auto& ss = stack.scheduler()->stats();
    const mp::ChainStats cs = stack.chain()->stats();
    const bool admitted = ss.chain_round_admits >= 1 &&
                          ss.chain_step_admits >= 1 && cs.replayed_steps > 0;
    const bool ledger_ok = ss.footprint_mismatches == 0;
    std::printf(
        "\nscheduled p=2: %llu rounds admitted (%llu tickets), %llu refused, "
        "%llu contended fallbacks, %llu unwound, footprint mismatches %llu\n",
        static_cast<unsigned long long>(ss.chain_round_admits),
        static_cast<unsigned long long>(ss.chain_step_admits),
        static_cast<unsigned long long>(ss.chain_round_rejects),
        static_cast<unsigned long long>(cs.contended_rounds),
        static_cast<unsigned long long>(ss.chain_unwound),
        static_cast<unsigned long long>(ss.footprint_mismatches));
    if (!admitted) {
      std::printf("::error::scheduled: batched admission never accepted a "
                  "round — admit_chain is not engaging\n");
      gate_failed = true;
    }
    if (!ledger_ok) {
      std::printf("::error::scheduled: %llu footprint mismatches — chain "
                  "tickets and fresh admissions disagree on link charges\n",
                  static_cast<unsigned long long>(ss.footprint_mismatches));
      gate_failed = true;
    }
    json << "  \"scheduled\": {\"chain_round_admits\": "
         << ss.chain_round_admits
         << ", \"chain_step_admits\": " << ss.chain_step_admits
         << ", \"chain_round_rejects\": " << ss.chain_round_rejects
         << ", \"contended_rounds\": " << cs.contended_rounds
         << ", \"chain_unwound\": " << ss.chain_unwound
         << ", \"footprint_mismatches\": " << ss.footprint_mismatches
         << ", \"passed\": " << (admitted && ledger_ok ? "true" : "false")
         << "},\n";
  }

  // -- Part 4: degradation soak (nightly) ---------------------------------
  if (soak) {
    mm::PathConfigurator cfg(cal.registry);
    bc::StackOptions opt;
    opt.collective_graphs = true;
    opt.nranks = 2;
    auto stack = bc::SimStack::model_driven_scheduled(
        cal.system, cfg, mt::PathPolicy::two_gpus(), {}, opt);
    const auto& topo = stack.system().topology;
    std::vector<ms::LinkId> links;
    for (const auto& e : topo.edges()) {
      if (topo.device(e.from).kind == mt::DeviceKind::Gpu &&
          topo.device(e.to).kind == mt::DeviceKind::Gpu &&
          !e.is_memory_channel) {
        links.push_back(stack.runtime().binding().link_for_edge(e.id));
      }
    }
    ms::FaultInjector inj(stack.engine(), stack.network());
    ms::FaultInjector::RandomPlanOptions fopt;
    fopt.horizon = 40e-3;
    fopt.faults = quick ? 8 : 16;
    fopt.sever_probability = 0.0;  // degrade only: every transfer completes
    fopt.min_duration = 1e-3;
    fopt.max_duration = 5e-3;
    inj.random_plan(links, fopt, 83);
    const int churn_iters = quick ? 24 : 64;
    // World::run drains the engine, so the first run would fast-forward
    // through the whole fault plan; instead the churn loop runs inside one
    // engine drain with barrier-separated iterations.
    int completed = 0;
    stack.world().run([&](mi::Communicator& comm) -> ms::Task<void> {
      for (int i = 0; i < churn_iters; ++i) {
        co_await comm.barrier();
        co_await run_once(comm, Coll::AllreduceRhd, bytes);
        co_await comm.barrier();
        if (comm.rank() == 0) ++completed;
      }
    });
    const std::uint64_t replayed_mid = stack.chain()->stats().replayed_steps;
    // The plan is exhausted (the churn loop's sim extent far outruns the
    // horizon); a few more iterations must land back on the replay path.
    (void)run_loop(stack, Coll::AllreduceRhd, bytes, 4);
    const mp::ChainStats cs = stack.chain()->stats();
    const auto& ss = stack.scheduler()->stats();
    const bool accounted = completed == churn_iters;
    const bool invalidated = cs.epoch_kills + cs.contended_rounds > 0;
    const bool converged = cs.replayed_steps > replayed_mid;
    std::printf(
        "\nsoak: %d/%d iterations, %llu captures, %llu epoch kills, "
        "%llu contended fallbacks, %llu unwound, %llu replayed steps, "
        "footprint mismatches %llu — %s\n",
        completed, churn_iters, static_cast<unsigned long long>(cs.captures),
        static_cast<unsigned long long>(cs.epoch_kills),
        static_cast<unsigned long long>(cs.contended_rounds),
        static_cast<unsigned long long>(cs.unwound_tickets),
        static_cast<unsigned long long>(cs.replayed_steps),
        static_cast<unsigned long long>(ss.footprint_mismatches),
        accounted ? "all accounted" : "LOST ITERATIONS");
    const bool soak_ok = accounted && invalidated && converged &&
                         ss.footprint_mismatches == 0;
    if (!soak_ok) {
      std::printf("::error::soak gate: accounted=%d invalidated=%d "
                  "reconverged=%d ledger_ok=%d\n",
                  accounted ? 1 : 0, invalidated ? 1 : 0, converged ? 1 : 0,
                  ss.footprint_mismatches == 0 ? 1 : 0);
      gate_failed = true;
    }
    json << "  \"soak\": {\"iterations\": " << churn_iters
         << ", \"completed\": " << completed
         << ", \"captures\": " << cs.captures
         << ", \"epoch_kills\": " << cs.epoch_kills
         << ", \"contended_rounds\": " << cs.contended_rounds
         << ", \"unwound_tickets\": " << cs.unwound_tickets
         << ", \"footprint_mismatches\": " << ss.footprint_mismatches
         << ", \"reconverged\": " << (converged ? "true" : "false")
         << ", \"passed\": " << (soak_ok ? "true" : "false") << "},\n";
  } else {
    json << "  \"soak\": null,\n";
  }

  json << "  \"gate_passed\": " << (gate_failed ? "false" : "true") << "\n}\n";
  const std::string path = out_path(argc, argv);
  mpath::util::write_file_atomic(path, json.str());
  std::printf("\nwrote %s\n", path.c_str());
  if (gate_failed) {
    std::printf("GATE FAILED\n");
    return 1;
  }
  std::printf("gate passed: steady-state chained replay <= %.0f%% of capture "
              "cost; timelines bit-identical; batched admission clean\n",
              100.0 * kMaxSteadyFraction);
  return 0;
}
