// Infrastructure microbenchmark: event throughput of the discrete-event
// engine and the cost of fluid-network rate recomputation. Not a paper
// figure — it documents that the substrate is fast enough for the
// exhaustive static-tuning baseline to be practical.
//
// The fluid benchmarks run twice: once with the legacy eager whole-network
// solver (SolverMode::kFull, "mode:full") and once with the incremental
// dirty-component solver plus same-time coalescing ("mode:incr"), so the
// speedup of the incremental path is measured in-tree.
#include <benchmark/benchmark.h>

#include "mpath/sim/fluid.hpp"
#include "mpath/sim/sync.hpp"

namespace ms = mpath::sim;

namespace {

ms::FluidNetwork::SolverMode mode_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? ms::FluidNetwork::SolverMode::kFull
                             : ms::FluidNetwork::SolverMode::kIncremental;
}

}  // namespace

static void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    ms::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.schedule_callback(1e-6 * i, [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

static void BM_CoroutineSpawnJoin(benchmark::State& state) {
  for (auto _ : state) {
    ms::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.spawn([](ms::Engine& e) -> ms::Task<void> {
        co_await e.delay(1e-6);
      }(engine));
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSpawnJoin)->Arg(1000)->Arg(10000);

// Long-lived concurrent flows over a small ring of shared links: measures
// the steady-state cost of completions re-solving rates.
static void BM_FluidConcurrentFlows(benchmark::State& state) {
  std::uint64_t flows_done = 0;
  ms::FluidNetwork::SolverStats last{};
  for (auto _ : state) {
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    const int nlinks = 8;
    std::vector<ms::LinkId> links;
    for (int l = 0; l < nlinks; ++l) {
      links.push_back(net.add_link({"l", 1e9, 1e-6}));
    }
    const int flows = static_cast<int>(state.range(0));
    for (int f = 0; f < flows; ++f) {
      std::vector<ms::LinkId> route{links[f % nlinks],
                                    links[(f + 1) % nlinks]};
      engine.spawn([](ms::FluidNetwork& n, std::vector<ms::LinkId> r,
                      double bytes) -> ms::Task<void> {
        co_await n.transfer(std::move(r), bytes);
      }(net, route, 1e6 * (1 + f % 7)));
    }
    benchmark::DoNotOptimize(engine.run());
    flows_done += static_cast<std::uint64_t>(flows);
    last = net.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows_done));
  state.SetLabel(state.range(1) == 0 ? "mode:full" : "mode:incr");
  state.counters["resolves"] = static_cast<double>(last.resolves);
  state.counters["coalesced"] = static_cast<double>(last.coalesced);
}
BENCHMARK(BM_FluidConcurrentFlows)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Pipeline-style churn on a shared-link topology: W workers each push a
// stream of C chunks through {shared hub, private spoke}. Chunk completions
// land in same-timestamp bursts (the pipeline engine's common case at large
// k), so the incremental solver coalesces a burst's worth of re-solves into
// one pass while the full solver pays one whole-network solve per event.
// items_per_second == flows (chunks) per second.
static void BM_FluidSharedLinkChurn(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int chunks = 64;
  std::uint64_t flows_done = 0;
  ms::FluidNetwork::SolverStats last{};
  for (auto _ : state) {
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    const auto hub = net.add_link({"hub", 64e9, 0.0});
    std::vector<ms::LinkId> spokes;
    for (int w = 0; w < workers; ++w) {
      spokes.push_back(net.add_link({"spoke", 2e9, 0.0}));
    }
    for (int w = 0; w < workers; ++w) {
      engine.spawn([](ms::FluidNetwork& n, ms::LinkId h, ms::LinkId s,
                      int c) -> ms::Task<void> {
        for (int i = 0; i < c; ++i) {
          std::vector<ms::LinkId> route{h, s};
          co_await n.transfer(std::move(route), 1e6);
        }
      }(net, hub, spokes[w], chunks));
    }
    benchmark::DoNotOptimize(engine.run());
    flows_done += static_cast<std::uint64_t>(workers) * chunks;
    last = net.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows_done));
  state.SetLabel(state.range(1) == 0 ? "mode:full" : "mode:incr");
  state.counters["resolves"] = static_cast<double>(last.resolves);
  state.counters["coalesced"] = static_cast<double>(last.coalesced);
}
BENCHMARK(BM_FluidSharedLinkChurn)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Disjoint worker pairs (no shared hub): the incremental solver re-solves
// only the two-link component a chunk touches; the full solver re-walks
// every link on every event. This isolates the dirty-component win.
static void BM_FluidDisjointChurn(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int chunks = 64;
  std::uint64_t flows_done = 0;
  ms::FluidNetwork::SolverStats last{};
  for (auto _ : state) {
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    std::vector<ms::LinkId> a, b;
    for (int w = 0; w < workers; ++w) {
      a.push_back(net.add_link({"a", 2e9, 0.0}));
      b.push_back(net.add_link({"b", 2e9, 0.0}));
    }
    for (int w = 0; w < workers; ++w) {
      engine.spawn([](ms::FluidNetwork& n, ms::LinkId la, ms::LinkId lb,
                      int c, int w_) -> ms::Task<void> {
        for (int i = 0; i < c; ++i) {
          std::vector<ms::LinkId> route{la, lb};
          co_await n.transfer(std::move(route), 1e6 * (1 + (w_ + i) % 7));
        }
      }(net, a[w], b[w], chunks, w));
    }
    benchmark::DoNotOptimize(engine.run());
    flows_done += static_cast<std::uint64_t>(workers) * chunks;
    last = net.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows_done));
  state.SetLabel(state.range(1) == 0 ? "mode:full" : "mode:incr");
  state.counters["resolves"] = static_cast<double>(last.resolves);
  state.counters["coalesced"] = static_cast<double>(last.coalesced);
}
BENCHMARK(BM_FluidDisjointChurn)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

BENCHMARK_MAIN();
