// Infrastructure microbenchmark: event throughput of the discrete-event
// engine and the cost of fluid-network rate recomputation. Not a paper
// figure — it documents that the substrate is fast enough for the
// exhaustive static-tuning baseline to be practical.
#include <benchmark/benchmark.h>

#include "mpath/sim/fluid.hpp"
#include "mpath/sim/sync.hpp"

namespace ms = mpath::sim;

static void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    ms::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.schedule_callback(1e-6 * i, [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

static void BM_CoroutineSpawnJoin(benchmark::State& state) {
  for (auto _ : state) {
    ms::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.spawn([](ms::Engine& e) -> ms::Task<void> {
        co_await e.delay(1e-6);
      }(engine));
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSpawnJoin)->Arg(1000)->Arg(10000);

static void BM_FluidConcurrentFlows(benchmark::State& state) {
  for (auto _ : state) {
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    const int nlinks = 8;
    std::vector<ms::LinkId> links;
    for (int l = 0; l < nlinks; ++l) {
      links.push_back(net.add_link({"l", 1e9, 1e-6}));
    }
    const int flows = static_cast<int>(state.range(0));
    for (int f = 0; f < flows; ++f) {
      std::vector<ms::LinkId> route{links[f % nlinks],
                                    links[(f + 1) % nlinks]};
      engine.spawn([](ms::FluidNetwork& n, std::vector<ms::LinkId> r,
                      double bytes) -> ms::Task<void> {
        co_await n.transfer(std::move(r), bytes);
      }(net, route, 1e6 * (1 + f % 7)));
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FluidConcurrentFlows)->Arg(16)->Arg(256);

BENCHMARK_MAIN();
