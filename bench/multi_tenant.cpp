// MULTI-TENANT — Joint planning under concurrent transfers: the node-level
// TransferScheduler's accuracy gate plus open-loop traffic throughput.
//
// Part 1 (the gate): K in {2, 4, 8} simultaneous same-pair transfers. A
// solo-planned stack (SchedulerOptions{.joint = false}, identical admission
// bookkeeping) believes each transfer owns the node, so its predicted
// completion is ~K× too fast; the joint water-fill sees the shared links.
// The bench fails (exit 1) unless the joint mean relative prediction error
// is at most one third of the solo baseline at every K.
//
// Part 2 (throughput): open-loop arrival processes — allreduce-style
// storms, Poisson, heavy-tail — replayed against the scheduled stack with
// mixed message sizes and random GPU pairs; reports transfers/s, aggregate
// bandwidth and both planners' prediction error.
//
// Part 3 (churn soak, MPATH_NIGHTLY_SOAK=1 only): the same traffic with
// recovery enabled while a seeded FaultInjector degrades/severs/restores
// busy links — every transfer must end accounted (completed or typed
// failure), with recovery re-plans going through the scheduler.
//
// Writes BENCH_pr6.json (override with --out=PATH or MPATH_BENCH_OUT).
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mpath/benchcore/traffic.hpp"
#include "mpath/sim/fault.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

std::string out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--out=", 0) == 0) return a.substr(6);
  }
  if (const char* env = std::getenv("MPATH_BENCH_OUT")) return env;
  return "BENCH_pr6.json";
}

double mean_rel_error(const std::vector<mp::TransferScheduler::Record>& recs) {
  double sum = 0.0;
  int n = 0;
  for (const auto& r : recs) {
    if (!r.completed() || r.actual_s() <= 0.0) continue;
    sum += std::abs(r.predicted_s - r.actual_s()) / r.actual_s();
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

struct RunResult {
  bc::TrafficReport report;
  double error = 0.0;  ///< mean |predicted - simulated| / simulated
  mp::TransferScheduler::Stats sched;
  mp::RecoveryStats recovery;
};

/// One fresh scheduled stack, one replay. `joint=false` is the solo
/// ablation; `faults` (optional) seeds a random churn plan over the
/// GPU-to-GPU links before the replay starts.
RunResult run_scenario(const mb::CalibratedSystem& cal,
                       const std::vector<bc::Arrival>& arrivals, bool joint,
                       const mt::PathPolicy& policy, bool recovery,
                       const ms::FaultInjector::RandomPlanOptions* faults,
                       std::uint64_t fault_seed) {
  mm::PathConfigurator cfg(cal.registry);
  mp::SchedulerOptions sopt;
  sopt.joint = joint;
  bc::StackOptions stack_opt;
  if (recovery) {
    stack_opt.model.recovery.enabled = true;
    stack_opt.model.recovery.slack = 4.0;
  }
  auto stack = bc::SimStack::model_driven_scheduled(cal.system, cfg, policy,
                                                    sopt, stack_opt);
  ms::FaultInjector injector(stack.engine(), stack.network());
  if (faults != nullptr) {
    std::vector<ms::LinkId> links;
    const auto& topo = stack.system().topology;
    for (const auto& e : topo.edges()) {
      if (topo.device(e.from).kind == mt::DeviceKind::Gpu &&
          topo.device(e.to).kind == mt::DeviceKind::Gpu &&
          !e.is_memory_channel) {
        links.push_back(stack.runtime().binding().link_for_edge(e.id));
      }
    }
    injector.random_plan(links, *faults, fault_seed);
  }
  RunResult r;
  r.report = bc::run_traffic(stack, arrivals);
  r.error = mean_rel_error(stack.scheduler()->history());
  r.sched = stack.scheduler()->stats();
  r.recovery =
      static_cast<mp::ModelDrivenChannel&>(stack.channel()).recovery_stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const bool soak = [] {
    const char* env = std::getenv("MPATH_NIGHTLY_SOAK");
    return env != nullptr && std::string(env) == "1";
  }();
  std::printf("MULTI-TENANT: joint vs solo planning under concurrency\n\n");

  const mb::CalibratedSystem cal(mt::make_beluga());
  const auto gpus = cal.system.topology.gpus();
  std::ostringstream json;
  json.precision(6);
  json << "{\n  \"gate\": [\n";

  // -- Part 1: the K-transfer accuracy gate ------------------------------
  bool gate_failed = false;
  const std::vector<int> ks = {2, 4, 8};
  std::printf("%4s %14s %14s %10s %14s\n", "K", "joint err", "solo err",
              "ratio", "transfers/s");
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int k = ks[i];
    std::vector<bc::Arrival> storm(
        static_cast<std::size_t>(k),
        bc::Arrival{0.0, gpus[0], gpus[1], 64_MiB});
    const RunResult joint = run_scenario(cal, storm, true,
                                         mt::PathPolicy::direct_only(), false,
                                         nullptr, 0);
    const RunResult solo = run_scenario(cal, storm, false,
                                        mt::PathPolicy::direct_only(), false,
                                        nullptr, 0);
    const double ratio =
        solo.error > 0.0 ? joint.error / solo.error : 0.0;
    std::printf("%4d %13.2f%% %13.2f%% %10.3f %14.0f\n", k,
                100.0 * joint.error, 100.0 * solo.error, ratio,
                joint.report.transfers_per_s);
    // Acceptance: joint error at most a third of the solo baseline.
    if (joint.error > solo.error / 3.0) {
      std::printf("::error::K=%d joint error %.2f%% exceeds a third of the "
                  "solo baseline %.2f%%\n",
                  k, 100.0 * joint.error, 100.0 * solo.error);
      gate_failed = true;
    }
    json << "    {\"k\": " << k << ", \"joint_error\": " << joint.error
         << ", \"solo_error\": " << solo.error << ", \"ratio\": " << ratio
         << ", \"transfers_per_s\": " << joint.report.transfers_per_s
         << ", \"aggregate_gbps\": "
         << mpath::util::to_gbps(joint.report.aggregate_bandwidth) << "}"
         << (i + 1 < ks.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"traffic\": [\n";

  // -- Part 2: open-loop traffic throughput -----------------------------
  const std::vector<bc::ArrivalPattern> patterns = {
      bc::ArrivalPattern::kStorm, bc::ArrivalPattern::kPoisson,
      bc::ArrivalPattern::kHeavyTail};
  std::printf("\n%12s %6s %12s %12s %14s %14s\n", "pattern", "n",
              "joint err", "solo err", "transfers/s", "agg GB/s");
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    bc::TrafficOptions opt;
    opt.pattern = patterns[i];
    opt.transfers = quick ? 16 : 64;
    opt.storm_width = 4;
    opt.mean_interarrival_s = 150e-6;
    opt.sizes = {4_MiB, 16_MiB, 64_MiB};
    opt.seed = 11 + i;
    const auto arrivals = bc::make_arrivals(cal.system.topology, opt);
    const RunResult joint = run_scenario(cal, arrivals, true,
                                         mt::PathPolicy::three_gpus(), false,
                                         nullptr, 0);
    const RunResult solo = run_scenario(cal, arrivals, false,
                                        mt::PathPolicy::three_gpus(), false,
                                        nullptr, 0);
    std::printf("%12s %6d %11.2f%% %11.2f%% %14.0f %14.2f\n",
                std::string(bc::to_string(opt.pattern)).c_str(),
                opt.transfers, 100.0 * joint.error, 100.0 * solo.error,
                joint.report.transfers_per_s,
                mpath::util::to_gbps(joint.report.aggregate_bandwidth));
    json << "    {\"pattern\": \"" << bc::to_string(opt.pattern)
         << "\", \"transfers\": " << opt.transfers
         << ", \"joint_error\": " << joint.error
         << ", \"solo_error\": " << solo.error
         << ", \"completed\": " << joint.report.completed
         << ", \"transfers_per_s\": " << joint.report.transfers_per_s
         << ", \"aggregate_gbps\": "
         << mpath::util::to_gbps(joint.report.aggregate_bandwidth) << "}"
         << (i + 1 < patterns.size() ? "," : "") << "\n";
  }
  json << "  ],\n";

  // -- Part 3: churn-under-load soak (nightly) ---------------------------
  if (soak) {
    bc::TrafficOptions opt;
    opt.pattern = bc::ArrivalPattern::kPoisson;
    opt.transfers = quick ? 32 : 200;
    opt.mean_interarrival_s = 200e-6;
    opt.sizes = {4_MiB, 16_MiB, 64_MiB};
    opt.seed = 29;
    const auto arrivals = bc::make_arrivals(cal.system.topology, opt);
    ms::FaultInjector::RandomPlanOptions faults;
    faults.start = 0.0;
    // Keep the fault window inside the arrival window so churn actually
    // overlaps traffic (the tail would otherwise flap idle links).
    faults.horizon = arrivals.back().t + 2e-3;
    faults.faults = quick ? 12 : 24;
    faults.min_factor = 0.0;
    faults.max_factor = 0.5;
    // Severs must outlive the 1 ms watchdog floor or recovery never fires.
    faults.sever_probability = 0.5;
    faults.restore_probability = 0.9;
    faults.min_duration = 5e-3;
    faults.max_duration = 20e-3;
    const RunResult r = run_scenario(cal, arrivals, true,
                                     mt::PathPolicy::three_gpus(), true,
                                     &faults, 97);
    const bool accounted =
        r.report.completed + r.report.failed == r.report.transfers;
    std::printf(
        "\nsoak: %d transfers, %d completed, %d failed, %llu timeouts, "
        "%llu replans, %llu recovered — %s\n",
        r.report.transfers, r.report.completed, r.report.failed,
        static_cast<unsigned long long>(r.recovery.path_timeouts),
        static_cast<unsigned long long>(r.recovery.replans),
        static_cast<unsigned long long>(r.recovery.transfers_recovered),
        accounted ? "all accounted" : "LOST TRANSFERS");
    if (!accounted) gate_failed = true;
    json << "  \"soak\": {\"transfers\": " << r.report.transfers
         << ", \"completed\": " << r.report.completed
         << ", \"failed\": " << r.report.failed
         << ", \"path_timeouts\": " << r.recovery.path_timeouts
         << ", \"replans\": " << r.recovery.replans
         << ", \"transfers_recovered\": " << r.recovery.transfers_recovered
         << ", \"scheduler_replans\": " << r.sched.replans
         << ", \"all_accounted\": " << (accounted ? "true" : "false")
         << "},\n";
  } else {
    json << "  \"soak\": null,\n";
  }

  json << "  \"gate_passed\": " << (gate_failed ? "false" : "true") << "\n}\n";
  const std::string path = out_path(argc, argv);
  mpath::util::write_file_atomic(path, json.str());
  std::printf("\nwrote %s\n", path.c_str());
  if (gate_failed) {
    std::printf("GATE FAILED\n");
    return 1;
  }
  std::printf("gate passed: joint error <= solo/3 at every K\n");
  return 0;
}
