// OBS-ERR — Reproduces the paper's headline accuracy claim: "less than 6%
// error in predicting the optimal configuration for messages larger than
// 4MB" (unidirectional), with higher error (~8%) for bidirectional tests
// and for host-staged configurations.
//
// This bench sweeps both systems, all three policies and both windows,
// comparing the model's predicted bandwidth against the measured dynamic
// configuration (the observed optimum of the model-driven runtime), and
// prints the error statistics the paper quotes.
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mt = mpath::topo;
namespace mu = mpath::util;
using namespace mpath::util::literals;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  std::printf(
      "OBS-ERR: model prediction error summary (paper headline claim)\n\n");

  struct Bucket {
    mu::RunningStats above_4mb;
    mu::RunningStats all;
  };
  Bucket bw_no_host, bw_host, bibw_no_host, bibw_host;
  mu::CsvWriter csv(mb::results_dir() + "/prediction_error.csv");
  csv.header({"system", "test", "policy", "window", "bytes", "predicted_gbps",
              "observed_gbps", "error"});

  for (const char* system_name : {"beluga", "narval"}) {
    mb::CalibratedSystem cal(mt::make_system(system_name));
    const auto gpus = cal.system.topology.gpus();
    for (const auto& policy : mb::figure_policies()) {
      for (int window : {1, 16}) {
        for (std::size_t bytes : mb::message_sizes(quick)) {
          bc::P2POptions p2p;
          p2p.window = window;
          p2p.iterations = window == 1 ? 6 : 3;
          p2p.warmup = 1;
          for (bool bidirectional : {false, true}) {
            auto stack = bc::SimStack::model_driven(
                cal.system, *cal.configurator, policy);
            const double observed =
                bidirectional
                    ? bc::measure_bibw(stack.world(), bytes, p2p)
                    : bc::measure_bw(stack.world(), bytes, p2p);
            const double predicted =
                (bidirectional ? 2.0 : 1.0) *
                bc::predicted_bandwidth(*cal.configurator,
                                        cal.system.topology, gpus[0],
                                        gpus[1], bytes, policy);
            const double err = mu::relative_error(predicted, observed);
            Bucket& bucket =
                bidirectional ? (policy.include_host ? bibw_host : bibw_no_host)
                              : (policy.include_host ? bw_host : bw_no_host);
            bucket.all.add(err);
            if (bytes > 4_MiB) bucket.above_4mb.add(err);
            csv.row({system_name, bidirectional ? "bibw" : "bw",
                     policy.label(), std::to_string(window),
                     std::to_string(bytes), mu::CsvWriter::num(predicted),
                     mu::CsvWriter::num(observed), mu::CsvWriter::num(err)});
          }
        }
      }
    }
  }

  mu::Table table({"test", "policy set", "mean err (>4MB)", "mean err (all)",
                   "max err"});
  auto row = [&](const char* test, const char* pols, const Bucket& b) {
    table.add_row({test, pols, mb::pct(b.above_4mb.mean()),
                   mb::pct(b.all.mean()), mb::pct(b.all.max())});
  };
  row("BW", "no host", bw_no_host);
  row("BW", "with host", bw_host);
  row("BIBW", "no host", bibw_no_host);
  row("BIBW", "with host", bibw_host);
  table.print();
  std::printf(
      "\nPaper reference: <6%% mean (BW, >4MB); ~8%% (BIBW, no host); "
      "higher with host staging.\n");
  std::printf("CSV written to %s/prediction_error.csv\n",
              mb::results_dir().c_str());
  return 0;
}
