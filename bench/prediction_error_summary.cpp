// OBS-ERR — Reproduces the paper's headline accuracy claim: "less than 6%
// error in predicting the optimal configuration for messages larger than
// 4MB" (unidirectional), with higher error (~8%) for bidirectional tests
// and for host-staged configurations.
//
// This bench sweeps both systems, all three policies and both windows,
// comparing the model's predicted bandwidth against the measured dynamic
// configuration (the observed optimum of the model-driven runtime), and
// prints the error statistics the paper quotes.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mt = mpath::topo;
namespace mu = mpath::util;
using namespace mpath::util::literals;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const int jobs = mb::jobs_mode(argc, argv);
  std::printf(
      "OBS-ERR: model prediction error summary (paper headline claim)\n\n");

  const std::vector<std::string> systems = {"beluga", "narval"};
  const auto policies = mb::figure_policies();
  const std::vector<int> windows = {1, 16};
  const auto sizes = mb::message_sizes(quick);
  const std::size_t n_pol = policies.size();
  const std::size_t n_win = windows.size();
  const std::size_t n_size = sizes.size();
  constexpr std::size_t kDirections = 2;  // bw, bibw

  bc::SweepRunner runner(bc::SweepOptions{jobs});

  // Phase A — calibrate each system once.
  auto cals = runner.run(systems.size(), [&](std::size_t s) {
    return std::make_unique<mb::CalibratedSystem>(
        mt::make_system(systems[s]));
  });

  // Phase B — every (system, policy, window, size, direction) point on a
  // private stack + configurator over the shared calibration.
  struct Point {
    double predicted = 0.0;
    double observed = 0.0;
  };
  const std::size_t n =
      systems.size() * n_pol * n_win * n_size * kDirections;
  auto points = runner.run(n, [&](std::size_t idx) {
    const bool bidirectional = (idx % kDirections) == 1;
    const std::size_t cell = idx / kDirections;
    const std::size_t bytes = sizes[cell % n_size];
    const int window = windows[(cell / n_size) % n_win];
    const auto& policy = policies[(cell / (n_size * n_win)) % n_pol];
    const mb::CalibratedSystem& cal =
        *cals[cell / (n_size * n_win * n_pol)];
    const auto gpus = cal.system.topology.gpus();

    bc::P2POptions p2p;
    p2p.window = window;
    p2p.iterations = window == 1 ? 6 : 3;
    p2p.warmup = 1;

    mpath::model::PathConfigurator configurator(cal.registry);
    auto stack = bc::SimStack::model_driven(cal.system, configurator, policy);
    Point pt;
    pt.observed = bidirectional
                      ? bc::measure_bibw(stack.world(), bytes, p2p)
                      : bc::measure_bw(stack.world(), bytes, p2p);
    pt.predicted = (bidirectional ? 2.0 : 1.0) *
                   bc::predicted_bandwidth(configurator, cal.system.topology,
                                           gpus[0], gpus[1], bytes, policy);
    return pt;
  });

  // Serial merge: error statistics accumulate in grid order, so the
  // floating-point sums (and the CSV) match the serial run bit-for-bit.
  struct Bucket {
    mu::RunningStats above_4mb;
    mu::RunningStats all;
  };
  Bucket bw_no_host, bw_host, bibw_no_host, bibw_host;
  mu::CsvWriter csv(mb::results_dir() + "/prediction_error.csv");
  csv.header({"system", "test", "policy", "window", "bytes", "predicted_gbps",
              "observed_gbps", "error"});
  std::size_t idx = 0;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    for (std::size_t p = 0; p < n_pol; ++p) {
      const auto& policy = policies[p];
      for (int window : windows) {
        for (std::size_t bytes : sizes) {
          for (bool bidirectional : {false, true}) {
            const Point& pt = points[idx++];
            const double err =
                mu::relative_error(pt.predicted, pt.observed);
            Bucket& bucket =
                bidirectional
                    ? (policy.include_host ? bibw_host : bibw_no_host)
                    : (policy.include_host ? bw_host : bw_no_host);
            bucket.all.add(err);
            if (bytes > 4_MiB) bucket.above_4mb.add(err);
            csv.row({systems[s], bidirectional ? "bibw" : "bw",
                     policy.label(), std::to_string(window),
                     std::to_string(bytes), mu::CsvWriter::num(pt.predicted),
                     mu::CsvWriter::num(pt.observed),
                     mu::CsvWriter::num(err)});
          }
        }
      }
    }
  }
  csv.close();

  mu::Table table({"test", "policy set", "mean err (>4MB)", "mean err (all)",
                   "max err"});
  auto row = [&](const char* test, const char* pols, const Bucket& b) {
    table.add_row({test, pols, mb::pct(b.above_4mb.mean()),
                   mb::pct(b.all.mean()), mb::pct(b.all.max())});
  };
  row("BW", "no host", bw_no_host);
  row("BW", "with host", bw_host);
  row("BIBW", "no host", bibw_no_host);
  row("BIBW", "with host", bibw_host);
  table.print();
  std::printf(
      "\nPaper reference: <6%% mean (BW, >4MB); ~8%% (BIBW, no host); "
      "higher with host staging.\n");
  std::printf("CSV written to %s/prediction_error.csv\n",
              mb::results_dir().c_str());
  mb::report_sweep("prediction_error", runner.stats());
  return 0;
}
