// ABL-1 — Ablation over the chunk-count scheme of Section 3.4:
//   * no pipelining        — staged paths as two sequential hops (k = 1),
//   * exact sqrt (Eq 14/15) — optimal k, nonlinear in theta,
//   * linear phi (Eq 19)   — the paper's runtime linearization.
// Expected: pipelining is worth ~2x on staged-heavy configurations; the
// phi linearization tracks the exact rule closely (it exists to keep theta
// closed-form, not to change the split materially).
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace mu = mpath::util;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const int jobs = mb::jobs_mode(argc, argv);
  std::printf("ABL-1: chunking-scheme ablation (Beluga, 3_GPUs, BW)\n\n");

  mb::CalibratedSystem cal(mt::make_beluga());
  const auto policy = mt::PathPolicy::three_gpus();

  struct Variant {
    const char* name;
    mm::ConfiguratorOptions options;
  };
  std::vector<Variant> variants;
  {
    mm::ConfiguratorOptions no_pipe;
    no_pipe.pipelining = false;
    variants.push_back({"no-pipelining", no_pipe});
    mm::ConfiguratorOptions exact;
    exact.chunk_mode = mm::ChunkMode::ExactSqrt;
    variants.push_back({"exact-sqrt", exact});
    mm::ConfiguratorOptions linear;
    linear.chunk_mode = mm::ChunkMode::LinearPhi;
    variants.push_back({"linear-phi", linear});
    mm::ConfiguratorOptions global_phi;
    global_phi.phi_per_message = false;
    variants.push_back({"global-phi", global_phi});
  }

  // Every (size, variant) cell is a private stack + configurator over the
  // one calibrated registry.
  const auto sizes = mb::message_sizes(quick);
  bc::SweepRunner runner(bc::SweepOptions{jobs});
  auto bws = runner.run(
      sizes.size() * variants.size(), [&](std::size_t idx) {
        const std::size_t bytes = sizes[idx / variants.size()];
        const auto& variant = variants[idx % variants.size()];
        mm::PathConfigurator configurator(cal.registry, variant.options);
        auto stack =
            bc::SimStack::model_driven(cal.system, configurator, policy);
        bc::P2POptions p2p;
        p2p.iterations = 4;
        return bc::measure_bw(stack.world(), bytes, p2p);
      });

  mu::CsvWriter csv(mb::results_dir() + "/ablation_chunking.csv");
  csv.header({"variant", "bytes", "gbps"});
  std::vector<std::string> headers{"size"};
  for (const auto& v : variants) headers.emplace_back(v.name);
  mu::Table table(headers);

  std::size_t idx = 0;
  for (std::size_t bytes : sizes) {
    std::vector<std::string> row{mu::format_bytes(bytes)};
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const double bw = bws[idx++];
      row.push_back(mb::gb(bw));
      csv.row({variants[i].name, std::to_string(bytes),
               mu::CsvWriter::num(bw)});
    }
    table.add_row(std::move(row));
  }
  csv.close();
  table.print();
  std::printf("\nCSV written to %s/ablation_chunking.csv\n",
              mb::results_dir().c_str());
  mb::report_sweep("ablation_chunking", runner.stats());
  return 0;
}
