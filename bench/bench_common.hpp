// Shared plumbing for the figure-reproduction benchmarks: the standard
// message-size grid of the paper's evaluation (2 MB - 512 MB), calibrated
// registries per system, result directories, and printing helpers.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mpath/benchcore/metrics.hpp"
#include "mpath/util/fsio.hpp"
#include "mpath/util/stats.hpp"
#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/benchcore/sweep.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/tuning/static_tuner.hpp"
#include "mpath/util/csv.hpp"
#include "mpath/util/table.hpp"
#include "mpath/util/units.hpp"

namespace mpath::bench {

using util::to_gbps;
using namespace util::literals;

/// The paper sweeps 2 MB .. 512 MB in powers of two; --quick drops to
/// three sizes so the whole harness can be smoke-tested rapidly.
inline std::vector<std::size_t> message_sizes(bool quick) {
  if (quick) return {8_MiB, 64_MiB, 512_MiB};
  return {2_MiB,  4_MiB,   8_MiB,   16_MiB,  32_MiB,
          64_MiB, 128_MiB, 256_MiB, 512_MiB};
}

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return std::getenv("MPATH_BENCH_QUICK") != nullptr;
}

inline std::string results_dir() {
  if (const char* env = std::getenv("MPATH_RESULTS_DIR")) return env;
  return "results";
}

/// Worker count for the parallel sweep harness: --jobs N / --jobs=N on the
/// command line, else MPATH_BENCH_JOBS, else 0 (= hardware concurrency).
/// Results are byte-identical for every value — --jobs only changes how
/// long the sweep takes (see DESIGN.md, "Parallel sweeps").
inline int jobs_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == "--jobs" && i + 1 < argc) return std::atoi(argv[i + 1]);
    if (a.rfind("--jobs=", 0) == 0) return std::atoi(a.c_str() + 7);
  }
  if (const char* env = std::getenv("MPATH_BENCH_JOBS")) return std::atoi(env);
  return 0;
}

/// Print per-sweep throughput / efficiency and publish them (atomically)
/// as results/<figure>_sweep_stats.json for CI's BENCH_pr5.json roll-up.
inline void report_sweep(const std::string& figure_id,
                         const benchcore::SweepStats& stats) {
  std::printf(
      "== %s sweep: %zu scenarios on %d worker(s) in %.2fs wall "
      "(%.2f scenarios/s, %.0f%% parallel efficiency, %llu steals)\n",
      figure_id.c_str(), stats.scenarios, stats.jobs, stats.wall_s,
      stats.scenarios_per_s(), 100.0 * stats.efficiency(),
      static_cast<unsigned long long>(stats.steals));
  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"figure\": \"" << figure_id << "\",\n"
       << "  \"jobs\": " << stats.jobs << ",\n"
       << "  \"scenarios\": " << stats.scenarios << ",\n"
       << "  \"wall_s\": " << stats.wall_s << ",\n"
       << "  \"busy_s\": " << stats.busy_s() << ",\n"
       << "  \"scenarios_per_s\": " << stats.scenarios_per_s() << ",\n"
       << "  \"parallel_efficiency\": " << stats.efficiency() << ",\n"
       << "  \"steals\": " << stats.steals << "\n"
       << "}\n";
  util::write_file_atomic(results_dir() + "/" + figure_id + "_sweep_stats.json",
                          json.str());
}

/// Calibrated model registry + configurator for one system, built once and
/// shared across the bench's measurements (Fig. 2a Steps 1-2).
struct CalibratedSystem {
  topo::System system;
  model::ModelRegistry registry;
  std::unique_ptr<model::PathConfigurator> configurator;

  explicit CalibratedSystem(topo::System sys)
      : system(std::move(sys)),
        registry(tuning::calibrate(system)),
        configurator(std::make_unique<model::PathConfigurator>(registry)) {}
};

/// The three path policies of the paper's figures, in figure order.
inline std::vector<topo::PathPolicy> figure_policies() {
  return {topo::PathPolicy::two_gpus(), topo::PathPolicy::three_gpus(),
          topo::PathPolicy::three_gpus_with_host()};
}

inline tuning::StaticTunerOptions tuner_options(tuning::TuneMetric metric,
                                                bool quick) {
  tuning::StaticTunerOptions opt;
  opt.metric = metric;
  opt.fraction_step = quick ? 0.25 : 0.125;
  opt.chunk_grid = quick ? std::vector<int>{1, 16}
                         : std::vector<int>{1, 8, 32};
  opt.iterations = 2;
  opt.warmup = 1;
  opt.cache_dir = results_dir() + "/.tuner_cache";
  return opt;
}

/// Static plans are tuned offline at anchor sizes and reused for nearby
/// sizes (tuning exhaustively at every point is exactly the cost the
/// paper's model avoids; anchoring keeps the harness fast while preserving
/// the static baseline's character).
inline std::size_t tuning_anchor(std::size_t bytes) {
  static const std::size_t anchors[] = {2_MiB, 8_MiB, 32_MiB, 128_MiB,
                                        512_MiB};
  std::size_t best = anchors[0];
  double best_dist = 1e300;
  for (std::size_t a : anchors) {
    const double dist = std::abs(std::log2(static_cast<double>(a)) -
                                 std::log2(static_cast<double>(bytes)));
    if (dist < best_dist) {
      best_dist = dist;
      best = a;
    }
  }
  return best;
}

inline std::string gb(double bps) { return util::Table::fixed(to_gbps(bps), 2); }
inline std::string pct(double frac) {
  return util::Table::fixed(100.0 * frac, 1) + "%";
}

}  // namespace mpath::bench
