// End-to-end churn through the pipeline engine: W concurrent workers each
// push a stream of multi-path chunked transfers (direct + GPU-staged) over
// a shared topology. Unlike BM_FluidSharedLinkChurn this pays the full
// stack — host issue costs, stream/event machinery, watchdog monitoring,
// fluid re-solves — so it measures what callback batching actually buys a
// collective-sized workload.
//
//   items_per_second    == transfers/s end to end
//   counters["events"]  == engine events processed per transfer (the
//                          batching win shows up here)
//   counters["resolves"]== fluid rate re-solves per transfer
//   counters["allocs_per_transfer"] == global operator-new calls per
//                          transfer in steady state (after one warmup
//                          round on the same stack) — 0 when the
//                          zero-allocation hot path holds
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "mpath/benchcore/alloc_hook.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

ms::FluidNetwork::SolverMode mode_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? ms::FluidNetwork::SolverMode::kFull
                             : ms::FluidNetwork::SolverMode::kIncremental;
}

ms::Task<void> worker_loop(mp::PipelineEngine& pipe, mg::DeviceBuffer& dst,
                           const mg::DeviceBuffer& src, mt::DeviceId stage,
                           int repeats, bool monitored) {
  for (int r = 0; r < repeats; ++r) {
    mp::ExecPlan plan{
        mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 2_MiB, 8},
        mp::ExecPath{{mt::PathKind::GpuStaged, stage}, 2_MiB, 8},
    };
    mp::PathWatchList watch;
    if (monitored) watch = {{/*deadline_s=*/10.0}, {/*deadline_s=*/10.0}};
    (void)co_await pipe.execute_monitored(dst, 0, src, 0, std::move(plan),
                                          std::move(watch));
  }
}

}  // namespace

// range(0) = concurrent workers, range(1) = solver mode, range(2) = whether
// paths run under (never-firing) watchdogs — the monitored variant is the
// recovery-enabled configuration, where per-chunk progress accounting used
// to cost extra events.
static void BM_PipelineChurn(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const bool monitored = state.range(2) != 0;
  const int repeats = 4;
  std::uint64_t transfers = 0, events = 0;
  ms::FluidNetwork::SolverStats last{};
  for (auto _ : state) {
    mt::System sys = mt::make_beluga();
    sys.costs.jitter_rel = 0;
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    mg::GpuRuntime rt(sys, engine, net);
    mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/64,
                            mg::Payload::Simulated);
    const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
    const int n = static_cast<int>(gpus.size());
    std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
    for (int w = 0; w < workers; ++w) {
      const mt::DeviceId s = gpus[w % n];
      const mt::DeviceId d = gpus[(w + 1) % n];
      const mt::DeviceId stage = gpus[(w + 2) % n];
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          s, 4_MiB, mg::Payload::Simulated));
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          d, 4_MiB, mg::Payload::Simulated));
      auto& src = *bufs[bufs.size() - 2];
      auto& dst = *bufs[bufs.size() - 1];
      engine.spawn(worker_loop(pipe, dst, src, stage, repeats, monitored),
                   "worker");
    }
    events += engine.run();
    transfers += static_cast<std::uint64_t>(workers) * repeats;
    last = net.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(transfers));
  state.SetLabel(std::string(state.range(1) == 0 ? "mode:full" : "mode:incr") +
                 (monitored ? " monitored" : " plain"));
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(transfers);
  state.counters["resolves"] = static_cast<double>(last.resolves);
  state.counters["coalesced"] = static_cast<double>(last.coalesced);

  // Steady-state allocation count, measured outside the timing loop: one
  // warmup round fills the event/flow/frame pools and the container
  // high-water marks, then a second round on the same stack is counted.
  {
    mt::System sys = mt::make_beluga();
    sys.costs.jitter_rel = 0;
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    mg::GpuRuntime rt(sys, engine, net);
    mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/64,
                            mg::Payload::Simulated);
    const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
    const int n = static_cast<int>(gpus.size());
    std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
    for (int w = 0; w < workers; ++w) {
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          gpus[w % n], 4_MiB, mg::Payload::Simulated));
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          gpus[(w + 1) % n], 4_MiB, mg::Payload::Simulated));
    }
    const auto spawn_round = [&] {
      for (int w = 0; w < workers; ++w) {
        engine.spawn(worker_loop(pipe, *bufs[2 * w + 1], *bufs[2 * w],
                                 gpus[(w + 2) % n], repeats, monitored),
                     "worker");
      }
    };
    spawn_round();
    engine.run();  // warmup: pools and capacities reach steady state
    const mpath::benchcore::AllocScope scope;
    spawn_round();
    engine.run();
    state.counters["allocs_per_transfer"] =
        static_cast<double>(scope.delta()) /
        static_cast<double>(workers * repeats);
  }
}
BENCHMARK(BM_PipelineChurn)
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({32, 0, 1})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1});

BENCHMARK_MAIN();
