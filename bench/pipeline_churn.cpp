// End-to-end churn through the pipeline engine: W concurrent workers each
// push a stream of multi-path chunked transfers (direct + GPU-staged) over
// a shared topology. Unlike BM_FluidSharedLinkChurn this pays the full
// stack — host issue costs, stream/event machinery, watchdog monitoring,
// fluid re-solves — so it measures what callback batching actually buys a
// collective-sized workload.
//
//   items_per_second    == transfers/s end to end
//   counters["events"]  == engine events processed per transfer (the
//                          batching win shows up here)
//   counters["resolves"]== fluid rate re-solves per transfer
//   counters["allocs_per_transfer"] == global operator-new calls per
//                          transfer in steady state (after one warmup
//                          round on the same stack) — 0 when the
//                          zero-allocation hot path holds
//
// PR 9 adds the compiled-graph columns and two maintenance modes:
//   BM_ChannelChurn/<W>/<graphs>  — the same churn pushed through
//       ModelDrivenChannel with compiled-plan replay off (0) or on (1);
//       counters break per-transfer work into compiles vs replays.
//   --graphs=on|off --fingerprint=FILE [--quick]
//       — skip google-benchmark and run a fixed deterministic transfer
//       sequence (jittered sim), writing every completion instant at full
//       precision to FILE. CI runs it once per mode and `cmp`s the files:
//       the compiled fast path must be bit-identical to the uncompiled one.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mpath/benchcore/alloc_hook.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/pipeline/graph.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

ms::FluidNetwork::SolverMode mode_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? ms::FluidNetwork::SolverMode::kFull
                             : ms::FluidNetwork::SolverMode::kIncremental;
}

ms::Task<void> worker_loop(mp::PipelineEngine& pipe, mg::DeviceBuffer& dst,
                           const mg::DeviceBuffer& src, mt::DeviceId stage,
                           int repeats, bool monitored) {
  for (int r = 0; r < repeats; ++r) {
    mp::ExecPlan plan{
        mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 2_MiB, 8},
        mp::ExecPath{{mt::PathKind::GpuStaged, stage}, 2_MiB, 8},
    };
    mp::PathWatchList watch;
    if (monitored) watch = {{/*deadline_s=*/10.0}, {/*deadline_s=*/10.0}};
    (void)co_await pipe.execute_monitored(dst, 0, src, 0, std::move(plan),
                                          std::move(watch));
  }
}

}  // namespace

// range(0) = concurrent workers, range(1) = solver mode, range(2) = whether
// paths run under (never-firing) watchdogs — the monitored variant is the
// recovery-enabled configuration, where per-chunk progress accounting used
// to cost extra events.
static void BM_PipelineChurn(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const bool monitored = state.range(2) != 0;
  const int repeats = 4;
  std::uint64_t transfers = 0, events = 0;
  ms::FluidNetwork::SolverStats last{};
  for (auto _ : state) {
    mt::System sys = mt::make_beluga();
    sys.costs.jitter_rel = 0;
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    mg::GpuRuntime rt(sys, engine, net);
    mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/64,
                            mg::Payload::Simulated);
    const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
    const int n = static_cast<int>(gpus.size());
    std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
    for (int w = 0; w < workers; ++w) {
      const mt::DeviceId s = gpus[w % n];
      const mt::DeviceId d = gpus[(w + 1) % n];
      const mt::DeviceId stage = gpus[(w + 2) % n];
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          s, 4_MiB, mg::Payload::Simulated));
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          d, 4_MiB, mg::Payload::Simulated));
      auto& src = *bufs[bufs.size() - 2];
      auto& dst = *bufs[bufs.size() - 1];
      engine.spawn(worker_loop(pipe, dst, src, stage, repeats, monitored),
                   "worker");
    }
    events += engine.run();
    transfers += static_cast<std::uint64_t>(workers) * repeats;
    last = net.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(transfers));
  state.SetLabel(std::string(state.range(1) == 0 ? "mode:full" : "mode:incr") +
                 (monitored ? " monitored" : " plain"));
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(transfers);
  state.counters["resolves"] = static_cast<double>(last.resolves);
  state.counters["coalesced"] = static_cast<double>(last.coalesced);

  // Steady-state allocation count, measured outside the timing loop: one
  // warmup round fills the event/flow/frame pools and the container
  // high-water marks, then a second round on the same stack is counted.
  {
    mt::System sys = mt::make_beluga();
    sys.costs.jitter_rel = 0;
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode_arg(state));
    mg::GpuRuntime rt(sys, engine, net);
    mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/64,
                            mg::Payload::Simulated);
    const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
    const int n = static_cast<int>(gpus.size());
    std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
    for (int w = 0; w < workers; ++w) {
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          gpus[w % n], 4_MiB, mg::Payload::Simulated));
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          gpus[(w + 1) % n], 4_MiB, mg::Payload::Simulated));
    }
    const auto spawn_round = [&] {
      for (int w = 0; w < workers; ++w) {
        engine.spawn(worker_loop(pipe, *bufs[2 * w + 1], *bufs[2 * w],
                                 gpus[(w + 2) % n], repeats, monitored),
                     "worker");
      }
    };
    spawn_round();
    engine.run();  // warmup: pools and capacities reach steady state
    const mpath::benchcore::AllocScope scope;
    spawn_round();
    engine.run();
    state.counters["allocs_per_transfer"] =
        static_cast<double>(scope.delta()) /
        static_cast<double>(workers * repeats);
  }
}
BENCHMARK(BM_PipelineChurn)
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({32, 0, 1})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1});

namespace {

ms::Task<void> channel_loop(mp::ModelDrivenChannel& ch, mg::DeviceBuffer& dst,
                            const mg::DeviceBuffer& src, int repeats) {
  for (int r = 0; r < repeats; ++r) {
    co_await ch.transfer(dst, 0, src, 0, 4_MiB);
  }
}

}  // namespace

// The full model-driven stack under churn: every transfer pays candidate
// enumeration + theta (or a config-cache hit) + plan build + per-chunk
// setup — unless compiled replay (range(1) = 1) short-circuits all of it
// with a template hit. The compiles/replays counters show the build vs
// replay split; items_per_second is the headline win.
static void BM_ChannelChurn(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const bool graphs = state.range(1) != 0;
  const int repeats = 4;
  std::uint64_t transfers = 0;
  mp::GraphUseStats gs{};
  for (auto _ : state) {
    mt::System sys = mt::make_beluga();
    sys.costs.jitter_rel = 0;
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(ms::FluidNetwork::SolverMode::kIncremental);
    mg::GpuRuntime rt(sys, engine, net);
    mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/64,
                            mg::Payload::Simulated);
    mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
    mm::PathConfigurator cfg(reg);
    mp::GraphCache cache;
    mp::ModelDrivenOptions opt;
    if (graphs) opt.graphs = &cache;
    mp::ModelDrivenChannel ch(pipe, cfg, mt::PathPolicy::three_gpus(), opt);
    const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
    const int n = static_cast<int>(gpus.size());
    std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
    for (int w = 0; w < workers; ++w) {
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          gpus[w % n], 4_MiB, mg::Payload::Simulated));
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          gpus[(w + 1) % n], 4_MiB, mg::Payload::Simulated));
      auto& src = *bufs[bufs.size() - 2];
      auto& dst = *bufs[bufs.size() - 1];
      engine.spawn(channel_loop(ch, dst, src, repeats), "channel-worker");
    }
    engine.run();
    transfers += static_cast<std::uint64_t>(workers) * repeats;
    const auto& g = ch.graph_stats();
    gs.compiles += g.compiles;
    gs.compile_failures += g.compile_failures;
    gs.replays += g.replays;
    gs.replays_fresh += g.replays_fresh;
    gs.busy_fallbacks += g.busy_fallbacks;
    gs.health_fallbacks += g.health_fallbacks;
    gs.epoch_fallbacks += g.epoch_fallbacks;
    gs.contended_rejects += g.contended_rejects;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(transfers));
  state.SetLabel(graphs ? "graphs:on" : "graphs:off");
  const auto per = [&](std::uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(transfers);
  };
  state.counters["compiles_per_transfer"] = per(gs.compiles);
  state.counters["replays_per_transfer"] = per(gs.replays + gs.replays_fresh);
  // Per-cause fallback/reject columns (BENCH json and CSV): every reason a
  // template lookup bailed back to the uncompiled path, kept separate so a
  // regression in one gate is visible even when another dominates.
  state.counters["busy_fallbacks_per_transfer"] = per(gs.busy_fallbacks);
  state.counters["health_fallbacks_per_transfer"] = per(gs.health_fallbacks);
  state.counters["epoch_fallbacks_per_transfer"] = per(gs.epoch_fallbacks);
  state.counters["contended_rejects_per_transfer"] =
      per(gs.contended_rejects);
  state.counters["compile_failures_per_transfer"] = per(gs.compile_failures);
}
BENCHMARK(BM_ChannelChurn)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

namespace {

// --fingerprint mode: a fixed, seeded, *jittered* transfer sequence through
// one ModelDrivenChannel. The file records nothing mode-dependent — only
// per-transfer completion instants (%.17g: every bit of the double) and the
// final clock — so `cmp` between a --graphs=off and a --graphs=on run is
// exactly the "compiled replay is bit-identical" guarantee, end to end.
ms::Task<void> fingerprint_driver(ms::Engine& engine,
                                  mp::ModelDrivenChannel& ch,
                                  std::vector<mg::DeviceBuffer*> bufs,
                                  const std::vector<std::uint64_t>& sizes,
                                  int rounds, std::vector<double>& out) {
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t p = 0; p + 1 < bufs.size(); ++p) {
      for (const std::uint64_t bytes : sizes) {
        co_await ch.transfer(*bufs[p + 1], 0, *bufs[p], 0,
                             static_cast<std::size_t>(bytes));
        out.push_back(engine.now());
      }
    }
  }
}

int run_fingerprint(const std::string& path, bool graphs, bool quick) {
  mt::System sys = mt::make_beluga();
  sys.costs.jitter_rel = 0.02;  // jitter ON: identity must hold bit-for-bit
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  mg::GpuRuntime rt(sys, engine, net);
  mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/16,
                          mg::Payload::Simulated);
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg(reg);
  mp::GraphCache cache;
  mp::ModelDrivenOptions opt;
  if (graphs) opt.graphs = &cache;
  mp::ModelDrivenChannel ch(pipe, cfg, mt::PathPolicy::three_gpus(), opt);

  const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
  std::vector<std::unique_ptr<mg::DeviceBuffer>> owned;
  std::vector<mg::DeviceBuffer*> chain;
  for (std::size_t i = 0; i < 3 && i < gpus.size(); ++i) {
    owned.push_back(std::make_unique<mg::DeviceBuffer>(
        gpus[i], 48_MiB, mg::Payload::Simulated));
    chain.push_back(owned.back().get());
  }
  // 128 KiB rides the direct small-message path; the rest are multi-path
  // and exercise compile-then-replay (sizes repeat across rounds).
  const std::vector<std::uint64_t> sizes = {128_KiB, 4_MiB, 16_MiB, 48_MiB};
  const int rounds = quick ? 2 : 6;
  std::vector<double> instants;
  engine.spawn(
      fingerprint_driver(engine, ch, chain, sizes, rounds, instants),
      "fingerprint");
  engine.run();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "pipeline_churn: cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(f, "# pipeline_churn completion fingerprint v1\n");
  for (std::size_t i = 0; i < instants.size(); ++i) {
    std::fprintf(f, "%zu %.17g\n", i, instants[i]);
  }
  std::fprintf(f, "final %.17g n=%zu\n", engine.now(), instants.size());
  std::fclose(f);

  // Mode-dependent diagnostics go to stderr, never into the fingerprint.
  const auto& g = ch.graph_stats();
  std::fprintf(stderr,
               "fingerprint: %zu transfers, graphs=%s, compiles=%llu "
               "replays=%llu fresh=%llu\n",
               instants.size(), graphs ? "on" : "off",
               static_cast<unsigned long long>(g.compiles),
               static_cast<unsigned long long>(g.replays),
               static_cast<unsigned long long>(g.replays_fresh));
  if (graphs && g.replays == 0) {
    std::fprintf(stderr,
                 "fingerprint: --graphs=on produced no replays; the fast "
                 "path was never exercised\n");
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fingerprint_path;
  bool graphs = false;
  bool quick = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--fingerprint=", 0) == 0) {
      fingerprint_path = a.substr(14);
    } else if (a == "--graphs=on") {
      graphs = true;
    } else if (a == "--graphs=off") {
      graphs = false;
    } else if (a == "--quick") {
      quick = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!fingerprint_path.empty()) {
    return run_fingerprint(fingerprint_path, graphs, quick);
  }
  int argc_rest = static_cast<int>(rest.size());
  benchmark::Initialize(&argc_rest, rest.data());
  if (benchmark::ReportUnrecognizedArguments(argc_rest, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
