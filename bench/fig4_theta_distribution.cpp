// FIG-4 — Reproduces paper Figure 4: the distribution of the message
// fractions (theta) across paths for unidirectional transfers on Beluga,
// as chosen by the model, per message size and path policy:
//   (a) 2_GPUs  — direct + 1 GPU-staged path
//   (b) 3_GPUs  — direct + 2 GPU-staged paths
//   (c) 3_GPUs_w_host — + 1 host-staged path
//
// Expected shape: the direct path dominates small messages (staged paths
// are excluded below their break-even size); staged paths converge towards
// near-equal shares for very large messages; the host path contributes only
// a thin slice (its PCIe lane is ~4x slower than an NVLink lane).
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mt = mpath::topo;
namespace mu = mpath::util;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const int jobs = mb::jobs_mode(argc, argv);
  std::printf(
      "FIG-4: model theta distribution across paths (Beluga, BW)\n\n");

  mb::CalibratedSystem beluga(mt::make_beluga());
  const auto gpus = beluga.system.topology.gpus();
  const auto policies = mb::figure_policies();
  const auto sizes = mb::message_sizes(quick);

  // Each (policy, size) cell evaluates the model's pure read path against
  // the shared calibrated registry — no simulation, no shared state.
  bc::SweepRunner runner(bc::SweepOptions{jobs});
  auto configs = runner.run(
      policies.size() * sizes.size(), [&](std::size_t idx) {
        const auto& policy = policies[idx / sizes.size()];
        const std::size_t bytes = sizes[idx % sizes.size()];
        const auto paths = mt::enumerate_paths(beluga.system.topology,
                                               gpus[0], gpus[1], policy);
        const mpath::model::PathConfigurator configurator(beluga.registry);
        return configurator.compute_config(gpus[0], gpus[1], bytes, paths);
      });

  mu::CsvWriter csv(mb::results_dir() + "/fig4_theta.csv");
  csv.header({"policy", "bytes", "path", "theta", "chunks"});
  std::size_t idx = 0;
  for (const auto& policy : policies) {
    const auto paths = mt::enumerate_paths(beluga.system.topology, gpus[0],
                                           gpus[1], policy);
    std::vector<std::string> headers{"size"};
    for (const auto& p : paths) {
      headers.push_back(mt::describe(p, beluga.system.topology));
    }
    mu::Table table(headers);
    for (std::size_t bytes : sizes) {
      const auto& config = configs[idx++];
      std::vector<std::string> row{mu::format_bytes(bytes)};
      for (const auto& share : config.paths) {
        row.push_back(mb::pct(share.theta));
        csv.row({policy.label(), std::to_string(bytes),
                 mt::describe(share.plan, beluga.system.topology),
                 mu::CsvWriter::num(share.theta),
                 std::to_string(share.chunks)});
      }
      table.add_row(std::move(row));
    }
    std::printf("-- Figure 4 panel: %s --\n", policy.label().c_str());
    table.print();
    std::printf("\n");
  }
  csv.close();
  std::printf("CSV written to %s/fig4_theta.csv\n",
              mb::results_dir().c_str());
  mb::report_sweep("fig4", runner.stats());
  return 0;
}
