// FUZZ-HUNT — Generative scenario fuzzing for the performance model: seeded
// random topologies (NVLink / NVSwitch / xGMI / PCIe, multi-NUMA,
// asymmetric links), each evaluated against the SolverMode::kFull fluid
// oracle, flagging scenarios where the model's prediction error or
// theta-policy regret exceeds the accuracy thresholds.
//
// Usage:
//   fuzz_hunt [--seed N] [--count N] [--jobs N] [--quick]
//             [--minimize] [--corpus-out DIR]
//
// The emitted CSV (results/fuzz_hunt.csv) is byte-identical for any --jobs
// value at a fixed seed — CI compares --jobs 1 against --jobs 2 runs.
// With --minimize, each flagged scenario is greedily shrunk and frozen as
// JSON under --corpus-out (default results/corpus); promising cases
// graduate to tests/corpus/ where the replay test pins them.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "mpath/benchcore/hunter.hpp"

namespace mb = mpath::bench;
namespace mf = mpath::fuzz;
namespace mu = mpath::util;

namespace {

std::uint64_t u64_flag(int argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == name && i + 1 < argc) return std::strtoull(argv[i + 1], nullptr, 10);
    if (a.rfind(prefix, 0) == 0) {
      return std::strtoull(a.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string str_flag(int argc, char** argv, const char* name,
                     std::string fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == name && i + 1 < argc) return argv[i + 1];
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return fallback;
}

bool bool_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);

  mf::HuntOptions opt;
  opt.seed = u64_flag(argc, argv, "--seed", 1);
  opt.count = u64_flag(argc, argv, "--count", quick ? 8 : 48);
  opt.jobs = mb::jobs_mode(argc, argv);
  const bool minimize = bool_flag(argc, argv, "--minimize");
  const std::string corpus_out = str_flag(
      argc, argv, "--corpus-out", mb::results_dir() + "/corpus");

  std::printf(
      "FUZZ-HUNT: %zu seeded scenarios from seed %llu (full-solver oracle, "
      "thresholds: error > %.0f%%, regret > %.0f%%)\n\n",
      opt.count, static_cast<unsigned long long>(opt.seed),
      100.0 * opt.eval.thresholds.max_error,
      100.0 * opt.eval.thresholds.max_regret);

  const mf::HuntResult hunt = mf::run_hunt(opt);

  // Serial merge in scenario order: the CSV (and all printed statistics)
  // are independent of worker scheduling.
  mu::CsvWriter csv(mb::results_dir() + "/fuzz_hunt.csv");
  csv.header({"scenario", "seed", "gpus", "hosts", "links", "src", "dst",
              "bytes", "policy", "predicted_gbps", "observed_gbps",
              "best_gbps", "best_policy", "error", "regret", "flag"});
  mu::RunningStats errors, regrets;
  for (std::size_t i = 0; i < hunt.reports.size(); ++i) {
    const mf::ScenarioReport& rep = hunt.reports[i];
    for (const mf::CaseOutcome& out : rep.outcomes) {
      errors.add(out.error);
      regrets.add(out.regret);
      csv.row({std::to_string(i), std::to_string(rep.scenario.seed),
               std::to_string(rep.scenario.topo.gpu_count()),
               std::to_string(rep.scenario.topo.host_count()),
               std::to_string(rep.scenario.topo.edges.size()),
               std::to_string(out.transfer.src),
               std::to_string(out.transfer.dst),
               std::to_string(out.transfer.bytes),
               out.transfer.policy.label(),
               mu::CsvWriter::num(mu::to_gbps(out.predicted_bw)),
               mu::CsvWriter::num(mu::to_gbps(out.observed_bw)),
               mu::CsvWriter::num(mu::to_gbps(out.best_bw)),
               out.best_policy.label(), mu::CsvWriter::num(out.error),
               mu::CsvWriter::num(out.regret),
               std::string(mpath::model::to_string(out.kind))});
    }
  }
  csv.close();

  mu::Table table({"scenarios", "flagged", "mean err", "max err",
                   "mean regret", "max regret"});
  table.add_row({std::to_string(hunt.reports.size()),
                 std::to_string(hunt.flagged()), mb::pct(errors.mean()),
                 mb::pct(errors.max()), mb::pct(regrets.mean()),
                 mb::pct(regrets.max())});
  table.print();

  if (minimize && hunt.flagged() > 0) {
    std::filesystem::create_directories(corpus_out);
    std::size_t frozen = 0;
    for (const mf::ScenarioReport& rep : hunt.reports) {
      if (!rep.flagged()) continue;
      mf::Scenario min = mf::minimize_scenario(rep.scenario, opt.eval);
      min.note = "minimized fuzz_hunt find (seed " +
                 std::to_string(rep.scenario.seed) + ")";
      const std::string path =
          corpus_out + "/fuzz-" + std::to_string(rep.scenario.seed) + ".json";
      mf::save_scenario(min, path);
      std::printf("  minimized seed %llu -> %s (%zu GPUs, %zu links, %s)\n",
                  static_cast<unsigned long long>(rep.scenario.seed),
                  path.c_str(), min.topo.gpu_count(), min.topo.edges.size(),
                  std::string(mpath::model::to_string(min.expected)).c_str());
      ++frozen;
    }
    std::printf("%zu scenario(s) frozen under %s\n", frozen,
                corpus_out.c_str());
  } else if (hunt.flagged() > 0) {
    std::printf(
        "\n%zu scenario(s) exceeded thresholds; re-run with --minimize to "
        "freeze shrunken reproducers.\n",
        hunt.flagged());
  } else {
    std::printf("\nNo scenario exceeded the accuracy thresholds.\n");
  }

  std::printf("CSV written to %s/fuzz_hunt.csv\n", mb::results_dir().c_str());
  mb::report_sweep("fuzz_hunt", hunt.sweep);
  return 0;
}
