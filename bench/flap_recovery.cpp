// FLAP RECOVERY — Learned link health as a gated benchmark.
//
// Part 1 (readmission gate): a back-to-back transfer stream over the
// model-driven channel; the direct link severs mid-stream and restores a
// few transfers later. With HealthOptions enabled the suspect path is
// excluded from the theta solve, probed with small slices, and readmitted
// once a probe delivers. The bench fails (exit 1) unless the post-restore
// stream recovers at least 80% of its pre-fault per-transfer throughput
// within a bounded window (8 transfers), with at least one readmission.
//
// Part 2 (recalibration gate): the direct link silently runs at 40% of its
// fitted bandwidth. A static-model stack keeps mispredicting forever; a
// stack with a Recalibrator publishing alpha/beta corrections must end
// with strictly lower prediction error over the second half of the stream.
//
// Part 3 (flap soak, MPATH_NIGHTLY_SOAK=1 only): open-loop traffic with
// health + recovery enabled while scripted flap cycles and a seeded random
// fault plan churn the busy links — every transfer must end accounted
// (completed or typed failure).
//
// Writes BENCH_pr7.json (override with --out=PATH or MPATH_BENCH_OUT).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mpath/benchcore/traffic.hpp"
#include "mpath/model/calibration_store.hpp"
#include "mpath/model/recalibrator.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/health.hpp"
#include "mpath/sim/fault.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

std::string out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--out=", 0) == 0) return a.substr(6);
  }
  if (const char* env = std::getenv("MPATH_BENCH_OUT")) return env;
  return "BENCH_pr7.json";
}

/// One deterministic single-channel stack (zero jitter so the gates
/// measure policy, not noise).
struct Stack {
  mt::System sys;
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt;
  mp::PipelineEngine pipe;
  mm::ModelRegistry reg;
  mm::PathConfigurator cfg;
  std::vector<mt::DeviceId> gpus;

  Stack()
      : sys([] {
          auto s = mt::make_beluga();
          s.costs.jitter_rel = 0;
          return s;
        }()),
        rt(sys, engine, net),
        pipe(rt),
        reg(mpath::tuning::calibrate(sys)),
        cfg(reg),
        gpus(sys.topology.gpus()) {}

  [[nodiscard]] ms::LinkId direct_link(mt::DeviceId a, mt::DeviceId b) const {
    return rt.binding().link_for_edge(*sys.topology.direct_edge(a, b));
  }
};

double mean(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  if (hi <= lo || hi > v.size()) return 0.0;
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(lo),
                         v.begin() + static_cast<std::ptrdiff_t>(hi), 0.0) /
         static_cast<double>(hi - lo);
}

// -- Part 1: sever/restore readmission ---------------------------------------

struct ReadmissionRun {
  std::vector<double> bw;       ///< per-transfer delivered bytes/s
  std::vector<double> start_t;  ///< per-transfer start (sim clock)
  double restore_t = 0.0;
  mp::HealthStats health;
  mp::RecoveryStats recovery;
};

constexpr int kPreFault = 6;       ///< healthy transfers before the sever
constexpr int kTotal = 24;         ///< total transfers in the stream
constexpr double kDownFor = 6e-3;  ///< sever duration (sim seconds)
constexpr std::size_t kXferBytes = 16_MiB;

ReadmissionRun run_readmission(bool health_on) {
  Stack s;
  mp::ModelDrivenOptions opts;
  opts.recovery.enabled = true;
  opts.recovery.slack = 4.0;
  opts.recovery.max_replans = 3;
  opts.health.enabled = health_on;
  // Bound the readmission window: a path killed by failed probes while the
  // link is down retries quickly once capacity returns.
  opts.health.dead_cooldown_s = 2e-3;
  mp::ModelDrivenChannel ch(s.pipe, s.cfg, mt::PathPolicy::three_gpus(),
                            opts);
  const auto link = s.direct_link(s.gpus[0], s.gpus[1]);
  const double base_cap = s.net.link(link).capacity_bps;

  ReadmissionRun r;
  s.engine.spawn(
      [](Stack& st, mp::ModelDrivenChannel& c, ms::LinkId l, double cap,
         ReadmissionRun& out) -> ms::Task<void> {
        for (int i = 0; i < kTotal; ++i) {
          if (i == kPreFault) {
            st.net.set_link_capacity(l, 0.0);
            const double now = st.engine.now();
            st.engine.schedule_callback(now + kDownFor, [&st, l, cap, &out] {
              st.net.set_link_capacity(l, cap);
              out.restore_t = st.engine.now();
            });
          }
          mg::DeviceBuffer src(st.gpus[0], kXferBytes);
          mg::DeviceBuffer dst(st.gpus[1], kXferBytes);
          src.fill_pattern(static_cast<std::uint8_t>(40 + i));
          const double t0 = st.engine.now();
          out.start_t.push_back(t0);
          co_await c.transfer(dst, 0, src, 0, kXferBytes);
          out.bw.push_back(static_cast<double>(kXferBytes) /
                           (st.engine.now() - t0));
        }
      }(s, ch, link, base_cap, r),
      "stream");
  s.engine.run();
  r.health = ch.health().stats();
  r.recovery = ch.recovery_stats();
  return r;
}

// -- Part 2: drifted-link recalibration --------------------------------------

constexpr int kDriftTransfers = 20;
constexpr std::size_t kDriftBytes = 32_MiB;

/// Mean relative prediction error over the second half of the stream.
double run_drift(bool recalibrate, std::vector<double>* all_errors) {
  Stack s;
  const auto link = s.direct_link(s.gpus[0], s.gpus[1]);
  s.net.set_link_capacity(link, 0.4 * s.net.link(link).capacity_bps);

  mm::CalibrationStore store;
  mm::Recalibrator recal(store);
  mp::ModelDrivenOptions opts;
  if (recalibrate) {
    s.cfg.set_calibration(&store);
    opts.recalibrator = &recal;
  }
  mp::ModelDrivenChannel ch(s.pipe, s.cfg, mt::PathPolicy::three_gpus(),
                            opts);

  std::vector<double> errors;
  s.engine.spawn(
      [](Stack& st, mp::ModelDrivenChannel& c,
         std::vector<double>& errs) -> ms::Task<void> {
        for (int i = 0; i < kDriftTransfers; ++i) {
          mg::DeviceBuffer src(st.gpus[0], kDriftBytes);
          mg::DeviceBuffer dst(st.gpus[1], kDriftBytes);
          src.fill_pattern(static_cast<std::uint8_t>(60 + i));
          const double t0 = st.engine.now();
          co_await c.transfer(dst, 0, src, 0, kDriftBytes);
          const double actual = st.engine.now() - t0;
          const double predicted = c.last_config()->predicted_time;
          errs.push_back(std::abs(actual - predicted) / actual);
        }
      }(s, ch, errors),
      "drift");
  s.engine.run();
  if (all_errors != nullptr) *all_errors = errors;
  return mean(errors, errors.size() / 2, errors.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const bool soak = [] {
    const char* env = std::getenv("MPATH_NIGHTLY_SOAK");
    return env != nullptr && std::string(env) == "1";
  }();
  std::printf("FLAP RECOVERY: probation/readmission and online "
              "recalibration gates\n\n");
  bool gate_failed = false;
  std::ostringstream json;
  json.precision(6);

  // -- Part 1: readmission recovers the pre-fault throughput -------------
  const ReadmissionRun health = run_readmission(true);
  const ReadmissionRun legacy = run_readmission(false);
  const double baseline = mean(health.bw, 1, kPreFault);  // skip warmup
  std::size_t first_post = health.bw.size();
  for (std::size_t i = 0; i < health.start_t.size(); ++i) {
    if (health.restore_t > 0.0 && health.start_t[i] >= health.restore_t) {
      first_post = i;
      break;
    }
  }
  constexpr std::size_t kWindow = 8;  // bounded recovery window
  double recovered_bw = 0.0;
  std::size_t recovered_after = kWindow + 1;
  for (std::size_t i = first_post;
       i < health.bw.size() && i < first_post + kWindow; ++i) {
    if (health.bw[i] >= 0.8 * baseline) {
      recovered_bw = health.bw[i];
      recovered_after = i - first_post + 1;
      break;
    }
  }
  const double tail =
      mean(health.bw, health.bw.size() - 5, health.bw.size());
  const bool readmitted = health.health.readmissions >= 1;
  const bool recovered =
      recovered_after <= kWindow && tail >= 0.8 * baseline && readmitted;
  std::printf("readmission: baseline %.2f GB/s, recovered to %.2f GB/s "
              "after %zu post-restore transfer(s), tail %.2f GB/s\n",
              mb::to_gbps(baseline), mb::to_gbps(recovered_bw),
              recovered_after, mb::to_gbps(tail));
  std::printf("  health: %llu timeouts, %llu probes (%llu ok), "
              "%llu readmissions | legacy timeouts %llu\n",
              static_cast<unsigned long long>(health.health.timeouts),
              static_cast<unsigned long long>(health.health.probes_launched),
              static_cast<unsigned long long>(
                  health.health.probes_succeeded),
              static_cast<unsigned long long>(health.health.readmissions),
              static_cast<unsigned long long>(legacy.recovery.path_timeouts));
  if (!recovered) {
    std::printf("::error::readmission gate: post-restore throughput did not "
                "recover to 80%% of baseline within %zu transfers\n",
                kWindow);
    gate_failed = true;
  }
  json << "{\n  \"readmission\": {\"baseline_gbps\": "
       << mb::to_gbps(baseline)
       << ", \"tail_gbps\": " << mb::to_gbps(tail)
       << ", \"recovered_after\": " << recovered_after
       << ", \"window\": " << kWindow
       << ", \"readmissions\": " << health.health.readmissions
       << ", \"probes_launched\": " << health.health.probes_launched
       << ", \"probes_succeeded\": " << health.health.probes_succeeded
       << ", \"health_timeouts\": " << health.health.timeouts
       << ", \"legacy_timeouts\": " << legacy.recovery.path_timeouts
       << ", \"passed\": " << (recovered ? "true" : "false") << "},\n";

  // -- Part 2: recalibration beats the static model on a drifted link ----
  std::vector<double> static_errors, recal_errors;
  const double static_err = run_drift(false, &static_errors);
  const double recal_err = run_drift(true, &recal_errors);
  std::printf("\ndrift: static error %.2f%%, recalibrated error %.2f%% "
              "(second half of %d transfers)\n",
              100.0 * static_err, 100.0 * recal_err, kDriftTransfers);
  if (!(recal_err < static_err)) {
    std::printf("::error::drift gate: recalibrated error %.2f%% is not "
                "below the static model's %.2f%%\n",
                100.0 * recal_err, 100.0 * static_err);
    gate_failed = true;
  }
  json << "  \"drift\": {\"static_error\": " << static_err
       << ", \"recalibrated_error\": " << recal_err
       << ", \"first_error\": "
       << (static_errors.empty() ? 0.0 : static_errors.front())
       << ", \"last_error\": "
       << (recal_errors.empty() ? 0.0 : recal_errors.back())
       << ", \"passed\": " << (recal_err < static_err ? "true" : "false")
       << "},\n";

  // -- Part 3: flap soak under open-loop traffic (nightly) ---------------
  if (soak) {
    mb::CalibratedSystem cal(mt::make_beluga());
    bc::TrafficOptions topt;
    topt.pattern = bc::ArrivalPattern::kPoisson;
    topt.transfers = quick ? 32 : 150;
    topt.mean_interarrival_s = 200e-6;
    topt.sizes = {4_MiB, 16_MiB, 64_MiB};
    topt.seed = 31;
    const auto arrivals = bc::make_arrivals(cal.system.topology, topt);
    bc::StackOptions sopt;
    sopt.model.recovery.enabled = true;
    sopt.model.recovery.slack = 4.0;
    sopt.model.health.enabled = true;
    auto stack = bc::SimStack::model_driven(
        cal.system, *cal.configurator, mt::PathPolicy::three_gpus(), sopt);
    ms::FaultInjector inj(stack.engine(), stack.network());
    const auto& topo = stack.system().topology;
    const auto gpus = topo.gpus();
    // Scripted flap cycles on the two busiest links, long enough to
    // outlive the 1 ms watchdog floor, plus seeded random churn on top.
    const auto l01 = stack.runtime().binding().link_for_edge(
        *topo.direct_edge(gpus[0], gpus[1]));
    const auto l23 = stack.runtime().binding().link_for_edge(
        *topo.direct_edge(gpus[2], gpus[3]));
    inj.flap(l01, 1e-3, 5e-3, 4e-3, 3);
    inj.flap(l23, 2e-3, 5e-3, 4e-3, 3);
    std::vector<ms::LinkId> links;
    for (const auto& e : topo.edges()) {
      if (topo.device(e.from).kind == mt::DeviceKind::Gpu &&
          topo.device(e.to).kind == mt::DeviceKind::Gpu &&
          !e.is_memory_channel) {
        links.push_back(stack.runtime().binding().link_for_edge(e.id));
      }
    }
    ms::FaultInjector::RandomPlanOptions fopt;
    fopt.horizon = arrivals.back().t + 2e-3;
    fopt.faults = quick ? 8 : 16;
    fopt.sever_probability = 0.5;
    fopt.min_duration = 5e-3;
    fopt.max_duration = 20e-3;
    inj.random_plan(links, fopt, 83);
    const auto report = bc::run_traffic(stack, arrivals);
    auto& ch = static_cast<mp::ModelDrivenChannel&>(stack.channel());
    const bool accounted =
        report.completed + report.failed == report.transfers;
    std::printf(
        "\nsoak: %d transfers, %d completed, %d failed, %llu readmissions, "
        "%llu probes — %s\n",
        report.transfers, report.completed, report.failed,
        static_cast<unsigned long long>(ch.health().stats().readmissions),
        static_cast<unsigned long long>(
            ch.health().stats().probes_launched),
        accounted ? "all accounted" : "LOST TRANSFERS");
    if (!accounted) gate_failed = true;
    json << "  \"soak\": {\"transfers\": " << report.transfers
         << ", \"completed\": " << report.completed
         << ", \"failed\": " << report.failed
         << ", \"readmissions\": " << ch.health().stats().readmissions
         << ", \"probes_launched\": " << ch.health().stats().probes_launched
         << ", \"all_accounted\": " << (accounted ? "true" : "false")
         << "},\n";
  } else {
    json << "  \"soak\": null,\n";
  }

  json << "  \"gate_passed\": " << (gate_failed ? "false" : "true") << "\n}\n";
  const std::string path = out_path(argc, argv);
  mpath::util::write_file_atomic(path, json.str());
  std::printf("\nwrote %s\n", path.c_str());
  if (gate_failed) {
    std::printf("GATE FAILED\n");
    return 1;
  }
  std::printf("gate passed: readmission recovers >= 80%% of baseline; "
              "recalibration beats the static model\n");
  return 0;
}
