// ABL-2 — Ablation over the share-assignment policy:
//   * equal-time (Eq. 24)       — the paper's closed form,
//   * equal-split               — theta_i = 1/p regardless of path quality,
//   * bandwidth-proportional    — theta_i ~ 1/Omega_i (ignores Delta),
//   * direct-only               — single-path baseline.
// Expected: equal-time wins or ties everywhere; bandwidth-proportional is
// close at very large sizes (Delta amortizes, Eq. 8's intuition) but loses
// at small sizes where latency terms matter; equal-split overloads the
// host path whenever it is present.
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace mu = mpath::util;

namespace {

/// Static plan for a fixed assignment rule at one message size.
mpath::pipeline::StaticPlan make_plan(
    const mb::CalibratedSystem& cal, const std::vector<mt::PathPlan>& paths,
    const mm::TransferConfig& reference, const std::string& rule) {
  mpath::pipeline::StaticPlan plan;
  plan.paths = paths;
  plan.fractions.assign(paths.size(), 0.0);
  plan.chunks.assign(paths.size(), 1);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    plan.chunks[i] = std::max(1, reference.paths[i].chunks);
  }
  if (rule == "equal-split") {
    for (auto& f : plan.fractions) {
      f = 1.0 / static_cast<double>(paths.size());
    }
  } else if (rule == "bw-proportional") {
    double sum = 0.0;
    std::vector<double> w(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      w[i] = 1.0 / reference.paths[i].terms.omega;
      sum += w[i];
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      plan.fractions[i] = w[i] / sum;
    }
  } else {  // equal-time: copy the model's split
    for (std::size_t i = 0; i < paths.size(); ++i) {
      plan.fractions[i] = reference.paths[i].theta;
    }
    // Guard against rounding dust.
    double total = 0.0;
    for (double f : plan.fractions) total += f;
    for (double& f : plan.fractions) f /= total;
  }
  (void)cal;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const int jobs = mb::jobs_mode(argc, argv);
  std::printf(
      "ABL-2: share-policy ablation (Beluga, 3_GPUs_w_host, BW)\n\n");

  mb::CalibratedSystem cal(mt::make_beluga());
  const auto gpus = cal.system.topology.gpus();
  const auto policy = mt::PathPolicy::three_gpus_with_host();
  const auto paths =
      mt::enumerate_paths(cal.system.topology, gpus[0], gpus[1], policy);
  const std::vector<std::string> rules{"equal-time", "bw-proportional",
                                       "equal-split", "direct-only"};
  const auto sizes = mb::message_sizes(quick);

  // Every (size, rule) cell derives its reference split from the pure
  // model read path and measures on a private stack.
  bc::SweepRunner runner(bc::SweepOptions{jobs});
  auto bws = runner.run(sizes.size() * rules.size(), [&](std::size_t idx) {
    const std::size_t bytes = sizes[idx / rules.size()];
    const auto& rule = rules[idx % rules.size()];
    bc::P2POptions p2p;
    p2p.iterations = 4;
    if (rule == "direct-only") {
      auto stack = bc::SimStack::direct(cal.system);
      return bc::measure_bw(stack.world(), bytes, p2p);
    }
    const mm::PathConfigurator configurator(cal.registry);
    const auto reference =
        configurator.compute_config(gpus[0], gpus[1], bytes, paths);
    auto plan = make_plan(cal, paths, reference, rule);
    auto stack = bc::SimStack::static_plan(cal.system, plan);
    return bc::measure_bw(stack.world(), bytes, p2p);
  });

  mu::CsvWriter csv(mb::results_dir() + "/ablation_theta_policy.csv");
  csv.header({"rule", "bytes", "gbps"});
  mu::Table table({"size", "equal-time", "bw-prop", "equal-split",
                   "direct-only"});
  std::size_t idx = 0;
  for (std::size_t bytes : sizes) {
    std::vector<std::string> row{mu::format_bytes(bytes)};
    for (const auto& rule : rules) {
      const double bw = bws[idx++];
      row.push_back(mb::gb(bw));
      csv.row({rule, std::to_string(bytes), mu::CsvWriter::num(bw)});
    }
    table.add_row(std::move(row));
  }
  csv.close();
  table.print();
  std::printf("\nCSV written to %s/ablation_theta_policy.csv\n",
              mb::results_dir().c_str());
  mb::report_sweep("ablation_theta_policy", runner.stats());
  return 0;
}
