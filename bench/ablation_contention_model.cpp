// ABL-4 (extension) — Contention-aware calibration, the direction the
// paper names as future work ("utilizing other performance models ...
// such as MaxRate when considering contention on shared links").
//
// The baseline model composes each staged path from two independently
// measured hops; when both hops share a resource (the host memory channel),
// the composition overestimates the path (paper Observation 3). The
// extension measures each staged path end to end with its hops pipelined
// and overrides the path's effective inverse bandwidth.
//
// This bench compares prediction error AND achieved dynamic bandwidth with
// and without the extension on the host-staged configuration of both
// systems. Expected: large error reductions on Narval (whose NUMA layout
// makes the host path memory-channel-bound), smaller on Beluga (where PCIe
// is the bottleneck and the composition was already right).
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace mu = mpath::util;
namespace tu = mpath::tuning;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  std::printf(
      "ABL-4: contention-aware path calibration (extension; "
      "3_GPUs_w_host, BW)\n\n");
  mu::CsvWriter csv(mb::results_dir() + "/ablation_contention_model.csv");
  csv.header({"system", "bytes", "variant", "predicted_gbps",
              "dynamic_gbps", "error"});

  const auto policy = mt::PathPolicy::three_gpus_with_host();
  for (const char* system_name : {"beluga", "narval"}) {
    const auto system = mt::make_system(system_name);
    tu::CalibrationOptions base_opt;
    tu::CalibrationOptions aware_opt;
    aware_opt.contention_aware = true;
    const auto reg_base = tu::calibrate(system, base_opt);
    const auto reg_aware = tu::calibrate(system, aware_opt);
    mm::PathConfigurator cfg_base(reg_base);
    mm::PathConfigurator cfg_aware(reg_aware);
    const auto gpus = system.topology.gpus();

    mu::Table table({"size", "pred (paper)", "meas (paper)", "err",
                     "pred (aware)", "meas (aware)", "err "});
    mu::RunningStats err_base, err_aware;
    for (std::size_t bytes : mb::message_sizes(quick)) {
      bc::P2POptions p2p;
      p2p.window = 4;
      p2p.iterations = 3;
      auto run = [&](mm::PathConfigurator& cfg) {
        auto stack = bc::SimStack::model_driven(system, cfg, policy);
        const double measured = bc::measure_bw(stack.world(), bytes, p2p);
        const double predicted = bc::predicted_bandwidth(
            cfg, system.topology, gpus[0], gpus[1], bytes, policy);
        return std::pair{predicted, measured};
      };
      const auto [pb, mb_] = run(cfg_base);
      const auto [pa, ma] = run(cfg_aware);
      const double eb = mu::relative_error(pb, mb_);
      const double ea = mu::relative_error(pa, ma);
      err_base.add(eb);
      err_aware.add(ea);
      table.add_row({mu::format_bytes(bytes), mb::gb(pb), mb::gb(mb_),
                     mb::pct(eb), mb::gb(pa), mb::gb(ma), mb::pct(ea)});
      csv.row({system_name, std::to_string(bytes), "paper",
               mu::CsvWriter::num(pb), mu::CsvWriter::num(mb_),
               mu::CsvWriter::num(eb)});
      csv.row({system_name, std::to_string(bytes), "contention-aware",
               mu::CsvWriter::num(pa), mu::CsvWriter::num(ma),
               mu::CsvWriter::num(ea)});
    }
    std::printf("-- %s --\n", system_name);
    table.print();
    std::printf("mean error: paper model %.1f%%  ->  contention-aware %.1f%%\n\n",
                100.0 * err_base.mean(), 100.0 * err_aware.mean());
  }
  std::printf("CSV written to %s/ablation_contention_model.csv\n",
              mb::results_dir().c_str());
  return 0;
}
