// ABL-4 (extension) — Contention-aware calibration, the direction the
// paper names as future work ("utilizing other performance models ...
// such as MaxRate when considering contention on shared links").
//
// The baseline model composes each staged path from two independently
// measured hops; when both hops share a resource (the host memory channel),
// the composition overestimates the path (paper Observation 3). The
// extension measures each staged path end to end with its hops pipelined
// and overrides the path's effective inverse bandwidth.
//
// This bench compares prediction error AND achieved dynamic bandwidth with
// and without the extension on the host-staged configuration of both
// systems. Expected: large error reductions on Narval (whose NUMA layout
// makes the host path memory-channel-bound), smaller on Beluga (where PCIe
// is the bottleneck and the composition was already right).
#include <cstdio>

#include "bench_common.hpp"

namespace mb = mpath::bench;
namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace mu = mpath::util;
namespace tu = mpath::tuning;

int main(int argc, char** argv) {
  const bool quick = mb::quick_mode(argc, argv);
  const int jobs = mb::jobs_mode(argc, argv);
  std::printf(
      "ABL-4: contention-aware path calibration (extension; "
      "3_GPUs_w_host, BW)\n\n");

  const auto policy = mt::PathPolicy::three_gpus_with_host();
  const std::vector<std::string> systems = {"beluga", "narval"};
  const auto sizes = mb::message_sizes(quick);
  constexpr std::size_t kVariants = 2;  // paper, contention-aware

  bc::SweepRunner runner(bc::SweepOptions{jobs});

  // Phase A — the four calibrations (2 systems x 2 variants), each an
  // independent immutable snapshot.
  struct Snapshot {
    mt::System system;
    mm::ModelRegistry registry;
  };
  auto snapshots = runner.run(
      systems.size() * kVariants, [&](std::size_t idx) {
        const auto system = mt::make_system(systems[idx / kVariants]);
        tu::CalibrationOptions opt;
        opt.contention_aware = (idx % kVariants) == 1;
        auto registry = tu::calibrate(system, opt);
        return std::make_unique<Snapshot>(
            Snapshot{system, std::move(registry)});
      });

  // Phase B — (system, size, variant) cells on private stacks.
  struct Point {
    double predicted = 0.0;
    double measured = 0.0;
  };
  auto points = runner.run(
      systems.size() * sizes.size() * kVariants, [&](std::size_t idx) {
        const std::size_t s = idx / (sizes.size() * kVariants);
        const std::size_t bytes = sizes[(idx / kVariants) % sizes.size()];
        const std::size_t v = idx % kVariants;
        const Snapshot& snap = *snapshots[s * kVariants + v];
        const auto gpus = snap.system.topology.gpus();
        bc::P2POptions p2p;
        p2p.window = 4;
        p2p.iterations = 3;
        mm::PathConfigurator cfg(snap.registry);
        auto stack = bc::SimStack::model_driven(snap.system, cfg, policy);
        Point pt;
        pt.measured = bc::measure_bw(stack.world(), bytes, p2p);
        pt.predicted = bc::predicted_bandwidth(
            cfg, snap.system.topology, gpus[0], gpus[1], bytes, policy);
        return pt;
      });

  mu::CsvWriter csv(mb::results_dir() + "/ablation_contention_model.csv");
  csv.header({"system", "bytes", "variant", "predicted_gbps",
              "dynamic_gbps", "error"});
  std::size_t idx = 0;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    mu::Table table({"size", "pred (paper)", "meas (paper)", "err",
                     "pred (aware)", "meas (aware)", "err "});
    mu::RunningStats err_base, err_aware;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::size_t bytes = sizes[i];
      const Point& base = points[idx++];
      const Point& aware = points[idx++];
      const double eb = mu::relative_error(base.predicted, base.measured);
      const double ea = mu::relative_error(aware.predicted, aware.measured);
      err_base.add(eb);
      err_aware.add(ea);
      table.add_row({mu::format_bytes(bytes), mb::gb(base.predicted),
                     mb::gb(base.measured), mb::pct(eb),
                     mb::gb(aware.predicted), mb::gb(aware.measured),
                     mb::pct(ea)});
      csv.row({systems[s], std::to_string(bytes), "paper",
               mu::CsvWriter::num(base.predicted),
               mu::CsvWriter::num(base.measured), mu::CsvWriter::num(eb)});
      csv.row({systems[s], std::to_string(bytes), "contention-aware",
               mu::CsvWriter::num(aware.predicted),
               mu::CsvWriter::num(aware.measured), mu::CsvWriter::num(ea)});
    }
    std::printf("-- %s --\n", systems[s].c_str());
    table.print();
    std::printf(
        "mean error: paper model %.1f%%  ->  contention-aware %.1f%%\n\n",
        100.0 * err_base.mean(), 100.0 * err_aware.mean());
  }
  csv.close();
  std::printf("CSV written to %s/ablation_contention_model.csv\n",
              mb::results_dir().c_str());
  mb::report_sweep("ablation_contention_model", runner.stats());
  return 0;
}
