#include "mpath/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mu = mpath::util;

TEST(RunningStats, EmptyIsZero) {
  mu::RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  mu::RunningStats rs;
  rs.add(42.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

TEST(RunningStats, MatchesClosedForm) {
  mu::RunningStats rs;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_NEAR(rs.variance(), 3.5, 1e-12);  // sample variance of 1..6
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 6.0);
}

TEST(RunningStats, ResetClears) {
  mu::RunningStats rs;
  rs.add(1.0);
  rs.add(2.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mu::mean(xs), 5.0);
  EXPECT_NEAR(mu::stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(mu::median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(mu::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(mu::median({}), 0.0);
  EXPECT_DOUBLE_EQ(mu::median({7}), 7.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 25), 20.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(mu::relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(mu::relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(mu::relative_error(5.0, 0.0), 5.0);
}
