#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mpath/util/csv.hpp"
#include "mpath/util/table.hpp"

namespace mu = mpath::util;

namespace {
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

TEST(Csv, WritesQuotedCells) {
  const std::string path = "/tmp/mpath_test_csv.csv";
  {
    mu::CsvWriter w(path);
    w.header({"a", "b"});
    w.row({"plain", "with,comma"});
    w.row({"with\"quote", "x"});
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content, "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n");
  std::remove(path.c_str());
}

TEST(Csv, LazyOpen) {
  mu::CsvWriter w("/tmp/mpath_never_written.csv");
  EXPECT_FALSE(w.opened());
}

TEST(Csv, PublishesAtomicallyOnClose) {
  const std::string path = "/tmp/mpath_test_csv_atomic.csv";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  {
    mu::CsvWriter w(path);
    w.header({"a"});
    w.row({"1"});
    // Rows land in the temp sibling; the final path must not exist until
    // close() renames it — an interrupted run leaves no truncated CSV.
    EXPECT_FALSE(std::ifstream(path).good());
    EXPECT_TRUE(std::ifstream(tmp).good());
    w.close();
    EXPECT_TRUE(std::ifstream(path).good());
    EXPECT_FALSE(std::ifstream(tmp).good());
  }
  EXPECT_EQ(slurp(path), "a\n1\n");
  std::remove(path.c_str());
}

TEST(Csv, DestructorPublishes) {
  const std::string path = "/tmp/mpath_test_csv_dtor.csv";
  std::remove(path.c_str());
  {
    mu::CsvWriter w(path);
    w.header({"x"});
  }
  EXPECT_EQ(slurp(path), "x\n");
  std::remove(path.c_str());
}

TEST(Csv, RowAfterCloseThrows) {
  const std::string path = "/tmp/mpath_test_csv_closed.csv";
  mu::CsvWriter w(path);
  w.header({"x"});
  w.close();
  EXPECT_THROW(w.row({"1"}), std::logic_error);
  std::remove(path.c_str());
}

TEST(Csv, NumFormatting) {
  EXPECT_EQ(mu::CsvWriter::num(2.5), "2.5");
  EXPECT_EQ(mu::CsvWriter::num(1e9), "1e+09");
}

TEST(Table, RendersAligned) {
  mu::Table t({"size", "GB/s"});
  t.add_row({"2MB", "45.12"});
  t.add_row({"512MB", "131.07"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| size  "), std::string::npos);
  EXPECT_NE(s.find("131.07"), std::string::npos);
  // Numeric cells right-align: the shorter number is padded on the left.
  EXPECT_NE(s.find(" 45.12"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsMissingCells) {
  mu::Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW((void)t.render());
}

TEST(Table, FixedFormat) {
  EXPECT_EQ(mu::Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(mu::Table::fixed(2.0, 0), "2");
}
