#include "mpath/util/units.hpp"

#include <gtest/gtest.h>

namespace mu = mpath::util;
using namespace mpath::util::literals;

TEST(Units, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mu::gbps(46.0), 46e9);
  EXPECT_DOUBLE_EQ(mu::usec(2.5), 2.5e-6);
  EXPECT_DOUBLE_EQ(mu::msec(1.0), 1e-3);
  EXPECT_DOUBLE_EQ(mu::to_usec(1e-6), 1.0);
  EXPECT_DOUBLE_EQ(mu::to_gbps(46e9), 46.0);
}

TEST(Units, FormatBytesExactMultiples) {
  EXPECT_EQ(mu::format_bytes(2_MiB), "2MB");
  EXPECT_EQ(mu::format_bytes(512_KiB), "512KB");
  EXPECT_EQ(mu::format_bytes(1_GiB), "1GB");
  EXPECT_EQ(mu::format_bytes(100), "100B");
}

TEST(Units, FormatBytesFractional) {
  EXPECT_EQ(mu::format_bytes(1_MiB + 512_KiB), "1.5MB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(mu::format_time(1.5e-6), "1.50us");
  EXPECT_EQ(mu::format_time(2.5e-3), "2.50ms");
  EXPECT_EQ(mu::format_time(1.25), "1.250s");
}
