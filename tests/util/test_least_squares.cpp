#include "mpath/util/least_squares.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mpath/util/rng.hpp"

namespace mu = mpath::util;

TEST(LeastSquares, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = mu::fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, RecoversHockneyParamsFromNoisyData) {
  // Simulated transfer times T = alpha + n/beta with 1% noise: the fit
  // must recover parameters to a few percent — this is exactly the
  // parameter-extraction step of the paper (Fig. 2a Step 1).
  const double alpha = 5e-6;
  const double beta = 46e9;
  mu::Rng rng(123);
  std::vector<double> ns, ts;
  for (double n = 1e6; n <= 512e6; n *= 2) {
    ns.push_back(n);
    ts.push_back((alpha + n / beta) * rng.jitter(0.01));
  }
  const auto fit = mu::fit_line(ns, ts);
  EXPECT_NEAR(1.0 / fit.slope, beta, 0.05 * beta);
  // The intercept is tiny relative to the times of large messages; just
  // check it's in a sane band.
  EXPECT_GT(fit.intercept, -1e-4);
  EXPECT_LT(fit.intercept, 1e-3);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LeastSquares, ThrowsOnDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)mu::fit_line(one, one), std::invalid_argument);
  const std::vector<double> xs{2.0, 2.0};
  const std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW((void)mu::fit_line(xs, ys), std::invalid_argument);
  const std::vector<double> a{1.0, 2.0}, b{1.0};
  EXPECT_THROW((void)mu::fit_line(a, b), std::invalid_argument);
}

TEST(LeastSquares, Proportional) {
  const std::vector<double> xs{1, 2, 4};
  const std::vector<double> ys{2, 4, 8};
  EXPECT_NEAR(mu::fit_proportional(xs, ys), 2.0, 1e-12);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)mu::fit_proportional(zeros, zeros),
               std::invalid_argument);
}
