#include "mpath/util/small_vec.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace mu = mpath::util;

TEST(SmallVec, StaysInlineUpToCapacity) {
  mu::SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inlined());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inlined());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_FALSE(v.inlined());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, ClearKeepsSpilledCapacity) {
  mu::SmallVec<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  EXPECT_GE(cap, 100u);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // the zero-allocation recycling contract
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVec, EraseShiftsStably) {
  mu::SmallVec<int, 4> v{0, 1, 2, 3};
  v.erase(v.begin() + 1);
  EXPECT_EQ(v, (mu::SmallVec<int, 4>{0, 2, 3}));
  v.erase(v.begin() + 2);
  EXPECT_EQ(v, (mu::SmallVec<int, 4>{0, 2}));
}

TEST(SmallVec, InsertAtFrontAndMiddle) {
  mu::SmallVec<int, 2> v{1, 3};
  v.insert(v.begin(), 0);
  EXPECT_EQ(v, (mu::SmallVec<int, 2>{0, 1, 3}));
  v.insert(v.begin() + 2, 2);
  EXPECT_EQ(v, (mu::SmallVec<int, 2>{0, 1, 2, 3}));
}

TEST(SmallVec, MoveStealsHeapBufferAndResetsSource) {
  mu::SmallVec<std::unique_ptr<int>, 1> v;
  for (int i = 0; i < 8; ++i) v.push_back(std::make_unique<int>(i));
  const int* stable = v[3].get();
  mu::SmallVec<std::unique_ptr<int>, 1> w(std::move(v));
  EXPECT_TRUE(v.empty());      // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(v.inlined());    // source reset to inline capacity
  ASSERT_EQ(w.size(), 8u);
  EXPECT_EQ(w[3].get(), stable);  // heap buffer moved wholesale
}

TEST(SmallVec, MoveOfInlineContentsRelocatesElements) {
  mu::SmallVec<std::string, 4> v{"a", "bb", "ccc"};
  mu::SmallVec<std::string, 4> w(std::move(v));
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[2], "ccc");
}

TEST(SmallVec, SpanConversionAndCopyFromVector) {
  std::vector<int> src{5, 6, 7};
  mu::SmallVec<int, 4> v{std::span<const int>(src)};
  EXPECT_EQ(v.size(), 3u);
  std::span<const int> s = v;
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 6);
}

TEST(SmallVec, ResizeGrowsAndShrinks) {
  mu::SmallVec<int, 2> v;
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}
