// Rendezvous watchdog: a large send or recv whose peer never shows up must
// abort with gpusim::TransferError instead of parking its coroutine forever
// (which would deadlock the simulation), while matched operations must never
// be disturbed by their stale timers.
#include <gtest/gtest.h>

#include <optional>

#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/transport/fabric.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
namespace mx = mpath::transport;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mp::SinglePathChannel channel{pipe};
  mx::Fabric fabric;
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  explicit Fixture(double timeout_s)
      : fabric(rt, channel, [timeout_s] {
          mx::TransportOptions o;
          o.rendezvous_timeout_s = timeout_s;
          return o;
        }()) {
    fabric.add_worker(0, gpus[0]);
    fabric.add_worker(1, gpus[1]);
  }
};

/// Run `op`, capturing a TransferError if it throws one.
ms::Task<void> capture(ms::Task<void> op,
                       std::optional<mg::TransferError::Info>& out) {
  try {
    co_await std::move(op);
  } catch (const mg::TransferError& e) {
    out = e.info();
  }
}

}  // namespace

TEST(Timeouts, UnmatchedRendezvousSendAborts) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3), err),
                 "send");
  f.engine.run();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->bytes_requested, 4_MiB);
  EXPECT_EQ(err->bytes_delivered, 0u);
  EXPECT_NEAR(err->elapsed_s, 0.01, 1e-9);
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 1u);
  // The parked entry is gone: a recv posted afterwards must not match it.
  EXPECT_EQ(f.fabric.worker(1).unexpected_count(), 0u);
  // The abort NACKs the peer: the clock runs until the control message
  // lands at the receiver (one eager overhead past the deadline), where it
  // is recorded for any future matching recv.
  EXPECT_NEAR(f.engine.now(), 0.01 + f.fabric.options().eager_overhead_s,
              1e-9);
  EXPECT_EQ(f.fabric.nacks_sent(), 1u);
  EXPECT_EQ(f.fabric.worker(1).pending_nack_count(), 1u);
}

TEST(Timeouts, UnmatchedRendezvousRecvAborts) {
  Fixture f(/*timeout_s=*/0.02);
  mg::DeviceBuffer dst(f.gpus[1], 4_MiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(1).recv(0, dst, 0, 4_MiB, 3), err),
                 "recv");
  f.engine.run();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->bytes_requested, 4_MiB);
  EXPECT_EQ(err->bytes_delivered, 0u);
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 1u);
  EXPECT_EQ(f.fabric.worker(1).posted_count(), 0u);
}

// A match that lands before the deadline completes normally; the stale
// timer later finds nothing to cancel and must not disturb anything.
TEST(Timeouts, MatchedBeforeDeadlineIsUndisturbed) {
  Fixture f(/*timeout_s=*/0.5);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  src.fill_pattern(33);
  std::optional<mg::TransferError::Info> send_err, recv_err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 9),
                         send_err),
                 "send");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    co_await fx.engine.delay(0.01);  // recv arrives well inside the window
    co_await capture(fx.fabric.worker(1).recv(0, d, 0, 4_MiB, 9), e);
  }(f, dst, recv_err), "recv");
  f.engine.run();
  EXPECT_FALSE(send_err.has_value());
  EXPECT_FALSE(recv_err.has_value());
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 0u);
  // The stale timer still had to fire before the engine went quiet.
  EXPECT_GE(f.engine.now(), 0.5 - 1e-9);
}

// Eager-sized messages are exempt: the timeout applies only to rendezvous
// traffic, so a small unmatched send still parks (legacy deadlock
// detection reports it rather than a spurious timeout abort).
TEST(Timeouts, EagerMessagesAreExempt) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 1_KiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 1_KiB, 3), err),
                 "send");
  EXPECT_THROW(f.engine.run(), ms::SimError);
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 0u);
}

// Symmetric failure, send side dies first: the send times out, the NACK is
// recorded at the receiver, and a recv posted later on the same channel
// fails immediately instead of parking through a full timeout of its own —
// both ranks observe a TransferError for the one failed exchange.
TEST(Timeouts, SendTimeoutNacksLateRecv) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  std::optional<mg::TransferError::Info> send_err, recv_err;
  double recv_failed_at = -1;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3),
                         send_err),
                 "send");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    std::optional<mg::TransferError::Info>& e,
                    double& at) -> ms::Task<void> {
    co_await fx.engine.delay(0.02);  // well after the NACK landed
    co_await capture(fx.fabric.worker(1).recv(0, d, 0, 4_MiB, 3), e);
    at = fx.engine.now();
  }(f, dst, recv_err, recv_failed_at), "recv");
  f.engine.run();
  ASSERT_TRUE(send_err.has_value());
  ASSERT_TRUE(recv_err.has_value());
  EXPECT_EQ(recv_err->bytes_requested, 4_MiB);
  EXPECT_EQ(recv_err->bytes_delivered, 0u);
  EXPECT_NEAR(recv_failed_at, 0.02, 1e-9);  // failed fast, no second wait
  EXPECT_EQ(f.fabric.nacks_sent(), 1u);
  EXPECT_EQ(f.fabric.nacks_stale(), 0u);
  EXPECT_EQ(f.fabric.worker(1).pending_nack_count(), 0u);  // consumed
}

// A recv that parks inside the NACK's delivery window (after the timeout
// fired, before the control message landed) is killed by the delivery
// itself rather than by a fail-fast record.
TEST(Timeouts, SendTimeoutNacksParkedRecv) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  std::optional<mg::TransferError::Info> send_err, recv_err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3),
                         send_err),
                 "send");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    // Past the 0.01 deadline but before the NACK lands at 0.01 + 1e-6.
    co_await fx.engine.delay(0.0100005);
    co_await capture(fx.fabric.worker(1).recv(0, d, 0, 4_MiB, 3), e);
  }(f, dst, recv_err), "recv");
  f.engine.run();
  ASSERT_TRUE(send_err.has_value());
  ASSERT_TRUE(recv_err.has_value());
  EXPECT_NEAR(recv_err->elapsed_s, 0.0000005, 1e-9);  // killed at delivery
  EXPECT_EQ(f.fabric.worker(1).posted_count(), 0u);
  EXPECT_EQ(f.fabric.worker(1).pending_nack_count(), 0u);
}

// Symmetric failure, recv side dies first: the sender's later matching send
// fails fast off the recorded NACK.
TEST(Timeouts, RecvTimeoutNacksLateSend) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  std::optional<mg::TransferError::Info> send_err, recv_err;
  f.engine.spawn(capture(f.fabric.worker(1).recv(0, dst, 0, 4_MiB, 7),
                         recv_err),
                 "recv");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    co_await fx.engine.delay(0.05);
    co_await capture(fx.fabric.worker(0).send(1, s, 0, 4_MiB, 7), e);
  }(f, src, send_err), "send");
  f.engine.run();
  ASSERT_TRUE(recv_err.has_value());
  ASSERT_TRUE(send_err.has_value());
  EXPECT_EQ(send_err->bytes_requested, 4_MiB);
  EXPECT_EQ(f.fabric.nacks_sent(), 1u);
  EXPECT_EQ(f.fabric.worker(1).pending_nack_count(), 0u);
}

// Stale NACK: the channel re-matched (a newer send completed the exchange)
// between the timeout firing and the control message landing. The NACK
// must be dropped, not kill the healthy operation.
TEST(Timeouts, StaleNackIsIgnored) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src1(f.gpus[0], 4_MiB), src2(f.gpus[0], 4_MiB);
  mg::DeviceBuffer dst(f.gpus[1], 4_MiB);
  src2.fill_pattern(77);
  std::optional<mg::TransferError::Info> err1, err2, recv_err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src1, 0, 4_MiB, 3),
                         err1),
                 "send1");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    co_await fx.engine.delay(0.005);  // parks behind send1 (same channel)
    co_await capture(fx.fabric.worker(0).send(1, s, 0, 4_MiB, 3), e);
  }(f, src2, err2), "send2");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    // Arrives after send1's timeout (0.01) but before its NACK lands
    // (0.01 + 1e-6); matches send2, advancing the channel's high-water
    // mark past the NACK's seq.
    co_await fx.engine.delay(0.0100005);
    co_await capture(fx.fabric.worker(1).recv(0, d, 0, 4_MiB, 3), e);
  }(f, dst, recv_err), "recv");
  f.engine.run();
  ASSERT_TRUE(err1.has_value());  // send1 timed out
  EXPECT_FALSE(err2.has_value());  // send2 completed
  EXPECT_FALSE(recv_err.has_value());
  EXPECT_TRUE(dst.same_content(src2));
  EXPECT_EQ(f.fabric.nacks_sent(), 1u);
  EXPECT_EQ(f.fabric.nacks_stale(), 1u);
  EXPECT_EQ(f.fabric.worker(1).pending_nack_count(), 0u);
}

TEST(Timeouts, ZeroTimeoutKeepsLegacyBehaviour) {
  Fixture f(/*timeout_s=*/0.0);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3), err),
                 "send");
  EXPECT_THROW(f.engine.run(), ms::SimError);  // deadlock, not TransferError
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 0u);
}

// TEMP REVIEW TEST: a wildcard recv posted after an unrelated sender's
// timeout NACK was recorded -- does it get killed?
TEST(Timeouts, ReviewWildcardRecvVsNack) {
  Fixture f(/*timeout_s=*/0.01);
  f.fabric.add_worker(2, f.gpus[2]);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), src2(f.gpus[2], 4_MiB);
  mg::DeviceBuffer dst(f.gpus[1], 4_MiB);
  src2.fill_pattern(55);
  std::optional<mg::TransferError::Info> send_err, send2_err, recv_err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3),
                         send_err), "send-dies");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    co_await fx.engine.delay(0.02);  // after the NACK landed
    co_await capture(fx.fabric.worker(1).recv(mx::kAnySource, d, 0, 4_MiB, 3),
                     e);
  }(f, dst, recv_err), "wild-recv");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    co_await fx.engine.delay(0.021);  // rank 2 would satisfy the wildcard
    co_await capture(fx.fabric.worker(2).send(1, s, 0, 4_MiB, 3), e);
  }(f, src2, send2_err), "send-healthy");
  f.engine.run();
  printf("REVIEW: recv_err=%d send2_err=%d dst_ok=%d\n",
         recv_err.has_value(), send2_err.has_value(),
         dst.same_content(src2));
}
