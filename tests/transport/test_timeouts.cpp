// Rendezvous watchdog: a large send or recv whose peer never shows up must
// abort with gpusim::TransferError instead of parking its coroutine forever
// (which would deadlock the simulation), while matched operations must never
// be disturbed by their stale timers.
#include <gtest/gtest.h>

#include <optional>

#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/transport/fabric.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
namespace mx = mpath::transport;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mp::SinglePathChannel channel{pipe};
  mx::Fabric fabric;
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  explicit Fixture(double timeout_s)
      : fabric(rt, channel, [timeout_s] {
          mx::TransportOptions o;
          o.rendezvous_timeout_s = timeout_s;
          return o;
        }()) {
    fabric.add_worker(0, gpus[0]);
    fabric.add_worker(1, gpus[1]);
  }
};

/// Run `op`, capturing a TransferError if it throws one.
ms::Task<void> capture(ms::Task<void> op,
                       std::optional<mg::TransferError::Info>& out) {
  try {
    co_await std::move(op);
  } catch (const mg::TransferError& e) {
    out = e.info();
  }
}

}  // namespace

TEST(Timeouts, UnmatchedRendezvousSendAborts) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3), err),
                 "send");
  f.engine.run();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->bytes_requested, 4_MiB);
  EXPECT_EQ(err->bytes_delivered, 0u);
  EXPECT_NEAR(err->elapsed_s, 0.01, 1e-9);
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 1u);
  // The parked entry is gone: a recv posted afterwards must not match it.
  EXPECT_EQ(f.fabric.worker(1).unexpected_count(), 0u);
  EXPECT_NEAR(f.engine.now(), 0.01, 1e-9);
}

TEST(Timeouts, UnmatchedRendezvousRecvAborts) {
  Fixture f(/*timeout_s=*/0.02);
  mg::DeviceBuffer dst(f.gpus[1], 4_MiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(1).recv(0, dst, 0, 4_MiB, 3), err),
                 "recv");
  f.engine.run();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->bytes_requested, 4_MiB);
  EXPECT_EQ(err->bytes_delivered, 0u);
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 1u);
  EXPECT_EQ(f.fabric.worker(1).posted_count(), 0u);
}

// A match that lands before the deadline completes normally; the stale
// timer later finds nothing to cancel and must not disturb anything.
TEST(Timeouts, MatchedBeforeDeadlineIsUndisturbed) {
  Fixture f(/*timeout_s=*/0.5);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  src.fill_pattern(33);
  std::optional<mg::TransferError::Info> send_err, recv_err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 9),
                         send_err),
                 "send");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    std::optional<mg::TransferError::Info>& e)
                     -> ms::Task<void> {
    co_await fx.engine.delay(0.01);  // recv arrives well inside the window
    co_await capture(fx.fabric.worker(1).recv(0, d, 0, 4_MiB, 9), e);
  }(f, dst, recv_err), "recv");
  f.engine.run();
  EXPECT_FALSE(send_err.has_value());
  EXPECT_FALSE(recv_err.has_value());
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 0u);
  // The stale timer still had to fire before the engine went quiet.
  EXPECT_GE(f.engine.now(), 0.5 - 1e-9);
}

// Eager-sized messages are exempt: the timeout applies only to rendezvous
// traffic, so a small unmatched send still parks (legacy deadlock
// detection reports it rather than a spurious timeout abort).
TEST(Timeouts, EagerMessagesAreExempt) {
  Fixture f(/*timeout_s=*/0.01);
  mg::DeviceBuffer src(f.gpus[0], 1_KiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 1_KiB, 3), err),
                 "send");
  EXPECT_THROW(f.engine.run(), ms::SimError);
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 0u);
}

TEST(Timeouts, ZeroTimeoutKeepsLegacyBehaviour) {
  Fixture f(/*timeout_s=*/0.0);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB);
  std::optional<mg::TransferError::Info> err;
  f.engine.spawn(capture(f.fabric.worker(0).send(1, src, 0, 4_MiB, 3), err),
                 "send");
  EXPECT_THROW(f.engine.run(), ms::SimError);  // deadlock, not TransferError
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(f.fabric.rendezvous_timeouts(), 0u);
}
