#include "mpath/transport/fabric.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
namespace mx = mpath::transport;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mp::SinglePathChannel channel{pipe};
  mx::Fabric fabric{rt, channel};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  Fixture() {
    fabric.add_worker(0, gpus[0]);
    fabric.add_worker(1, gpus[1]);
  }
};

}  // namespace

TEST(Fabric, WorkerRegistration) {
  Fixture f;
  EXPECT_EQ(f.fabric.worker_count(), 2);
  EXPECT_EQ(f.fabric.worker(0).rank(), 0);
  EXPECT_EQ(f.fabric.worker(1).device(), f.gpus[1]);
  EXPECT_THROW((void)f.fabric.worker(5), std::out_of_range);
  EXPECT_THROW(f.fabric.add_worker(5, f.gpus[0]), std::invalid_argument);
}

TEST(Fabric, SendThenRecvDelivers) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  src.fill_pattern(21);
  f.engine.spawn(f.fabric.worker(0).send(1, src, 0, 1_MiB, 7), "send");
  f.engine.spawn(f.fabric.worker(1).recv(0, dst, 0, 1_MiB, 7), "recv");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.fabric.messages_sent(), 1u);
  EXPECT_EQ(f.fabric.bytes_sent(), 1_MiB);
}

TEST(Fabric, RecvPostedBeforeSendAlsoDelivers) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  src.fill_pattern(22);
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s) -> ms::Task<void> {
    co_await fx.engine.delay(1e-3);  // send strictly after the recv posts
    co_await fx.fabric.worker(0).send(1, s, 0, 1_MiB, 7);
  }(f, src), "late-send");
  f.engine.spawn(f.fabric.worker(1).recv(0, dst, 0, 1_MiB, 7), "recv");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
}

TEST(Fabric, TagsKeepMessagesApart) {
  Fixture f;
  mg::DeviceBuffer a(f.gpus[0], 64), b(f.gpus[0], 64);
  mg::DeviceBuffer ra(f.gpus[1], 64), rb(f.gpus[1], 64);
  a.fill_pattern(1);
  b.fill_pattern(2);
  // Send tag 2 first, but receive tag 1 into ra.
  f.engine.spawn(f.fabric.worker(0).send(1, b, 0, 64, 2), "send-b");
  f.engine.spawn(f.fabric.worker(0).send(1, a, 0, 64, 1), "send-a");
  f.engine.spawn(f.fabric.worker(1).recv(0, ra, 0, 64, 1), "recv-1");
  f.engine.spawn(f.fabric.worker(1).recv(0, rb, 0, 64, 2), "recv-2");
  f.engine.run();
  EXPECT_TRUE(ra.same_content(a));
  EXPECT_TRUE(rb.same_content(b));
}

TEST(Fabric, SameTagMatchesInFifoOrder) {
  Fixture f;
  mg::DeviceBuffer a(f.gpus[0], 64), b(f.gpus[0], 64);
  mg::DeviceBuffer r1(f.gpus[1], 64), r2(f.gpus[1], 64);
  a.fill_pattern(3);
  b.fill_pattern(4);
  f.engine.spawn(f.fabric.worker(0).send(1, a, 0, 64, 5), "send-a");
  f.engine.spawn(f.fabric.worker(0).send(1, b, 0, 64, 5), "send-b");
  f.engine.spawn(f.fabric.worker(1).recv(0, r1, 0, 64, 5), "recv-1");
  f.engine.spawn(f.fabric.worker(1).recv(0, r2, 0, 64, 5), "recv-2");
  f.engine.run();
  EXPECT_TRUE(r1.same_content(a));
  EXPECT_TRUE(r2.same_content(b));
}

TEST(Fabric, WildcardsMatchAnything) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 64), dst(f.gpus[1], 64);
  src.fill_pattern(23);
  f.engine.spawn(f.fabric.worker(0).send(1, src, 0, 64, 42), "send");
  f.engine.spawn(
      f.fabric.worker(1).recv(mx::kAnySource, dst, 0, 64, mx::kAnyTag),
      "recv");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
}

TEST(Fabric, EagerVsRendezvousCounting) {
  Fixture f;
  mg::DeviceBuffer small_s(f.gpus[0], 1_KiB), small_d(f.gpus[1], 1_KiB);
  mg::DeviceBuffer big_s(f.gpus[0], 1_MiB), big_d(f.gpus[1], 1_MiB);
  f.engine.spawn(f.fabric.worker(0).send(1, small_s, 0, 1_KiB, 1), "s1");
  f.engine.spawn(f.fabric.worker(1).recv(0, small_d, 0, 1_KiB, 1), "r1");
  f.engine.spawn(f.fabric.worker(0).send(1, big_s, 0, 1_MiB, 2), "s2");
  f.engine.spawn(f.fabric.worker(1).recv(0, big_d, 0, 1_MiB, 2), "r2");
  f.engine.run();
  EXPECT_EQ(f.fabric.eager_count(), 1u);
  EXPECT_EQ(f.fabric.rendezvous_count(), 1u);
  // Rendezvous opened an IPC handle for the sender to the recv buffer.
  EXPECT_TRUE(f.rt.ipc_cached(f.gpus[0], big_d));
  EXPECT_FALSE(f.rt.ipc_cached(f.gpus[0], small_d));
}

TEST(Fabric, SecondLargeSendReusesIpcHandle) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  double t1 = -1, t2 = -1;
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s, mg::DeviceBuffer& d,
                    double& first, double& second) -> ms::Task<void> {
    double start = fx.engine.now();
    co_await fx.fabric.worker(0).send(1, s, 0, 1_MiB, 1);
    first = fx.engine.now() - start;
    start = fx.engine.now();
    co_await fx.fabric.worker(0).send(1, s, 0, 1_MiB, 2);
    second = fx.engine.now() - start;
    (void)d;
  }(f, src, dst, t1, t2), "sender");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d) -> ms::Task<void> {
    co_await fx.fabric.worker(1).recv(0, d, 0, 1_MiB, 1);
    co_await fx.fabric.worker(1).recv(0, d, 0, 1_MiB, 2);
  }(f, dst), "receiver");
  f.engine.run();
  // First transfer pays the IPC open (~140us on Beluga).
  EXPECT_GT(t1, t2 + 100e-6);
}

// A same-instant burst of eager sends shares delivery wake-gates: the
// fabric schedules one engine callback per distinct deadline instead of one
// per message. The shared wake must not skew timing: every payload copy
// starts at the same instant, so with max-min fair bandwidth sharing the
// whole burst completes simultaneously — and no earlier than a lone send,
// which pays the same eager overhead but keeps the channel to itself.
TEST(Fabric, EagerBurstCoalescesWakeupsWithoutTimingDrift) {
  auto lone = [] {
    Fixture f;
    mg::DeviceBuffer src(f.gpus[0], 1_KiB), dst(f.gpus[1], 1_KiB);
    src.fill_pattern(40);
    double done = -1.0;
    f.engine.spawn(f.fabric.worker(0).send(1, src, 0, 1_KiB, 0), "s");
    f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                      double& out) -> ms::Task<void> {
      co_await fx.fabric.worker(1).recv(0, d, 0, 1_KiB, 0);
      out = fx.engine.now();
    }(f, dst, done), "r");
    f.engine.run();
    return done;
  }();
  ASSERT_GT(lone, 0.0);

  const int n = 8;
  Fixture f;
  std::vector<std::unique_ptr<mg::DeviceBuffer>> srcs, dsts;
  std::vector<double> done(static_cast<std::size_t>(n), -1.0);
  for (int i = 0; i < n; ++i) {
    srcs.push_back(std::make_unique<mg::DeviceBuffer>(f.gpus[0], 1_KiB));
    dsts.push_back(std::make_unique<mg::DeviceBuffer>(f.gpus[1], 1_KiB));
    srcs.back()->fill_pattern(static_cast<std::uint64_t>(41 + i));
  }
  for (int i = 0; i < n; ++i) {
    f.engine.spawn(f.fabric.worker(0).send(1, *srcs[static_cast<std::size_t>(
                                               i)],
                                           0, 1_KiB, i),
                   "s");
    f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d, int tag,
                      double& out) -> ms::Task<void> {
      co_await fx.fabric.worker(1).recv(0, d, 0, 1_KiB, tag);
      out = fx.engine.now();
    }(f, *dsts[static_cast<std::size_t>(i)], i, done[static_cast<std::size_t>(
                                                    i)]),
                   "r");
  }
  f.engine.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(done[static_cast<std::size_t>(i)], done[0])
        << "recv " << i;
    EXPECT_GE(done[static_cast<std::size_t>(i)], lone) << "recv " << i;
    EXPECT_TRUE(dsts[static_cast<std::size_t>(i)]->same_content(
        *srcs[static_cast<std::size_t>(i)]));
  }
  EXPECT_GE(f.fabric.wakeups_coalesced(),
            static_cast<std::uint64_t>(n) - 1);
  EXPECT_LE(f.fabric.wakeups_scheduled(), 3u);
}

TEST(Fabric, TruncationIsAnError) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 128), dst(f.gpus[1], 128);
  bool send_threw = false;
  // Post the recv first so the (oversized) send arrives second, detects
  // the truncation and throws; the recv then stays pending forever, which
  // the engine reports as a deadlock.
  f.engine.spawn(f.fabric.worker(1).recv(0, dst, 0, 64, 1), "recv");
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s,
                    bool& threw) -> ms::Task<void> {
    co_await fx.engine.delay(1e-3);
    try {
      co_await fx.fabric.worker(0).send(1, s, 0, 128, 1);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }(f, src, send_threw), "send");
  EXPECT_THROW(f.engine.run(), ms::SimError);
  EXPECT_TRUE(send_threw);
}

TEST(Fabric, WindowedMessagesAllComplete) {
  Fixture f;
  constexpr int kWindow = 16;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  src.fill_pattern(29);
  int sends_done = 0, recvs_done = 0;
  for (int w = 0; w < kWindow; ++w) {
    f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s, int tag,
                      int& done) -> ms::Task<void> {
      co_await fx.fabric.worker(0).send(1, s, 0, 1_MiB, tag);
      ++done;
    }(f, src, w, sends_done), "send");
    f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& d, int tag,
                      int& done) -> ms::Task<void> {
      co_await fx.fabric.worker(1).recv(0, d, 0, 1_MiB, tag);
      ++done;
    }(f, dst, w, recvs_done), "recv");
  }
  f.engine.run();
  EXPECT_EQ(sends_done, kWindow);
  EXPECT_EQ(recvs_done, kWindow);
  EXPECT_TRUE(dst.same_content(src));
}

TEST(Fabric, NegativeSendTagRejected) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 64);
  bool threw = false;
  f.engine.spawn([](Fixture& fx, mg::DeviceBuffer& s,
                    bool& out) -> ms::Task<void> {
    try {
      co_await fx.fabric.worker(0).send(1, s, 0, 64, -3);
    } catch (const std::invalid_argument&) {
      out = true;
    }
  }(f, src, threw), "send");
  f.engine.run();
  EXPECT_TRUE(threw);
}
