#include "mpath/pipeline/channels.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg{reg};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  double run_transfer(mg::DataChannel& ch, mg::DeviceBuffer& dst,
                      const mg::DeviceBuffer& src, std::size_t bytes) {
    const double start = engine.now();
    engine.spawn([](mg::DataChannel& c, mg::DeviceBuffer& d,
                    const mg::DeviceBuffer& s,
                    std::size_t n) -> ms::Task<void> {
      co_await c.transfer(d, 0, s, 0, n);
    }(ch, dst, src, bytes), "xfer");
    engine.run();
    return engine.now() - start;
  }
};

}  // namespace

TEST(Channels, SinglePathDeliversAndNames) {
  Fixture f;
  mp::SinglePathChannel ch(f.pipe);
  EXPECT_EQ(ch.name(), "direct");
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  src.fill_pattern(11);
  f.run_transfer(ch, dst, src, 4_MiB);
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::Direct), 4_MiB);
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::GpuStaged), 0u);
}

TEST(Channels, ModelDrivenUsesMultiplePathsForLargeMessages) {
  Fixture f;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus());
  EXPECT_EQ(ch.name(), "model-driven");
  mg::DeviceBuffer src(f.gpus[0], 128_MiB), dst(f.gpus[1], 128_MiB);
  src.fill_pattern(12);
  f.run_transfer(ch, dst, src, 128_MiB);
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_GT(f.pipe.bytes_on(mt::PathKind::GpuStaged), 0u);
  ASSERT_TRUE(ch.last_config().has_value());
  EXPECT_EQ(ch.last_config()->total_bytes, 128_MiB);
}

TEST(Channels, ModelDrivenFallsBackToDirectForSmallMessages) {
  Fixture f;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus());
  mg::DeviceBuffer src(f.gpus[0], 64_KiB), dst(f.gpus[1], 64_KiB);
  src.fill_pattern(13);
  f.run_transfer(ch, dst, src, 64_KiB);
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::GpuStaged), 0u);
  EXPECT_FALSE(ch.last_config().has_value());
}

TEST(Channels, ModelDrivenIsFasterThanDirectForLargeMessages) {
  Fixture f;
  mp::SinglePathChannel direct(f.pipe);
  mg::DeviceBuffer src(f.gpus[0], 128_MiB), dst(f.gpus[1], 128_MiB);
  const double t_direct = f.run_transfer(direct, dst, src, 128_MiB);

  Fixture g;
  mp::ModelDrivenChannel multi(g.pipe, g.cfg, mt::PathPolicy::three_gpus());
  mg::DeviceBuffer src2(g.gpus[0], 128_MiB), dst2(g.gpus[1], 128_MiB);
  const double t_multi = g.run_transfer(multi, dst2, src2, 128_MiB);
  EXPECT_GT(t_direct / t_multi, 2.0);
}

TEST(Channels, StaticPlanValidation) {
  Fixture f;
  mp::StaticPlan bad;
  EXPECT_THROW(mp::StaticPlanChannel(f.pipe, bad), std::invalid_argument);
  bad.paths = {{mt::PathKind::GpuStaged, f.gpus[2]}};
  bad.fractions = {1.0};
  bad.chunks = {1};
  EXPECT_THROW(mp::StaticPlanChannel(f.pipe, bad), std::invalid_argument);
  mp::StaticPlan not_normalized;
  not_normalized.paths = {{mt::PathKind::Direct, mt::kInvalidDevice}};
  not_normalized.fractions = {0.5};
  not_normalized.chunks = {1};
  EXPECT_THROW(mp::StaticPlanChannel(f.pipe, not_normalized),
               std::invalid_argument);
}

TEST(Channels, StaticPlanSplitsByFractions) {
  Fixture f;
  mp::StaticPlan plan;
  plan.paths = {{mt::PathKind::Direct, mt::kInvalidDevice},
                {mt::PathKind::GpuStaged, f.gpus[2]}};
  plan.fractions = {0.75, 0.25};
  plan.chunks = {1, 8};
  mp::StaticPlanChannel ch(f.pipe, plan);
  EXPECT_EQ(ch.name(), "static");
  mg::DeviceBuffer src(f.gpus[0], 64_MiB), dst(f.gpus[1], 64_MiB);
  src.fill_pattern(14);
  f.run_transfer(ch, dst, src, 64_MiB);
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::GpuStaged), 16_MiB);
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::Direct), 48_MiB);
}

TEST(Channels, StaticPlanSmallMessagesGoDirect) {
  Fixture f;
  mp::StaticPlan plan;
  plan.paths = {{mt::PathKind::Direct, mt::kInvalidDevice},
                {mt::PathKind::GpuStaged, f.gpus[2]}};
  plan.fractions = {0.5, 0.5};
  plan.chunks = {1, 8};
  mp::StaticPlanChannel ch(f.pipe, plan);
  mg::DeviceBuffer src(f.gpus[0], 32_KiB), dst(f.gpus[1], 32_KiB);
  src.fill_pattern(15);
  f.run_transfer(ch, dst, src, 32_KiB);
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::GpuStaged), 0u);
}
