#include "mpath/pipeline/staging.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/system.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;

namespace {
struct Fixture {
  mt::System sys = mt::make_beluga();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
};
}  // namespace

TEST(StagingPool, AcquireProvidesSizedBuffer) {
  Fixture f;
  mp::StagingPool pool(f.rt, 2);
  bool checked = false;
  f.engine.spawn([](mp::StagingPool& pl, mt::DeviceId dev,
                    bool& out) -> ms::Task<void> {
    auto lease = co_await pl.acquire(dev, 4096, 0);
    EXPECT_TRUE(lease.valid());
    EXPECT_GE(lease.buffer().size(), 4096u);
    EXPECT_EQ(lease.buffer().device(), dev);
    out = true;
  }(pool, f.gpus[2], checked));
  f.engine.run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(pool.in_use(f.gpus[2], 0), 0u);  // released on scope exit
}

TEST(StagingPool, CapacityLimitsConcurrentLeases) {
  Fixture f;
  mp::StagingPool pool(f.rt, 2);
  std::vector<double> acquire_times;
  for (int i = 0; i < 4; ++i) {
    f.engine.spawn([](ms::Engine& eng, mp::StagingPool& pl, mt::DeviceId dev,
                      std::vector<double>& times) -> ms::Task<void> {
      auto lease = co_await pl.acquire(dev, 64, 0);
      times.push_back(eng.now());
      co_await eng.delay(1.0);
    }(f.engine, pool, f.gpus[2], acquire_times));
  }
  f.engine.run();
  ASSERT_EQ(acquire_times.size(), 4u);
  EXPECT_DOUBLE_EQ(acquire_times[0], 0.0);
  EXPECT_DOUBLE_EQ(acquire_times[1], 0.0);
  EXPECT_DOUBLE_EQ(acquire_times[2], 1.0);
  EXPECT_DOUBLE_EQ(acquire_times[3], 1.0);
}

TEST(StagingPool, BuffersAreRecycled) {
  Fixture f;
  mp::StagingPool pool(f.rt, 1);
  mg::BufferId first_id = 0, second_id = 0;
  f.engine.spawn([](mp::StagingPool& pl, mt::DeviceId dev, mg::BufferId& a,
                    mg::BufferId& b) -> ms::Task<void> {
    {
      auto lease = co_await pl.acquire(dev, 128, 0);
      a = lease.buffer().id();
    }
    {
      auto lease = co_await pl.acquire(dev, 64, 0);  // smaller: reuse
      b = lease.buffer().id();
    }
  }(pool, f.gpus[3], first_id, second_id));
  f.engine.run();
  EXPECT_EQ(first_id, second_id);
}

TEST(StagingPool, GrowsWhenRequestExceedsRecycledBuffer) {
  Fixture f;
  mp::StagingPool pool(f.rt, 1);
  mg::BufferId first_id = 0, second_id = 0;
  std::size_t second_size = 0;
  f.engine.spawn([](mp::StagingPool& pl, mt::DeviceId dev, mg::BufferId& a,
                    mg::BufferId& b, std::size_t& sz) -> ms::Task<void> {
    {
      auto lease = co_await pl.acquire(dev, 64, 0);
      a = lease.buffer().id();
    }
    {
      auto lease = co_await pl.acquire(dev, 4096, 0);  // bigger: replaced
      b = lease.buffer().id();
      sz = lease.buffer().size();
    }
  }(pool, f.gpus[3], first_id, second_id, second_size));
  f.engine.run();
  EXPECT_NE(first_id, second_id);
  EXPECT_GE(second_size, 4096u);
}

TEST(StagingPool, IndependentInitiatorsDoNotContend) {
  // Staging buffers belong to the sending process: two initiators each get
  // the full per-pool capacity on the same staging device.
  Fixture f;
  mp::StagingPool pool(f.rt, 1);
  std::vector<double> times;
  for (int i = 0; i < 2; ++i) {
    f.engine.spawn([](ms::Engine& eng, mp::StagingPool& pl, mt::DeviceId dev,
                      mt::DeviceId initiator,
                      std::vector<double>& out) -> ms::Task<void> {
      auto lease = co_await pl.acquire(dev, 64, initiator);
      out.push_back(eng.now());
      co_await eng.delay(1.0);
    }(f.engine, pool, f.gpus[2], f.gpus[static_cast<std::size_t>(i)], times));
  }
  f.engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 0.0);
}

TEST(StagingPool, IndependentDevicesDoNotContend) {
  Fixture f;
  mp::StagingPool pool(f.rt, 1);
  std::vector<double> times;
  for (int i = 0; i < 2; ++i) {
    f.engine.spawn([](ms::Engine& eng, mp::StagingPool& pl, mt::DeviceId dev,
                      std::vector<double>& out) -> ms::Task<void> {
      auto lease = co_await pl.acquire(dev, 64, 0);
      out.push_back(eng.now());
      co_await eng.delay(1.0);
    }(f.engine, pool, f.gpus[static_cast<std::size_t>(i)], times));
  }
  f.engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 0.0);
}
