// Path health state machine (probation/readmission), watchdog slack
// escalation, and the end-to-end flap scenarios: a severed-then-restored
// path is readmitted via probe slices instead of staying dead forever,
// bytes stay conserved under injected faults, and online recalibration
// shrinks the model error on a drifted link. The fluid-network self-check
// (kFull whole-network oracle) is armed for every simulation test here.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "mpath/model/calibration_store.hpp"
#include "mpath/model/recalibrator.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/health.hpp"
#include "mpath/sim/fault.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

mt::PathPlan direct() { return {mt::PathKind::Direct, mt::kInvalidDevice}; }
mt::PathPlan staged(mt::DeviceId via) {
  return {mt::PathKind::GpuStaged, via};
}

mp::HealthOptions health_opts() {
  mp::HealthOptions h;
  h.enabled = true;
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// PathHealthManager state machine (no simulation)
// ---------------------------------------------------------------------------

TEST(Health, UntrackedPathsAreHealthyAndActive) {
  mp::PathHealthManager hm(health_opts());
  const std::vector<mt::PathPlan> cands{direct(), staged(2)};
  std::vector<mt::PathPlan> active, probes;
  hm.partition(0, 1, cands, 0.0, &active, &probes);
  EXPECT_EQ(active.size(), 2u);
  EXPECT_TRUE(probes.empty());
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kHealthy);
  EXPECT_EQ(hm.slack_multiplier(0, 1, direct()), 1.0);
  EXPECT_EQ(hm.tracked_count(), 0u);
}

TEST(Health, TimeoutMakesSuspectAndProbeDue) {
  mp::PathHealthManager hm(health_opts());
  hm.on_timeout(0, 1, direct(), 1.0);
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kSuspect);
  // Excluded from the solve, offered as a probe (suspect_delay_s == 0).
  std::vector<mt::PathPlan> active, probes;
  hm.partition(0, 1, {direct(), staged(2)}, 1.0, &active, &probes);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], staged(2));
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0], direct());
  // The other direction is untouched: health is per (src, dst, path).
  EXPECT_EQ(hm.state(1, 0, direct()), mp::PathHealth::kHealthy);
}

TEST(Health, ProbeSuccessReadmitsToPristine) {
  mp::PathHealthManager hm(health_opts());
  hm.on_timeout(0, 1, direct(), 1.0);
  hm.on_probe_issued(0, 1, direct());
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kProbation);
  hm.on_success(0, 1, direct(), 1.5);
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kHealthy);
  EXPECT_EQ(hm.tracked_count(), 0u);
  EXPECT_EQ(hm.slack_multiplier(0, 1, direct()), 1.0);
  EXPECT_EQ(hm.stats().probes_succeeded, 1u);
  EXPECT_EQ(hm.stats().readmissions, 1u);
  EXPECT_EQ(hm.stats().deaths, 0u);
}

TEST(Health, ConsecutiveFailuresKillWithExponentialCooldown) {
  auto opts = health_opts();
  opts.dead_after = 3;
  opts.backoff = 2.0;
  opts.dead_cooldown_s = 0.020;
  opts.max_cooldown_s = 0.050;
  mp::PathHealthManager hm(opts);
  hm.on_timeout(0, 1, direct(), 1.0);
  hm.on_probe_issued(0, 1, direct());
  hm.on_timeout(0, 1, direct(), 1.1);
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kSuspect);
  hm.on_probe_issued(0, 1, direct());
  hm.on_timeout(0, 1, direct(), 1.2);  // third strike
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kDead);
  EXPECT_EQ(hm.stats().deaths, 1u);
  EXPECT_EQ(hm.stats().probes_failed, 2u);

  // Dead: no probe until the cooldown elapses.
  std::vector<mt::PathPlan> active, probes;
  hm.partition(0, 1, {direct()}, 1.21, &active, &probes);
  EXPECT_TRUE(active.empty());
  EXPECT_TRUE(probes.empty());
  hm.partition(0, 1, {direct()}, 1.2 + 0.021, &active, &probes);
  ASSERT_EQ(probes.size(), 1u);

  // Further failures stretch the cooldown x2 up to the bound, and deaths
  // is a transition counter, not a failure counter.
  hm.on_timeout(0, 1, direct(), 2.0);  // cooldown 40 ms
  hm.partition(0, 1, {direct()}, 2.0 + 0.039, &active, &probes);
  EXPECT_TRUE(probes.empty());
  hm.partition(0, 1, {direct()}, 2.0 + 0.041, &active, &probes);
  EXPECT_EQ(probes.size(), 1u);
  hm.on_timeout(0, 1, direct(), 3.0);  // would be 80 ms, capped at 50 ms
  hm.partition(0, 1, {direct()}, 3.0 + 0.051, &active, &probes);
  EXPECT_EQ(probes.size(), 1u);
  EXPECT_EQ(hm.stats().deaths, 1u);
}

TEST(Health, SlackMultiplierEscalatesBounded) {
  auto opts = health_opts();
  opts.backoff = 2.0;
  opts.max_slack_factor = 8.0;
  mp::PathHealthManager hm(opts);
  double expected = 1.0;
  for (int i = 0; i < 6; ++i) {
    hm.on_timeout(0, 1, direct(), 0.1 * i);
    expected = std::min(expected * 2.0, 8.0);
    EXPECT_DOUBLE_EQ(hm.slack_multiplier(0, 1, direct()), expected);
  }
  EXPECT_DOUBLE_EQ(hm.slack_multiplier(0, 1, direct()), 8.0);
}

TEST(Health, ProbeBytesClampedToSegment) {
  auto opts = health_opts();
  opts.probe_fraction = 0.05;
  opts.min_probe_bytes = 256 * 1024;
  opts.max_probe_bytes = 8_MiB;
  mp::PathHealthManager hm(opts);
  EXPECT_EQ(hm.probe_bytes(64_MiB),
            static_cast<std::uint64_t>(0.05 * (64.0 * 1024 * 1024)));
  EXPECT_EQ(hm.probe_bytes(1_MiB), 256_KiB);   // floor
  EXPECT_EQ(hm.probe_bytes(1_GiB), 8_MiB);     // ceiling
  EXPECT_EQ(hm.probe_bytes(64_KiB), 64_KiB);   // never exceeds the segment
}

TEST(Health, EscalatedSlackGrowsPerReplanBounded) {
  mp::RecoveryOptions rec;
  rec.slack = 4.0;
  rec.retry_backoff = 2.0;
  rec.max_slack_factor = 8.0;
  EXPECT_DOUBLE_EQ(mp::escalated_slack(rec, 0), 4.0);
  EXPECT_DOUBLE_EQ(mp::escalated_slack(rec, 1), 8.0);
  EXPECT_DOUBLE_EQ(mp::escalated_slack(rec, 2), 16.0);
  EXPECT_DOUBLE_EQ(mp::escalated_slack(rec, 3), 32.0);  // capped: 4 * 8
  EXPECT_DOUBLE_EQ(mp::escalated_slack(rec, 10), 32.0);
  rec.retry_backoff = 1.0;  // PR 2 behaviour: fixed slack
  EXPECT_DOUBLE_EQ(mp::escalated_slack(rec, 5), 4.0);
}

// ---------------------------------------------------------------------------
// End-to-end flap scenarios through the model-driven channel
// ---------------------------------------------------------------------------

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg{reg};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  Fixture() { net.set_self_check(true); }  // kFull whole-network oracle

  [[nodiscard]] ms::LinkId direct_link(mt::DeviceId a, mt::DeviceId b) const {
    return rt.binding().link_for_edge(*sys.topology.direct_edge(a, b));
  }
};

mp::ModelDrivenOptions recovery_health_opts() {
  mp::ModelDrivenOptions o;
  o.recovery.enabled = true;
  o.recovery.slack = 4.0;
  o.recovery.max_replans = 3;
  o.health.enabled = true;
  return o;
}

/// One transfer's outcome inside a multi-transfer driver coroutine.
struct RunRecord {
  bool ok = false;
  bool content_ok = false;
  double elapsed_s = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t requested = 0;
};

/// Run one full-buffer transfer on freshly sized buffers so the payload
/// check covers exactly the transferred range.
ms::Task<void> one_transfer(Fixture& f, mg::DataChannel& ch,
                            mt::DeviceId sdev, mt::DeviceId ddev,
                            std::size_t bytes, std::uint8_t pattern,
                            RunRecord& rec) {
  mg::DeviceBuffer src(sdev, bytes), dst(ddev, bytes);
  src.fill_pattern(pattern);
  rec.requested = bytes;
  const double t0 = f.engine.now();
  try {
    co_await ch.transfer(dst, 0, src, 0, bytes);
    rec.ok = true;
    rec.delivered = bytes;
    rec.content_ok = dst.same_content(src);
  } catch (const mg::TransferError& e) {
    rec.ok = false;
    rec.delivered = e.info().bytes_delivered;
  }
  rec.elapsed_s = f.engine.now() - t0;
}

/// The flap scenario, parameterized on the health policy so the probation
/// path can be compared head-to-head against PR 2's drop-forever:
///   A: 64 MiB, direct severed mid-flight (recovers via re-plan);
///   B: 32 MiB while the link is still down;
///   restore;  C: 32 MiB (health mode probes + readmits);  D: 16 MiB.
struct FlapResult {
  RunRecord a, b, c, d;
  mp::RecoveryStats rec;
  mp::HealthStats health;
  std::size_t tracked = 0;
};

FlapResult run_flap_scenario(bool health_on) {
  Fixture f;
  auto opts = recovery_health_opts();
  opts.health.enabled = health_on;
  // The probes issued while the link is still down may kill the path; keep
  // the readmission cooldown shorter than the inter-transfer gap so the
  // post-restore transfer gets its probe.
  opts.health.dead_cooldown_s = 0.5e-3;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  const double base = f.net.link(link).capacity_bps;
  f.engine.schedule_callback(100e-6,
                             [&] { f.net.set_link_capacity(link, 0.0); });

  FlapResult r;
  f.engine.spawn(
      [](Fixture& fx, mp::ModelDrivenChannel& c, ms::LinkId l, double cap,
         FlapResult& out) -> ms::Task<void> {
        const auto g0 = fx.gpus[0], g1 = fx.gpus[1];
        co_await one_transfer(fx, c, g0, g1, 64_MiB, 71, out.a);
        co_await one_transfer(fx, c, g0, g1, 32_MiB, 72, out.b);
        fx.net.set_link_capacity(l, cap);  // restore
        co_await one_transfer(fx, c, g0, g1, 32_MiB, 73, out.c);
        co_await one_transfer(fx, c, g0, g1, 16_MiB, 74, out.d);
      }(f, ch, link, base, r),
      "flap");
  f.engine.run();
  r.rec = ch.recovery_stats();
  r.health = ch.health().stats();
  r.tracked = ch.health().tracked_count();
  return r;
}

}  // namespace

// Satellite acceptance: a flapping path is probed and readmitted, every
// transfer completes with the payload intact, and the probation policy
// strictly beats drop-forever on the transfer that runs while the link is
// still down (no full theta share is wasted on a known-bad path).
TEST(FlapRecovery, ProbationReadmitsAndBeatsDropForever) {
  const FlapResult with_health = run_flap_scenario(true);
  const FlapResult legacy = run_flap_scenario(false);

  for (const auto* rr :
       {&with_health.a, &with_health.b, &with_health.c, &with_health.d,
        &legacy.a, &legacy.b, &legacy.c, &legacy.d}) {
    EXPECT_TRUE(rr->ok);
    EXPECT_TRUE(rr->content_ok);
    EXPECT_EQ(rr->delivered, rr->requested);
  }

  // Health mode probed the suspect path and readmitted it after restore.
  EXPECT_GE(with_health.health.probes_launched, 1u);
  EXPECT_GE(with_health.health.probes_succeeded, 1u);
  EXPECT_GE(with_health.health.readmissions, 1u);
  // By the end the direct path is pristine healthy again.
  EXPECT_EQ(with_health.tracked, 0u);
  // Legacy mode never tracks anything.
  EXPECT_EQ(legacy.health.timeouts, 0u);

  // While the link was still down, drop-forever re-tried the dead path at
  // its full theta share and ate another watchdog stall; probation risked
  // only a probe slice. Health must finish transfer B strictly faster.
  EXPECT_LT(with_health.b.elapsed_s, legacy.b.elapsed_s);
  // And once readmitted, the healthy-path transfer must pay no penalty
  // versus a probe-free plan (same path set, same solve).
  EXPECT_GT(with_health.d.elapsed_s, 0.0);
}

// Byte conservation under seeded flapping faults: every transfer either
// delivers all bytes with the payload intact or reports a delivered count
// no larger than requested; nothing is parked on a stalled flow at the end.
TEST(FlapRecovery, BytesConservedUnderInjectedFlaps) {
  Fixture f;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            recovery_health_opts());
  ms::FaultInjector inj(f.engine, f.net);
  const auto l01 = f.direct_link(f.gpus[0], f.gpus[1]);
  const auto l02 = f.direct_link(f.gpus[0], f.gpus[2]);
  // Downtimes must outlast the watchdog's 1 ms deadline floor, or a
  // stalled flow simply resumes when capacity returns and nothing fails.
  inj.flap(l01, /*first_down=*/50e-6, /*down_for=*/3e-3, /*up_for=*/1e-3,
           /*cycles=*/2);
  inj.flap(l02, /*first_down=*/250e-6, /*down_for=*/200e-6,
           /*up_for=*/500e-6, /*cycles=*/2);

  constexpr int kTransfers = 4;
  std::vector<RunRecord> recs(kTransfers);
  f.engine.spawn(
      [](Fixture& fx, mp::ModelDrivenChannel& c,
         std::vector<RunRecord>& out) -> ms::Task<void> {
        for (std::size_t i = 0; i < out.size(); ++i) {
          co_await one_transfer(fx, c, fx.gpus[0], fx.gpus[1], 16_MiB,
                                static_cast<std::uint8_t>(80 + i), out[i]);
        }
      }(f, ch, recs),
      "churn");
  f.engine.run();

  for (const auto& rr : recs) {
    EXPECT_LE(rr.delivered, rr.requested);
    if (rr.ok) {
      EXPECT_EQ(rr.delivered, rr.requested);
      EXPECT_TRUE(rr.content_ok);  // every completed payload is intact
    }
  }
  // The last transfer runs after the flap window: it must complete.
  EXPECT_TRUE(recs.back().ok);
  EXPECT_GE(ch.recovery_stats().path_timeouts, 1u);  // the flaps bit
  EXPECT_EQ(f.net.stalled_flow_count(), 0u);
  EXPECT_EQ(f.net.active_flow_count(), 0u);
}

// Online recalibration on a drifted link: the direct link silently delivers
// 40% of its nominal capacity; with a Recalibrator wired in, the model's
// per-transfer prediction error must shrink (windowed, non-increasing) as
// corrected alpha/beta snapshots are published and picked up.
TEST(DriftConvergence, RecalibratedPredictionsConvergeOnDriftedLink) {
  Fixture f;
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  f.net.set_link_capacity(link, 0.4 * f.net.link(link).capacity_bps);

  mm::CalibrationStore store;
  f.cfg.set_calibration(&store);
  mm::Recalibrator recal(store);
  mp::ModelDrivenOptions opts;  // no recovery: clean observations only
  opts.recalibrator = &recal;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);

  constexpr int kTransfers = 24;
  std::vector<double> errors;
  f.engine.spawn(
      [](Fixture& fx, mp::ModelDrivenChannel& c,
         std::vector<double>& errs) -> ms::Task<void> {
        for (int i = 0; i < kTransfers; ++i) {
          RunRecord rr;
          co_await one_transfer(fx, c, fx.gpus[0], fx.gpus[1], 32_MiB,
                                static_cast<std::uint8_t>(90 + i), rr);
          const double predicted = c.last_config()->predicted_time;
          errs.push_back(std::abs(rr.elapsed_s - predicted) / rr.elapsed_s);
        }
      }(f, ch, errors),
      "drift");
  f.engine.run();

  ASSERT_EQ(errors.size(), static_cast<std::size_t>(kTransfers));
  const auto window = [&](int lo, int hi) {
    return std::accumulate(errors.begin() + lo, errors.begin() + hi, 0.0) /
           (hi - lo);
  };
  const double w0 = window(0, 8), w1 = window(8, 16), w2 = window(16, 24);
  EXPECT_LE(w1, w0 + 1e-9);
  EXPECT_LE(w2, w1 + 1e-9);
  EXPECT_LT(w2, 0.5 * w0);  // converged well below the uncorrected error
  EXPECT_LT(w2, 0.15);
  EXPECT_GE(store.version(), 1u);
  EXPECT_GE(recal.stats().publications, 1u);
  // The learned correction says the direct path is slower than fitted.
  const auto* cal = store.snapshot()->find(f.gpus[0], f.gpus[1], direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_LT(cal->beta_scale, 1.0);
}

// Paper-faithful guard: with health and recalibration both left disabled
// the channel must not track state or pay any probe/observation work.
TEST(FlapRecovery, DisabledPoliciesStayInert) {
  Fixture f;
  mp::ModelDrivenOptions opts;
  opts.recovery.enabled = true;
  opts.recovery.slack = 4.0;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);
  RunRecord rr;
  f.engine.spawn(one_transfer(f, ch, f.gpus[0], f.gpus[1], 16_MiB, 99, rr),
                 "inert");
  f.engine.run();
  EXPECT_TRUE(rr.ok);
  EXPECT_TRUE(rr.content_ok);
  const auto& hs = ch.health().stats();
  EXPECT_EQ(hs.probes_launched, 0u);
  EXPECT_EQ(hs.timeouts + hs.readmissions + hs.deaths, 0u);
  EXPECT_EQ(ch.health().tracked_count(), 0u);
}

// ---------------------------------------------------------------------------
// Option validation and the readmission/suspect-clear stat split
// ---------------------------------------------------------------------------

TEST(Health, RejectsInconsistentOptions) {
  // min > max probe bytes would make the probe-size std::clamp UB.
  auto opts = health_opts();
  opts.min_probe_bytes = 8_MiB;
  opts.max_probe_bytes = 1_MiB;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.probe_fraction = 1.5;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);
  opts.probe_fraction = -0.1;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.dead_after = 0;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.backoff = 0.5;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.max_slack_factor = 0.9;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.suspect_delay_s = -1.0;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.dead_cooldown_s = -1e-3;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  opts = health_opts();
  opts.max_cooldown_s = opts.dead_cooldown_s / 2;
  EXPECT_THROW(mp::PathHealthManager{opts}, std::invalid_argument);

  // Defaults (and the boundary probe_fraction values) are valid.
  EXPECT_NO_THROW(mp::PathHealthManager{health_opts()});
  opts = health_opts();
  opts.probe_fraction = 0.0;
  EXPECT_NO_THROW(mp::PathHealthManager{opts});
  opts.probe_fraction = 1.0;
  EXPECT_NO_THROW(mp::PathHealthManager{opts});
}

TEST(Health, EqualProbeBoundsAreValidAndDegenerate) {
  auto opts = health_opts();
  opts.min_probe_bytes = 1_MiB;
  opts.max_probe_bytes = 1_MiB;
  mp::PathHealthManager hm(opts);
  EXPECT_EQ(hm.probe_bytes(64_MiB), 1_MiB);
  EXPECT_EQ(hm.probe_bytes(512_KiB), 512_KiB);  // still capped by segment
}

TEST(Health, SuspectClearedByRegularShareIsNotAReadmission) {
  mp::PathHealthManager hm(health_opts());
  hm.on_timeout(0, 1, direct(), 1.0);
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kSuspect);
  // The path delivers a planned (non-probe) share before any probe was
  // issued: tracked state clears, but the probation machinery proved
  // nothing.
  hm.on_success(0, 1, direct(), 1.5);
  EXPECT_EQ(hm.state(0, 1, direct()), mp::PathHealth::kHealthy);
  EXPECT_EQ(hm.stats().suspect_clears, 1u);
  EXPECT_EQ(hm.stats().readmissions, 0u);
  EXPECT_EQ(hm.stats().probes_succeeded, 0u);

  // The probe-proven flavour increments readmissions, not suspect_clears.
  hm.on_timeout(0, 1, staged(2), 2.0);
  hm.on_probe_issued(0, 1, staged(2));
  hm.on_success(0, 1, staged(2), 2.5);
  EXPECT_EQ(hm.stats().readmissions, 1u);
  EXPECT_EQ(hm.stats().suspect_clears, 1u);

  // Untracked paths stay a no-op for both counters.
  hm.on_success(0, 1, direct(), 3.0);
  EXPECT_EQ(hm.stats().readmissions, 1u);
  EXPECT_EQ(hm.stats().suspect_clears, 1u);
}
