// Compiled transfer graphs (PR 9): compile/replay timing identity with the
// uncompiled path, TransferGraph patching, the GraphCache (LRU, collision,
// calibration-version invalidation), the ModelDrivenChannel fast path with
// its fallback gates, admit_replay ledger equivalence, and the invalidation
// edge cases (calibration publish mid-flight, health probation of a
// template path, LRU eviction while a replay executes).
#include "mpath/pipeline/graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mpath/model/calibration_store.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/scheduler.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys;
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt;
  mp::PipelineEngine pipe;
  mm::ModelRegistry reg;
  mm::PathConfigurator cfg;
  std::vector<mt::DeviceId> gpus;

  explicit Fixture(double jitter_rel = 0.0,
                   std::size_t staging_buffers_per_device = 4)
      : sys(make_sys(jitter_rel)),
        rt(sys, engine, net),
        pipe(rt, staging_buffers_per_device),
        reg(mpath::tuning::registry_from_topology(sys)),
        cfg(reg) {
    gpus = sys.topology.gpus();
  }

  static mt::System make_sys(double jitter_rel) {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = jitter_rel;
    return s;
  }

  [[nodiscard]] std::vector<mt::PathPlan> candidates(
      const mt::PathPolicy& policy) {
    return mt::enumerate_paths(sys.topology, gpus[0], gpus[1], policy);
  }

  [[nodiscard]] ms::LinkId direct_link(mt::DeviceId a, mt::DeviceId b) const {
    return rt.binding().link_for_edge(*sys.topology.direct_edge(a, b));
  }
};

mp::ExecPlan plan_of(const mm::TransferConfig& config) {
  mp::ExecPlan plan;
  for (const auto& share : config.paths) {
    plan.push_back(mp::ExecPath{share.plan, share.bytes, share.chunks});
  }
  return plan;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compile
// ---------------------------------------------------------------------------

TEST(GraphCompile, ResolvesResourcesWithoutSimulatedTime) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const mm::TransferConfig config =
      f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths);
  const double t0 = f.engine.now();
  const auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(f.engine.now(), t0);  // compile is host-side only
  EXPECT_TRUE(g->valid());
  EXPECT_EQ(g->src_device(), f.gpus[0]);
  EXPECT_EQ(g->dst_device(), f.gpus[1]);
  EXPECT_EQ(g->total_bytes(), 64_MiB);
  ASSERT_EQ(g->key_paths().size(), paths.size());
  EXPECT_FALSE(g->busy());
  EXPECT_EQ(g->replays(), 0u);
  // Active shares only; every staged path carries its reserved events and a
  // persistent staging lease.
  std::uint64_t covered = 0;
  for (const auto& p : g->paths()) {
    EXPECT_GT(p.bytes, 0u);
    covered += p.bytes;
    if (p.staged) {
      EXPECT_TRUE(p.lease.valid());
      EXPECT_GT(p.slot_bytes, 0u);
      EXPECT_EQ(p.fwd_events.size(), static_cast<std::size_t>(p.chunks));
      EXPECT_EQ(p.bwd_events.size(), static_cast<std::size_t>(p.chunks));
    }
    EXPECT_EQ(p.chunk_sizes.size(), static_cast<std::size_t>(p.chunks));
  }
  EXPECT_EQ(covered, 64_MiB);
  EXPECT_FALSE(g->ops().empty());
}

TEST(GraphCompile, NullWhenStagingPoolExhausted) {
  // One staging buffer per device: the first template takes the slot on its
  // stage GPU persistently, so a second template over the same stage must
  // fail to compile (nullptr) instead of blocking inside compile.
  Fixture f(0.0, /*staging_buffers_per_device=*/1);
  const auto paths = f.candidates(mt::PathPolicy::two_gpus());
  const mm::TransferConfig config =
      f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths);
  const auto g1 = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g1, nullptr);
  const auto g2 = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  EXPECT_EQ(g2, nullptr);
}

TEST(GraphCompile, MirrorsExecuteValidation) {
  Fixture f;
  mm::TransferConfig empty;
  EXPECT_THROW((void)f.pipe.compile_graph(f.gpus[0], f.gpus[1], empty),
               std::invalid_argument);

  mm::TransferConfig bad;
  bad.total_bytes = 1_MiB;
  mm::PathShare share;
  share.plan = {mt::PathKind::GpuStaged, mt::kInvalidDevice};  // no stage
  share.bytes = 1_MiB;
  share.chunks = 4;
  bad.paths.push_back(share);
  EXPECT_THROW((void)f.pipe.compile_graph(f.gpus[0], f.gpus[1], bad),
               std::invalid_argument);

  mm::TransferConfig zero_chunks;
  zero_chunks.total_bytes = 1_MiB;
  mm::PathShare d;
  d.plan = {mt::PathKind::Direct, mt::kInvalidDevice};
  d.bytes = 1_MiB;
  d.chunks = 0;
  zero_chunks.paths.push_back(d);
  EXPECT_THROW((void)f.pipe.compile_graph(f.gpus[0], f.gpus[1], zero_chunks),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Replay identity
// ---------------------------------------------------------------------------

// The core tentpole invariant, at the engine level and with jitter ON: a
// replay issues the exact same runtime-call + issue-cost sequence as
// execute_monitored on the equivalent plan, so the completion instants (and
// the rng draws behind them) are bit-identical across two fresh engines.
TEST(GraphReplay, BitIdenticalToUncompiledUnderJitter) {
  const std::uint64_t n = 64_MiB;
  double t_classic = 0.0, t_replay = 0.0;
  bool content_classic = false, content_replay = false;

  {
    Fixture f(/*jitter_rel=*/0.02);
    const auto paths = f.candidates(mt::PathPolicy::three_gpus());
    const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], n, paths);
    mg::DeviceBuffer src(f.gpus[0], n), dst(f.gpus[1], n);
    src.fill_pattern(21);
    f.engine.spawn(
        [](Fixture& fx, mg::DeviceBuffer& d, const mg::DeviceBuffer& s,
           mp::ExecPlan plan) -> ms::Task<void> {
          (void)co_await fx.pipe.execute_monitored(d, 0, s, 0,
                                                   std::move(plan), {});
        }(f, dst, src, plan_of(config)),
        "classic");
    f.engine.run();
    t_classic = f.engine.now();
    content_classic = dst.same_content(src);
  }
  {
    Fixture f(/*jitter_rel=*/0.02);
    const auto paths = f.candidates(mt::PathPolicy::three_gpus());
    const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], n, paths);
    mg::DeviceBuffer src(f.gpus[0], n), dst(f.gpus[1], n);
    src.fill_pattern(21);
    auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
    ASSERT_NE(g, nullptr);
    f.engine.spawn(
        [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
           mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
          (void)co_await fx.pipe.replay(std::move(gr), d, 0, s, 0, {});
        }(f, g, dst, src),
        "replay");
    f.engine.run();
    t_replay = f.engine.now();
    content_replay = dst.same_content(src);
    EXPECT_EQ(g->replays(), 1u);
    EXPECT_FALSE(g->busy());
  }
  EXPECT_TRUE(content_classic);
  EXPECT_TRUE(content_replay);
  EXPECT_EQ(t_classic, t_replay);  // bit-identical, not just NEAR
}

// Same invariant under a mid-flight link failure with watchdogs armed: the
// timeout instant, the partial-delivery accounting, and the surviving
// paths' completions must all match the uncompiled path bit for bit.
TEST(GraphReplay, MonitoredTimeoutMatchesUncompiledBitForBit) {
  const std::uint64_t n = 64_MiB;
  const auto run_one = [n](bool compiled, mp::TransferOutcome& out,
                           double& t_out) {
    Fixture f(/*jitter_rel=*/0.01);
    const auto paths = f.candidates(mt::PathPolicy::three_gpus());
    const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], n, paths);
    mp::PathWatchList watch;
    for (const auto& share : config.paths) {
      watch.push_back(
          mp::PathWatch{std::max(1e-3, 4.0 * share.predicted_time)});
    }
    mg::DeviceBuffer src(f.gpus[0], n), dst(f.gpus[1], n);
    src.fill_pattern(22);
    // Sever the direct link mid-transfer; its watchdog fires, the staged
    // paths finish normally.
    const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
    f.engine.schedule_callback(100e-6,
                               [&f, link] { f.net.set_link_capacity(link, 0.0); });
    std::shared_ptr<mp::TransferGraph> g;
    if (compiled) {
      g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
      ASSERT_NE(g, nullptr);
    }
    f.engine.spawn(
        [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
           mm::TransferConfig cf, mg::DeviceBuffer& d,
           const mg::DeviceBuffer& s, mp::PathWatchList w,
           mp::TransferOutcome& res) -> ms::Task<void> {
          if (gr != nullptr) {
            res = co_await fx.pipe.replay(std::move(gr), d, 0, s, 0,
                                          std::move(w));
          } else {
            res = co_await fx.pipe.execute_monitored(
                d, 0, s, 0, plan_of(cf), std::move(w));
          }
        }(f, g, config, dst, src, watch, out),
        compiled ? "replay" : "classic");
    f.engine.run();
    t_out = f.engine.now();
  };
  mp::TransferOutcome classic, replayed;
  double t_classic = 0.0, t_replay = 0.0;
  {
    SCOPED_TRACE("classic");
    run_one(false, classic, t_classic);
  }
  {
    SCOPED_TRACE("replay");
    run_one(true, replayed, t_replay);
  }
  EXPECT_EQ(t_classic, t_replay);
  ASSERT_EQ(classic.paths.size(), replayed.paths.size());
  EXPECT_EQ(classic.complete, replayed.complete);
  EXPECT_FALSE(classic.complete);  // the severed direct path timed out
  for (std::size_t i = 0; i < classic.paths.size(); ++i) {
    EXPECT_EQ(classic.paths[i].bytes, replayed.paths[i].bytes);
    EXPECT_EQ(classic.paths[i].bytes_delivered,
              replayed.paths[i].bytes_delivered);
    EXPECT_EQ(classic.paths[i].timed_out, replayed.paths[i].timed_out);
  }
}

TEST(GraphReplay, SteadyStateReplaysReuseResources) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 32_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  mg::DeviceBuffer src(f.gpus[0], 32_MiB), dst(f.gpus[1], 32_MiB);
  src.fill_pattern(23);
  const auto pooled_before = f.rt.events_pooled();
  f.engine.spawn(
      [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
        for (int i = 0; i < 3; ++i) {
          const auto out = co_await fx.pipe.replay(gr, d, 0, s, 0, {});
          EXPECT_TRUE(out.complete);
        }
      }(f, g, dst, src),
      "steady");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(g->replays(), 3u);
  EXPECT_EQ(f.pipe.transfers_executed(), 3u);
  // Replays never touch the event free-list: the template owns its events.
  EXPECT_EQ(f.rt.events_pooled(), pooled_before);
}

TEST(GraphReplay, BusyTemplateIsRejected) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 32_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  mg::DeviceBuffer src(f.gpus[0], 32_MiB), dst(f.gpus[1], 32_MiB);
  src.fill_pattern(24);
  bool second_rejected = false;
  f.engine.spawn(
      [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
        (void)co_await fx.pipe.replay(gr, d, 0, s, 0, {});
      }(f, g, dst, src),
      "first");
  f.engine.spawn(
      [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s,
         bool& rejected) -> ms::Task<void> {
        try {
          (void)co_await fx.pipe.replay(gr, d, 0, s, 0, {});
        } catch (const std::logic_error&) {
          rejected = true;
        }
      }(f, g, dst, src, second_rejected),
      "second");
  f.engine.run();
  EXPECT_TRUE(second_rejected);
  EXPECT_EQ(g->replays(), 1u);
  EXPECT_FALSE(g->busy());
}

// ---------------------------------------------------------------------------
// Patch
// ---------------------------------------------------------------------------

TEST(GraphPatch, ResplitsKeepingThetaAndDelivers) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  const std::vector<double> thetas = [&] {
    std::vector<double> t;
    for (const auto& s : g->config().paths) t.push_back(s.theta);
    return t;
  }();

  ASSERT_TRUE(g->patch(48_MiB));
  EXPECT_EQ(g->total_bytes(), 48_MiB);
  EXPECT_EQ(g->config().total_bytes, 48_MiB);
  std::uint64_t covered = 0;
  for (const auto& s : g->config().paths) covered += s.bytes;
  EXPECT_EQ(covered, 48_MiB);
  // Non-anchor shares follow the compiled theta exactly.
  for (std::size_t i = 1; i < g->config().paths.size(); ++i) {
    EXPECT_EQ(g->config().paths[i].bytes,
              static_cast<std::uint64_t>(
                  std::floor(thetas[i] * static_cast<double>(48_MiB))));
  }

  mg::DeviceBuffer src(f.gpus[0], 48_MiB), dst(f.gpus[1], 48_MiB);
  src.fill_pattern(25);
  f.engine.spawn(
      [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
        const auto out = co_await fx.pipe.replay(gr, d, 0, s, 0, {});
        EXPECT_TRUE(out.complete);
      }(f, g, dst, src),
      "patched");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));

  // patch(total_bytes()) is a no-op; zero bytes is rejected.
  EXPECT_TRUE(g->patch(48_MiB));
  EXPECT_FALSE(g->patch(0));
  EXPECT_EQ(g->total_bytes(), 48_MiB);
}

TEST(GraphPatch, OneBytePatchCollapsesOntoTheAnchor) {
  // The smallest legal patch: every non-anchor share floors to zero bytes
  // (floor(theta * 1) == 0 for theta < 1), the remainder — the whole byte —
  // lands on the anchor, and the op list degenerates to the anchor's path
  // alone. The graph must still replay and deliver that byte.
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  ASSERT_GT(g->config().paths.size(), 1u);

  ASSERT_TRUE(g->patch(1));
  EXPECT_EQ(g->total_bytes(), 1u);
  EXPECT_EQ(g->config().paths[0].bytes, 1u);
  EXPECT_EQ(g->config().paths[0].theta, 1.0);
  for (std::size_t i = 1; i < g->config().paths.size(); ++i) {
    EXPECT_EQ(g->config().paths[i].bytes, 0u);
  }
  // Zero-byte paths contribute no chunks and no ops.
  std::size_t carrying = 0;
  for (const auto& p : g->paths()) {
    if (p.bytes == 0) {
      EXPECT_EQ(p.chunks, 0);
      EXPECT_TRUE(p.chunk_sizes.empty());
    } else {
      ++carrying;
      EXPECT_EQ(p.chunks, 1);
      ASSERT_EQ(p.chunk_sizes.size(), 1u);
      EXPECT_EQ(p.chunk_sizes[0], 1u);
    }
  }
  EXPECT_EQ(carrying, 1u);

  mg::DeviceBuffer src(f.gpus[0], 1), dst(f.gpus[1], 1);
  src.fill_pattern(31);
  f.engine.spawn(
      [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
        const auto out = co_await fx.pipe.replay(gr, d, 0, s, 0, {});
        EXPECT_TRUE(out.complete);
      }(f, g, dst, src),
      "one-byte");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
}

TEST(GraphPatch, PatchingBackToCompiledBytesRestoresExactShares) {
  // Non-anchor thetas are never rewritten by patch, and the share bytes are
  // re-derived with the same floor/anchor-remainder arithmetic the original
  // compile used — so patching away and back must reproduce the compiled
  // split bit for bit, including the per-chunk splits.
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);

  struct Snap {
    std::vector<std::uint64_t> share_bytes;
    std::vector<double> thetas;
    std::vector<std::vector<std::size_t>> chunk_sizes;
    std::size_t ops = 0;
  };
  const auto snapshot = [&] {
    Snap s;
    for (const auto& share : g->config().paths) {
      s.share_bytes.push_back(share.bytes);
      s.thetas.push_back(share.theta);
    }
    for (const auto& p : g->paths()) {
      s.chunk_sizes.emplace_back(p.chunk_sizes.begin(), p.chunk_sizes.end());
    }
    s.ops = g->ops().size();
    return s;
  };
  const Snap before = snapshot();

  ASSERT_TRUE(g->patch(48_MiB));
  ASSERT_TRUE(g->patch(1));
  ASSERT_TRUE(g->patch(64_MiB));

  const Snap after = snapshot();
  EXPECT_EQ(after.share_bytes, before.share_bytes);
  EXPECT_EQ(after.thetas, before.thetas);
  EXPECT_EQ(after.chunk_sizes, before.chunk_sizes);
  EXPECT_EQ(after.ops, before.ops);
  EXPECT_EQ(g->total_bytes(), 64_MiB);
}

TEST(GraphPatch, StagedShareDegeneratesToSingleChunk) {
  // Shrink until a staged share carries exactly one byte: its chunk count
  // clamps to min(compiled chunks, bytes) == 1, so the re-split emits a
  // single chunk and none of the in-flight pipelining ops (no kWaitSlot,
  // which only exists from chunk index 2 on). Replay must still deliver.
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);

  // Find a non-anchor staged share and the size at which it gets 1 byte.
  std::size_t staged_idx = 0;
  for (std::size_t i = 1; i < g->config().paths.size(); ++i) {
    if (g->config().paths[i].plan.kind == mt::PathKind::GpuStaged) {
      staged_idx = i;
      break;
    }
  }
  ASSERT_GT(staged_idx, 0u) << "topology offers no non-anchor staged path";
  ASSERT_GT(g->config().paths[staged_idx].chunks, 1);
  const double theta = g->config().paths[staged_idx].theta;
  const auto new_bytes =
      static_cast<std::uint64_t>(std::ceil(1.0 / theta));
  ASSERT_EQ(static_cast<std::uint64_t>(
                std::floor(theta * static_cast<double>(new_bytes))),
            1u);

  ASSERT_TRUE(g->patch(new_bytes));
  std::size_t staged_pidx = g->paths().size();
  for (std::size_t i = 0; i < g->paths().size(); ++i) {
    if (g->paths()[i].staged && g->paths()[i].plan_index == staged_idx) {
      staged_pidx = i;
      break;
    }
  }
  ASSERT_LT(staged_pidx, g->paths().size());
  const auto& staged_path = g->paths()[staged_pidx];
  EXPECT_EQ(staged_path.bytes, 1u);
  EXPECT_EQ(staged_path.chunks, 1);
  ASSERT_EQ(staged_path.chunk_sizes.size(), 1u);
  EXPECT_EQ(staged_path.chunk_sizes[0], 1u);
  for (const auto& op : g->ops()) {
    if (op.path == staged_pidx) {
      EXPECT_NE(op.kind, mp::GraphOp::Kind::kWaitSlot);
    }
  }

  mg::DeviceBuffer src(f.gpus[0], new_bytes), dst(f.gpus[1], new_bytes);
  src.fill_pattern(87);
  f.engine.spawn(
      [](Fixture& fx, std::shared_ptr<mp::TransferGraph> gr,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
        const auto out = co_await fx.pipe.replay(gr, d, 0, s, 0, {});
        EXPECT_TRUE(out.complete);
      }(f, g, dst, src),
      "single-chunk");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
}

TEST(GraphPatch, RejectsSizesThatOverflowCompiledResources) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::two_gpus());
  const auto config = f.cfg.compute_config(f.gpus[0], f.gpus[1], 8_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  const std::uint64_t before = g->total_bytes();
  // 64x the compiled size: a staged chunk would exceed its staging slot (the
  // slot was sized for the compile-time chunk), so the patch must refuse and
  // leave the template untouched.
  EXPECT_FALSE(g->patch(512_MiB));
  EXPECT_EQ(g->total_bytes(), before);
  EXPECT_EQ(g->config().total_bytes, before);
}

// ---------------------------------------------------------------------------
// GraphCache
// ---------------------------------------------------------------------------

TEST(GraphCache, HitMissLruEvictionAndRemove) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  mp::GraphCacheOptions opt;
  opt.capacity = 2;
  mp::GraphCache cache(opt);

  const auto compile_for = [&](std::uint64_t bytes) {
    const auto config =
        f.cfg.compute_config(f.gpus[0], f.gpus[1], bytes, paths);
    auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
    EXPECT_NE(g, nullptr);
    return g;
  };
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};

  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  auto g8 = compile_for(8_MiB);
  cache.insert(g8, 0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 0), g8);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Different bytes = different tuple = miss.
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 16_MiB, key, 0), nullptr);

  auto g16 = compile_for(16_MiB);
  cache.insert(g16, 0);
  // Touch 8 MiB so 16 MiB is the LRU victim when a third template arrives.
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 0), g8);
  auto g32 = compile_for(32_MiB);
  cache.insert(g32, 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 16_MiB, key, 0), nullptr);
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 0), g8);
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 32_MiB, key, 0), g32);

  EXPECT_TRUE(cache.remove(f.gpus[0], f.gpus[1], 8_MiB, key));
  EXPECT_FALSE(cache.remove(f.gpus[0], f.gpus[1], 8_MiB, key));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(GraphCache, StaleCalibrationVersionInvalidates) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};
  mp::GraphCache cache;
  const auto config =
      f.cfg.compute_config(f.gpus[0], f.gpus[1], 8_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);
  cache.insert(g, /*cal_version=*/1);
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 1), g);
  // A publication bumped the version: the entry is dropped, not returned.
  EXPECT_EQ(cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 2), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(GraphCache, NarrowKeyCollisionsMissInsteadOfAliasing) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};
  mp::GraphCacheOptions opt;
  opt.key_bits = 1;  // every tuple lands on one of two buckets
  mp::GraphCache cache(opt);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const auto config =
        f.cfg.compute_config(f.gpus[0], f.gpus[1], i << 20, paths);
    auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
    ASSERT_NE(g, nullptr);
    cache.insert(std::move(g), 0);
    // Whatever is resident, a lookup must only ever return ITS tuple.
    const auto hit = cache.lookup(f.gpus[0], f.gpus[1], i << 20, key, 0);
    if (hit != nullptr) EXPECT_EQ(hit->total_bytes(), i << 20);
  }
  EXPECT_LE(cache.size(), 2u);
  // Probe every tuple again: displaced ones land on a bucket owned by a
  // later collider and must miss (never alias), bumping the counter.
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const auto hit = cache.lookup(f.gpus[0], f.gpus[1], i << 20, key, 0);
    if (hit != nullptr) EXPECT_EQ(hit->total_bytes(), i << 20);
  }
  EXPECT_GE(cache.stats().collisions, 1u);
}

// ---------------------------------------------------------------------------
// GraphCache under threads (TSan-covered via the CI concurrency regex)
// ---------------------------------------------------------------------------

// Templates are compiled up front on the main thread (compile itself is
// engine-affine and single-threaded by design); only the cache — the one
// shared mutable structure — is hammered from worker threads. Main keeps a
// strong reference to every graph so worker-side evictions never run a
// TransferGraph destructor off the engine thread.
TEST(GraphCacheConcurrent, ParallelLookupInsertRemoveAgree) {
  // Enough staging slots for eight live templates per stage device.
  Fixture f(/*jitter_rel=*/0.0, /*staging_buffers_per_device=*/16);
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};
  std::vector<mp::GraphPtr> graphs;
  constexpr std::uint64_t kSizes = 8;
  for (std::uint64_t i = 1; i <= kSizes; ++i) {
    const auto config =
        f.cfg.compute_config(f.gpus[0], f.gpus[1], i << 20, paths);
    auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
    ASSERT_NE(g, nullptr);
    graphs.push_back(std::move(g));
  }

  mp::GraphCacheOptions opt;
  opt.capacity = 4;  // smaller than the working set: eviction races too
  mp::GraphCache cache(opt);
  std::atomic<bool> aliased{false};
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const std::uint64_t i = 1 + ((t + it) % kSizes);
        const std::uint64_t bytes = i << 20;
        switch ((t + it) % 4) {
          case 0:
            cache.insert(graphs[i - 1], /*cal_version=*/0);
            break;
          case 1:
            cache.remove(f.gpus[0], f.gpus[1], bytes, key);
            break;
          default: {
            const auto hit =
                cache.lookup(f.gpus[0], f.gpus[1], bytes, key, 0);
            if (hit != nullptr && hit->total_bytes() != bytes) {
              aliased.store(true, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(aliased.load());
  EXPECT_LE(cache.size(), 4u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kIters / 2);
}

TEST(GraphCacheConcurrent, ClearRacesLookupsWithoutTearing) {
  Fixture f;
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};
  const auto config =
      f.cfg.compute_config(f.gpus[0], f.gpus[1], 8_MiB, paths);
  auto g = f.pipe.compile_graph(f.gpus[0], f.gpus[1], config);
  ASSERT_NE(g, nullptr);

  mp::GraphCache cache;
  std::atomic<bool> stop{false};
  std::atomic<bool> aliased{false};
  std::thread churn([&] {
    for (int i = 0; i < 4000; ++i) {
      cache.insert(g, 0);
      cache.clear();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const auto hit = cache.lookup(f.gpus[0], f.gpus[1], 8_MiB, key, 0);
        if (hit != nullptr && hit->total_bytes() != 8_MiB) {
          aliased.store(true);
        }
      }
    });
  }
  churn.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(aliased.load());
  EXPECT_LE(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// admit_replay (scheduler ledger equivalence)
// ---------------------------------------------------------------------------

TEST(Scheduler, AdmitReplayRegistersTheCompiledLedgerEntry) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};

  // A fresh uncontended admission (the compile source)...
  const auto adm = sched.admit(f.gpus[0], f.gpus[1], 64_MiB, key);
  ASSERT_NE(adm.ticket, mp::TransferScheduler::kInvalidTicket);
  EXPECT_TRUE(adm.uncontended);
  sched.depart(adm.ticket);

  // ...whose config a later replay re-registers identically.
  const auto rep = sched.admit_replay(f.gpus[0], f.gpus[1], 64_MiB, key,
                                      adm.config);
  ASSERT_NE(rep.ticket, mp::TransferScheduler::kInvalidTicket);
  EXPECT_TRUE(rep.uncontended);
  EXPECT_EQ(sched.live_count(), 1u);
  sched.depart(rep.ticket);
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_EQ(sched.stats().replay_admits, 1u);
  EXPECT_GE(sched.stats().footprint_checks, 2u);
  EXPECT_EQ(sched.stats().footprint_mismatches, 0u);
}

TEST(Scheduler, AdmitReplayRejectsMismatchedTemplate) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};
  const auto adm = sched.admit(f.gpus[0], f.gpus[1], 64_MiB, key);
  sched.depart(adm.ticket);

  // Wrong size for the compiled config: the template no longer describes
  // the request, so the scheduler demands a recompile.
  const auto rep =
      sched.admit_replay(f.gpus[0], f.gpus[1], 32_MiB, key, adm.config);
  EXPECT_EQ(rep.ticket, mp::TransferScheduler::kInvalidTicket);
  EXPECT_EQ(sched.stats().replay_plan_mismatches, 1u);
  EXPECT_EQ(sched.live_count(), 0u);
}

TEST(Scheduler, AdmitReplayRejectsWhenLinksAreContended) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = f.candidates(mt::PathPolicy::three_gpus());
  const std::span<const mt::PathPlan> key{paths.data(), paths.size()};
  const auto adm = sched.admit(f.gpus[0], f.gpus[1], 64_MiB, key);
  sched.depart(adm.ticket);

  // A live flow now occupies the direct link (gpu0 -> gpu1 is also a hop of
  // the staged candidates' link set): the compiled solo split would be
  // wrong, so the replay is refused and the caller must plan fresh.
  const mt::PathPlan direct_only[] = {{mt::PathKind::Direct,
                                       mt::kInvalidDevice}};
  const auto blocker = sched.admit(f.gpus[0], f.gpus[1], 64_MiB,
                                   std::span<const mt::PathPlan>(direct_only));
  ASSERT_NE(blocker.ticket, mp::TransferScheduler::kInvalidTicket);
  const auto rep =
      sched.admit_replay(f.gpus[0], f.gpus[1], 64_MiB, key, adm.config);
  EXPECT_EQ(rep.ticket, mp::TransferScheduler::kInvalidTicket);
  EXPECT_GE(sched.stats().replay_rejects, 1u);
  sched.depart(blocker.ticket);

  // Links free again: the same template is admissible.
  const auto again =
      sched.admit_replay(f.gpus[0], f.gpus[1], 64_MiB, key, adm.config);
  ASSERT_NE(again.ticket, mp::TransferScheduler::kInvalidTicket);
  sched.depart(again.ticket);
  EXPECT_EQ(sched.stats().footprint_mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Channel fast path
// ---------------------------------------------------------------------------

namespace {

/// Run `count` identical sequential transfers through a channel, recording
/// each completion instant.
std::vector<double> run_series(Fixture& f, mg::DataChannel& ch,
                               std::uint64_t bytes, int count) {
  std::vector<double> finish;
  finish.reserve(static_cast<std::size_t>(count));
  mg::DeviceBuffer src(f.gpus[0], bytes), dst(f.gpus[1], bytes);
  src.fill_pattern(31);
  f.engine.spawn(
      [](Fixture& fx, mg::DataChannel& c, mg::DeviceBuffer& d,
         const mg::DeviceBuffer& s, std::uint64_t n, int k,
         std::vector<double>& out) -> ms::Task<void> {
        for (int i = 0; i < k; ++i) {
          co_await c.transfer(d, 0, s, 0, n);
          out.push_back(fx.engine.now());
          EXPECT_TRUE(d.same_content(s));
        }
      }(f, ch, dst, src, bytes, count, finish),
      "series");
  f.engine.run();
  return finish;
}

}  // namespace

// The CI gate in miniature: the same transfer series through the same
// channel, with and without a GraphCache, completes at bit-identical
// instants — under jitter, so the rng draw sequence is verified too.
TEST(ChannelGraphs, FastPathFingerprintsAreBitIdentical) {
  const std::uint64_t n = 48_MiB;
  std::vector<double> base, compiled;
  {
    Fixture f(/*jitter_rel=*/0.02);
    mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus());
    base = run_series(f, ch, n, 4);
  }
  {
    Fixture f(/*jitter_rel=*/0.02);
    mp::GraphCache cache;
    mp::ModelDrivenOptions opts;
    opts.graphs = &cache;
    mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                              opts);
    compiled = run_series(f, ch, n, 4);
    EXPECT_EQ(ch.graph_stats().compiles, 1u);
    EXPECT_EQ(ch.graph_stats().replays_fresh, 1u);
    EXPECT_EQ(ch.graph_stats().replays, 3u);
    EXPECT_EQ(cache.stats().hits, 3u);
  }
  ASSERT_EQ(base.size(), compiled.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i], compiled[i]) << "transfer " << i;
  }
}

TEST(ChannelGraphs, ScheduledFastPathAdmitsReplaysAndBalancesLedger) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  mp::GraphCache cache;
  mp::ModelDrivenOptions opts;
  opts.graphs = &cache;
  mp::ModelDrivenChannel ch(f.pipe, sched, f.cfg,
                            mt::PathPolicy::three_gpus(), opts);
  run_series(f, ch, 48_MiB, 4);
  EXPECT_EQ(ch.graph_stats().compiles, 1u);
  EXPECT_EQ(ch.graph_stats().replays_fresh, 1u);
  EXPECT_EQ(ch.graph_stats().replays, 3u);
  EXPECT_EQ(sched.stats().replay_admits, 3u);
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_GE(sched.stats().footprint_checks, 4u);
  EXPECT_EQ(sched.stats().footprint_mismatches, 0u);
}

TEST(ChannelGraphs, ContendedReplayFallsBackToFreshPlan) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  mp::GraphCache cache;
  mp::ModelDrivenOptions opts;
  opts.graphs = &cache;
  mp::ModelDrivenChannel ch(f.pipe, sched, f.cfg,
                            mt::PathPolicy::three_gpus(), opts);
  mp::ModelDrivenChannel other(f.pipe, sched, f.cfg,
                               mt::PathPolicy::three_gpus(), opts);

  // Warm the template with an uncontended transfer.
  run_series(f, ch, 48_MiB, 1);
  ASSERT_EQ(ch.graph_stats().compiles, 1u);

  // Now run the same tuple while another scheduled transfer occupies
  // overlapping links: the replay must be refused and planned fresh.
  mg::DeviceBuffer src_a(f.gpus[0], 256_MiB), dst_a(f.gpus[2], 256_MiB);
  mg::DeviceBuffer src_b(f.gpus[0], 48_MiB), dst_b(f.gpus[1], 48_MiB);
  src_a.fill_pattern(32);
  src_b.fill_pattern(33);
  f.engine.spawn(
      [](mg::DataChannel& c, mg::DeviceBuffer& d,
         const mg::DeviceBuffer& s) -> ms::Task<void> {
        co_await c.transfer(d, 0, s, 0, 256_MiB);
      }(other, dst_a, src_a),
      "blocker");
  f.engine.spawn(
      [](mg::DataChannel& c, mg::DeviceBuffer& d,
         const mg::DeviceBuffer& s) -> ms::Task<void> {
        co_await c.transfer(d, 0, s, 0, 48_MiB);
      }(ch, dst_b, src_b),
      "contended");
  f.engine.run();
  EXPECT_TRUE(dst_a.same_content(src_a));
  EXPECT_TRUE(dst_b.same_content(src_b));
  EXPECT_GE(ch.graph_stats().contended_rejects, 1u);
  EXPECT_EQ(sched.stats().footprint_mismatches, 0u);
  EXPECT_EQ(sched.live_count(), 0u);
}

// ---------------------------------------------------------------------------
// Invalidation edges (the satellite coverage)
// ---------------------------------------------------------------------------

TEST(ChannelGraphs, CalibrationPublishInvalidatesTemplates) {
  Fixture f;
  mm::CalibrationStore store;
  f.cfg.set_calibration(&store);
  mp::GraphCache cache;
  mp::ModelDrivenOptions opts;
  opts.graphs = &cache;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);
  run_series(f, ch, 48_MiB, 2);
  EXPECT_EQ(ch.graph_stats().compiles, 1u);
  EXPECT_EQ(ch.graph_stats().replays, 1u);

  // Publish a recalibration: the cached template was compiled under the old
  // snapshot, so the next transfer must recompile, not replay stale state.
  store.publish(mm::PathCalKey::of(f.gpus[0], f.gpus[1],
                                   {mt::PathKind::Direct, mt::kInvalidDevice}),
                mm::PathCalibration{1.0, 1.25});
  run_series(f, ch, 48_MiB, 2);
  EXPECT_EQ(ch.graph_stats().compiles, 2u);
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(ChannelGraphs, HealthProbationBlocksReplayOfTemplatePath) {
  Fixture f;
  mp::GraphCache cache;
  mp::ModelDrivenOptions opts;
  opts.graphs = &cache;
  opts.recovery.enabled = true;
  opts.recovery.slack = 4.0;
  opts.health.enabled = true;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);

  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  mg::DeviceBuffer src(f.gpus[0], 48_MiB), dst(f.gpus[1], 48_MiB);
  src.fill_pattern(34);
  f.engine.spawn(
      [](Fixture& fx, mp::ModelDrivenChannel& c, ms::LinkId l,
         mg::DeviceBuffer& d, const mg::DeviceBuffer& s) -> ms::Task<void> {
        // Healthy transfer compiles the template.
        co_await c.transfer(d, 0, s, 0, 48_MiB);
        // Sever the direct link: this transfer times out mid-flight (the
        // template path goes into probation via the watchdog) and recovers
        // over the survivors.
        fx.net.set_link_capacity(l, 0.0);
        co_await c.transfer(d, 0, s, 0, 48_MiB);
        // The direct path is now suspect: the cached template (which
        // carries it) must NOT be replayed.
        co_await c.transfer(d, 0, s, 0, 48_MiB);
      }(f, ch, link, dst, src),
      "flap");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_GE(ch.recovery_stats().path_timeouts, 1u);
  EXPECT_GE(ch.graph_stats().health_fallbacks, 1u);
  EXPECT_EQ(ch.graph_stats().compiles, 1u);
}

// ASan coverage for the by-value snapshot semantics: evicting a template
// from the cache while its replay is still executing must be safe — the
// replay frame's shared_ptr keeps the graph (and its staging lease and
// events) alive until the frame completes.
TEST(ChannelGraphs, LruEvictionDuringReplayIsSafe) {
  Fixture f;
  mp::GraphCacheOptions copt;
  copt.capacity = 1;  // any second tuple evicts the first
  mp::GraphCache cache(copt);
  mp::ModelDrivenOptions opts;
  opts.graphs = &cache;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);

  // Warm the 48 MiB template.
  run_series(f, ch, 48_MiB, 1);
  ASSERT_EQ(cache.size(), 1u);

  mg::DeviceBuffer src_a(f.gpus[0], 48_MiB), dst_a(f.gpus[1], 48_MiB);
  mg::DeviceBuffer src_b(f.gpus[0], 32_MiB), dst_b(f.gpus[1], 32_MiB);
  src_a.fill_pattern(35);
  src_b.fill_pattern(36);
  // Task 1 replays the 48 MiB template; task 2 (same instant) compiles a
  // 32 MiB template whose insert evicts the 48 MiB entry mid-replay.
  f.engine.spawn(
      [](mg::DataChannel& c, mg::DeviceBuffer& d,
         const mg::DeviceBuffer& s) -> ms::Task<void> {
        co_await c.transfer(d, 0, s, 0, 48_MiB);
      }(ch, dst_a, src_a),
      "replaying");
  f.engine.spawn(
      [](mg::DataChannel& c, mg::DeviceBuffer& d,
         const mg::DeviceBuffer& s) -> ms::Task<void> {
        co_await c.transfer(d, 0, s, 0, 32_MiB);
      }(ch, dst_b, src_b),
      "evictor");
  f.engine.run();
  EXPECT_TRUE(dst_a.same_content(src_a));
  EXPECT_TRUE(dst_b.same_content(src_b));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(ch.graph_stats().replays, 1u);
}
