// Node-level TransferScheduler: joint contention-aware admission, the
// contention-misprediction regression (two simultaneous transfers on one
// link — joint predictions track simulated completion where solo planning
// is systematically wrong), and the shared-configurator use-after-free
// regression fixed in this change set.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/scheduler.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg{reg};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  [[nodiscard]] ms::LinkId direct_link(mt::DeviceId a, mt::DeviceId b) const {
    return rt.binding().link_for_edge(*sys.topology.direct_edge(a, b));
  }
};

ms::Task<void> plain_transfer(mg::DataChannel& ch, mg::DeviceBuffer& dst,
                              const mg::DeviceBuffer& src, std::size_t bytes) {
  co_await ch.transfer(dst, 0, src, 0, bytes);
}

struct ChannelRun {
  std::optional<mg::TransferError::Info> error;
};

ms::Task<void> guarded_transfer(mg::DataChannel& ch, mg::DeviceBuffer& dst,
                                const mg::DeviceBuffer& src,
                                std::size_t bytes, ChannelRun& run) {
  try {
    co_await ch.transfer(dst, 0, src, 0, bytes);
  } catch (const mg::TransferError& e) {
    run.error = e.info();
  }
}

/// Mean |predicted - simulated| / simulated over completed records.
double mean_rel_error(const std::vector<mp::TransferScheduler::Record>& recs) {
  double sum = 0.0;
  int n = 0;
  for (const auto& r : recs) {
    if (!r.completed()) continue;
    sum += std::abs(r.predicted_s - r.actual_s()) / r.actual_s();
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

/// Run `k` simultaneous same-pair direct-only transfers through a
/// scheduled channel and return the mean relative prediction error.
double contention_error(bool joint, int k, std::size_t bytes) {
  Fixture f;
  f.net.set_solver_mode(ms::FluidNetwork::SolverMode::kFull);  // oracle
  mp::SchedulerOptions sopt;
  sopt.joint = joint;
  mp::TransferScheduler sched(f.pipe, f.cfg, sopt);
  mp::ModelDrivenChannel ch(f.pipe, sched, f.cfg,
                            mt::PathPolicy::direct_only());
  std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
  for (int i = 0; i < k; ++i) {
    bufs.push_back(
        std::make_unique<mg::DeviceBuffer>(f.gpus[0], bytes));
    bufs.push_back(
        std::make_unique<mg::DeviceBuffer>(f.gpus[1], bytes));
    f.engine.spawn(
        plain_transfer(ch, *bufs[bufs.size() - 1], *bufs[bufs.size() - 2],
                       bytes),
        "xfer" + std::to_string(i));
  }
  f.engine.run();
  EXPECT_EQ(sched.history().size(), static_cast<std::size_t>(k));
  EXPECT_EQ(sched.live_count(), 0u);
  for (const auto& r : sched.history()) EXPECT_TRUE(r.completed());
  return mean_rel_error(sched.history());
}

}  // namespace

TEST(Scheduler, AdmitDepartBookkeeping) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = mt::enumerate_paths(f.sys.topology, f.gpus[0], f.gpus[1],
                                         mt::PathPolicy::three_gpus());
  const auto adm = sched.admit(f.gpus[0], f.gpus[1], 64_MiB, paths);
  EXPECT_NE(adm.ticket, mp::TransferScheduler::kInvalidTicket);
  EXPECT_EQ(sched.live_count(), 1u);
  EXPECT_EQ(sched.stats().admitted, 1u);
  EXPECT_GT(adm.config.predicted_time, 0.0);
  EXPECT_EQ(adm.config.total_bytes, 64_MiB);

  sched.depart(adm.ticket);
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_EQ(sched.stats().departed, 1u);
  ASSERT_EQ(sched.history().size(), 1u);
  EXPECT_TRUE(sched.history()[0].completed());
  // Departing twice (stale ticket) is a caller bug and throws.
  EXPECT_THROW(sched.depart(adm.ticket), std::invalid_argument);
}

TEST(Scheduler, FailedTransferRecordedAndReleased) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = mt::enumerate_paths(f.sys.topology, f.gpus[0], f.gpus[1],
                                         mt::PathPolicy::two_gpus());
  const auto adm = sched.admit(f.gpus[0], f.gpus[1], 8_MiB, paths);
  sched.fail(adm.ticket);
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_EQ(sched.stats().failed, 1u);
  ASSERT_EQ(sched.history().size(), 1u);
  EXPECT_TRUE(sched.history()[0].failed);
  EXPECT_FALSE(sched.history()[0].completed());
}

// On an idle network the joint solve must reduce to the single-transfer
// closed form: the scheduled config equals the configurator's exactly.
TEST(Scheduler, IdleNetworkAdmissionMatchesSoloConfig) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = mt::enumerate_paths(f.sys.topology, f.gpus[0], f.gpus[1],
                                         mt::PathPolicy::three_gpus_with_host());
  for (std::uint64_t n : {2u << 20, 64u << 20, 512u << 20}) {
    const auto adm = sched.admit(f.gpus[0], f.gpus[1], n, paths);
    const auto solo = f.cfg.compute_config(f.gpus[0], f.gpus[1], n, paths);
    ASSERT_EQ(adm.config.paths.size(), solo.paths.size());
    EXPECT_DOUBLE_EQ(adm.config.predicted_time, solo.predicted_time);
    for (std::size_t i = 0; i < solo.paths.size(); ++i) {
      EXPECT_EQ(adm.config.paths[i].bytes, solo.paths[i].bytes);
      EXPECT_EQ(adm.config.paths[i].chunks, solo.paths[i].chunks);
      EXPECT_DOUBLE_EQ(adm.config.paths[i].theta, solo.paths[i].theta);
    }
    sched.depart(adm.ticket);
  }
}

// A batch admission is the K-transfer joint solve: two identical transfers
// squeezing through one link each get half the bandwidth, so both configs
// predict ~2x the solo time already at admission.
TEST(Scheduler, BatchAdmissionIsContentionAware) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = mt::enumerate_paths(f.sys.topology, f.gpus[0], f.gpus[1],
                                         mt::PathPolicy::direct_only());
  const double solo =
      f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths)
          .predicted_time;
  std::vector<mp::TransferScheduler::Request> reqs(2);
  for (auto& r : reqs) {
    r.src = f.gpus[0];
    r.dst = f.gpus[1];
    r.bytes = 64_MiB;
    r.paths = paths;
  }
  const auto adms = sched.admit_batch(reqs);
  ASSERT_EQ(adms.size(), 2u);
  for (const auto& adm : adms) {
    EXPECT_GT(adm.config.predicted_time, 1.8 * solo);
    EXPECT_LT(adm.config.predicted_time, 2.2 * solo);
  }
  EXPECT_EQ(sched.live_count(), 2u);
}

// Sequential same-instant admissions must converge to the same predictions
// as a batch: the second admission refreshes the first's still-unfrozen
// record.
TEST(Scheduler, SameInstantArrivalsRefreshEachOther) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  const auto paths = mt::enumerate_paths(f.sys.topology, f.gpus[0], f.gpus[1],
                                         mt::PathPolicy::direct_only());
  const double solo =
      f.cfg.compute_config(f.gpus[0], f.gpus[1], 64_MiB, paths)
          .predicted_time;
  const auto a = sched.admit(f.gpus[0], f.gpus[1], 64_MiB, paths);
  // First admission sees an empty node: solo prediction.
  EXPECT_NEAR(sched.history()[0].predicted_s, solo, 0.05 * solo);
  const auto b = sched.admit(f.gpus[0], f.gpus[1], 64_MiB, paths);
  // Now both records reflect the shared link.
  EXPECT_GT(sched.history()[0].predicted_s, 1.7 * solo);
  EXPECT_GT(sched.history()[1].predicted_s, 1.7 * solo);
  sched.depart(a.ticket);
  sched.depart(b.ticket);
}

// The contention-misprediction regression (tentpole acceptance): K
// simultaneous transfers share the direct link. Joint planning's predicted
// T tracks the kFull-oracle simulated completion; solo planning (same
// admission machinery, joint=false) is systematically wrong, and the joint
// error is at most a third of it.
TEST(Scheduler, JointPredictionsTrackSimulatedContention) {
  for (int k : {2, 4}) {
    const double joint_err = contention_error(true, k, 64_MiB);
    const double solo_err = contention_error(false, k, 64_MiB);
    EXPECT_LT(joint_err, 0.15) << "k=" << k;
    // Solo plans believe they own the node: error ~ (k-1)/k.
    EXPECT_GT(solo_err, 0.3) << "k=" << k;
    EXPECT_LE(joint_err, solo_err / 3.0) << "k=" << k;
  }
}

// Regression (use-after-free): transfer_with_recovery used to hold a
// reference into the shared configurator's LRU cache across co_await.
// With cache_capacity = 1, a second recovering transfer on the same
// configurator evicts the first's entry mid-await; when the first
// transfer's watchdog then fires, it re-reads its (freed) config to build
// the re-plan. The by-value snapshot makes this safe; under ASan the old
// code dies here.
TEST(Scheduler, RecoveringTransfersSurviveSharedCacheEviction) {
  Fixture f;
  mm::ConfiguratorOptions copt;
  copt.cache_capacity = 1;
  mm::PathConfigurator shared_cfg(f.reg, copt);
  mp::ModelDrivenOptions mopt;
  mopt.recovery.enabled = true;
  mopt.recovery.slack = 4.0;
  mp::ModelDrivenChannel ch(f.pipe, shared_cfg, mt::PathPolicy::three_gpus(),
                            mopt);

  constexpr std::size_t kBytes = 8_MiB;
  mg::DeviceBuffer src_a(f.gpus[0], kBytes), dst_a(f.gpus[1], kBytes);
  mg::DeviceBuffer src_b(f.gpus[2], kBytes), dst_b(f.gpus[3], kBytes);
  src_a.fill_pattern(71);
  src_b.fill_pattern(72);

  // Sever the first transfer's direct link mid-flight: its watchdog fires
  // (~1 ms) long after the second transfer's configure_over evicted the
  // first's cache entry (at t = 0).
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  f.engine.schedule_callback(60e-6,
                             [&] { f.net.set_link_capacity(link, 0.0); });

  ChannelRun run_a, run_b;
  f.engine.spawn(guarded_transfer(ch, dst_a, src_a, kBytes, run_a), "a");
  f.engine.spawn(guarded_transfer(ch, dst_b, src_b, kBytes, run_b), "b");
  f.engine.run();

  EXPECT_FALSE(run_a.error.has_value());
  EXPECT_FALSE(run_b.error.has_value());
  EXPECT_TRUE(dst_a.same_content(src_a));
  EXPECT_TRUE(dst_b.same_content(src_b));
  EXPECT_GE(ch.recovery_stats().replans, 1u);
  EXPECT_GT(shared_cfg.cache_evictions(), 0u);
}

// The small-remainder branch prefers the Direct survivor. When the direct
// path is dead, the remainder goes to the first surviving staged path
// instead — and the transfer still completes intact.
TEST(Scheduler, SmallRemainderPrefersDirectSurvivor) {
  Fixture f;
  mp::ModelDrivenOptions mopt;
  mopt.recovery.enabled = true;
  mopt.recovery.slack = 4.0;
  // A large threshold forces every re-planned remainder through the
  // single-path branch.
  mopt.min_multipath_bytes = 256_MiB;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            mopt);
  constexpr std::size_t kBytes = 8_MiB;
  mg::DeviceBuffer src(f.gpus[0], kBytes), dst(f.gpus[1], kBytes);
  src.fill_pattern(73);
  // Below min_multipath everything starts on the direct path; sever it so
  // the remainder must re-route over a staged survivor.
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  f.engine.schedule_callback(30e-6,
                             [&] { f.net.set_link_capacity(link, 0.0); });
  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, kBytes, run), "xfer");
  f.engine.run();
  EXPECT_FALSE(run.error.has_value());
  EXPECT_TRUE(dst.same_content(src));
  ASSERT_TRUE(ch.last_config().has_value());
  // The final remainder plan is single-path and NOT on the dead direct.
  EXPECT_EQ(ch.last_config()->paths.size(), 1u);
  EXPECT_NE(ch.last_config()->paths[0].plan.kind, mt::PathKind::Direct);
}

// Recovery through the scheduler: the re-plan goes through
// TransferScheduler::replan, the ticket departs cleanly, and the record
// shows the replans.
TEST(Scheduler, RecoveryReplansThroughScheduler) {
  Fixture f;
  mp::SchedulerOptions sopt;
  mp::TransferScheduler sched(f.pipe, f.cfg, sopt);
  mp::ModelDrivenOptions mopt;
  mopt.recovery.enabled = true;
  mopt.recovery.slack = 4.0;
  mp::ModelDrivenChannel ch(f.pipe, sched, f.cfg,
                            mt::PathPolicy::three_gpus(), mopt);
  constexpr std::size_t kBytes = 64_MiB;
  mg::DeviceBuffer src(f.gpus[0], kBytes), dst(f.gpus[1], kBytes);
  src.fill_pattern(74);
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  f.engine.schedule_callback(100e-6,
                             [&] { f.net.set_link_capacity(link, 0.0); });
  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, kBytes, run), "xfer");
  f.engine.run();
  EXPECT_FALSE(run.error.has_value());
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_GE(sched.stats().replans, 1u);
  ASSERT_EQ(sched.history().size(), 1u);
  EXPECT_TRUE(sched.history()[0].completed());
  EXPECT_GE(sched.history()[0].replans, 1);
}

// A transfer that exhausts every path fails through the scheduler: the
// guard marks the ticket failed so the node state stays consistent.
TEST(Scheduler, FailedTransferReleasesTicket) {
  Fixture f;
  mp::TransferScheduler sched(f.pipe, f.cfg);
  mp::ModelDrivenOptions mopt;
  mopt.recovery.enabled = true;
  mopt.recovery.slack = 4.0;
  mp::ModelDrivenChannel ch(f.pipe, sched, f.cfg, mt::PathPolicy::two_gpus(),
                            mopt);
  constexpr std::size_t kBytes = 16_MiB;
  mg::DeviceBuffer src(f.gpus[0], kBytes), dst(f.gpus[1], kBytes);
  src.fill_pattern(75);
  // Sever every outgoing edge of the source: nothing can survive.
  f.engine.schedule_callback(50e-6, [&] {
    for (const auto& e : f.sys.topology.edges()) {
      if (e.from == f.gpus[0]) {
        f.net.set_link_capacity(f.rt.binding().link_for_edge(e.id), 0.0);
      }
    }
  });
  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, kBytes, run), "xfer");
  f.engine.run();
  EXPECT_TRUE(run.error.has_value());
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_EQ(sched.stats().failed, 1u);
  ASSERT_EQ(sched.history().size(), 1u);
  EXPECT_TRUE(sched.history()[0].failed);
}
