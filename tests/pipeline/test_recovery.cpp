// Watchdog-monitored execution and the degradation-aware recovery policy:
// monitored plans with healthy paths behave like execute(), severed paths
// time out with a delivered-prefix accounting instead of hanging, the
// model-driven channel re-plans the remainder over surviving paths, and a
// fully-severed source raises a typed TransferError.
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "mpath/pipeline/channels.hpp"
#include "mpath/sim/fault.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg{reg};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  [[nodiscard]] ms::LinkId direct_link(mt::DeviceId a, mt::DeviceId b) const {
    return rt.binding().link_for_edge(*sys.topology.direct_edge(a, b));
  }

  /// Set when run_monitored's plan was rejected with invalid_argument.
  std::optional<std::string> rejected;

  mp::TransferOutcome run_monitored(mg::DeviceBuffer& dst,
                                    const mg::DeviceBuffer& src,
                                    mp::ExecPlan plan,
                                    mp::PathWatchList watch) {
    mp::TransferOutcome out;
    rejected.reset();
    engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    const mg::DeviceBuffer& s, mp::ExecPlan p,
                    mp::PathWatchList w,
                    mp::TransferOutcome& o) -> ms::Task<void> {
      try {
        o = co_await fx.pipe.execute_monitored(d, 0, s, 0, std::move(p),
                                               std::move(w));
      } catch (const std::invalid_argument& e) {
        fx.rejected = e.what();
      }
    }(*this, dst, src, std::move(plan), std::move(watch), out), "exec");
    engine.run();
    return out;
  }
};

mt::PathPlan direct() { return {mt::PathKind::Direct, mt::kInvalidDevice}; }

}  // namespace

TEST(Recovery, MonitoredHealthyPlanCompletesIntact) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 8_MiB), dst(f.gpus[1], 8_MiB);
  src.fill_pattern(51);
  const auto out = f.run_monitored(
      dst, src,
      {mp::ExecPath{direct(), 4_MiB, 4},
       mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, 4_MiB, 4}},
      {mp::PathWatch{10.0}, mp::PathWatch{10.0}});
  EXPECT_TRUE(out.complete);
  ASSERT_EQ(out.paths.size(), 2u);
  EXPECT_EQ(out.paths[0].bytes_delivered, 4_MiB);
  EXPECT_EQ(out.paths[1].bytes_delivered, 4_MiB);
  EXPECT_FALSE(out.paths[0].timed_out);
  EXPECT_TRUE(dst.same_content(src));
}

TEST(Recovery, EmptyWatchMatchesExecute) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  src.fill_pattern(52);
  const auto out =
      f.run_monitored(dst, src, {mp::ExecPath{direct(), 4_MiB, 2}}, {});
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.delivered(), 4_MiB);
  EXPECT_TRUE(dst.same_content(src));
}

TEST(Recovery, WatchSizeMismatchRejected) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  (void)f.run_monitored(dst, src, {mp::ExecPath{direct(), 1_MiB, 1}},
                        {mp::PathWatch{1.0}, mp::PathWatch{1.0}});
  EXPECT_TRUE(f.rejected.has_value());
}

// Severing the direct link mid-flight: the watchdog cancels the path, the
// outcome reports the delivered chunk prefix, and the engine drains
// instead of deadlocking on the stalled flow.
TEST(Recovery, SeveredDirectPathTimesOutWithPartialPrefix) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 8_MiB), dst(f.gpus[1], 8_MiB);
  src.fill_pattern(53);
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  // ~0.18 ms healthy; sever at 60 us (a few of 8 chunks delivered), the
  // watchdog fires at 1 ms.
  f.engine.schedule_callback(60e-6,
                             [&] { f.net.set_link_capacity(link, 0.0); });
  const auto out = f.run_monitored(dst, src,
                                   {mp::ExecPath{direct(), 8_MiB, 8}},
                                   {mp::PathWatch{1e-3}});
  EXPECT_FALSE(out.complete);
  ASSERT_EQ(out.paths.size(), 1u);
  EXPECT_TRUE(out.paths[0].timed_out);
  EXPECT_LT(out.paths[0].bytes_delivered, 8_MiB);
  EXPECT_EQ(out.paths[0].bytes_delivered % 1_MiB, 0u);  // whole chunks
  // The engine went quiet shortly after the deadline, not at the stalled
  // flow's never-time.
  EXPECT_LT(f.engine.now(), 0.1);
  EXPECT_EQ(f.net.stalled_flow_count(), 0u);
  EXPECT_GT(f.net.stats().cancelled_flows, 0u);
}

// A staged path that times out must return its staging buffers to the
// pool: a follow-up transfer over the same stage acquires them and
// completes after the link is restored.
TEST(Recovery, TimedOutStagedPathReleasesStagingSlots) {
  Fixture f;
  const auto via = f.gpus[2];
  const auto link = f.direct_link(f.gpus[0], via);
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  src.fill_pattern(54);
  f.engine.schedule_callback(20e-6,
                             [&] { f.net.set_link_capacity(link, 0.0); });
  const auto out = f.run_monitored(
      dst, src, {mp::ExecPath{{mt::PathKind::GpuStaged, via}, 4_MiB, 4}},
      {mp::PathWatch{1e-3}});
  EXPECT_FALSE(out.complete);
  EXPECT_TRUE(out.paths[0].timed_out);

  // Restore and run a fresh staged transfer through the same pool.
  f.net.set_link_capacity(link, f.sys.topology.edges()[
      *f.sys.topology.direct_edge(f.gpus[0], via)].capacity_bps);
  mg::DeviceBuffer src2(f.gpus[0], 4_MiB), dst2(f.gpus[1], 4_MiB);
  src2.fill_pattern(55);
  const auto out2 = f.run_monitored(
      dst2, src2, {mp::ExecPath{{mt::PathKind::GpuStaged, via}, 4_MiB, 4}},
      {mp::PathWatch{10.0}});
  EXPECT_TRUE(out2.complete);
  EXPECT_TRUE(dst2.same_content(src2));
}

// Regression (satellite): a plan whose per-path byte counts overflow the
// 64-bit total used to wrap past the bounds check and start issuing before
// failing — leaking staging slots. It must now throw before any issuance.
TEST(Recovery, OverflowingPlanRejectedBeforeIssuing) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 8), dst(f.gpus[1], 8);
  mp::ExecPlan plan{
      mp::ExecPath{direct(), std::numeric_limits<std::uint64_t>::max(), 1},
      mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, 2, 1}};
  (void)f.run_monitored(dst, src, std::move(plan), {});
  ASSERT_TRUE(f.rejected.has_value());
  EXPECT_NE(f.rejected->find("overflow"), std::string::npos);
  EXPECT_EQ(f.rt.ops_issued(), 0u);
  EXPECT_EQ(f.pipe.transfers_executed(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the model-driven channel
// ---------------------------------------------------------------------------

namespace {

mp::ModelDrivenOptions recovery_opts() {
  mp::ModelDrivenOptions o;
  o.recovery.enabled = true;
  o.recovery.slack = 4.0;
  o.recovery.max_replans = 3;
  return o;
}

struct ChannelRun {
  std::optional<mg::TransferError::Info> error;
  std::string what;
};

ms::Task<void> guarded_transfer(mg::DataChannel& ch, mg::DeviceBuffer& dst,
                                const mg::DeviceBuffer& src,
                                std::size_t bytes, ChannelRun& run) {
  try {
    co_await ch.transfer(dst, 0, src, 0, bytes);
  } catch (const mg::TransferError& e) {
    run.error = e.info();
    run.what = e.what();
  }
}

}  // namespace

// The acceptance scenario: the fastest (direct) path degrades to 10% of
// its capacity mid-flight; the transfer still completes — bytes shift to
// the surviving staged paths via re-planning — with the payload intact.
TEST(Recovery, DegradedDirectPathRecoversViaReplan) {
  Fixture f;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            recovery_opts());
  constexpr std::size_t kBytes = 64_MiB;
  mg::DeviceBuffer src(f.gpus[0], kBytes), dst(f.gpus[1], kBytes);
  src.fill_pattern(61);
  const auto link = f.direct_link(f.gpus[0], f.gpus[1]);
  const double base = f.net.link(link).capacity_bps;
  f.engine.schedule_callback(
      100e-6, [&, base] { f.net.set_link_capacity(link, 0.1 * base); });

  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, kBytes, run), "xfer");
  f.engine.run();

  EXPECT_FALSE(run.error.has_value()) << run.what;
  EXPECT_TRUE(dst.same_content(src));
  const auto& st = ch.recovery_stats();
  EXPECT_GE(st.path_timeouts, 1u);
  EXPECT_GE(st.replans, 1u);
  EXPECT_EQ(st.transfers_recovered, 1u);
  EXPECT_EQ(st.transfers_failed, 0u);
  EXPECT_GT(st.recovery_time_s, 0.0);
}

// With recovery enabled but no fault, the channel must not pay any
// recovery work and must deliver identically.
TEST(Recovery, HealthyTransferPaysNoRecovery) {
  Fixture f;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            recovery_opts());
  mg::DeviceBuffer src(f.gpus[0], 16_MiB), dst(f.gpus[1], 16_MiB);
  src.fill_pattern(62);
  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, 16_MiB, run), "xfer");
  f.engine.run();
  EXPECT_FALSE(run.error.has_value());
  EXPECT_TRUE(dst.same_content(src));
  const auto& st = ch.recovery_stats();
  EXPECT_EQ(st.path_timeouts, 0u);
  EXPECT_EQ(st.replans, 0u);
  EXPECT_EQ(st.transfers_recovered, 0u);
}

// Severing every egress link of the source leaves no survivor: the channel
// must raise a typed TransferError carrying partial-progress accounting,
// and the simulation must terminate (no hang).
TEST(Recovery, FullySeveredSourceThrowsTransferError) {
  Fixture f;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            recovery_opts());
  constexpr std::size_t kBytes = 16_MiB;
  mg::DeviceBuffer src(f.gpus[0], kBytes), dst(f.gpus[1], kBytes);
  src.fill_pattern(63);
  f.engine.schedule_callback(50e-6, [&] {
    for (const mt::Edge& e : f.sys.topology.edges()) {
      if (e.from == f.gpus[0] && !e.is_memory_channel) {
        f.net.set_link_capacity(f.rt.binding().link_for_edge(e.id), 0.0);
      }
    }
  });

  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, kBytes, run), "xfer");
  f.engine.run();

  ASSERT_TRUE(run.error.has_value());
  EXPECT_EQ(run.error->bytes_requested, kBytes);
  EXPECT_LT(run.error->bytes_delivered, kBytes);
  EXPECT_GT(run.error->elapsed_s, 0.0);
  EXPECT_GE(run.error->retries, 1);
  EXPECT_NE(run.what.find("dead paths"), std::string::npos);
  const auto& st = ch.recovery_stats();
  EXPECT_EQ(st.transfers_failed, 1u);
  EXPECT_GE(st.path_timeouts, 1u);
  EXPECT_EQ(f.net.stalled_flow_count(), 0u);  // all aborted, none parked
}

// Bounded retries: a path that flaps forever must exhaust max_replans and
// fail instead of re-planning indefinitely.
TEST(Recovery, ReplanBudgetIsBounded) {
  Fixture f;
  auto opts = recovery_opts();
  opts.recovery.max_replans = 2;
  mp::ModelDrivenChannel ch(f.pipe, f.cfg, mt::PathPolicy::three_gpus(),
                            opts);
  constexpr std::size_t kBytes = 32_MiB;
  mg::DeviceBuffer src(f.gpus[0], kBytes), dst(f.gpus[1], kBytes);
  src.fill_pattern(64);
  // Sever everything out of gpu0 almost immediately and keep it severed.
  f.engine.schedule_callback(10e-6, [&] {
    for (const mt::Edge& e : f.sys.topology.edges()) {
      if (e.from == f.gpus[0] && !e.is_memory_channel) {
        f.net.set_link_capacity(f.rt.binding().link_for_edge(e.id), 0.0);
      }
    }
  });
  ChannelRun run;
  f.engine.spawn(guarded_transfer(ch, dst, src, kBytes, run), "xfer");
  f.engine.run();
  ASSERT_TRUE(run.error.has_value());
  EXPECT_LE(run.error->retries, 2 + 1);  // bounded by max_replans (+ final)
}
