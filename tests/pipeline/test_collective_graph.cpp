// Collective graph chaining (PR 10): capture/seal/replay lifecycle of
// CollectiveGraph across the four chained collectives, bit-identical
// replay timelines under jitter, payload re-patching (including the
// below-multipath-threshold passthrough degradation), batched joint-theta
// round admission on scheduled stacks, capacity-epoch invalidation with
// recapture, and event-reservation accounting across chain destruction and
// mid-chain compile failure. A nightly fault-churn soak rides along behind
// MPATH_NIGHTLY_SOAK=1.
#include "mpath/pipeline/collective_graph.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "mpath/benchcore/stack.hpp"
#include "mpath/mpisim/collectives.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/sim/fault.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace bc = mpath::benchcore;
namespace mg = mpath::gpusim;
namespace mi = mpath::mpisim;
namespace mm = mpath::model;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

mt::System beluga(double jitter_rel) {
  auto s = mt::make_beluga();
  s.costs.jitter_rel = jitter_rel;
  return s;
}

enum class Coll { AllreduceRhd, AlltoallBruck, AllgatherRing, BcastBinomial };

/// One invocation of `c` with `bytes` total payload per rank.
ms::Task<void> run_once(mi::Communicator& comm, Coll c, std::size_t bytes) {
  const auto p = static_cast<std::size_t>(comm.size());
  switch (c) {
    case Coll::AllreduceRhd: {
      const std::size_t floats = bytes / sizeof(float) / p * p;
      mg::DeviceBuffer data(comm.device(), floats * sizeof(float),
                            mg::Payload::Simulated);
      co_await mi::allreduce_sum(comm, data,
                                 mi::AllreduceAlgo::RecursiveHalvingDoubling);
      break;
    }
    case Coll::AlltoallBruck: {
      const std::size_t blk = bytes / p;
      mg::DeviceBuffer send(comm.device(), p * blk, mg::Payload::Simulated);
      mg::DeviceBuffer recv(comm.device(), p * blk, mg::Payload::Simulated);
      co_await mi::alltoall(comm, send, recv, blk, mi::AlltoallAlgo::Bruck);
      break;
    }
    case Coll::AllgatherRing: {
      const std::size_t blk = bytes / p;
      mg::DeviceBuffer data(comm.device(), p * blk, mg::Payload::Simulated);
      co_await mi::allgather(comm, data, blk);
      break;
    }
    case Coll::BcastBinomial: {
      mg::DeviceBuffer data(comm.device(), bytes, mg::Payload::Simulated);
      co_await mi::broadcast(comm, data, bytes, 0);
      break;
    }
  }
}

/// A fresh chained model-driven stack (its own registry + configurator, so
/// two fixtures with the same inputs are deterministically identical).
struct ChainFixture {
  mt::System sys;
  mm::ModelRegistry reg;
  mm::PathConfigurator cfg;
  bc::SimStack stack;

  static bc::StackOptions chained(bool on) {
    bc::StackOptions o;
    o.collective_graphs = on;
    return o;
  }

  explicit ChainFixture(double jitter_rel = 0.0, bool graphs = true,
                        bc::StackOptions opt_base = chained(true))
      : sys(beluga(jitter_rel)),
        reg(mpath::tuning::registry_from_topology(sys)),
        cfg(reg),
        stack([&] {
          bc::StackOptions opt = opt_base;
          opt.collective_graphs = graphs;
          return bc::SimStack::model_driven(sys, cfg,
                                            mt::PathPolicy::three_gpus(), opt);
        }()) {}

  void iterate(Coll c, std::size_t bytes, int iters) {
    for (int i = 0; i < iters; ++i) {
      stack.world().run([&](mi::Communicator& comm) -> ms::Task<void> {
        co_await run_once(comm, c, bytes);
      });
    }
  }
};

/// A fresh chained *scheduled* 2-rank stack (directed-disjoint allreduce
/// rounds, so batched admission can accept them).
struct SchedFixture {
  mt::System sys;
  mm::ModelRegistry reg;
  mm::PathConfigurator cfg;
  bc::SimStack stack;

  SchedFixture()
      : sys(beluga(0.0)),
        reg(mpath::tuning::registry_from_topology(sys)),
        cfg(reg),
        stack([&] {
          bc::StackOptions opt;
          opt.collective_graphs = true;
          opt.nranks = 2;
          return bc::SimStack::model_driven_scheduled(
              sys, cfg, mt::PathPolicy::two_gpus(), {}, opt);
        }()) {}

  void iterate(Coll c, std::size_t bytes, int iters) {
    for (int i = 0; i < iters; ++i) {
      stack.world().run([&](mi::Communicator& comm) -> ms::Task<void> {
        co_await run_once(comm, c, bytes);
      });
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Capture lifecycle
// ---------------------------------------------------------------------------

TEST(ChainCapture, CapturesOnceThenReplaysEveryCollective) {
  // Per-iteration chained step counts on 4 ranks: rhd = 2x log2(4) rounds
  // of 4 messages (16), bruck = log2(4) rounds of 4 (8), ring allgather =
  // 3 rounds of 4 (12), binomial bcast = p - 1 messages (3).
  const struct {
    Coll c;
    std::uint64_t steps_per_iter;
  } cases[] = {{Coll::AllreduceRhd, 16},
               {Coll::AlltoallBruck, 8},
               {Coll::AllgatherRing, 12},
               {Coll::BcastBinomial, 3}};
  for (const auto& [c, steps_per_iter] : cases) {
    ChainFixture f;
    f.iterate(c, 8_MiB, 3);
    const mp::ChainStats st = f.stack.chain()->stats();
    EXPECT_EQ(st.captures, 1u);
    EXPECT_EQ(st.iterations_captured, 1u);
    EXPECT_EQ(st.iterations_replayed, 2u);
    EXPECT_EQ(st.replayed_steps, 2 * steps_per_iter);
    EXPECT_EQ(st.passthrough_steps, 0u);
    EXPECT_EQ(st.capture_aborts, 0u);
    EXPECT_EQ(st.mismatch_kills, 0u);
    EXPECT_EQ(st.busy_fallbacks, 0u);
    EXPECT_EQ(st.compile_failures, 0u);
    EXPECT_EQ(f.stack.chain()->cache_size(), 1u);
  }
}

TEST(ChainCapture, DistinctCollectivesGetDistinctChains) {
  ChainFixture f;
  f.iterate(Coll::AllreduceRhd, 8_MiB, 2);
  f.iterate(Coll::BcastBinomial, 8_MiB, 2);
  const mp::ChainStats st = f.stack.chain()->stats();
  EXPECT_EQ(st.captures, 2u);
  EXPECT_EQ(st.iterations_replayed, 2u);
  EXPECT_EQ(f.stack.chain()->cache_size(), 2u);
  // Returning to the first collective replays its resident chain — no
  // recapture, the cache holds both.
  f.iterate(Coll::AllreduceRhd, 8_MiB, 1);
  EXPECT_EQ(f.stack.chain()->stats().captures, 2u);
  EXPECT_EQ(f.stack.chain()->stats().iterations_replayed, 3u);
}

// ---------------------------------------------------------------------------
// Replay identity
// ---------------------------------------------------------------------------

// The tentpole invariant end to end: with jitter ON (the factory default),
// chained replay must be bit-identical in simulated time to the same
// collective on an identically seeded stack with chaining off — replay
// issues the same runtime-call/issue-cost sequence, so it consumes the
// same rng draws.
TEST(ChainReplay, TimelineBitIdenticalToUncapturedUnderJitter) {
  const double jitter = mt::make_beluga().costs.jitter_rel;
  ASSERT_GT(jitter, 0.0);
  for (const Coll c : {Coll::AllreduceRhd, Coll::AllgatherRing}) {
    ChainFixture on(jitter, /*graphs=*/true);
    ChainFixture off(jitter, /*graphs=*/false);
    std::vector<double> t_on, t_off;
    for (int i = 0; i < 4; ++i) {
      on.iterate(c, 8_MiB, 1);
      off.iterate(c, 8_MiB, 1);
      t_on.push_back(on.stack.engine().now());
      t_off.push_back(off.stack.engine().now());
    }
    EXPECT_EQ(t_on, t_off);
    EXPECT_GT(on.stack.chain()->stats().replayed_steps, 0u);
  }
}

// ---------------------------------------------------------------------------
// Payload patching
// ---------------------------------------------------------------------------

TEST(ChainPatch, PayloadRescaleReplaysWithoutRecapture) {
  ChainFixture f;
  f.iterate(Coll::BcastBinomial, 8_MiB, 2);
  ASSERT_EQ(f.stack.chain()->stats().captures, 1u);
  const std::uint64_t replayed_before =
      f.stack.chain()->stats().replayed_steps;

  // Halve the payload: every step's bytes scale exactly, so the resident
  // chain re-patches in place and keeps replaying. Verify the patched
  // replay still moves the right bytes: after the broadcast every rank's
  // buffer must equal the root's pattern.
  f.stack.world().run([&](mi::Communicator& comm) -> ms::Task<void> {
    mg::DeviceBuffer data(comm.device(), 4_MiB);
    data.fill_pattern(comm.rank() == 0 ? 7u : 200u + comm.rank());
    co_await mi::broadcast(comm, data, 4_MiB, 0);
    mg::DeviceBuffer want(comm.device(), 4_MiB);
    want.fill_pattern(7u);
    EXPECT_TRUE(data.same_content(want)) << "rank " << comm.rank();
  });
  const mp::ChainStats st = f.stack.chain()->stats();
  EXPECT_EQ(st.captures, 1u);
  EXPECT_GE(st.patches, 1u);
  EXPECT_EQ(st.patch_failures, 0u);
  EXPECT_EQ(st.mismatch_kills, 0u);
  EXPECT_GT(st.replayed_steps, replayed_before);
}

TEST(ChainPatch, BelowMultipathThresholdDegradesToPassthrough) {
  ChainFixture f;
  f.iterate(Coll::AllgatherRing, 8_MiB, 2);
  ASSERT_EQ(f.stack.chain()->stats().captures, 1u);
  const std::uint64_t replayed_before =
      f.stack.chain()->stats().replayed_steps;

  // 512 KiB total -> 128 KiB per ring block, below min_multipath_bytes
  // (256 KiB): the uncaptured channel would go direct at this size, so the
  // re-patch must drop every step to passthrough instead of replaying a
  // multipath split the fresh path would never produce. The chain survives
  // (no kill, no recapture).
  f.iterate(Coll::AllgatherRing, 512_KiB, 1);
  const mp::ChainStats st = f.stack.chain()->stats();
  EXPECT_EQ(st.captures, 1u);
  EXPECT_GE(st.patches, 1u);
  EXPECT_GT(st.patch_failures, 0u);
  EXPECT_EQ(st.mismatch_kills, 0u);
  EXPECT_EQ(st.replayed_steps, replayed_before);
  EXPECT_GT(st.passthrough_steps, 0u);
  EXPECT_EQ(f.stack.chain()->cache_size(), 1u);

  // Patching back up cannot resurrect the dropped templates in place, so
  // the resident chain is killed and recaptured — and the recapture
  // restores the multipath replay fast path on the following iteration.
  f.iterate(Coll::AllgatherRing, 8_MiB, 2);
  const mp::ChainStats st2 = f.stack.chain()->stats();
  EXPECT_EQ(st2.captures, 2u);
  EXPECT_GE(st2.mismatch_kills, 1u);
  EXPECT_GT(st2.replayed_steps, replayed_before);
}

// ---------------------------------------------------------------------------
// Scheduled stacks: batched joint-theta admission
// ---------------------------------------------------------------------------

TEST(ChainScheduled, BatchAdmitsRoundsWithCleanLedger) {
  SchedFixture f;
  f.iterate(Coll::AllreduceRhd, 8_MiB, 6);
  const auto& ss = f.stack.scheduler()->stats();
  const mp::ChainStats cs = f.stack.chain()->stats();
  EXPECT_EQ(cs.captures, 1u);
  EXPECT_GT(cs.replayed_steps, 0u);
  // Whole rounds admit through admit_chain: one joint solve registering
  // one ticket per step, and every departure reconciles against the exact
  // footprint the batch registered.
  EXPECT_GE(ss.chain_round_admits, 1u);
  EXPECT_GE(ss.chain_step_admits, 2u * ss.chain_round_admits);
  EXPECT_EQ(ss.footprint_mismatches, 0u);
  EXPECT_EQ(cs.mismatch_kills, 0u);
}

TEST(ChainScheduled, CapacityEpochChangeKillsThenRecaptures) {
  SchedFixture f;
  f.iterate(Coll::AllreduceRhd, 8_MiB, 2);
  ASSERT_EQ(f.stack.chain()->stats().captures, 1u);
  ASSERT_GT(f.stack.chain()->stats().replayed_steps, 0u);

  // Degrade one GPU<->GPU link and restore it (factor 1 = baseline): two
  // capacity events, each superseding the chain's sealed epoch.
  const auto& topo = f.stack.system().topology;
  ms::LinkId victim{};
  bool found = false;
  for (const auto& e : topo.edges()) {
    if (topo.device(e.from).kind == mt::DeviceKind::Gpu &&
        topo.device(e.to).kind == mt::DeviceKind::Gpu &&
        !e.is_memory_channel) {
      victim = f.stack.runtime().binding().link_for_edge(e.id);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ms::FaultInjector inj(f.stack.engine(), f.stack.network());
  const double now = f.stack.engine().now();
  inj.degrade_at(now + 1e-3, victim, 0.5);
  inj.degrade_at(now + 2e-3, victim, 1.0);
  f.stack.engine().run();  // drain the fault events
  ASSERT_GE(f.stack.scheduler()->stats().capacity_events, 2u);

  // Next invocation resolves against a superseded epoch: the resident
  // chain dies, a fresh capture replaces it, and replay resumes after.
  const std::uint64_t replayed_mid = f.stack.chain()->stats().replayed_steps;
  f.iterate(Coll::AllreduceRhd, 8_MiB, 2);
  const mp::ChainStats st = f.stack.chain()->stats();
  EXPECT_GE(st.epoch_kills, 1u);
  EXPECT_EQ(st.captures, 2u);
  EXPECT_GT(st.replayed_steps, replayed_mid);
  EXPECT_EQ(f.stack.scheduler()->stats().footprint_mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Event-reservation accounting (chained steps hold compiled templates)
// ---------------------------------------------------------------------------

namespace {

/// Manual wiring (instead of SimStack) so the controller can be destroyed
/// while the runtime is still alive and inspectable.
struct ManualFixture {
  mt::System sys;
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt;
  mp::PipelineEngine pipe;
  mm::ModelRegistry reg;
  mm::PathConfigurator cfg;
  mp::ModelDrivenChannel channel;

  explicit ManualFixture(std::size_t staging_buffers_per_device = 16)
      : sys(beluga(0.0)),
        rt(sys, engine, net),
        pipe(rt, staging_buffers_per_device, mg::Payload::Simulated),
        reg(mpath::tuning::registry_from_topology(sys)),
        cfg(reg),
        channel(pipe, cfg, mt::PathPolicy::three_gpus()) {}
};

}  // namespace

TEST(ChainEvents, TemplatesReturnReservationsOnControllerDestruction) {
  ManualFixture f;
  const std::uint64_t baseline = f.rt.events_outstanding();
  {
    mp::ChainController chain(f.channel);
    mi::World world(f.rt, f.channel);  // destroyed first: detaches the tap
    world.set_chain_controller(&chain);
    for (int i = 0; i < 2; ++i) {
      world.run([&](mi::Communicator& comm) -> ms::Task<void> {
        co_await run_once(comm, Coll::AllreduceRhd, 8_MiB);
      });
    }
    EXPECT_EQ(chain.stats().captures, 1u);
    EXPECT_EQ(chain.stats().compile_failures, 0u);
    EXPECT_GT(chain.stats().replayed_steps, 0u);
    // Sealed templates hold their reserved fwd/bwd events across
    // iterations — that persistence is the replay fast path.
    EXPECT_GT(f.rt.events_outstanding(), baseline);
  }
  // Controller gone -> chains gone -> every reserved event back in the
  // runtime free list.
  EXPECT_EQ(f.rt.events_outstanding(), baseline);
}

TEST(ChainEvents, MidChainCompileFailureReleasesReservations) {
  // One staging buffer per device: the capture iteration itself runs fine
  // (fresh transfers hold staging transiently), but at seal time the
  // templates' *persistent* staging claims exhaust the pool mid-chain.
  // Failed steps must stay passthrough without leaking the event
  // reservations their aborted compile already made, and controller
  // destruction must return everything that did compile.
  ManualFixture f(/*staging_buffers_per_device=*/1);
  const std::uint64_t baseline = f.rt.events_outstanding();
  {
    mp::ChainController chain(f.channel);
    mi::World world(f.rt, f.channel);
    world.set_chain_controller(&chain);
    world.run([&](mi::Communicator& comm) -> ms::Task<void> {
      co_await run_once(comm, Coll::AllreduceRhd, 8_MiB);
    });
    const mp::ChainStats st = chain.stats();
    EXPECT_EQ(st.captures, 1u);
    EXPECT_GT(st.compile_failures, 0u);
    EXPECT_EQ(st.capture_aborts, 0u);
  }
  EXPECT_EQ(f.rt.events_outstanding(), baseline);
}

// ---------------------------------------------------------------------------
// Nightly fault-churn soak (MPATH_NIGHTLY_SOAK=1)
// ---------------------------------------------------------------------------

// Chained replay under seeded link-capacity churn: every iteration must
// complete (epoch kills fall back to fresh admission), the ledger must stay
// clean, and once the fault plan is exhausted the recaptured chain must
// converge back to replaying. Opt-in like the other soaks; the nightly CI
// job runs  ctest -R FaultSoak  with the gate set.
TEST(ChainFaultSoak, NightlyChurnKillsRecapturesAndReconverges) {
  const char* gate = std::getenv("MPATH_NIGHTLY_SOAK");
  if (gate == nullptr || std::string_view(gate) != "1") {
    GTEST_SKIP() << "set MPATH_NIGHTLY_SOAK=1 to run the chain churn soak";
  }
  SchedFixture f;
  std::vector<ms::LinkId> links;
  const auto& topo = f.stack.system().topology;
  for (const auto& e : topo.edges()) {
    if (topo.device(e.from).kind == mt::DeviceKind::Gpu &&
        topo.device(e.to).kind == mt::DeviceKind::Gpu &&
        !e.is_memory_channel) {
      links.push_back(f.stack.runtime().binding().link_for_edge(e.id));
    }
  }
  ASSERT_FALSE(links.empty());
  ms::FaultInjector inj(f.stack.engine(), f.stack.network());
  ms::FaultInjector::RandomPlanOptions fopt;
  fopt.horizon = 20e-3;
  fopt.faults = 8;
  fopt.sever_probability = 0.0;  // degrade only: every transfer completes
  fopt.min_duration = 1e-3;
  fopt.max_duration = 5e-3;
  inj.random_plan(links, fopt, 83);

  // Barrier-separated iterations inside ONE engine drain, so the churn
  // overlaps the loop instead of being fast-forwarded through.
  const int churn_iters = 24;
  int completed = 0;
  f.stack.world().run([&](mi::Communicator& comm) -> ms::Task<void> {
    for (int i = 0; i < churn_iters; ++i) {
      co_await comm.barrier();
      co_await run_once(comm, Coll::AllreduceRhd, 8_MiB);
      co_await comm.barrier();
      if (comm.rank() == 0) ++completed;
    }
  });
  EXPECT_EQ(completed, churn_iters);
  EXPECT_GT(f.stack.chain()->stats().epoch_kills +
                f.stack.chain()->stats().contended_rounds,
            0u);
  // Plan exhausted: replay must re-engage.
  const std::uint64_t replayed_mid = f.stack.chain()->stats().replayed_steps;
  f.iterate(Coll::AllreduceRhd, 8_MiB, 4);
  EXPECT_GT(f.stack.chain()->stats().replayed_steps, replayed_mid);
  EXPECT_EQ(f.stack.scheduler()->stats().footprint_mismatches, 0u);
}
