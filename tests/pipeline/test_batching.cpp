// Regression tests for event batching: monitored transfers account progress
// passively (DoneHooks on direct paths, existing backward events on staged
// paths), so turning monitoring on must not change completion times or
// issue extra stream operations; with jitter disabled the timings are
// bit-identical.
#include <gtest/gtest.h>

#include "mpath/pipeline/engine.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;  // deterministic: identical runs tick identically
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();

  struct RunResult {
    double elapsed = -1.0;
    std::uint64_t events = 0;   // engine events processed
    std::uint64_t ops = 0;      // gpusim stream ops issued
    mp::TransferOutcome outcome;
  };

  RunResult run(mg::DeviceBuffer& dst, const mg::DeviceBuffer& src,
                mp::ExecPlan plan, mp::PathWatchList watch) {
    RunResult r;
    const bool monitored = !watch.empty();
    engine.spawn([](Fixture& fx, mg::DeviceBuffer& d,
                    const mg::DeviceBuffer& s, mp::ExecPlan p,
                    mp::PathWatchList w, bool mon,
                    RunResult& out) -> ms::Task<void> {
      if (mon) {
        out.outcome = co_await fx.pipe.execute_monitored(d, 0, s, 0,
                                                         std::move(p),
                                                         std::move(w));
      } else {
        co_await fx.pipe.execute(d, 0, s, 0, std::move(p));
      }
      out.elapsed = fx.engine.now();
    }(*this, dst, src, std::move(plan), std::move(watch), monitored, r),
                 "exec");
    r.events = engine.run();
    r.ops = rt.ops_issued();
    EXPECT_GE(r.elapsed, 0.0);
    return r;
  }
};

}  // namespace

// A chunked direct path must finish at the exact same instant whether or
// not it is monitored: progress flows through completion hooks on the
// copies already being issued, not through extra event-record operations.
TEST(Batching, MonitoredDirectTimingMatchesUnmonitored) {
  mp::ExecPlan plan{
      mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 8_MiB, 8}};

  Fixture plain;
  mg::DeviceBuffer s1(plain.gpus[0], 8_MiB), d1(plain.gpus[1], 8_MiB);
  s1.fill_pattern(31);
  const auto base = plain.run(d1, s1, plan, {});

  Fixture watched;
  mg::DeviceBuffer s2(watched.gpus[0], 8_MiB), d2(watched.gpus[1], 8_MiB);
  s2.fill_pattern(31);
  const auto mon = watched.run(d2, s2, plan, {mp::PathWatch{10.0}});

  EXPECT_DOUBLE_EQ(mon.elapsed, base.elapsed);
  EXPECT_TRUE(mon.outcome.complete);
  ASSERT_EQ(mon.outcome.paths.size(), 1u);
  EXPECT_EQ(mon.outcome.paths[0].bytes_delivered, 8_MiB);
  EXPECT_TRUE(d2.same_content(s2));
  // Passive accounting: no extra stream operations for the watchdog.
  EXPECT_EQ(mon.ops, base.ops);
}

// Same invariant for a mixed two-path plan (direct + GPU-staged): the
// staged path's watchdog polls the backward events the pipeline records
// anyway, so per-chunk completion times — and hence the transfer's finish
// time — are untouched by monitoring.
TEST(Batching, MonitoredMixedPlanTimingMatchesUnmonitored) {
  auto make_plan = [](const std::vector<mt::DeviceId>& gpus) {
    return mp::ExecPlan{
        mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 2_MiB, 4},
        mp::ExecPath{{mt::PathKind::GpuStaged, gpus[2]}, 2_MiB, 8}};
  };

  Fixture plain;
  mg::DeviceBuffer s1(plain.gpus[0], 4_MiB), d1(plain.gpus[1], 4_MiB);
  s1.fill_pattern(32);
  const auto base = plain.run(d1, s1, make_plan(plain.gpus), {});

  Fixture watched;
  mg::DeviceBuffer s2(watched.gpus[0], 4_MiB), d2(watched.gpus[1], 4_MiB);
  s2.fill_pattern(32);
  const auto mon = watched.run(d2, s2, make_plan(watched.gpus),
                               {mp::PathWatch{10.0}, mp::PathWatch{10.0}});

  EXPECT_DOUBLE_EQ(mon.elapsed, base.elapsed);
  EXPECT_TRUE(mon.outcome.complete);
  EXPECT_EQ(mon.outcome.delivered(), 4_MiB);
  EXPECT_TRUE(d2.same_content(s2));
  EXPECT_EQ(mon.ops, base.ops);
}

// Monitoring's whole point: the delivered prefix must still be exact when a
// path is cut mid-flight, chunk by chunk. With hooks feeding a running
// total, a deadline landing between chunk completions reports precisely the
// chunks that finished — the same boundary the old event-record accounting
// produced.
TEST(Batching, HookAccountingReportsExactChunkPrefix) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 8_MiB), dst(f.gpus[1], 8_MiB);
  src.fill_pattern(33);
  // Time an unmonitored full run, then set a deadline at ~5/8 of it: the
  // direct path streams chunks back to back, so ~5 of 8 chunks land.
  Fixture probe;
  mg::DeviceBuffer ps(probe.gpus[0], 8_MiB), pd(probe.gpus[1], 8_MiB);
  const auto full = probe.run(
      pd, ps,
      {mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 8_MiB, 8}},
      {});
  const double deadline = full.elapsed * 5.0 / 8.0;
  const auto cut = f.run(
      dst, src,
      {mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 8_MiB, 8}},
      {mp::PathWatch{deadline}});
  EXPECT_FALSE(cut.outcome.complete);
  ASSERT_EQ(cut.outcome.paths.size(), 1u);
  EXPECT_TRUE(cut.outcome.paths[0].timed_out);
  const std::uint64_t got = cut.outcome.paths[0].bytes_delivered;
  EXPECT_EQ(got % 1_MiB, 0u) << "prefix must land on a chunk boundary";
  EXPECT_GT(got, 0u);
  EXPECT_LT(got, 8_MiB);
}
