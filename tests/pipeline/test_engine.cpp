#include "mpath/pipeline/engine.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;
using mpath::util::gbps;

namespace {

struct Fixture {
  mt::System sys;
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt;
  mp::PipelineEngine pipe{rt};
  std::vector<mt::DeviceId> gpus;

  explicit Fixture(bool clean_costs = false) : sys(make_sys(clean_costs)),
        rt(sys, engine, net) {
    gpus = sys.topology.gpus();
  }

  static mt::System make_sys(bool clean) {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;  // deterministic timing in tests
    if (clean) {
      s.costs.op_launch_s = 0;
      s.costs.event_record_s = 0;
      s.costs.event_wait_s = 0;
      s.costs.stage_sync_s = 0;
      s.costs.host_stage_sync_s = 0;
    }
    return s;
  }

  /// Run one plan to completion; returns elapsed simulated seconds.
  double run(mg::DeviceBuffer& dst, const mg::DeviceBuffer& src,
             mp::ExecPlan plan) {
    double finish = -1;
    const double start = engine.now();
    engine.spawn([](mp::PipelineEngine& pe, mg::DeviceBuffer& d,
                    const mg::DeviceBuffer& s, mp::ExecPlan p,
                    double& out) -> ms::Task<void> {
      co_await pe.execute(d, 0, s, 0, std::move(p));
      out = pe.runtime().engine().now();
    }(pipe, dst, src, std::move(plan), finish), "exec");
    engine.run();
    EXPECT_GE(finish, 0.0);
    return finish - start;
  }
};

mt::PathPlan direct() {
  return {mt::PathKind::Direct, mt::kInvalidDevice};
}

}  // namespace

TEST(PipelineEngine, DirectPlanDeliversPayload) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 8_MiB), dst(f.gpus[1], 8_MiB);
  src.fill_pattern(1);
  f.run(dst, src, {mp::ExecPath{direct(), 8_MiB, 1}});
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.pipe.transfers_executed(), 1u);
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::Direct), 8_MiB);
}

TEST(PipelineEngine, DirectPlanTimeIsCloseToAnalytic) {
  Fixture f(/*clean_costs=*/true);
  mg::DeviceBuffer src(f.gpus[0], 64_MiB), dst(f.gpus[1], 64_MiB);
  const double t = f.run(dst, src, {mp::ExecPath{direct(), 64_MiB, 1}});
  const double expected = 1e-6 + static_cast<double>(64_MiB) / gbps(46);
  EXPECT_NEAR(t, expected, 1e-8);
}

TEST(PipelineEngine, GpuStagedPlanDeliversPayload) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 8_MiB), dst(f.gpus[1], 8_MiB);
  src.fill_pattern(2);
  f.run(dst, src,
        {mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, 8_MiB, 8}});
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_EQ(f.pipe.bytes_on(mt::PathKind::GpuStaged), 8_MiB);
}

TEST(PipelineEngine, HostStagedPlanDeliversPayload) {
  Fixture f;
  const auto host = f.sys.topology.hosts()[0];
  mg::DeviceBuffer src(f.gpus[0], 4_MiB), dst(f.gpus[1], 4_MiB);
  src.fill_pattern(3);
  f.run(dst, src, {mp::ExecPath{{mt::PathKind::HostStaged, host}, 4_MiB, 4}});
  EXPECT_TRUE(dst.same_content(src));
}

TEST(PipelineEngine, MultiPathPlanDeliversEveryRegion) {
  Fixture f;
  const auto host = f.sys.topology.hosts()[0];
  mg::DeviceBuffer src(f.gpus[0], 64_MiB), dst(f.gpus[1], 64_MiB);
  src.fill_pattern(4);
  dst.fill_pattern(5);
  f.run(dst, src,
        {mp::ExecPath{direct(), 30_MiB, 1},
         mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, 16_MiB, 8},
         mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[3]}, 14_MiB, 8},
         mp::ExecPath{{mt::PathKind::HostStaged, host}, 4_MiB, 4}});
  EXPECT_TRUE(dst.same_content(src));
}

TEST(PipelineEngine, PipeliningBeatsUnpipelinedStaging) {
  // The core Section 3.4 effect: k chunks overlap the two hops. A staged
  // transfer with k=16 must finish in clearly less time than k=1, and
  // approach the single-hop time for large messages.
  Fixture f(/*clean_costs=*/true);
  const std::size_t n = 64_MiB;
  mg::DeviceBuffer src1(f.gpus[0], n), dst1(f.gpus[1], n);
  const double t1 =
      f.run(dst1, src1, {mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, n, 1}});
  Fixture g(/*clean_costs=*/true);
  mg::DeviceBuffer src2(g.gpus[0], n), dst2(g.gpus[1], n);
  const double t16 =
      g.run(dst2, src2, {mp::ExecPath{{mt::PathKind::GpuStaged, g.gpus[2]}, n, 16}});
  const double hop = static_cast<double>(n) / gbps(46);
  EXPECT_GT(t1, 1.9 * hop);        // k=1: two sequential hops
  EXPECT_LT(t16, 1.2 * hop);       // k=16: hops overlap
}

TEST(PipelineEngine, ThreePathsBeatDirectByNearlyThreeTimes) {
  // The headline effect (up to 2.9x on one paper machine): three ~equal
  // NVLink lanes. Even split across direct + two staged paths.
  Fixture f;
  const std::size_t n = 192_MiB;
  mg::DeviceBuffer src1(f.gpus[0], n), dst1(f.gpus[1], n);
  const double t_direct = f.run(dst1, src1, {mp::ExecPath{direct(), n, 1}});
  Fixture g;
  mg::DeviceBuffer src3(g.gpus[0], n), dst3(g.gpus[1], n);
  const double t_multi = g.run(
      dst3, src3,
      {mp::ExecPath{direct(), 64_MiB, 1},
       mp::ExecPath{{mt::PathKind::GpuStaged, g.gpus[2]}, 64_MiB, 16},
       mp::ExecPath{{mt::PathKind::GpuStaged, g.gpus[3]}, 64_MiB, 16}});
  EXPECT_TRUE(dst3.same_content(src3));
  const double speedup = t_direct / t_multi;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 3.1);
}

TEST(PipelineEngine, ZeroByteAndSkippedPathsAreFine) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  src.fill_pattern(6);
  f.run(dst, src,
        {mp::ExecPath{direct(), 1_MiB, 1},
         mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, 0, 4}});
  EXPECT_TRUE(dst.same_content(src));
}

TEST(PipelineEngine, ChunksAreCappedByBytes) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 16), dst(f.gpus[1], 16);
  src.fill_pattern(7);
  // 3 bytes on a staged path with k=8: must degrade to k=3, not crash.
  f.run(dst, src,
        {mp::ExecPath{direct(), 13, 1},
         mp::ExecPath{{mt::PathKind::GpuStaged, f.gpus[2]}, 3, 8}});
  EXPECT_TRUE(dst.same_content(src));
}

TEST(PipelineEngine, MalformedPlansThrow) {
  Fixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  bool threw_chunks = false, threw_stage = false, threw_bounds = false;
  f.engine.spawn([](mp::PipelineEngine& pe, mg::DeviceBuffer& d,
                    const mg::DeviceBuffer& s, bool& a, bool& b,
                    bool& c) -> ms::Task<void> {
    mp::ExecPlan bad_chunks{mp::ExecPath{direct(), 64, 0}};
    try {
      co_await pe.execute(d, 0, s, 0, std::move(bad_chunks));
    } catch (const std::invalid_argument&) {
      a = true;
    }
    mp::ExecPlan bad_stage{
        mp::ExecPath{{mt::PathKind::GpuStaged, mt::kInvalidDevice}, 64, 1}};
    try {
      co_await pe.execute(d, 0, s, 0, std::move(bad_stage));
    } catch (const std::invalid_argument&) {
      b = true;
    }
    mp::ExecPlan bad_bounds{mp::ExecPath{direct(), 2_MiB, 1}};
    try {
      co_await pe.execute(d, 0, s, 0, std::move(bad_bounds));
    } catch (const std::out_of_range&) {
      c = true;
    }
  }(f.pipe, dst, src, threw_chunks, threw_stage, threw_bounds), "errors");
  f.engine.run();
  EXPECT_TRUE(threw_chunks);
  EXPECT_TRUE(threw_stage);
  EXPECT_TRUE(threw_bounds);
}

TEST(PipelineEngine, SimulatedStagingStillRelaysMaterializedPayload) {
  // Regression: a timing-only staging pool must not lose payload between
  // materialized endpoints (caught by the collective_allreduce example).
  Fixture f;
  mp::PipelineEngine sim_staged(f.rt, 4, mg::Payload::Simulated);
  mg::DeviceBuffer src(f.gpus[0], 8_MiB), dst(f.gpus[1], 8_MiB);
  src.fill_pattern(41);
  f.engine.spawn([](mp::PipelineEngine& pe, mg::DeviceBuffer& d,
                    const mg::DeviceBuffer& s,
                    std::vector<mt::DeviceId> gpus) -> ms::Task<void> {
    mp::ExecPlan plan{
        mp::ExecPath{direct(), 3_MiB, 1},
        mp::ExecPath{{mt::PathKind::GpuStaged, gpus[2]}, 5_MiB, 8}};
    co_await pe.execute(d, 0, s, 0, std::move(plan));
  }(sim_staged, dst, src, f.gpus), "xfer");
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
}

TEST(PipelineEngine, ConcurrentTransfersDoNotCorruptEachOther) {
  // Windowed sends share streams and staging pools; payloads must still
  // land intact.
  Fixture f;
  const std::size_t n = 8_MiB;
  std::vector<std::unique_ptr<mg::DeviceBuffer>> srcs, dsts;
  for (int i = 0; i < 6; ++i) {
    srcs.push_back(std::make_unique<mg::DeviceBuffer>(f.gpus[0], n));
    dsts.push_back(std::make_unique<mg::DeviceBuffer>(f.gpus[1], n));
    srcs.back()->fill_pattern(100 + static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 6; ++i) {
    f.engine.spawn([](mp::PipelineEngine& pe, mg::DeviceBuffer& d,
                      const mg::DeviceBuffer& s,
                      std::vector<mt::DeviceId> gpus) -> ms::Task<void> {
      mp::ExecPlan plan{
          mp::ExecPath{direct(), 4_MiB, 1},
          mp::ExecPath{{mt::PathKind::GpuStaged, gpus[2]}, 4_MiB, 8}};
      co_await pe.execute(d, 0, s, 0, std::move(plan));
    }(f.pipe, *dsts[static_cast<std::size_t>(i)],
      *srcs[static_cast<std::size_t>(i)], f.gpus), "xfer");
  }
  f.engine.run();
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(dsts[static_cast<std::size_t>(i)]->same_content(
        *srcs[static_cast<std::size_t>(i)]))
        << "transfer " << i;
  }
}
