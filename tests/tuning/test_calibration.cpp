#include "mpath/tuning/calibration.hpp"

#include <gtest/gtest.h>

#include "mpath/model/configurator.hpp"
#include "mpath/util/units.hpp"

namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace tu = mpath::tuning;
using mpath::util::gbps;

TEST(Calibration, AnalyticRegistryCoversAllRoutes) {
  const auto sys = mt::make_beluga();
  const auto reg = tu::registry_from_topology(sys);
  const auto gpus = sys.topology.gpus();
  const auto host = sys.topology.hosts()[0];
  for (auto a : gpus) {
    for (auto b : gpus) {
      if (a != b) EXPECT_TRUE(reg.has_route_params(a, b));
    }
    EXPECT_TRUE(reg.has_route_params(a, host));
    EXPECT_TRUE(reg.has_route_params(host, a));
  }
  EXPECT_DOUBLE_EQ(reg.route_params(gpus[0], gpus[1]).beta, gbps(46));
  EXPECT_GT(reg.epsilon(mt::PathKind::HostStaged),
            reg.epsilon(mt::PathKind::GpuStaged));
  EXPECT_GT(reg.issue_alpha(), 0.0);
}

TEST(Calibration, MeasuredBetaTracksGroundTruth) {
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0.0;  // deterministic microbenchmarks
  const auto reg = tu::calibrate(sys);
  const auto gpus = sys.topology.gpus();
  const auto host = sys.topology.hosts()[0];
  // NVLink routes fit to ~46 GB/s, PCIe routes to ~12 GB/s.
  EXPECT_NEAR(reg.route_params(gpus[0], gpus[1]).beta, gbps(46),
              0.03 * gbps(46));
  EXPECT_NEAR(reg.route_params(gpus[0], host).beta, gbps(12),
              0.03 * gbps(12));
  // Alpha captures wire latency + dispatch overhead: small but positive.
  EXPECT_GT(reg.route_params(gpus[0], gpus[1]).alpha, 0.0);
  EXPECT_LT(reg.route_params(gpus[0], gpus[1]).alpha, 50e-6);
}

TEST(Calibration, MeasuredRegistryIsUsableByConfigurator) {
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0.005;
  const auto reg = tu::calibrate(sys);
  mm::PathConfigurator cfg(reg);
  const auto gpus = sys.topology.gpus();
  const auto paths = mt::enumerate_paths(sys.topology, gpus[0], gpus[1],
                                         mt::PathPolicy::three_gpus());
  const auto& config = cfg.configure(gpus[0], gpus[1], 256u << 20, paths);
  // Three similar NVLink lanes: the prediction lands between 2x and 3x of
  // one lane.
  EXPECT_GT(config.predicted_bandwidth(), 2.0 * gbps(46));
  EXPECT_LT(config.predicted_bandwidth(), 3.0 * gbps(46));
}

TEST(Calibration, NarvalHostRoutesAreMemChannelLimited) {
  auto sys = mt::make_narval();
  sys.costs.jitter_rel = 0.0;
  const auto reg = tu::calibrate(sys);
  const auto gpus = sys.topology.gpus();
  const auto host0 = sys.topology.host_for_numa(0);
  // Isolated hop measurement sees the 16 GB/s memory channel, not the
  // 24 GB/s PCIe — the model will later overestimate the pipelined host
  // path, reproducing the paper's Observation 3.
  EXPECT_NEAR(reg.route_params(gpus[0], host0).beta, gbps(16),
              0.05 * gbps(16));
  // Cross-NUMA read from staging memory is slower than same-NUMA PCIe.
  EXPECT_LT(reg.route_params(host0, gpus[3]).beta, gbps(17));
}

TEST(Calibration, JitterMakesFitsNoisyButClose) {
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0.02;
  tu::CalibrationOptions opt;
  opt.seed = 77;
  const auto reg = tu::calibrate(sys, opt);
  const auto gpus = sys.topology.gpus();
  const double beta = reg.route_params(gpus[0], gpus[1]).beta;
  EXPECT_NEAR(beta, gbps(46), 0.10 * gbps(46));
  EXPECT_NE(beta, gbps(46));  // measurement noise is present
}

TEST(Calibration, RegistryRoundTripsThroughCsv) {
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0.0;
  const auto reg = tu::calibrate(sys);
  const std::string path = "/tmp/mpath_calibration_test.csv";
  reg.save_csv(path);
  const auto loaded = mm::ModelRegistry::load_csv(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.system_name(), "beluga");
  EXPECT_EQ(loaded.route_count(), reg.route_count());
  const auto gpus = sys.topology.gpus();
  EXPECT_DOUBLE_EQ(loaded.route_params(gpus[0], gpus[1]).beta,
                   reg.route_params(gpus[0], gpus[1]).beta);
}

TEST(Calibration, ContentionAwareFixesNarvalHostPath) {
  // The extension measures staged paths end to end; on Narval the host
  // path's two hops share the staging NUMA's memory channel, so the
  // effective inverse bandwidth must be markedly worse than the per-hop
  // composition predicts.
  auto sys = mt::make_narval();
  sys.costs.jitter_rel = 0.0;
  tu::CalibrationOptions opt;
  opt.contention_aware = true;
  const auto reg = tu::calibrate(sys, opt);
  EXPECT_GT(reg.contention_factor_count(), 0u);
  const auto gpus = sys.topology.gpus();
  const auto host = sys.topology.nearest_host(gpus[0]);
  const mt::PathPlan host_path{mt::PathKind::HostStaged, host};
  ASSERT_TRUE(reg.contention_factor(gpus[0], gpus[1], host_path).has_value());
  // Both hops share the staging NUMA's memory channel: the measured slope
  // is close to twice the composed slope.
  const double factor = *reg.contention_factor(gpus[0], gpus[1], host_path);
  EXPECT_GT(factor, 1.5);
  EXPECT_LT(factor, 2.5);
  // GPU-staged paths have no shared resource: no factor (or close to 1).
  const mt::PathPlan gpu_path{mt::PathKind::GpuStaged, gpus[2]};
  const auto gpu_factor =
      reg.contention_factor(gpus[0], gpus[1], gpu_path);
  if (gpu_factor.has_value()) {
    EXPECT_LT(*gpu_factor, 1.2);
  }
}
