#include "mpath/tuning/static_tuner.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "mpath/util/units.hpp"

namespace mt = mpath::topo;
namespace tu = mpath::tuning;
using namespace mpath::util::literals;
using mpath::util::gbps;

namespace {
tu::StaticTunerOptions coarse_options() {
  tu::StaticTunerOptions opt;
  // Keep unit tests quick: coarse grid, few chunk points, few iterations.
  opt.fraction_step = 0.25;
  opt.chunk_grid = {1, 8};
  opt.iterations = 2;
  opt.warmup = 1;
  return opt;
}
}  // namespace

TEST(StaticTuner, FindsMultiPathPlanForLargeMessages) {
  tu::StaticTuner tuner(mt::make_beluga(), mt::PathPolicy::two_gpus(),
                        coarse_options());
  const auto result = tuner.tune(128_MiB);
  EXPECT_GT(result.evaluated, 3);
  ASSERT_EQ(result.plan.fractions.size(), 2u);
  // A large message must use the staged path...
  EXPECT_GT(result.plan.fractions[1], 0.0);
  // ...and beat the single direct lane.
  EXPECT_GT(result.bandwidth_bps, 1.3 * gbps(46));
}

TEST(StaticTuner, PrefersDirectOnlyForModestMessages) {
  tu::StaticTuner tuner(mt::make_beluga(), mt::PathPolicy::two_gpus(),
                        coarse_options());
  const auto result = tuner.tune(512_KiB);
  // At 512 KB the fixed staging overheads dominate: the exhaustive search
  // lands on an all-direct (or nearly all-direct) split.
  EXPECT_GE(result.plan.fractions[0], 0.75);
}

TEST(StaticTuner, ChunkedPlansWinForStagedPaths) {
  tu::StaticTuner tuner(mt::make_beluga(), mt::PathPolicy::two_gpus(),
                        coarse_options());
  const auto result = tuner.tune(256_MiB);
  ASSERT_EQ(result.plan.chunks.size(), 2u);
  // With half the bytes staged, pipelining must win over k=1.
  EXPECT_GT(result.plan.chunks[1], 1);
}

TEST(StaticTuner, CacheRoundTrip) {
  const std::string cache = "/tmp/mpath_tuner_cache_test";
  std::filesystem::remove_all(cache);
  auto opt = coarse_options();
  opt.cache_dir = cache;
  tu::StaticTuner tuner(mt::make_beluga(), mt::PathPolicy::two_gpus(), opt);
  const auto first = tuner.tune(64_MiB);
  EXPECT_FALSE(first.from_cache);
  const auto second = tuner.tune(64_MiB);
  EXPECT_TRUE(second.from_cache);
  EXPECT_DOUBLE_EQ(second.bandwidth_bps, first.bandwidth_bps);
  ASSERT_EQ(second.plan.fractions.size(), first.plan.fractions.size());
  for (std::size_t i = 0; i < first.plan.fractions.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.plan.fractions[i], first.plan.fractions[i]);
    EXPECT_EQ(second.plan.chunks[i], first.plan.chunks[i]);
  }
  std::filesystem::remove_all(cache);
}

TEST(StaticTuner, RequiresTwoGpus) {
  mt::System sys = mt::make_beluga();
  mt::Topology solo("solo");
  const auto host = solo.add_device(mt::DeviceKind::Host, 0, "h");
  solo.add_memory_channel(host, gbps(30), 0.2e-6);
  const auto g = solo.add_device(mt::DeviceKind::Gpu, 0, "g");
  solo.connect_duplex(g, host, mt::LinkKind::PCIe3, gbps(12), 1.6e-6);
  EXPECT_THROW(
      tu::StaticTuner(mt::System{std::move(solo), sys.costs},
                      mt::PathPolicy::two_gpus(), coarse_options()),
      std::invalid_argument);
}
