#include "mpath/gpusim/buffer.hpp"

#include <gtest/gtest.h>

namespace mg = mpath::gpusim;

TEST(DeviceBuffer, IdsAreUnique) {
  mg::DeviceBuffer a(0, 16);
  mg::DeviceBuffer b(0, 16);
  EXPECT_NE(a.id(), b.id());
}

TEST(DeviceBuffer, RegionBoundsChecked) {
  mg::DeviceBuffer buf(1, 128);
  EXPECT_EQ(buf.region(0, 128).size(), 128u);
  EXPECT_EQ(buf.region(64, 64).size(), 64u);
  EXPECT_THROW((void)buf.region(64, 65), std::out_of_range);
  EXPECT_THROW((void)buf.region(129, 0), std::out_of_range);
}

TEST(DeviceBuffer, PatternIsDeterministicAndSeedDependent) {
  mg::DeviceBuffer a(0, 256), b(0, 256), c(0, 256);
  a.fill_pattern(42);
  b.fill_pattern(42);
  c.fill_pattern(43);
  EXPECT_TRUE(a.same_content(b));
  EXPECT_FALSE(a.same_content(c));
}

TEST(DeviceBuffer, SameContentRequiresSameSize) {
  mg::DeviceBuffer a(0, 8), b(0, 16);
  EXPECT_FALSE(a.same_content(b));
}

TEST(DeviceBuffer, TypedView) {
  mg::DeviceBuffer buf(0, 4 * sizeof(float));
  auto floats = buf.as<float>();
  ASSERT_EQ(floats.size(), 4u);
  floats[2] = 1.5f;
  EXPECT_EQ(buf.as<const float>()[2], 1.5f);
}
