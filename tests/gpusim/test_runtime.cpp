#include "mpath/gpusim/runtime.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;
using mpath::util::gbps;

namespace {

// Beluga with all software overheads zeroed for exact-time assertions.
struct CleanFixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs = mt::SoftwareCosts{};
    s.costs.op_launch_s = 0;
    s.costs.event_record_s = 0;
    s.costs.event_wait_s = 0;
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
};

}  // namespace

TEST(GpuRuntime, CopyMovesPayloadAndTakesWireTime) {
  CleanFixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[1], 1_MiB);
  src.fill_pattern(7);
  const auto s = f.rt.create_stream(f.gpus[0]);
  double finish = -1;
  f.rt.memcpy_async(dst, 0, src, 0, 1_MiB, s);
  f.engine.spawn([](mg::GpuRuntime& rt, mg::StreamId st,
                    double& out) -> ms::Task<void> {
    co_await rt.synchronize(st);
    out = rt.engine().now();
  }(f.rt, s, finish));
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
  const double expected = 1e-6 + static_cast<double>(1_MiB) / gbps(46);
  EXPECT_NEAR(finish, expected, 1e-9);
  EXPECT_EQ(f.rt.bytes_copied(), 1_MiB);
}

TEST(GpuRuntime, StreamOpsExecuteInOrder) {
  CleanFixture f;
  mg::DeviceBuffer a(f.gpus[0], 64), b(f.gpus[1], 64), c(f.gpus[2], 64);
  a.fill_pattern(1);
  const auto s = f.rt.create_stream(f.gpus[0]);
  // b <- a, then c <- b: only correct if strictly ordered.
  f.rt.memcpy_async(b, 0, a, 0, 64, s);
  f.rt.memcpy_async(c, 0, b, 0, 64, s);
  f.engine.spawn([](mg::GpuRuntime& rt, mg::StreamId st) -> ms::Task<void> {
    co_await rt.synchronize(st);
  }(f.rt, s));
  f.engine.run();
  EXPECT_TRUE(c.same_content(a));
}

TEST(GpuRuntime, IndependentStreamsOverlap) {
  CleanFixture f;
  // Two disjoint GPU pairs: copies run concurrently, so both finish in the
  // time of one (plus latency), not 2x.
  mg::DeviceBuffer s0(f.gpus[0], 46_MiB), d0(f.gpus[1], 46_MiB);
  mg::DeviceBuffer s1(f.gpus[2], 46_MiB), d1(f.gpus[3], 46_MiB);
  const auto st0 = f.rt.create_stream(f.gpus[0]);
  const auto st1 = f.rt.create_stream(f.gpus[2]);
  f.rt.memcpy_async(d0, 0, s0, 0, 46_MiB, st0);
  f.rt.memcpy_async(d1, 0, s1, 0, 46_MiB, st1);
  double finish = -1;
  f.engine.spawn([](mg::GpuRuntime& rt, double& out) -> ms::Task<void> {
    co_await rt.device_synchronize();
    out = rt.engine().now();
  }(f.rt, finish));
  f.engine.run();
  const double one_copy = 1e-6 + static_cast<double>(46_MiB) / gbps(46);
  EXPECT_NEAR(finish, one_copy, 1e-6);
}

TEST(GpuRuntime, SameLinkCopiesContend) {
  CleanFixture f;
  // Two concurrent copies over the same NVLink share it: each takes ~2x.
  mg::DeviceBuffer sa(f.gpus[0], 46_MiB), da(f.gpus[1], 46_MiB);
  mg::DeviceBuffer sb(f.gpus[0], 46_MiB), db(f.gpus[1], 46_MiB);
  const auto st0 = f.rt.create_stream(f.gpus[0]);
  const auto st1 = f.rt.create_stream(f.gpus[0]);
  f.rt.memcpy_async(da, 0, sa, 0, 46_MiB, st0);
  f.rt.memcpy_async(db, 0, sb, 0, 46_MiB, st1);
  double finish = -1;
  f.engine.spawn([](mg::GpuRuntime& rt, double& out) -> ms::Task<void> {
    co_await rt.device_synchronize();
    out = rt.engine().now();
  }(f.rt, finish));
  f.engine.run();
  const double shared = 1e-6 + 2.0 * static_cast<double>(46_MiB) / gbps(46);
  EXPECT_NEAR(finish, shared, 1e-6);
}

TEST(GpuRuntime, EventsOrderAcrossStreams) {
  CleanFixture f;
  mg::DeviceBuffer a(f.gpus[0], 64), b(f.gpus[2], 64), c(f.gpus[1], 64);
  a.fill_pattern(9);
  // Staged: a -> b on stream0; stream1 waits for the event then b -> c.
  const auto s0 = f.rt.create_stream(f.gpus[0]);
  const auto s1 = f.rt.create_stream(f.gpus[2]);
  const auto ev = f.rt.create_event();
  f.rt.memcpy_async(b, 0, a, 0, 64, s0);
  f.rt.record_event(ev, s0);
  f.rt.wait_event(s1, ev);
  f.rt.memcpy_async(c, 0, b, 0, 64, s1);
  f.engine.spawn([](mg::GpuRuntime& rt) -> ms::Task<void> {
    co_await rt.device_synchronize();
  }(f.rt));
  f.engine.run();
  EXPECT_TRUE(c.same_content(a));
}

TEST(GpuRuntime, WaitOnUnrecordedEventIsNoop) {
  CleanFixture f;
  const auto s = f.rt.create_stream(f.gpus[0]);
  const auto ev = f.rt.create_event();
  f.rt.wait_event(s, ev);
  double finish = -1;
  f.engine.spawn([](mg::GpuRuntime& rt, mg::StreamId st,
                    double& out) -> ms::Task<void> {
    co_await rt.synchronize(st);
    out = rt.engine().now();
  }(f.rt, s, finish));
  f.engine.run();
  EXPECT_NEAR(finish, 0.0, 1e-12);
}

TEST(GpuRuntime, SameDeviceCopyUsesLocalBandwidth) {
  CleanFixture f;
  mg::DeviceBuffer src(f.gpus[0], 1_MiB), dst(f.gpus[0], 1_MiB);
  src.fill_pattern(3);
  const auto s = f.rt.create_stream(f.gpus[0]);
  f.rt.memcpy_async(dst, 0, src, 0, 1_MiB, s);
  double finish = -1;
  f.engine.spawn([](mg::GpuRuntime& rt, mg::StreamId st,
                    double& out) -> ms::Task<void> {
    co_await rt.synchronize(st);
    out = rt.engine().now();
  }(f.rt, s, finish));
  f.engine.run();
  EXPECT_TRUE(dst.same_content(src));
  EXPECT_NEAR(finish, static_cast<double>(1_MiB) / 600e9, 1e-9);
}

TEST(GpuRuntime, RegionOffsetsRespected) {
  CleanFixture f;
  mg::DeviceBuffer src(f.gpus[0], 256), dst(f.gpus[1], 256);
  src.fill_pattern(5);
  dst.fill_pattern(6);
  const auto s = f.rt.create_stream(f.gpus[0]);
  f.rt.memcpy_async(dst, 128, src, 0, 64, s);
  f.engine.spawn([](mg::GpuRuntime& rt) -> ms::Task<void> {
    co_await rt.device_synchronize();
  }(f.rt));
  f.engine.run();
  // dst[128..192) == src[0..64); the rest of dst is untouched.
  EXPECT_TRUE(std::equal(dst.bytes().begin() + 128, dst.bytes().begin() + 192,
                         src.bytes().begin()));
  mg::DeviceBuffer ref(f.gpus[1], 256);
  ref.fill_pattern(6);
  EXPECT_TRUE(std::equal(dst.bytes().begin(), dst.bytes().begin() + 128,
                         ref.bytes().begin()));
}

TEST(GpuRuntime, BadRegionThrowsAtEnqueue) {
  CleanFixture f;
  mg::DeviceBuffer src(f.gpus[0], 64), dst(f.gpus[1], 64);
  const auto s = f.rt.create_stream(f.gpus[0]);
  EXPECT_THROW(f.rt.memcpy_async(dst, 32, src, 0, 64, s), std::out_of_range);
}

TEST(GpuRuntime, IpcOpenPaysOnceThenCached) {
  CleanFixture f;
  // Re-enable the IPC cost for this test.
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  mg::GpuRuntime rt(sys, engine, net);
  const auto gpus = sys.topology.gpus();
  mg::DeviceBuffer buf(gpus[1], 64);
  double first = -1, second = -1;
  engine.spawn([](mg::GpuRuntime& r, mt::DeviceId opener,
                  mg::DeviceBuffer& b, double& t1,
                  double& t2) -> ms::Task<void> {
    co_await r.ipc_open(opener, b);
    t1 = r.engine().now();
    co_await r.ipc_open(opener, b);
    t2 = r.engine().now();
  }(rt, gpus[0], buf, first, second));
  engine.run();
  EXPECT_NEAR(first, sys.costs.ipc_open_s, 1e-9);
  EXPECT_DOUBLE_EQ(second, first);  // cached: no extra time
  EXPECT_TRUE(rt.ipc_cached(gpus[0], buf));
  EXPECT_FALSE(rt.ipc_cached(gpus[2], buf));
  rt.ipc_cache_clear();
  EXPECT_EQ(rt.ipc_cache_size(), 0u);
}

TEST(GpuRuntime, OpCountsTracked) {
  CleanFixture f;
  mg::DeviceBuffer src(f.gpus[0], 64), dst(f.gpus[1], 64);
  const auto s = f.rt.create_stream(f.gpus[0]);
  const auto ev = f.rt.create_event();
  f.rt.memcpy_async(dst, 0, src, 0, 64, s);
  f.rt.record_event(ev, s);
  f.rt.wait_event(s, ev);
  EXPECT_EQ(f.rt.ops_issued(), 3u);
  f.engine.spawn([](mg::GpuRuntime& rt) -> ms::Task<void> {
    co_await rt.device_synchronize();
  }(f.rt));
  f.engine.run();
}

TEST(GpuRuntime, EventFreeListRecyclesReservations) {
  CleanFixture f;
  EXPECT_EQ(f.rt.events_pooled(), 0u);
  const auto e0 = f.rt.acquire_event();  // free list empty: freshly minted
  const auto e1 = f.rt.acquire_event();
  EXPECT_NE(e0, e1);
  EXPECT_EQ(f.rt.events_pooled(), 0u);
  f.rt.release_event(e0);
  f.rt.release_event(e1);
  EXPECT_EQ(f.rt.events_pooled(), 2u);
  // LIFO reuse: the pool hands back released ids instead of minting more.
  const auto r0 = f.rt.acquire_event();
  const auto r1 = f.rt.acquire_event();
  EXPECT_EQ(f.rt.events_pooled(), 0u);
  EXPECT_TRUE((r0 == e0 && r1 == e1) || (r0 == e1 && r1 == e0));
  f.rt.release_event(r0);
  f.rt.release_event(r1);
}

TEST(GpuRuntime, ReacquiredEventRearmsAtRecord) {
  // An event that already fired, was released, and is then reacquired must
  // behave like a fresh event: record re-arms the latch at enqueue, so a
  // cross-stream wait on the recycled id observes the NEW recording, not
  // the stale completed state.
  CleanFixture f;
  mg::DeviceBuffer a(f.gpus[0], 1_MiB), b(f.gpus[2], 1_MiB), c(f.gpus[1], 1_MiB);
  a.fill_pattern(5);
  const auto s0 = f.rt.create_stream(f.gpus[0]);
  const auto ev = f.rt.acquire_event();
  f.rt.memcpy_async(b, 0, a, 0, 1_MiB, s0);
  f.rt.record_event(ev, s0);
  f.engine.spawn([](mg::GpuRuntime& rt) -> ms::Task<void> {
    co_await rt.device_synchronize();
  }(f.rt));
  f.engine.run();
  f.rt.release_event(ev);

  const auto ev2 = f.rt.acquire_event();
  EXPECT_EQ(ev2, ev);  // recycled id
  const auto s2 = f.rt.create_stream(f.gpus[2]);
  const auto s3 = f.rt.create_stream(f.gpus[2]);
  // s3 waits on the recycled event recorded behind a fresh copy on s2: the
  // dependent copy must see the new payload, proving the latch re-armed.
  b.fill_pattern(7);
  mg::DeviceBuffer d(f.gpus[2], 1_MiB);
  d.fill_pattern(7);
  f.rt.memcpy_async(b, 0, d, 0, 1_MiB, s2);
  f.rt.record_event(ev2, s2);
  f.rt.wait_event(s3, ev2);
  f.rt.memcpy_async(c, 0, b, 0, 1_MiB, s3);
  f.engine.spawn([](mg::GpuRuntime& rt) -> ms::Task<void> {
    co_await rt.device_synchronize();
  }(f.rt));
  f.engine.run();
  EXPECT_TRUE(c.same_content(d));
  f.rt.release_event(ev2);
}
