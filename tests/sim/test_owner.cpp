#include "mpath/sim/owner.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mpath/sim/engine.hpp"
#include "mpath/sim/pool.hpp"

namespace ms = mpath::sim;

TEST(ThreadOwner, FirstToucherBecomesOwner) {
  ms::ThreadOwner owner;
  // Repeated touches from the binding thread are fine.
  owner.assert_held("test object");
  owner.assert_held("test object");
}

TEST(ThreadOwner, ReleaseAllowsHandoff) {
  ms::ThreadOwner owner;
  owner.assert_held("test object");
  owner.release();
  // After release, a different thread may become the new owner.
  std::thread([&owner] { owner.assert_held("test object"); }).join();
}

TEST(ThreadOwner, EachThreadOwnsItsOwnInstance) {
  // The parallel-sweep contract: workers never share guarded objects, so
  // per-worker instances must never trip the check.
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([] {
      ms::ThreadOwner owner;
      ms::Engine engine;
      engine.spawn([](ms::Engine& e) -> ms::Task<void> {
        co_await e.delay(1e-6);
      }(engine));
      engine.run();
      owner.assert_held("worker-local object");
    });
  }
  for (auto& w : workers) w.join();
}

#if MPATH_OWNER_CHECKS

using ThreadOwnerDeathTest = ::testing::Test;

TEST(ThreadOwnerDeathTest, CrossThreadTouchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ms::ThreadOwner owner;
        owner.assert_held("guarded object");
        std::thread([&owner] { owner.assert_held("guarded object"); }).join();
      },
      "MPATH_ASSERT_OWNER");
}

TEST(ThreadOwnerDeathTest, EngineRejectsForeignThread) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ms::Engine engine;
        engine.spawn([](ms::Engine& e) -> ms::Task<void> {
          co_await e.delay(1e-6);
        }(engine));
        engine.run();  // binds the engine to this thread
        std::thread([&engine] {
          engine.spawn([](ms::Engine& e) -> ms::Task<void> {
            co_await e.delay(1e-6);
          }(engine));
        }).join();
      },
      "sim::Engine");
}

#endif  // MPATH_OWNER_CHECKS

#if !MPATH_POOL_PASSTHROUGH

TEST(Pool, ThreadLocalBucketsAreIndependent) {
  namespace pd = ms::detail;
  // Warm this thread's pool and snapshot its counters.
  void* p = pd::pool_alloc(64);
  pd::pool_free(p, 64);
  const auto before = pd::pool_counters();

  // Concurrent workers churn their own pools; each must see its own
  // counters advance and its own recycling hits — without synchronizing
  // with anyone else's buckets.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      const auto start = pd::pool_counters();
      for (int i = 0; i < 100; ++i) {
        void* q = pd::pool_alloc(64);
        pd::pool_free(q, 64);
      }
      const auto end = pd::pool_counters();
      EXPECT_EQ(end.allocs - start.allocs, 100u);
      // After the first allocation warms the bucket, the remaining 99
      // must be recycled from this thread's own free list.
      EXPECT_GE(end.hits - start.hits, 99u);
    });
  }
  for (auto& w : workers) w.join();

  // Worker churn is invisible to this thread's counters.
  const auto after = pd::pool_counters();
  EXPECT_EQ(after.allocs, before.allocs);
  EXPECT_EQ(after.hits, before.hits);
}

#endif  // !MPATH_POOL_PASSTHROUGH
