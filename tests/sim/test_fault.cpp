// Fault injection over the fluid network: dynamic link-capacity changes
// (degrade / sever / restore), stalled-flow semantics, component-local
// re-solves under faults, the FaultInjector scheduling front-end, and an
// env-gated churn soak (MPATH_NIGHTLY_SOAK=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mpath/sim/fault.hpp"
#include "mpath/sim/fluid.hpp"
#include "mpath/sim/trace.hpp"
#include "mpath/util/rng.hpp"

namespace ms = mpath::sim;

namespace {

ms::Task<void> timed_transfer(ms::Engine& e, ms::FluidNetwork& net,
                              std::vector<ms::LinkId> route, double bytes,
                              double& finish) {
  co_await net.transfer(std::move(route), bytes);
  finish = e.now();
}

ms::Task<void> delayed_transfer(ms::Engine& e, ms::FluidNetwork& net,
                                double start, std::vector<ms::LinkId> route,
                                double bytes, double& finish) {
  co_await e.delay(start);
  co_await net.transfer(std::move(route), bytes);
  finish = e.now();
}

}  // namespace

// A capacity cut mid-flight rescales the remaining bytes analytically:
// 1000 B at 100 B/s for 2 s (200 delivered), then 50 B/s -> 2 + 800/50.
TEST(Fault, SetLinkCapacityRescalesRates) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 1000.0, finish));
  engine.schedule_callback(2.0, [&] { net.set_link_capacity(link, 50.0); });
  engine.run();
  EXPECT_NEAR(finish, 18.0, 1e-9);
  EXPECT_NEAR(net.link_bytes_transferred(link), 1000.0, 1e-6);
  EXPECT_EQ(net.stats().capacity_changes, 1u);
}

// Severing stalls the flow at rate 0 (still live, not cancelled); restoring
// resumes it with the pre-fault remainder intact.
TEST(Fault, SeverStallsAndRestoreResumes) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 1000.0, finish));
  engine.schedule_callback(2.0, [&] { net.set_link_capacity(link, 0.0); });
  engine.schedule_callback(3.0, [&] {
    EXPECT_EQ(net.stalled_flow_count(), 1u);
    EXPECT_EQ(net.active_flow_count(), 1u);
    EXPECT_NEAR(net.link_allocated_rate(link), 0.0, 1e-12);
  });
  engine.schedule_callback(5.0, [&] { net.set_link_capacity(link, 100.0); });
  engine.run();
  // 200 B before the sever, 3 s stalled, 800 B after the restore.
  EXPECT_NEAR(finish, 2.0 + 3.0 + 8.0, 1e-9);
  EXPECT_EQ(net.stalled_flow_count(), 0u);
}

// A sever with no restore leaves the flow parked forever: the engine must
// report a deadlock instead of hanging or mis-completing.
TEST(Fault, SeverWithoutRestoreDeadlocks) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 1000.0, finish));
  engine.schedule_callback(2.0, [&] { net.set_link_capacity(link, 0.0); });
  EXPECT_THROW(engine.run(), ms::SimError);
  EXPECT_LT(finish, 0.0);
  EXPECT_EQ(net.stalled_flow_count(), 1u);
}

// Cancelling a stalled flow is the documented way to abort it; the network
// must drain cleanly afterwards.
TEST(Fault, CancelAbortsStalledFlow) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  ms::FlowId id = ms::kInvalidFlow;
  engine.schedule_callback(0.0, [&] { id = net.start_flow({link}, 1000.0); });
  engine.schedule_callback(2.0, [&] { net.set_link_capacity(link, 0.0); });
  engine.schedule_callback(4.0, [&] { EXPECT_TRUE(net.cancel_flow(id)); });
  engine.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_EQ(net.stalled_flow_count(), 0u);
  EXPECT_EQ(net.stats().cancelled_flows, 1u);
  EXPECT_NEAR(net.link_bytes_transferred(link), 200.0, 1e-6);
}

TEST(Fault, SetLinkCapacityValidatesArguments) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  EXPECT_THROW(net.set_link_capacity(static_cast<ms::LinkId>(7), 10.0),
               std::out_of_range);
  EXPECT_THROW(net.set_link_capacity(link, -1.0), std::invalid_argument);
}

// Random churn with random capacity changes (including paired sever /
// restore cycles) audited by the full-resolve oracle after every solve.
TEST(Fault, RandomChurnWithCapacityChangesMatchesOracle) {
  mpath::util::Rng rng(4242);
  const int nlinks = 8;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  net.set_self_check(true);
  std::vector<ms::LinkId> links;
  std::vector<double> base;
  for (int l = 0; l < nlinks; ++l) {
    base.push_back(rng.uniform(50.0, 500.0));
    links.push_back(net.add_link({"l" + std::to_string(l), base.back(), 0.0}));
  }
  // 150 random flows over the shared links.
  const int nflows = 150;
  std::vector<double> finishes(static_cast<std::size_t>(nflows), -1.0);
  for (int i = 0; i < nflows; ++i) {
    std::vector<ms::LinkId> route;
    const int hops = 1 + static_cast<int>(rng.uniform(0.0, 2.999));
    for (int h = 0; h < hops; ++h) {
      route.push_back(links[static_cast<std::size_t>(
          rng.uniform_int(0, nlinks - 1))]);
    }
    engine.spawn(delayed_transfer(engine, net, rng.uniform(0.0, 10.0),
                                  std::move(route), rng.uniform(1.0, 2000.0),
                                  finishes[static_cast<std::size_t>(i)]));
  }
  // 40 capacity events; every sever is paired with a restore so no flow
  // stays stalled at the end.
  for (int i = 0; i < 40; ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(0, nlinks - 1));
    const double t = rng.uniform(0.0, 15.0);
    if (rng.uniform(0.0, 1.0) < 0.3) {
      engine.schedule_callback(
          t, [&net, &links, idx] { net.set_link_capacity(links[idx], 0.0); });
      engine.schedule_callback(t + rng.uniform(0.1, 2.0),
                               [&net, &links, &base, idx] {
                                 net.set_link_capacity(links[idx], base[idx]);
                               });
    } else {
      const double factor = rng.uniform(0.1, 1.0);
      engine.schedule_callback(t, [&net, &links, &base, idx, factor] {
        net.set_link_capacity(links[idx], base[idx] * factor);
      });
    }
  }
  engine.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_EQ(net.stalled_flow_count(), 0u);
  EXPECT_GT(net.stats().capacity_changes, 40u);  // 40 events, severs paired
}

// Faults in one component must not spill solver work into the other:
// with two disjoint link pairs, no resolve ever touches all four links.
TEST(Fault, CapacityChangeResolvesOnlyAffectedComponent) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto a0 = net.add_link({"a0", 100.0, 0.0});
  const auto a1 = net.add_link({"a1", 100.0, 0.0});
  const auto b0 = net.add_link({"b0", 100.0, 0.0});
  const auto b1 = net.add_link({"b1", 100.0, 0.0});
  double fa = -1.0, fb = -1.0;
  engine.spawn(timed_transfer(engine, net, {a0, a1}, 400.0, fa));
  // Staggered start: a same-timestamp burst would legitimately resolve both
  // components in one coalesced (full) pass.
  engine.spawn(delayed_transfer(engine, net, 0.5, {b0, b1}, 400.0, fb));
  // Halve component A's bottleneck at t=2: A slows, B is untouched.
  engine.schedule_callback(2.0, [&] { net.set_link_capacity(a0, 50.0); });
  engine.run();
  EXPECT_NEAR(fa, 2.0 + 200.0 / 50.0, 1e-9);
  EXPECT_NEAR(fb, 4.5, 1e-9);
  const auto& st = net.stats();
  EXPECT_EQ(st.full_resolves, 0u);
  EXPECT_LE(st.links_resolved, 2 * st.resolves);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScriptedDegradeAndRestoreUseBaseline) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 200.0, 0.0});
  ms::FaultInjector inj(engine, net);
  inj.degrade_at(1.0, link, 0.25);
  inj.restore_at(2.0, link);
  inj.sever_at(3.0, link);
  inj.restore_at(4.0, link);
  EXPECT_EQ(inj.scheduled_count(), 4u);
  EXPECT_NEAR(inj.baseline(link), 200.0, 1e-12);

  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 1000.0, finish));
  engine.run();

  ASSERT_EQ(inj.applied().size(), 4u);
  EXPECT_NEAR(inj.applied()[0].t, 1.0, 1e-12);
  EXPECT_NEAR(inj.applied()[0].capacity_bps, 50.0, 1e-12);
  EXPECT_NEAR(inj.applied()[1].capacity_bps, 200.0, 1e-12);
  EXPECT_NEAR(inj.applied()[2].capacity_bps, 0.0, 1e-12);
  EXPECT_NEAR(inj.applied()[3].capacity_bps, 200.0, 1e-12);
  // 200 B in [0,1), 50 B in [1,2), 200 B in [2,3), stalled in [3,4),
  // remaining 550 B after t=4 at 200 B/s.
  EXPECT_NEAR(finish, 4.0 + 550.0 / 200.0, 1e-9);
}

TEST(FaultInjector, FlapAlternatesDownAndUp) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  ms::FaultInjector inj(engine, net);
  inj.flap(link, /*first_down=*/1.0, /*down_for=*/0.5, /*up_for=*/0.5,
           /*cycles=*/3);
  EXPECT_EQ(inj.scheduled_count(), 6u);
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 500.0, finish));
  engine.run();
  ASSERT_EQ(inj.applied().size(), 6u);
  for (std::size_t i = 0; i < inj.applied().size(); ++i) {
    EXPECT_NEAR(inj.applied()[i].capacity_bps, i % 2 == 0 ? 0.0 : 100.0,
                1e-12);
  }
  // 100 B by t=1; three 0.5 s outages add 1.5 s total stall.
  EXPECT_NEAR(finish, 5.0 + 1.5, 1e-9);
}

TEST(FaultInjector, RandomPlanIsDeterministicPerSeed) {
  auto run_plan = [](std::uint64_t seed) {
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    std::vector<ms::LinkId> links;
    for (int l = 0; l < 4; ++l) {
      links.push_back(net.add_link({"l" + std::to_string(l), 100.0, 0.0}));
    }
    ms::FaultInjector inj(engine, net);
    ms::FaultInjector::RandomPlanOptions opts;
    opts.faults = 12;
    opts.horizon = 5.0;
    inj.random_plan(links, opts, seed);
    // Keep one long flow per link alive so events always see traffic.
    std::vector<double> finishes(links.size(), -1.0);
    for (std::size_t i = 0; i < links.size(); ++i) {
      engine.spawn(
          timed_transfer(engine, net, {links[i]}, 2000.0, finishes[i]));
    }
    engine.run();
    return inj.applied();
  };
  const auto a = run_plan(11);
  const auto b = run_plan(11);
  const auto c = run_plan(12);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].link, b[i].link);
    EXPECT_NEAR(a[i].t, b[i].t, 1e-12);
    EXPECT_NEAR(a[i].capacity_bps, b[i].capacity_bps, 1e-12);
  }
  // A different seed yields a different schedule (vanishingly unlikely to
  // collide on every event time).
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].link != c[i].link || a[i].t != c[i].t;
  }
  EXPECT_TRUE(differs);
}

// Target selection is utilization-weighted: with one link saturated and the
// rest idle, the busy link (weight idle_weight + 1) must draw far more
// faults than any idle link (weight idle_weight).
TEST(FaultInjector, RandomPlanPrefersUtilizedLinks) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  std::vector<ms::LinkId> links;
  for (int l = 0; l < 4; ++l) {
    links.push_back(net.add_link({"l" + std::to_string(l), 100.0, 0.0}));
  }
  ms::FaultInjector inj(engine, net);
  ms::FaultInjector::RandomPlanOptions opts;
  opts.faults = 60;
  opts.horizon = 5.0;
  opts.sever_probability = 0.0;
  opts.min_factor = 0.5;  // keep the busy link's utilization at 1
  opts.max_factor = 0.5;
  opts.restore_probability = 0.0;  // applied() holds exactly the degrades
  inj.random_plan(links, opts, 17);
  // One flow saturates links[0] for the whole horizon; the others stay idle.
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {links[0]}, 5000.0, finish));
  engine.run();
  ASSERT_EQ(inj.applied().size(), 60u);
  std::vector<int> hits(links.size(), 0);
  for (const auto& a : inj.applied()) {
    ++hits[static_cast<std::size_t>(a.link)];
  }
  for (std::size_t l = 1; l < links.size(); ++l) {
    EXPECT_GT(hits[0], hits[l]) << "idle link " << l << " out-drew the busy"
                                << " one (" << hits[l] << " vs " << hits[0]
                                << ")";
  }
  EXPECT_GT(hits[0], 30);  // expected share is 1.25/2.0 of 60 draws
}

TEST(FaultInjector, ValidatesArguments) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  ms::FaultInjector inj(engine, net);
  EXPECT_THROW(inj.set_capacity_at(0.0, link, -5.0), std::invalid_argument);
  EXPECT_THROW(inj.degrade_at(0.0, link, -0.5), std::invalid_argument);
  engine.schedule_callback(1.0, [&] {
    EXPECT_THROW(inj.set_capacity_at(0.5, link, 10.0), std::invalid_argument);
  });
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 300.0, finish));
  engine.run();
  EXPECT_EQ(inj.applied().size(), 0u);
}

TEST(FaultInjector, EmitsTracerInstants) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  ms::Tracer tracer;
  const auto link = net.add_link({"l", 100.0, 0.0});
  ms::FaultInjector inj(engine, net);
  inj.set_tracer(&tracer);
  inj.degrade_at(1.0, link, 0.5);
  inj.restore_at(2.0, link);
  double finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 400.0, finish));
  engine.run();
  EXPECT_GE(tracer.instant_count(), 2u);
}

// ---------------------------------------------------------------------------
// cancel_flow under solver modes (satellite: cancel tests)
// ---------------------------------------------------------------------------

// Cancel churn under the legacy kFull solver with the oracle active: both
// solver modes must survive cancellation mid-churn.
TEST(FaultCancel, CancelChurnUnderFullSolver) {
  mpath::util::Rng rng(271);
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  net.set_solver_mode(ms::FluidNetwork::SolverMode::kFull);
  net.set_self_check(true);
  std::vector<ms::LinkId> links;
  for (int l = 0; l < 6; ++l) {
    links.push_back(
        net.add_link({"l" + std::to_string(l), rng.uniform(50.0, 300.0), 0.0}));
  }
  std::vector<ms::FlowId> ids(80, ms::kInvalidFlow);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const double bytes = rng.uniform(10.0, 1000.0);
    const double start = rng.uniform(0.0, 5.0);
    engine.schedule_callback(start, [&net, &ids, &links, i, idx, bytes] {
      ids[i] = net.start_flow({links[idx]}, bytes);
    });
    if (rng.uniform(0.0, 1.0) < 0.4) {
      engine.schedule_callback(start + rng.uniform(0.0, 3.0), [&net, &ids, i] {
        (void)net.cancel_flow(ids[i]);
      });
    }
  }
  engine.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_GT(net.stats().cancelled_flows, 0u);
}

// Byte conservation with cancellation: the survivor's full size plus the
// cancelled flow's partial delivery is exactly what the link moved.
TEST(FaultCancel, SurvivorBytesConservedExactly) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  double survivor_finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 600.0, survivor_finish));
  ms::FlowId victim = ms::kInvalidFlow;
  engine.schedule_callback(0.0,
                           [&] { victim = net.start_flow({link}, 600.0); });
  engine.schedule_callback(4.0, [&] { EXPECT_TRUE(net.cancel_flow(victim)); });
  engine.run();
  // 50/50 share for 4 s (200 B each), then the survivor's 400 B at full
  // rate: finish t = 8; link total = 600 + 200.
  EXPECT_NEAR(survivor_finish, 8.0, 1e-9);
  EXPECT_NEAR(net.link_bytes_transferred(link), 800.0, 1e-6);
}

// Cancelling an already-completed flow is a stale-handle no-op.
TEST(FaultCancel, CancelOfCompletedFlowReturnsFalse) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  ms::FlowId id = ms::kInvalidFlow;
  engine.schedule_callback(0.0, [&] { id = net.start_flow({link}, 100.0); });
  engine.schedule_callback(5.0, [&] {
    EXPECT_FALSE(net.cancel_flow(id));  // completed at t=1
  });
  engine.run();
  EXPECT_EQ(net.stats().cancelled_flows, 0u);
}

// ---------------------------------------------------------------------------
// Nightly churn soak (opt-in: MPATH_NIGHTLY_SOAK=1)
// ---------------------------------------------------------------------------

// Tens of thousands of flows over several disjoint components with random
// faults (every sever paired with a restore). Too slow for the default
// suite; run via  MPATH_NIGHTLY_SOAK=1 ./test_sim.
TEST(FaultSoak, NightlyChurnWithRandomFaults) {
  const char* gate = std::getenv("MPATH_NIGHTLY_SOAK");
  if (gate == nullptr || std::string(gate) != "1") {
    GTEST_SKIP() << "set MPATH_NIGHTLY_SOAK=1 to run the churn soak";
  }
  mpath::util::Rng rng(31337);
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  net.set_self_check(false);  // oracle is O(network) per solve — too slow here
  const int ncomponents = 4;
  const int links_per_comp = 6;
  std::vector<std::vector<ms::LinkId>> comps(ncomponents);
  std::vector<std::vector<double>> base(ncomponents);
  for (int c = 0; c < ncomponents; ++c) {
    for (int l = 0; l < links_per_comp; ++l) {
      base[static_cast<std::size_t>(c)].push_back(rng.uniform(50.0, 500.0));
      comps[static_cast<std::size_t>(c)].push_back(net.add_link(
          {"c" + std::to_string(c) + "l" + std::to_string(l),
           base[static_cast<std::size_t>(c)].back(), 0.0}));
    }
  }
  const int nflows = 40000;
  std::vector<double> finishes(static_cast<std::size_t>(nflows), -1.0);
  for (int i = 0; i < nflows; ++i) {
    const auto& pool = comps[static_cast<std::size_t>(
        rng.uniform_int(0, ncomponents - 1))];
    std::vector<ms::LinkId> route;
    const int hops = 1 + static_cast<int>(rng.uniform(0.0, 2.999));
    for (int h = 0; h < hops; ++h) {
      route.push_back(pool[static_cast<std::size_t>(
          rng.uniform_int(0, links_per_comp - 1))]);
    }
    engine.spawn(delayed_transfer(engine, net, rng.uniform(0.0, 100.0),
                                  std::move(route), rng.uniform(1.0, 500.0),
                                  finishes[static_cast<std::size_t>(i)]));
  }
  // 400 utilization-weighted fault events (100 per component) so the soak
  // preferentially hits the links carrying traffic; every fault restores.
  ms::FaultInjector inj(engine, net);
  ms::FaultInjector::RandomPlanOptions opts;
  opts.horizon = 120.0;
  opts.faults = 100;
  opts.min_factor = 0.05;
  opts.max_factor = 1.0;
  opts.sever_probability = 0.25;
  opts.restore_probability = 1.0;
  opts.min_duration = 0.05;
  opts.max_duration = 1.0;
  for (int c = 0; c < ncomponents; ++c) {
    inj.random_plan(comps[static_cast<std::size_t>(c)], opts,
                    31337u + static_cast<std::uint64_t>(c));
  }
  engine.run();
  EXPECT_EQ(inj.applied().size(), 800u);  // every fault paired with a restore
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_EQ(net.stalled_flow_count(), 0u);
  for (double f : finishes) EXPECT_GE(f, 0.0);
  EXPECT_EQ(net.stats().full_resolves, 0u);  // components stay disjoint
}
