#include "mpath/sim/fluid.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ms = mpath::sim;

namespace {

struct Fixture {
  ms::Engine engine;
  ms::FluidNetwork net{engine};
};

// Run one transfer and record completion time.
ms::Task<void> timed_transfer(ms::Engine& e, ms::FluidNetwork& net,
                              std::vector<ms::LinkId> route, double bytes,
                              double& finish) {
  co_await net.transfer(std::move(route), bytes);
  finish = e.now();
}

ms::Task<void> delayed_transfer(ms::Engine& e, ms::FluidNetwork& net,
                                double start, std::vector<ms::LinkId> route,
                                double bytes, double& finish) {
  co_await e.delay(start);
  co_await net.transfer(std::move(route), bytes);
  finish = e.now();
}

}  // namespace

TEST(Fluid, RejectsBadLinkSpecs) {
  Fixture f;
  EXPECT_THROW(f.net.add_link({"zero", 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(f.net.add_link({"neg-lat", 1e9, -1.0}), std::invalid_argument);
}

TEST(Fluid, SingleFlowRunsAtCapacity) {
  Fixture f;
  const auto link = f.net.add_link({"l", 100.0, 0.0});  // 100 B/s
  double finish = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 500.0, finish));
  f.engine.run();
  EXPECT_NEAR(finish, 5.0, 1e-9);
}

TEST(Fluid, LatencyPaidOncePerTraversal) {
  Fixture f;
  const auto a = f.net.add_link({"a", 100.0, 1.0});
  const auto b = f.net.add_link({"b", 100.0, 2.0});
  double finish = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {a, b}, 100.0, finish));
  f.engine.run();
  // 3s of latency, then 1s of streaming at the 100 B/s bottleneck.
  EXPECT_NEAR(finish, 4.0, 1e-9);
}

TEST(Fluid, EmptyRouteAndZeroBytesCompleteInstantly) {
  Fixture f;
  const auto link = f.net.add_link({"l", 100.0, 1.5});
  double f1 = -1, f2 = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {}, 100.0, f1));
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 0.0, f2));
  f.engine.run();
  EXPECT_NEAR(f1, 0.0, 1e-12);
  EXPECT_NEAR(f2, 1.5, 1e-12);  // latency still paid
}

TEST(Fluid, TwoFlowsShareFairly) {
  Fixture f;
  const auto link = f.net.add_link({"l", 100.0, 0.0});
  double f1 = -1, f2 = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 500.0, f1));
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 500.0, f2));
  f.engine.run();
  // Both run at 50 B/s for 10 s.
  EXPECT_NEAR(f1, 10.0, 1e-9);
  EXPECT_NEAR(f2, 10.0, 1e-9);
}

TEST(Fluid, ShortFlowFinishesThenLongFlowSpeedsUp) {
  Fixture f;
  const auto link = f.net.add_link({"l", 100.0, 0.0});
  double short_f = -1, long_f = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 100.0, short_f));
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 500.0, long_f));
  f.engine.run();
  // Shared at 50/50 until the short flow's 100 B done at t=2; the long flow
  // then has 400 B left at 100 B/s -> t = 2 + 4 = 6.
  EXPECT_NEAR(short_f, 2.0, 1e-9);
  EXPECT_NEAR(long_f, 6.0, 1e-9);
}

TEST(Fluid, LateArrivalReducesRate) {
  Fixture f;
  const auto link = f.net.add_link({"l", 100.0, 0.0});
  double f1 = -1, f2 = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {link}, 400.0, f1));
  f.engine.spawn(
      delayed_transfer(f.engine, f.net, 2.0, {link}, 400.0, f2));
  f.engine.run();
  // Flow 1: 200 B alone (t=0..2), then shares: 200 B at 50 B/s -> t=6.
  EXPECT_NEAR(f1, 6.0, 1e-9);
  // Flow 2: 200 B at 50 B/s (t=2..6), then 200 B at 100 B/s -> t=8.
  EXPECT_NEAR(f2, 8.0, 1e-9);
}

TEST(Fluid, MaxMinRespectsPerFlowBottleneck) {
  // Flow A uses only the fat link; flow B traverses fat + thin. B is
  // limited to 10 by the thin link; A gets the leftover 90 (max-min).
  Fixture f;
  const auto fat = f.net.add_link({"fat", 100.0, 0.0});
  const auto thin = f.net.add_link({"thin", 10.0, 0.0});
  double fa = -1, fb = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {fat}, 900.0, fa));
  f.engine.spawn(timed_transfer(f.engine, f.net, {fat, thin}, 100.0, fb));
  f.engine.run();
  EXPECT_NEAR(fb, 10.0, 1e-9);
  EXPECT_NEAR(fa, 10.0, 1e-9);  // 900 B at 90 B/s = 10 s
}

TEST(Fluid, DoubleTraversalConsumesTwoShares) {
  // A route crossing the same link twice (staging write+read through one
  // memory channel) gets capacity/2.
  Fixture f;
  const auto chan = f.net.add_link({"memchan", 100.0, 0.0});
  double finish = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {chan, chan}, 100.0, finish));
  f.engine.run();
  EXPECT_NEAR(finish, 2.0, 1e-9);
}

TEST(Fluid, BytesTransferredAccounting) {
  Fixture f;
  const auto a = f.net.add_link({"a", 100.0, 0.0});
  const auto b = f.net.add_link({"b", 50.0, 0.0});
  double finish = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {a, b}, 200.0, finish));
  f.engine.run();
  EXPECT_NEAR(f.net.link_bytes_transferred(a), 200.0, 1e-6);
  EXPECT_NEAR(f.net.link_bytes_transferred(b), 200.0, 1e-6);
  EXPECT_EQ(f.net.active_flow_count(), 0u);
}

TEST(Fluid, ConservationAcrossManyRandomFlows) {
  // Property: with N flows over shared links, total delivered bytes equal
  // the sum of requested bytes, and no link ever exceeds capacity (verified
  // implicitly by completion times >= bytes/capacity lower bound).
  Fixture f;
  const auto l0 = f.net.add_link({"l0", 200.0, 0.0});
  const auto l1 = f.net.add_link({"l1", 120.0, 0.0});
  const auto l2 = f.net.add_link({"l2", 80.0, 0.0});
  struct Spec {
    std::vector<ms::LinkId> route;
    double bytes;
    double start;
  };
  const std::vector<Spec> specs = {
      {{l0}, 300, 0.0},        {{l0, l1}, 240, 0.5},
      {{l1, l2}, 160, 1.0},    {{l2}, 80, 0.25},
      {{l0, l1, l2}, 400, 0.0}, {{l1}, 500, 2.0},
  };
  std::vector<double> finishes(specs.size(), -1.0);
  double total_bytes = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    total_bytes += specs[i].bytes;
    f.engine.spawn(delayed_transfer(f.engine, f.net, specs[i].start,
                                    specs[i].route, specs[i].bytes,
                                    finishes[i]));
  }
  f.engine.run();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_GT(finishes[i], 0.0) << "flow " << i << " never finished";
    // No flow can beat its serial lower bound.
    double cap = 1e18;
    for (auto l : specs[i].route) {
      cap = std::min(cap, f.net.link(l).capacity_bps);
    }
    EXPECT_GE(finishes[i] + 1e-9, specs[i].start + specs[i].bytes / cap);
  }
  const double sum_delivered = f.net.link_bytes_transferred(l0) +
                               f.net.link_bytes_transferred(l1) +
                               f.net.link_bytes_transferred(l2);
  // Each flow contributes bytes * route-length to the per-link totals.
  double expected = 0;
  for (const auto& s : specs) {
    expected += s.bytes * static_cast<double>(s.route.size());
  }
  EXPECT_NEAR(sum_delivered, expected, 1e-3);
}

TEST(Fluid, SubByteFlowStreamsAtAllocatedRate) {
  // Regression: the old absolute 1e-3 B completion epsilon made legitimate
  // sub-millibyte control/ack messages complete instantly at rate 0; the
  // epsilon is now relative to the flow's size.
  Fixture f;
  const auto a = f.net.add_link({"slow-a", 0.5, 0.0});  // 0.5 B/s
  const auto b = f.net.add_link({"slow-b", 0.5, 0.0});
  double one_byte = -1, sub_milli = -1;
  f.engine.spawn(timed_transfer(f.engine, f.net, {a}, 1.0, one_byte));
  f.engine.spawn(timed_transfer(f.engine, f.net, {b}, 1e-4, sub_milli));
  f.engine.run();
  EXPECT_NEAR(one_byte, 2.0, 1e-9);      // 1 B at 0.5 B/s
  EXPECT_NEAR(sub_milli, 2e-4, 1e-12);   // 1e-4 B at 0.5 B/s
}

TEST(Fluid, ManySmallFlowsDrainCompletely) {
  Fixture f;
  const auto link = f.net.add_link({"l", 1000.0, 1e-6});
  std::vector<double> finishes(64, -1.0);
  for (int i = 0; i < 64; ++i) {
    f.engine.spawn(delayed_transfer(f.engine, f.net, 0.001 * i, {link}, 10.0,
                                    finishes[i]));
  }
  f.engine.run();
  for (double t : finishes) EXPECT_GT(t, 0.0);
  EXPECT_EQ(f.net.active_flow_count(), 0u);
  EXPECT_NEAR(f.net.link_bytes_transferred(link), 640.0, 1e-3);
}
