#include "mpath/sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ms = mpath::sim;

namespace {

ms::Task<void> hold_permit(ms::Engine& e, ms::Semaphore& sem, double dur,
                           std::vector<std::pair<int, double>>& log, int id) {
  co_await sem.acquire();
  log.emplace_back(id, e.now());
  co_await e.delay(dur);
  sem.release();
}

}  // namespace

TEST(Semaphore, LimitsConcurrency) {
  ms::Engine e;
  ms::Semaphore sem(e, 2);
  std::vector<std::pair<int, double>> starts;
  for (int i = 0; i < 4; ++i) {
    e.spawn(hold_permit(e, sem, 1.0, starts, i));
  }
  e.run();
  ASSERT_EQ(starts.size(), 4u);
  // Two start immediately, two wait for releases at t=1.
  EXPECT_DOUBLE_EQ(starts[0].second, 0.0);
  EXPECT_DOUBLE_EQ(starts[1].second, 0.0);
  EXPECT_DOUBLE_EQ(starts[2].second, 1.0);
  EXPECT_DOUBLE_EQ(starts[3].second, 1.0);
}

TEST(Semaphore, FifoWakeupOrder) {
  ms::Engine e;
  ms::Semaphore sem(e, 1);
  std::vector<std::pair<int, double>> starts;
  for (int i = 0; i < 3; ++i) {
    e.spawn(hold_permit(e, sem, 1.0, starts, i));
  }
  e.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0].first, 0);
  EXPECT_EQ(starts[1].first, 1);
  EXPECT_EQ(starts[2].first, 2);
}

TEST(Semaphore, AvailableAndWaitingCounts) {
  ms::Engine e;
  ms::Semaphore sem(e, 3);
  EXPECT_EQ(sem.available(), 3u);
  e.spawn([](ms::Semaphore& s) -> ms::Task<void> {
    co_await s.acquire();
  }(sem));
  e.run();
  EXPECT_EQ(sem.available(), 2u);
  EXPECT_EQ(sem.waiting(), 0u);
}

TEST(Permit, ReleasesOnScopeExit) {
  ms::Engine e;
  ms::Semaphore sem(e, 1);
  e.spawn([](ms::Engine& eng, ms::Semaphore& s) -> ms::Task<void> {
    {
      co_await s.acquire();
      ms::Permit permit(s);
      co_await eng.delay(1.0);
    }
    EXPECT_EQ(s.available(), 1u);
  }(e, sem));
  e.run();
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Mailbox, DeliversInFifoOrder) {
  ms::Engine e;
  ms::Mailbox<int> box(e);
  std::vector<int> got;
  e.spawn([](ms::Mailbox<int>& b, std::vector<int>& out) -> ms::Task<void> {
    for (int i = 0; i < 3; ++i) {
      out.push_back(co_await b.receive());
    }
  }(box, got));
  e.spawn([](ms::Engine& eng, ms::Mailbox<int>& b) -> ms::Task<void> {
    b.push(1);
    co_await eng.delay(1.0);
    b.push(2);
    b.push(3);
  }(e, box));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, LateReceiverCannotStealPromisedItem) {
  // Receiver A waits; a push promises it the item; receiver B arriving in
  // the same timestep must queue behind, not steal.
  ms::Engine e;
  ms::Mailbox<std::string> box(e);
  std::string got_a, got_b;
  e.spawn([](ms::Mailbox<std::string>& b, std::string& out) -> ms::Task<void> {
    out = co_await b.receive();
  }(box, got_a), "A");
  e.spawn([](ms::Engine& eng, ms::Mailbox<std::string>& b,
             std::string& out) -> ms::Task<void> {
    co_await eng.delay(1.0);
    b.push("first");
    // B starts receiving in the same timestep as the push.
    out = co_await b.receive();
  }(e, box, got_b), "B");
  e.spawn([](ms::Engine& eng, ms::Mailbox<std::string>& b) -> ms::Task<void> {
    co_await eng.delay(2.0);
    b.push("second");
  }(e, box), "C");
  e.run();
  EXPECT_EQ(got_a, "first");
  EXPECT_EQ(got_b, "second");
}

TEST(Mailbox, SizeAccounting) {
  ms::Engine e;
  ms::Mailbox<int> box(e);
  box.push(7);
  box.push(8);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_FALSE(box.empty());
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  ms::Engine e;
  ms::Barrier barrier(e, 3);
  std::vector<double> release_times;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](ms::Engine& eng, ms::Barrier& b, std::vector<double>& out,
               double arrive_at) -> ms::Task<void> {
      co_await eng.delay(arrive_at);
      co_await b.arrive();
      out.push_back(eng.now());
    }(e, barrier, release_times, static_cast<double>(i)));
  }
  e.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (double t : release_times) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Barrier, IsReusable) {
  ms::Engine e;
  ms::Barrier barrier(e, 2);
  std::vector<double> times;
  for (int i = 0; i < 2; ++i) {
    e.spawn([](ms::Engine& eng, ms::Barrier& b, std::vector<double>& out,
               int id) -> ms::Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await eng.delay(id == 0 ? 1.0 : 2.0);
        co_await b.arrive();
        if (id == 0) out.push_back(eng.now());
      }
    }(e, barrier, times, i));
  }
  e.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 4.0);
  EXPECT_DOUBLE_EQ(times[2], 6.0);
}

TEST(Latch, WaitAfterFireDoesNotBlock) {
  ms::Engine e;
  ms::Latch latch(e);
  latch.fire();
  bool reached = false;
  e.spawn([](ms::Latch& l, bool& flag) -> ms::Task<void> {
    co_await l.wait();
    flag = true;
  }(latch, reached));
  e.run();
  EXPECT_TRUE(reached);
}

TEST(Latch, DoubleFireIsIdempotent) {
  ms::Engine e;
  ms::Latch latch(e);
  int wakeups = 0;
  e.spawn([](ms::Latch& l, int& n) -> ms::Task<void> {
    co_await l.wait();
    ++n;
  }(latch, wakeups));
  e.schedule_callback(1.0, [&] {
    latch.fire();
    latch.fire();
  });
  e.run();
  EXPECT_EQ(wakeups, 1);
}
