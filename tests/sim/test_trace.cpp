#include "mpath/sim/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "mpath/pipeline/engine.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

TEST(Tracer, CollectsSpansAndInstants) {
  ms::Tracer tracer;
  tracer.add_span("track-a", "work", 0.0, 1.5e-6);
  tracer.add_span("track-b", "other", 1.0e-6, 2.0e-6);
  tracer.add_instant("track-a", "mark", 0.5e-6);
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.instant_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Tracer, CollectsCounters) {
  ms::Tracer tracer;
  tracer.add_counter("fluid", "rate_resolves", 0.0, 1.0);
  tracer.add_counter("fluid", "rate_resolves", 1e-6, 2.0);
  EXPECT_EQ(tracer.counter_count(), 2u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("rate_resolves"), std::string::npos);
  EXPECT_NE(json.find("\"value\":2.000000"), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.counter_count(), 0u);
}

TEST(Tracer, FluidNetworkEmitsResolveCounters) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  ms::Tracer tracer;
  net.set_tracer(&tracer);
  const auto link = net.add_link({"l", 100.0, 0.0});
  engine.spawn([](ms::FluidNetwork& n, ms::LinkId l) -> ms::Task<void> {
    std::vector<ms::LinkId> route{l};
    co_await n.transfer(std::move(route), 100.0);
  }(net, link), "counted");
  engine.run();
  // Each resolve emits rate_resolves + resolved_flows samples.
  EXPECT_GE(tracer.counter_count(), 2u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("rate_resolves"), std::string::npos);
  EXPECT_NE(json.find("resolved_flows"), std::string::npos);
}

TEST(Tracer, RejectsNegativeDuration) {
  ms::Tracer tracer;
  EXPECT_THROW(tracer.add_span("t", "x", 2.0, 1.0), std::invalid_argument);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  ms::Tracer tracer;
  tracer.add_span("stream0 (gpu0)", "copy 4MB \"quoted\"", 0.0, 1e-3);
  tracer.add_instant("stream0 (gpu0)", "fire", 5e-4);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Microsecond export: 1e-3 s span -> dur 1000 us.
  EXPECT_NE(json.find("\"dur\":1000.000000"), std::string::npos);
}

TEST(Tracer, RuntimeEmitsCopySpans) {
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  mg::GpuRuntime rt(sys, engine, net);
  ms::Tracer tracer;
  rt.set_tracer(&tracer);
  const auto gpus = sys.topology.gpus();

  mp::PipelineEngine pipe(rt);
  mg::DeviceBuffer src(gpus[0], 8_MiB), dst(gpus[1], 8_MiB);
  engine.spawn([](mp::PipelineEngine& pe, mg::DeviceBuffer& d,
                  const mg::DeviceBuffer& s,
                  std::vector<mt::DeviceId> g) -> ms::Task<void> {
    mp::ExecPlan plan{
        mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 4_MiB, 1},
        mp::ExecPath{{mt::PathKind::GpuStaged, g[2]}, 4_MiB, 4}};
    co_await pe.execute(d, 0, s, 0, std::move(plan));
  }(pipe, dst, src, gpus), "traced");
  engine.run();

  // 1 direct copy + 4 chunks x 2 hops = 9 copy spans.
  EXPECT_EQ(tracer.span_count(), 9u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("gpu0->gpu2"), std::string::npos);
  EXPECT_NE(json.find("gpu2->gpu1"), std::string::npos);
  EXPECT_NE(json.find("gpu0->gpu1"), std::string::npos);
  // Detach: no further spans recorded.
  rt.set_tracer(nullptr);
  const auto before = tracer.span_count();
  mg::DeviceBuffer src2(gpus[0], 64), dst2(gpus[1], 64);
  const auto stream = rt.create_stream(gpus[0]);
  rt.memcpy_async(dst2, 0, src2, 0, 64, stream);
  engine.spawn([](mg::GpuRuntime& r, mg::StreamId st) -> ms::Task<void> {
    co_await r.synchronize(st);
  }(rt, stream), "untraced");
  engine.run();
  EXPECT_EQ(tracer.span_count(), before);
}

TEST(Tracer, FileExportRoundTrips) {
  ms::Tracer tracer;
  tracer.add_span("t", "s", 0, 1e-6);
  const std::string path = "/tmp/mpath_trace_test.json";
  tracer.write_chrome_trace(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_EQ(content, tracer.chrome_trace_json());
}

TEST(Tracer, EngineEmitsQueueDepthCounter) {
  ms::Engine engine;
  ms::Tracer tracer;
  engine.set_tracer(&tracer, /*sample_stride=*/2);
  for (int i = 0; i < 10; ++i) {
    engine.schedule_callback(1e-6 * i, [] {});
  }
  engine.run();
  // 10 events, stride 2 -> 5 samples on track "engine".
  EXPECT_EQ(tracer.counter_count(), 5u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("event_queue_depth"), std::string::npos);
  // Detach: no more samples.
  engine.set_tracer(nullptr);
  engine.schedule_callback(1.0, [] {});
  engine.run();
  EXPECT_EQ(tracer.counter_count(), 5u);
}

TEST(Tracer, RuntimeEmitsStreamOccupancyCounter) {
  auto sys = mt::make_beluga();
  sys.costs.jitter_rel = 0;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  mg::GpuRuntime rt(sys, engine, net);
  ms::Tracer tracer;
  rt.set_tracer(&tracer);
  rt.set_counter_stride(1);  // sample on every enqueued op
  const auto gpus = sys.topology.gpus();
  mg::DeviceBuffer src(gpus[0], 1_MiB), dst(gpus[1], 1_MiB);
  const auto stream = rt.create_stream(gpus[0]);
  rt.memcpy_async(dst, 0, src, 0, 1_MiB, stream);
  rt.memcpy_async(dst, 0, src, 0, 1_MiB, stream);
  engine.spawn([](mg::GpuRuntime& r, mg::StreamId st) -> ms::Task<void> {
    co_await r.synchronize(st);
  }(rt, stream), "sync");
  engine.run();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("streams_busy"), std::string::npos);
  // The second enqueue saw the first copy still outstanding.
  EXPECT_NE(json.find("\"value\":1.000000"), std::string::npos);
}
