// Property tests for the incremental max-min solver: randomized flow churn
// (start / cancel / complete) over shared-link topologies, with the
// retained full-resolve water-filling oracle checking every incremental
// solve, plus solver-mode equivalence of completion times.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mpath/sim/fault.hpp"
#include "mpath/sim/fluid.hpp"
#include "mpath/util/rng.hpp"

namespace ms = mpath::sim;

namespace {

struct FlowSpec {
  std::vector<ms::LinkId> route;
  double bytes;
  double start;
  double cancel_after;  // <0: never cancelled
};

// Deterministic random churn workload over `nlinks` shared links.
std::vector<FlowSpec> make_workload(mpath::util::Rng& rng, int nlinks,
                                    int nflows, bool with_cancels) {
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<std::size_t>(nflows));
  for (int i = 0; i < nflows; ++i) {
    FlowSpec s;
    const int hops = 1 + static_cast<int>(rng.uniform(0.0, 2.999));
    for (int h = 0; h < hops; ++h) {
      s.route.push_back(
          static_cast<ms::LinkId>(rng.uniform(0.0, nlinks - 0.001)));
    }
    if (rng.uniform(0.0, 1.0) < 0.15) {
      s.route.push_back(s.route.front());  // double traversal
    }
    s.bytes = rng.uniform(0.5, 5000.0);
    s.start = rng.uniform(0.0, 10.0);
    s.cancel_after = (with_cancels && rng.uniform(0.0, 1.0) < 0.3)
                         ? rng.uniform(0.0, 20.0)
                         : -1.0;
    specs.push_back(std::move(s));
  }
  return specs;
}

ms::Task<void> timed_transfer(ms::Engine& e, ms::FluidNetwork& net,
                              std::vector<ms::LinkId> route, double bytes,
                              double& finish) {
  co_await net.transfer(std::move(route), bytes);
  finish = e.now();
}

ms::Task<void> delayed_transfer(ms::Engine& e, ms::FluidNetwork& net,
                                double start, std::vector<ms::LinkId> route,
                                double bytes, double& finish) {
  co_await e.delay(start);
  co_await net.transfer(std::move(route), bytes);
  finish = e.now();
}

}  // namespace

// Hundreds of randomly routed flows churn over shared links while the
// full-resolve oracle audits every incremental solve; afterwards per-link
// byte accounting must balance exactly against route multiplicities.
TEST(FluidChurn, RandomChurnMatchesOracleAndConservesBytes) {
  mpath::util::Rng rng(1234);
  const int nlinks = 10;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  net.set_self_check(true);  // oracle audit: throws std::logic_error on drift
  std::vector<ms::LinkId> links;
  for (int l = 0; l < nlinks; ++l) {
    links.push_back(net.add_link({"l" + std::to_string(l),
                                  rng.uniform(50.0, 500.0), 0.0}));
  }
  const auto specs = make_workload(rng, nlinks, 300, /*with_cancels=*/false);
  std::vector<double> finishes(specs.size(), -1.0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    engine.spawn(delayed_transfer(engine, net, specs[i].start, specs[i].route,
                                  specs[i].bytes, finishes[i]));
  }
  engine.run();

  EXPECT_EQ(net.active_flow_count(), 0u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_GT(finishes[i], 0.0) << "flow " << i << " never finished";
    double cap = 1e18;
    for (auto l : specs[i].route) {
      cap = std::min(cap, net.link(l).capacity_bps);
    }
    // No flow beats its serial lower bound (implicit capacity check).
    EXPECT_GE(finishes[i] + 1e-9, specs[i].start + specs[i].bytes / cap);
  }
  // Conservation: every flow contributes bytes once per route traversal.
  double expected = 0.0;
  for (const auto& s : specs) {
    expected += s.bytes * static_cast<double>(s.route.size());
  }
  double delivered = 0.0;
  for (auto l : links) delivered += net.link_bytes_transferred(l);
  EXPECT_NEAR(delivered / expected, 1.0, 1e-9);
  EXPECT_GT(net.stats().resolves, 0u);
  EXPECT_LT(net.stats().resolves, net.stats().resolve_requests +
                                      net.stats().timers_fired + 1);
}

// Same churn with ~30% of flows cancelled mid-flight: handles must
// invalidate, cancelled bytes must not be double-counted, and the oracle
// must still agree after every add/remove.
TEST(FluidChurn, CancelChurnMatchesOracle) {
  mpath::util::Rng rng(99);
  const int nlinks = 8;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  net.set_self_check(true);
  std::vector<ms::LinkId> links;
  for (int l = 0; l < nlinks; ++l) {
    links.push_back(net.add_link({"l" + std::to_string(l),
                                  rng.uniform(50.0, 500.0), 0.0}));
  }
  const auto specs = make_workload(rng, nlinks, 200, /*with_cancels=*/true);
  std::vector<ms::FlowId> ids(specs.size(), ms::kInvalidFlow);
  int cancels_attempted = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    engine.schedule_callback(specs[i].start, [&net, &ids, &specs, i] {
      ids[i] = net.start_flow(specs[i].route, specs[i].bytes);
    });
    if (specs[i].cancel_after >= 0.0) {
      ++cancels_attempted;
      engine.schedule_callback(specs[i].start + specs[i].cancel_after,
                               [&net, &ids, i] {
        (void)net.cancel_flow(ids[i]);  // may race completion: both fine
      });
    }
  }
  engine.run();

  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_GT(cancels_attempted, 10);
  // Cancelled flows deliver at most their size; totals cannot exceed the
  // all-completed sum.
  double max_expected = 0.0;
  for (const auto& s : specs) {
    max_expected += s.bytes * static_cast<double>(s.route.size());
  }
  double delivered = 0.0;
  for (auto l : links) delivered += net.link_bytes_transferred(l);
  EXPECT_LE(delivered, max_expected * (1.0 + 1e-9));
  EXPECT_GT(delivered, 0.0);
  // All handles are stale afterwards.
  for (ms::FlowId id : ids) EXPECT_FALSE(net.cancel_flow(id));
}

// The incremental solver must reproduce the legacy eager full solver's
// completion times bit-for-bit (within 1e-9 s) on an identical workload.
TEST(FluidChurn, ModesProduceIdenticalCompletionTimes) {
  mpath::util::Rng rng(777);
  const int nlinks = 6;
  const auto specs = make_workload(rng, nlinks, 150, /*with_cancels=*/false);
  auto run_mode = [&](ms::FluidNetwork::SolverMode mode) {
    mpath::util::Rng cap_rng(42);
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode);
    for (int l = 0; l < nlinks; ++l) {
      net.add_link({"l" + std::to_string(l), cap_rng.uniform(50.0, 500.0),
                    1e-5 * l});
    }
    std::vector<double> finishes(specs.size(), -1.0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      engine.spawn(delayed_transfer(engine, net, specs[i].start,
                                    specs[i].route, specs[i].bytes,
                                    finishes[i]));
    }
    engine.run();
    return finishes;
  };
  const auto full = run_mode(ms::FluidNetwork::SolverMode::kFull);
  const auto incr = run_mode(ms::FluidNetwork::SolverMode::kIncremental);
  ASSERT_EQ(full.size(), incr.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(full[i], incr[i], 1e-9) << "flow " << i;
  }
}

// Exact-tie workload: symmetric power-of-two capacities make every link
// bottleneck at exactly the same share, so the heap's (share, LinkId)
// tie-break must mirror the oracle's ascending-id scan — the self-check
// audits every solve. Completion times must match across solver modes
// bit-for-bit (EXPECT_EQ, not NEAR: exact arithmetic, no tolerance).
TEST(FluidChurn, ExactTiesResolveIdenticallyAcrossModes) {
  auto run_mode = [](ms::FluidNetwork::SolverMode mode) {
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode);
    net.set_self_check(true);
    const int nlinks = 8;
    std::vector<ms::LinkId> links;
    for (int l = 0; l < nlinks; ++l) {
      links.push_back(net.add_link({"l" + std::to_string(l), 128.0, 0.0}));
    }
    std::vector<double> finishes(3 * nlinks, -1.0);
    for (int i = 0; i < nlinks; ++i) {
      // Ring flow over a link pair, a single-link flow, and a delayed
      // second wave — all sizes powers of two so shares tie exactly.
      engine.spawn(timed_transfer(engine, net,
                                  {links[static_cast<std::size_t>(i)],
                                   links[static_cast<std::size_t>(
                                       (i + 1) % nlinks)]},
                                  1024.0, finishes[static_cast<std::size_t>(
                                              3 * i)]));
      engine.spawn(timed_transfer(engine, net,
                                  {links[static_cast<std::size_t>(i)]},
                                  2048.0, finishes[static_cast<std::size_t>(
                                              3 * i + 1)]));
      engine.spawn(delayed_transfer(engine, net, 8.0,
                                    {links[static_cast<std::size_t>(i)]},
                                    512.0, finishes[static_cast<std::size_t>(
                                               3 * i + 2)]));
    }
    engine.run();
    return finishes;
  };
  const auto full = run_mode(ms::FluidNetwork::SolverMode::kFull);
  const auto incr = run_mode(ms::FluidNetwork::SolverMode::kIncremental);
  ASSERT_EQ(full.size(), incr.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_GT(incr[i], 0.0) << "flow " << i << " never finished";
    EXPECT_EQ(full[i], incr[i]) << "flow " << i;
  }
}

// Same cross-mode equivalence under a seeded random fault plan: capacity
// churn exercises the heap's lazy-invalidation path (stale keys from
// freeze-time decrements), and both solver modes must still agree. Also
// pins down that the heap actually ran and lazily reinserted stale keys.
TEST(FluidChurn, ModesAgreeUnderFaultPlan) {
  mpath::util::Rng rng(4242);
  const int nlinks = 6;
  const auto specs = make_workload(rng, nlinks, 150, /*with_cancels=*/false);
  auto run_mode = [&](ms::FluidNetwork::SolverMode mode,
                      ms::FluidNetwork::SolverStats& stats_out) {
    mpath::util::Rng cap_rng(42);
    ms::Engine engine;
    ms::FluidNetwork net(engine);
    net.set_solver_mode(mode);
    std::vector<ms::LinkId> links;
    for (int l = 0; l < nlinks; ++l) {
      links.push_back(net.add_link(
          {"l" + std::to_string(l), cap_rng.uniform(50.0, 500.0), 1e-5 * l}));
    }
    ms::FaultInjector inj(engine, net);
    ms::FaultInjector::RandomPlanOptions opts;
    opts.faults = 16;
    opts.horizon = 20.0;
    opts.min_factor = 0.1;
    opts.max_factor = 0.8;
    opts.restore_probability = 1.0;  // flows must still drain
    inj.random_plan(links, opts, 7);
    std::vector<double> finishes(specs.size(), -1.0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      engine.spawn(delayed_transfer(engine, net, specs[i].start,
                                    specs[i].route, specs[i].bytes,
                                    finishes[i]));
    }
    engine.run();
    stats_out = net.stats();
    return finishes;
  };
  ms::FluidNetwork::SolverStats full_stats{}, incr_stats{};
  const auto full = run_mode(ms::FluidNetwork::SolverMode::kFull, full_stats);
  const auto incr =
      run_mode(ms::FluidNetwork::SolverMode::kIncremental, incr_stats);
  ASSERT_EQ(full.size(), incr.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_GT(incr[i], 0.0) << "flow " << i << " never finished";
    EXPECT_NEAR(full[i], incr[i], 1e-9) << "flow " << i;
  }
  // Both modes run the heap water-filler (kFull additionally re-solves
  // everything eagerly); capacity churn must have forced lazy reinserts.
  EXPECT_GT(incr_stats.heap_pushes, 0u);
  EXPECT_GT(incr_stats.heap_reinserts, 0u);
  EXPECT_GT(full_stats.heap_pushes, incr_stats.heap_pushes);
}

// A same-timestamp burst of starts (and later of completions) must share
// one rate re-solve instead of paying one per flow.
TEST(FluidChurn, SameTimestampBurstsCoalesceIntoOneResolve) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  const int n = 32;
  std::vector<double> finishes(n, -1.0);
  for (int i = 0; i < n; ++i) {
    engine.spawn(
        timed_transfer(engine, net, {link}, 100.0, finishes[i]));
  }
  engine.run();
  // All start at t=0 and, being identical, all complete at t=32 together.
  for (double f : finishes) EXPECT_NEAR(f, 32.0, 1e-9);
  // One solve for the start burst, one for the completion burst (plus at
  // most one settling pass) — not one per flow.
  EXPECT_LE(net.stats().resolves, 3u);
  EXPECT_GE(net.stats().coalesced, static_cast<std::uint64_t>(n) - 2);
  EXPECT_EQ(net.stats().resolve_requests, static_cast<std::uint64_t>(n) + 1);
}

// Disjoint components: churn on one pair of links must not grow the
// resolve component beyond that pair.
TEST(FluidChurn, DisjointComponentsStayLocal) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto a0 = net.add_link({"a0", 100.0, 0.0});
  const auto a1 = net.add_link({"a1", 100.0, 0.0});
  const auto b0 = net.add_link({"b0", 100.0, 0.0});
  const auto b1 = net.add_link({"b1", 100.0, 0.0});
  double fa = -1.0, fb = -1.0;
  engine.spawn(timed_transfer(engine, net, {a0, a1}, 400.0, fa));
  engine.spawn(delayed_transfer(engine, net, 1.0, {b0, b1}, 100.0, fb));
  engine.run();
  EXPECT_NEAR(fa, 4.0, 1e-9);
  EXPECT_NEAR(fb, 2.0, 1e-9);
  // Each resolve touched only one two-link component, never all four.
  const auto& st = net.stats();
  EXPECT_EQ(st.full_resolves, 0u);
  EXPECT_LE(st.links_resolved, 2 * st.resolves);
}

// start_flow/cancel_flow basics: partial delivery is accounted, the latch
// fires, and rates of surviving flows rise after the cancel.
TEST(FluidChurn, CancelReleasesBandwidthAndAccountsPartialBytes) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  double other_finish = -1.0;
  engine.spawn(timed_transfer(engine, net, {link}, 400.0, other_finish));
  ms::FlowId id = ms::kInvalidFlow;
  engine.schedule_callback(0.0, [&] {
    id = net.start_flow({link}, 1000.0);
  });
  engine.schedule_callback(2.0, [&] { EXPECT_TRUE(net.cancel_flow(id)); });
  engine.run();
  // Shared 50/50 for 2 s (other delivers 100 B), then the survivor runs at
  // full rate: 300 B at 100 B/s -> t = 5.
  EXPECT_NEAR(other_finish, 5.0, 1e-9);
  // Link moved 400 (completed) + 100 (cancelled partial) bytes.
  EXPECT_NEAR(net.link_bytes_transferred(link), 500.0, 1e-6);
  EXPECT_EQ(net.active_flow_count(), 0u);
}

TEST(FluidChurn, StartFlowValidatesArguments) {
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  const auto link = net.add_link({"l", 100.0, 0.0});
  EXPECT_THROW((void)net.start_flow({}, 10.0), std::invalid_argument);
  EXPECT_THROW((void)net.start_flow({link}, 0.0), std::invalid_argument);
  EXPECT_THROW((void)net.start_flow({static_cast<ms::LinkId>(99)}, 10.0),
               std::invalid_argument);
  EXPECT_FALSE(net.cancel_flow(ms::kInvalidFlow));
}
