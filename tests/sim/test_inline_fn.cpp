#include "mpath/sim/inline_fn.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace ms = mpath::sim;

TEST(InlineFn, InvokesCapturedLambda) {
  int hits = 0;
  ms::InlineFn<void()> fn([&hits] { ++hits; });
  ASSERT_TRUE(bool(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, ForwardsArgumentsAndReturn) {
  ms::InlineFn<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  ms::InlineFn<void()> a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  ms::InlineFn<void()> b(std::move(a));
  EXPECT_FALSE(bool(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(InlineFn, DestroysCaptureOnReset) {
  auto counter = std::make_shared<int>(0);
  ms::InlineFn<void()> fn([counter] {});
  EXPECT_EQ(counter.use_count(), 2);
  fn.reset();
  EXPECT_FALSE(bool(fn));
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFn, MoveAssignReplacesAndDestroysOld) {
  auto old_capture = std::make_shared<int>(0);
  ms::InlineFn<void()> fn([old_capture] {});
  EXPECT_EQ(old_capture.use_count(), 2);
  int hits = 0;
  fn = ms::InlineFn<void()>([&hits] { ++hits; });
  EXPECT_EQ(old_capture.use_count(), 1);  // old capture destroyed
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, CapturesUpToTheSboBudget) {
  // Exactly at the default 64-byte budget: must compile and run inline.
  struct Big {
    std::uint64_t words[8];
  };
  Big big{};
  big.words[7] = 42;
  ms::InlineFn<std::uint64_t()> fn([big] { return big.words[7]; });
  EXPECT_EQ(fn(), 42u);
  // Captures beyond the budget are a compile error by design (static_assert
  // in InlineFn), so there is nothing to test at runtime.
}
