#include "mpath/sim/engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace ms = mpath::sim;

namespace {

ms::Task<void> record_at(ms::Engine& e, double dt, std::vector<double>& log) {
  co_await e.delay(dt);
  log.push_back(e.now());
}

ms::Task<int> answer(ms::Engine& e) {
  co_await e.delay(1.0);
  co_return 42;
}

ms::Task<void> chain(ms::Engine& e, std::vector<double>& log) {
  const int v = co_await answer(e);
  EXPECT_EQ(v, 42);
  log.push_back(e.now());
  co_await e.delay(0.5);
  log.push_back(e.now());
}

}  // namespace

TEST(Engine, TimeStartsAtZero) {
  ms::Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Engine, DelayAdvancesVirtualClock) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(record_at(e, 2.5, log));
  e.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, EventsFireInTimeOrder) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(record_at(e, 3.0, log));
  e.spawn(record_at(e, 1.0, log));
  e.spawn(record_at(e, 2.0, log));
  e.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 2.0);
  EXPECT_DOUBLE_EQ(log[2], 3.0);
}

TEST(Engine, TiesBreakInSpawnOrder) {
  ms::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.spawn([](ms::Engine& eng, std::vector<int>& ord,
               int id) -> ms::Task<void> {
      co_await eng.delay(1.0);
      ord.push_back(id);
    }(e, order, i));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedTasksReturnValues) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(chain(e, log));
  e.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 1.5);
}

TEST(Engine, JoinDeliversCompletion) {
  ms::Engine e;
  bool joined = false;
  static std::vector<double> sink;
  auto p = e.spawn(record_at(e, 1.0, sink));
  e.spawn([](ms::Engine&, ms::Process proc,
             bool& flag) -> ms::Task<void> {
    co_await proc.join();
    flag = true;
  }(e, p, joined));
  e.run();
  EXPECT_TRUE(joined);
  EXPECT_TRUE(p.done());
}

TEST(Engine, JoinRethrowsProcessException) {
  ms::Engine e;
  auto failing = e.spawn([](ms::Engine& eng) -> ms::Task<void> {
    co_await eng.delay(1.0);
    throw std::runtime_error("boom");
  }(e), "failing");
  bool caught = false;
  e.spawn([](ms::Process p, bool& flag) -> ms::Task<void> {
    try {
      co_await p.join();
    } catch (const std::runtime_error& err) {
      flag = std::string(err.what()) == "boom";
    }
  }(failing, caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, UnjoinedFailureSurfacesAtRun) {
  ms::Engine e;
  e.spawn([](ms::Engine& eng) -> ms::Task<void> {
    co_await eng.delay(1.0);
    throw std::runtime_error("unseen failure");
  }(e), "fails-silently");
  EXPECT_THROW(e.run(), ms::SimError);
}

// Firing a latch with many waiters resumes them all from ONE engine event
// (batched callback), not one event per waiter — and the batching must not
// change what the waiters observe: same wake time, same FIFO order.
TEST(Engine, LatchFireBatchesWaitersIntoOneEvent) {
  ms::Engine e;
  ms::Latch latch(e);
  const int n = 16;
  std::vector<double> woke_at;
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    e.spawn([](ms::Engine& eng, ms::Latch& l, std::vector<double>& at,
               std::vector<int>& ord, int id) -> ms::Task<void> {
      co_await l.wait();
      at.push_back(eng.now());
      ord.push_back(id);
    }(e, latch, woke_at, order, i), "waiter");
  }
  e.spawn([](ms::Engine& eng, ms::Latch& l) -> ms::Task<void> {
    co_await eng.delay(1.0);
    l.fire();
  }(e, latch), "firer");
  const std::uint64_t events = e.run();
  ASSERT_EQ(woke_at.size(), static_cast<std::size_t>(n));
  for (double t : woke_at) EXPECT_DOUBLE_EQ(t, 1.0);
  std::vector<int> expected(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
  // n+1 spawn events, one delay, ONE batched resume. Unbatched wakeups
  // would cost an event per waiter (~2n+2 total).
  EXPECT_LE(events, static_cast<std::uint64_t>(n) + 4);
}

TEST(Engine, DeadlockDetected) {
  ms::Engine e;
  auto latch = std::make_unique<ms::Latch>(e);
  e.spawn([](ms::Latch& l) -> ms::Task<void> {
    co_await l.wait();  // never fired
  }(*latch), "stuck");
  EXPECT_THROW(e.run(), ms::SimError);
}

TEST(Engine, RunUntilStopsClock) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(record_at(e, 10.0, log));
  e.run_until(4.0);
  EXPECT_TRUE(log.empty());
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
  e.run_until(20.0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 10.0);
}

TEST(Engine, CallbacksInterleaveWithCoroutines) {
  ms::Engine e;
  std::vector<int> order;
  e.schedule_callback(1.0, [&] { order.push_back(1); });
  e.spawn([](ms::Engine& eng, std::vector<int>& ord) -> ms::Task<void> {
    co_await eng.delay(0.5);
    ord.push_back(0);
    co_await eng.delay(1.0);
    ord.push_back(2);
  }(e, order));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, DeferRunsAfterQueuedSameTimeEventsAndBeforeLaterOnes) {
  ms::Engine e;
  std::vector<int> order;
  e.schedule_callback(1.0, [&] { order.push_back(1); });
  e.schedule_callback(1.0, [&] {
    // Deferred work runs after the same-time event queued below (seq
    // order), but before anything queued after the defer call.
    e.defer([&] {
      order.push_back(4);
      e.schedule_callback(e.now(), [&] { order.push_back(5); });
    });
    order.push_back(2);
  });
  e.schedule_callback(1.0, [&] { order.push_back(3); });
  e.schedule_callback(2.0, [&] { order.push_back(6); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, WhenAllWaitsForEverything) {
  ms::Engine e;
  std::vector<double> log;
  std::vector<ms::Task<void>> tasks;
  tasks.push_back(record_at(e, 3.0, log));
  tasks.push_back(record_at(e, 1.0, log));
  bool after = false;
  e.spawn([](ms::Engine& eng, std::vector<ms::Task<void>> ts,
             bool& done) -> ms::Task<void> {
    co_await ms::when_all(eng, std::move(ts));
    done = true;
    EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  }(e, std::move(tasks), after));
  e.run();
  EXPECT_TRUE(after);
  EXPECT_EQ(log.size(), 2u);
}

TEST(Engine, WhenAllPropagatesFirstError) {
  ms::Engine e;
  std::vector<ms::Task<void>> tasks;
  tasks.push_back([](ms::Engine& eng) -> ms::Task<void> {
    co_await eng.delay(1.0);
  }(e));
  tasks.push_back([](ms::Engine& eng) -> ms::Task<void> {
    co_await eng.delay(0.5);
    throw std::runtime_error("first");
  }(e));
  bool caught = false;
  e.spawn([](ms::Engine& eng, std::vector<ms::Task<void>> ts,
             bool& flag) -> ms::Task<void> {
    try {
      co_await ms::when_all(eng, std::move(ts));
    } catch (const std::runtime_error& err) {
      flag = std::string(err.what()) == "first";
      // All tasks completed before the rethrow.
      EXPECT_DOUBLE_EQ(eng.now(), 1.0);
    }
  }(e, std::move(tasks), caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, ManySpawnsSweepCleanly) {
  ms::Engine e;
  // More processes than the sweep threshold to exercise root reclamation.
  std::vector<double> log;
  for (int i = 0; i < 10000; ++i) {
    e.spawn([](ms::Engine& eng) -> ms::Task<void> {
      co_await eng.delay(0.001);
    }(e));
  }
  EXPECT_NO_THROW(e.run());
  EXPECT_EQ(e.live_process_count(), 0u);
}

TEST(Engine, RunUntilRunsEventExactlyAtLimit) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(record_at(e, 5.0, log));
  e.spawn(record_at(e, 5.0 + 1e-9, log));
  e.run_until(5.0);
  // The boundary is inclusive: an event at exactly t_limit runs; the one
  // just past it stays queued.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 5.0);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run();
  EXPECT_EQ(log.size(), 2u);
}

TEST(Engine, RunUntilClockStopsAtLastEventWhenQueueDrainsEarly) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(record_at(e, 3.0, log));
  e.run_until(10.0);
  // Queue drained before the limit: the clock reads the last event time,
  // not the bound (min(t_limit, last event)).
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  ASSERT_EQ(log.size(), 1u);
}

TEST(Engine, RunUntilIsReentrantAfterBoundedStop) {
  ms::Engine e;
  std::vector<double> log;
  e.spawn(record_at(e, 2.0, log));
  e.spawn(record_at(e, 6.0, log));
  e.run_until(4.0);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
  ASSERT_EQ(log.size(), 1u);
  // New work scheduled after a bounded stop interleaves with the leftover
  // queue on the next bounded run.
  e.spawn(record_at(e, 1.0, log));  // 4.0 + 1.0 = 5.0 < 6.0
  e.run_until(6.0);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[1], 5.0);
  EXPECT_DOUBLE_EQ(log[2], 6.0);
  EXPECT_DOUBLE_EQ(e.now(), 6.0);
  // Limit in the past of the clock: nothing to do, clock does not move
  // backwards.
  e.run_until(1.0);
  EXPECT_DOUBLE_EQ(e.now(), 6.0);
}

TEST(Engine, DelayRejectsNegativeAndNaN) {
  ms::Engine e;
  EXPECT_THROW((void)e.delay(-1e-9), ms::SimError);
  EXPECT_THROW((void)e.delay(std::numeric_limits<double>::quiet_NaN()),
               ms::SimError);
  // Zero and positive delays are fine.
  EXPECT_NO_THROW((void)e.delay(0.0));
  EXPECT_NO_THROW((void)e.delay(1.0));
}
