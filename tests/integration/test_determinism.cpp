// Reproducibility: the whole stack is a deterministic simulation. The same
// seed must produce bit-identical results; a different seed must move the
// jittered measurements.
#include <gtest/gtest.h>

#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

namespace {

double run_once(std::uint64_t seed) {
  auto system = topo::make_beluga();  // jitter_rel = 1% by default
  auto registry = tuning::calibrate(system);
  model::PathConfigurator configurator(registry);
  benchcore::StackOptions opt;
  opt.seed = seed;
  auto stack = benchcore::SimStack::model_driven(
      system, configurator, topo::PathPolicy::three_gpus(), opt);
  benchcore::P2POptions p2p;
  p2p.window = 4;
  p2p.iterations = 3;
  return benchcore::measure_bw(stack.world(), 32_MiB, p2p);
}

}  // namespace

TEST(Determinism, SameSeedSameResultBitForBit) {
  const double a = run_once(12345);
  const double b = run_once(12345);
  EXPECT_EQ(a, b);  // exact, not NEAR
}

TEST(Determinism, DifferentSeedDifferentJitter) {
  const double a = run_once(1);
  const double b = run_once(2);
  EXPECT_NE(a, b);
  // ...but the physics dominates: within 5% of each other.
  EXPECT_NEAR(a, b, 0.05 * a);
}

TEST(Determinism, CalibrationIsDeterministic) {
  auto system = topo::make_narval();
  tuning::CalibrationOptions opt;
  opt.seed = 99;
  const auto r1 = tuning::calibrate(system, opt);
  const auto r2 = tuning::calibrate(system, opt);
  const auto gpus = system.topology.gpus();
  EXPECT_EQ(r1.route_params(gpus[0], gpus[1]).beta,
            r2.route_params(gpus[0], gpus[1]).beta);
  EXPECT_EQ(r1.epsilon(topo::PathKind::HostStaged),
            r2.epsilon(topo::PathKind::HostStaged));
  EXPECT_EQ(r1.protocol_alpha(), r2.protocol_alpha());
}

TEST(Determinism, CollectiveTimingIsReproducible) {
  auto run = [] {
    auto system = topo::make_beluga();
    auto registry = tuning::calibrate(system);
    model::PathConfigurator configurator(registry);
    auto stack = benchcore::SimStack::model_driven(
        system, configurator, topo::PathPolicy::two_gpus());
    return benchcore::measure_collective_latency(
        stack.world(),
        [](mpisim::Communicator& comm) -> sim::Task<void> {
          gpusim::DeviceBuffer buf(comm.device(), 4_MiB,
                                   gpusim::Payload::Simulated);
          co_await mpisim::allreduce_sum(comm, buf);
        },
        {.iterations = 2, .warmup = 1});
  };
  EXPECT_EQ(run(), run());
}
