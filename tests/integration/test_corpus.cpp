// Replays the frozen fuzz corpus in tests/corpus/ against the live model.
//
// Every file is a minimized (or hand-planted) scenario frozen by the
// mispredict hunter.  Replay pins two things:
//   * regression fixtures (`expected == none`) must stay accurate — the
//     model may not drift past the hunter's thresholds on them; and
//   * frozen mispredicts (`expected != none`) must keep reproducing the
//     recorded flag, so a "fix" that merely hides the defect is caught.
// Both properties must hold under the incremental and the full fluid
// solver, and all error/regret values must stay inside sanity ceilings.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mpath/benchcore/hunter.hpp"
#include "mpath/model/accuracy.hpp"
#include "mpath/sim/fluid.hpp"
#include "mpath/topo/fuzz.hpp"
#include "mpath/topo/topology.hpp"

#ifndef MPATH_CORPUS_DIR
#error "MPATH_CORPUS_DIR must point at the frozen scenario corpus"
#endif

namespace mf = mpath::fuzz;
namespace mm = mpath::model;
namespace mt = mpath::topo;
using mpath::sim::FluidNetwork;

namespace {

const std::vector<mf::CorpusEntry>& corpus() {
  static const std::vector<mf::CorpusEntry> entries =
      mf::load_corpus(MPATH_CORPUS_DIR);
  return entries;
}

std::string short_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

TEST(CorpusReplay, CorpusIsSeededAndWellFormed) {
  ASSERT_GE(corpus().size(), 4u) << "corpus dir: " << MPATH_CORPUS_DIR;
  for (const mf::CorpusEntry& entry : corpus()) {
    SCOPED_TRACE(entry.path);
    EXPECT_FALSE(entry.scenario.note.empty());
    ASSERT_FALSE(entry.scenario.transfers.empty());
    const mt::Topology topo = entry.scenario.topo.build().topology;
    EXPECT_TRUE(mf::fully_routable(topo));
    // Freezing is lossless: load -> dump -> load is a fixed point.
    const std::string dumped = entry.scenario.to_json().dump();
    EXPECT_EQ(
        mf::Scenario::from_json(mpath::util::json::Value::parse(dumped))
            .to_json()
            .dump(),
        dumped);
  }
}

TEST(CorpusReplay, FlagsReproduceUnderBothSolverModes) {
  for (const FluidNetwork::SolverMode mode :
       {FluidNetwork::SolverMode::kIncremental,
        FluidNetwork::SolverMode::kFull}) {
    mf::EvalOptions eval;
    eval.solver = mode;
    for (const mf::CorpusEntry& entry : corpus()) {
      SCOPED_TRACE(short_name(entry.path) + (mode == FluidNetwork::SolverMode::kFull
                                                 ? " [full]"
                                                 : " [incremental]"));
      const mf::ScenarioReport report =
          mf::evaluate_scenario(entry.scenario, eval);
      if (entry.scenario.expected == mm::MispredictKind::kNone) {
        EXPECT_EQ(report.kind, mm::MispredictKind::kNone)
            << "regression fixture drifted: error " << report.max_error
            << " regret " << report.max_regret;
      } else {
        EXPECT_TRUE(mm::covers(report.kind, entry.scenario.expected))
            << "frozen mispredict no longer reproduces (got "
            << mm::to_string(report.kind) << ", expected "
            << mm::to_string(entry.scenario.expected) << ")";
      }
      // Sanity ceilings: even pinned mispredicts must stay bounded.
      EXPECT_GE(report.max_error, 0.0);
      EXPECT_LE(report.max_error, 1.5);
      EXPECT_GE(report.max_regret, 0.0);
      EXPECT_LE(report.max_regret, 0.9);
    }
  }
}

TEST(CorpusReplay, PlantedXgmiRingRoutesOverTheRing) {
  for (const mf::CorpusEntry& entry : corpus()) {
    if (entry.scenario.topo.name != "planted-xgmi-ring") continue;
    const mt::Topology topo = entry.scenario.topo.build().topology;
    const mf::TransferCase& t = entry.scenario.transfers.front();
    const std::vector<mt::EdgeId>& route = topo.route(t.src, t.dst);
    ASSERT_EQ(route.size(), 2u);
    for (const mt::EdgeId e : route) {
      EXPECT_EQ(topo.edges()[e].kind, mt::LinkKind::XGMI);
    }
    return;
  }
  FAIL() << "planted-xgmi-ring fixture missing from corpus";
}

TEST(CorpusReplay, TopologiesRouteConcurrently) {
  // Cold concurrent route() hammer over every frozen topology; a smoke-level
  // twin of the TSan-gated ConcurrentRoute suite in tests/topo.
  for (const mf::CorpusEntry& entry : corpus()) {
    SCOPED_TRACE(entry.path);
    const mt::Topology topo = entry.scenario.topo.build().topology;
    std::vector<mt::DeviceId> gpus = topo.gpus();
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&] {
        for (int rep = 0; rep < 8; ++rep) {
          for (const mt::DeviceId a : gpus) {
            for (const mt::DeviceId b : gpus) {
              if (a == b) continue;
              try {
                if (topo.route(a, b).empty()) failures.fetch_add(1);
              } catch (...) {
                failures.fetch_add(1);
              }
            }
          }
        }
      });
    }
    for (std::thread& th : workers) th.join();
    EXPECT_EQ(failures.load(), 0);
  }
}
