// Regression guard for the zero-allocation steady state: after one warmup
// round fills the event/flow/frame pools and container high-water marks, a
// second identical round of full-stack pipeline transfers must perform zero
// global operator-new calls.
//
// This binary deliberately lives in its own test target: it links
// mpath_alloc_hook, which replaces the global operator new/delete with
// counting versions, and that replacement must not leak into the other test
// executables.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "mpath/benchcore/alloc_hook.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/sim/pool.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

ms::Task<void> worker_loop(mp::PipelineEngine& pipe, mg::DeviceBuffer& dst,
                           const mg::DeviceBuffer& src, mt::DeviceId stage,
                           int repeats, bool monitored) {
  for (int r = 0; r < repeats; ++r) {
    mp::ExecPlan plan{
        mp::ExecPath{{mt::PathKind::Direct, mt::kInvalidDevice}, 2_MiB, 8},
        mp::ExecPath{{mt::PathKind::GpuStaged, stage}, 2_MiB, 8},
    };
    mp::PathWatchList watch;
    if (monitored) watch = {{/*deadline_s=*/10.0}, {/*deadline_s=*/10.0}};
    (void)co_await pipe.execute_monitored(dst, 0, src, 0, std::move(plan),
                                          std::move(watch));
  }
}

std::uint64_t steady_state_allocs(int workers, int repeats, bool monitored) {
  mt::System sys = mt::make_beluga();
  sys.costs.jitter_rel = 0;
  ms::Engine engine;
  ms::FluidNetwork net(engine);
  net.set_solver_mode(ms::FluidNetwork::SolverMode::kIncremental);
  mg::GpuRuntime rt(sys, engine, net);
  mp::PipelineEngine pipe(rt, /*staging_buffers_per_device=*/64,
                          mg::Payload::Simulated);
  const std::vector<mt::DeviceId> gpus = sys.topology.gpus();
  const int n = static_cast<int>(gpus.size());
  std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
  for (int w = 0; w < workers; ++w) {
    bufs.push_back(std::make_unique<mg::DeviceBuffer>(gpus[w % n], 4_MiB,
                                                      mg::Payload::Simulated));
    bufs.push_back(std::make_unique<mg::DeviceBuffer>(
        gpus[(w + 1) % n], 4_MiB, mg::Payload::Simulated));
  }
  const auto spawn_round = [&] {
    for (int w = 0; w < workers; ++w) {
      engine.spawn(worker_loop(pipe, *bufs[2 * w + 1], *bufs[2 * w],
                               gpus[(w + 2) % n], repeats, monitored),
                   "worker");
    }
  };
  spawn_round();
  engine.run();  // warmup: pools and capacities reach their high-water marks
  const mpath::benchcore::AllocScope scope;
  spawn_round();
  engine.run();
  return scope.delta();
}

}  // namespace

TEST(AllocRegression, SteadyStateRoundIsAllocationFree) {
#if defined(MPATH_POOL_PASSTHROUGH)
  GTEST_SKIP() << "size-bucketed pool is pass-through under sanitizers; "
                  "steady-state allocation counts are meaningless here";
#else
  ASSERT_TRUE(mpath::benchcore::alloc_hook_active());
  EXPECT_EQ(steady_state_allocs(/*workers=*/8, /*repeats=*/4,
                                /*monitored=*/false),
            0u);
#endif
}

TEST(AllocRegression, MonitoredSteadyStateRoundIsAllocationFree) {
#if defined(MPATH_POOL_PASSTHROUGH)
  GTEST_SKIP() << "size-bucketed pool is pass-through under sanitizers";
#else
  EXPECT_EQ(steady_state_allocs(/*workers=*/8, /*repeats=*/4,
                                /*monitored=*/true),
            0u);
#endif
}
