// End-to-end behavior on the non-evaluation presets: the model must apply
// gracefully to PCIe-only boxes, xGMI rings, and NVSwitch systems (the
// paper's future-work architectures), choosing multi-path only where extra
// bandwidth actually exists.
#include <gtest/gtest.h>

#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

namespace {

struct Measured {
  double direct;
  double multipath;
};

Measured compare(const topo::System& system, topo::DeviceId src,
                 topo::DeviceId dst, std::size_t bytes,
                 const topo::PathPolicy& policy) {
  auto registry = tuning::calibrate(system);
  model::PathConfigurator configurator(registry);
  benchcore::P2POptions opt;
  opt.window = 4;
  opt.iterations = 3;
  opt.src_rank = 0;
  opt.dst_rank = 1;
  // Bind the wanted GPUs to ranks 0/1: presets order GPUs consistently, so
  // we only exercise gpu0 -> gpu1 and gpu0 -> gpu2 via rank mapping below.
  (void)src;
  (void)dst;
  auto direct_stack = benchcore::SimStack::direct(system);
  const double direct = benchcore::measure_bw(direct_stack.world(), bytes, opt);
  auto multi_stack =
      benchcore::SimStack::model_driven(system, configurator, policy);
  const double multi = benchcore::measure_bw(multi_stack.world(), bytes, opt);
  return {direct, multi};
}

}  // namespace

TEST(OtherSystems, PcieOnlyBoxGainsLittleButNeverLoses) {
  // No NVLink: no GPU-staged candidates exist; the host-staged path rides
  // the same PCIe lanes as the "direct" P2P route, so multi-path cannot
  // add bandwidth — but the model must not make things worse.
  const auto system = topo::make_pcie_only();
  const auto gpus = system.topology.gpus();
  const auto paths = topo::enumerate_paths(
      system.topology, gpus[0], gpus[1],
      topo::PathPolicy::three_gpus_with_host());
  // Only direct + host-staged are available.
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].kind, topo::PathKind::HostStaged);

  const auto m = compare(system, gpus[0], gpus[1], 128_MiB,
                         topo::PathPolicy::three_gpus_with_host());
  EXPECT_GT(m.multipath, 0.9 * m.direct);
}

TEST(OtherSystems, AmdRingDiagonalUsesBridges) {
  // gpu0 -> gpu2 across the ring: the "direct" route hops through a
  // neighbor; the two staged paths (via gpu1 and gpu3) use the same
  // physical links, so the model should keep most traffic on one route
  // rather than fight itself. The check: multi-path stays within a sane
  // band of direct (no catastrophic self-contention).
  const auto system = topo::make_amd_ring();
  const auto gpus = system.topology.gpus();
  auto registry = tuning::calibrate(system);
  model::PathConfigurator configurator(registry);
  const auto paths = topo::enumerate_paths(system.topology, gpus[0], gpus[2],
                                           topo::PathPolicy::three_gpus());
  ASSERT_EQ(paths.size(), 3u);
  const auto& config =
      configurator.configure(gpus[0], gpus[2], 128_MiB, paths);
  // Both bridges carry meaningful share (the ring is symmetric).
  EXPECT_GT(config.paths[1].theta, 0.2);
  EXPECT_GT(config.paths[2].theta, 0.2);
}

TEST(OtherSystems, NvSwitchSeesNoMultipathBenefit) {
  // On an NVSwitch system every path shares the endpoints' switch links,
  // so extra "paths" add no bandwidth. The model, fed with per-route
  // measurements that all bottleneck on the same 300 GB/s port, will still
  // split — but execution must stay within ~20% of direct (the port is the
  // bottleneck either way), demonstrating that multi-path is a property of
  // point-to-point mesh topologies, not switched ones.
  const auto system = topo::make_dgx_nvswitch();
  const auto gpus = system.topology.gpus();
  const auto m = compare(system, gpus[0], gpus[1], 128_MiB,
                         topo::PathPolicy::three_gpus());
  EXPECT_GT(m.multipath, 0.8 * m.direct);
  EXPECT_LT(m.multipath, 1.2 * m.direct);
}

TEST(OtherSystems, CalibrationCoversEveryPreset) {
  for (const char* name : {"beluga", "narval", "dgx", "pcie", "amd"}) {
    const auto system = topo::make_system(name);
    const auto registry = tuning::calibrate(system);
    EXPECT_GT(registry.route_count(), 0u) << name;
    const auto gpus = system.topology.gpus();
    EXPECT_TRUE(registry.has_route_params(gpus[0], gpus[1])) << name;
  }
}
