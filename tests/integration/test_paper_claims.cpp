// Reproduction regression tests: the paper's headline claims, encoded as
// assertions so that a refactor that silently breaks the reproduction
// fails CI. Bands are deliberately loose — they pin the SHAPE of each
// result (who wins, roughly by how much), not exact figures.
#include <gtest/gtest.h>

#include <chrono>

#include "mpath/benchcore/metrics.hpp"
#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/mpisim/collectives.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/tuning/static_tuner.hpp"
#include "mpath/util/stats.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

namespace {

struct Calibrated {
  topo::System system;
  model::ModelRegistry registry;
  model::PathConfigurator configurator;
  explicit Calibrated(topo::System sys)
      : system(std::move(sys)),
        registry(tuning::calibrate(system)),
        configurator(registry) {}
};

Calibrated& beluga() {
  static Calibrated c(topo::make_beluga());
  return c;
}

double dyn_bw(Calibrated& cal, std::size_t bytes,
              const topo::PathPolicy& policy, int window = 4) {
  auto stack =
      benchcore::SimStack::model_driven(cal.system, cal.configurator, policy);
  benchcore::P2POptions opt;
  opt.window = window;
  opt.iterations = 3;
  return benchcore::measure_bw(stack.world(), bytes, opt);
}

double direct_bw(Calibrated& cal, std::size_t bytes, int window = 4) {
  auto stack = benchcore::SimStack::direct(cal.system);
  benchcore::P2POptions opt;
  opt.window = window;
  opt.iterations = 3;
  return benchcore::measure_bw(stack.world(), bytes, opt);
}

}  // namespace

TEST(PaperClaims, P2PSpeedupApproachesThreeLanes) {
  // "achieving up to 2.9x speedup over single-path methods"
  auto& cal = beluga();
  const double speedup = dyn_bw(cal, 512_MiB, topo::PathPolicy::three_gpus()) /
                         direct_bw(cal, 512_MiB);
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 3.05);
}

TEST(PaperClaims, PredictionErrorSmallForLargeMessages) {
  // "<6% error in predicting the optimal configuration for messages larger
  // than 4MB" — we accept up to 10% mean on the non-host policies.
  auto& cal = beluga();
  const auto gpus = cal.system.topology.gpus();
  std::vector<std::pair<double, double>> pairs;
  for (std::size_t bytes : {8_MiB, 32_MiB, 128_MiB, 512_MiB}) {
    for (const auto& policy :
         {topo::PathPolicy::two_gpus(), topo::PathPolicy::three_gpus()}) {
      const double predicted = benchcore::predicted_bandwidth(
          cal.configurator, cal.system.topology, gpus[0], gpus[1], bytes,
          policy);
      pairs.emplace_back(predicted, dyn_bw(cal, bytes, policy, 16));
    }
  }
  EXPECT_LT(benchcore::mean_relative_error(pairs), 0.10);
}

TEST(PaperClaims, ErrorsLargerForSmallMessages) {
  // Observation 4: the model overestimates small transfers.
  auto& cal = beluga();
  const auto gpus = cal.system.topology.gpus();
  const auto policy = topo::PathPolicy::three_gpus();
  auto err = [&](std::size_t bytes) {
    const double predicted = benchcore::predicted_bandwidth(
        cal.configurator, cal.system.topology, gpus[0], gpus[1], bytes,
        policy);
    return util::relative_error(predicted, dyn_bw(cal, bytes, policy, 1));
  };
  EXPECT_GT(err(2_MiB), err(256_MiB));
}

TEST(PaperClaims, HostStagedBidirectionalDegrades) {
  // Observation 5: with host staging, BIBW is worse than without, because
  // the four staging streams contend on the host memory channel.
  auto& cal = beluga();
  auto bibw = [&](const topo::PathPolicy& policy) {
    auto stack = benchcore::SimStack::model_driven(cal.system,
                                                   cal.configurator, policy);
    benchcore::P2POptions opt;
    opt.window = 4;
    opt.iterations = 3;
    return benchcore::measure_bibw(stack.world(), 256_MiB, opt);
  };
  EXPECT_LT(bibw(topo::PathPolicy::three_gpus_with_host()),
            bibw(topo::PathPolicy::three_gpus()));
}

TEST(PaperClaims, CollectivesSpeedUp) {
  // "enhances MPI_Allreduce and MPI_Alltoall by up to 1.4x"
  auto& cal = beluga();
  auto latency = [&](bool multipath) {
    auto stack =
        multipath
            ? benchcore::SimStack::model_driven(
                  cal.system, cal.configurator, topo::PathPolicy::three_gpus())
            : benchcore::SimStack::direct(cal.system);
    return benchcore::measure_collective_latency(
        stack.world(),
        [](mpisim::Communicator& comm) -> sim::Task<void> {
          const auto p = static_cast<std::size_t>(comm.size());
          const std::size_t blk = 32_MiB;
          gpusim::DeviceBuffer send(comm.device(), p * blk,
                                    gpusim::Payload::Simulated);
          gpusim::DeviceBuffer recv(comm.device(), p * blk,
                                    gpusim::Payload::Simulated);
          co_await mpisim::alltoall(comm, send, recv, blk);
        },
        {.iterations = 3, .warmup = 1});
  };
  const double speedup = latency(false) / latency(true);
  EXPECT_GT(speedup, 1.05);
  EXPECT_LT(speedup, 1.6);
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MPATH_SANITIZED 1
#endif
#endif
#if !defined(MPATH_SANITIZED) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define MPATH_SANITIZED 1
#endif

TEST(PaperClaims, ModelRuntimeOverheadNegligible) {
  // "runtime overhead ... less than 0.1% of the total execution time" for
  // large messages: time 10k cold configurations and compare with one
  // 64 MB transfer at 46 GB/s.
#ifdef MPATH_SANITIZED
  GTEST_SKIP() << "wall-clock overhead bound is not meaningful under "
                  "sanitizer instrumentation";
#endif
  auto& cal = beluga();
  const auto gpus = cal.system.topology.gpus();
  const auto paths = topo::enumerate_paths(
      cal.system.topology, gpus[0], gpus[1],
      topo::PathPolicy::three_gpus_with_host());
  model::ConfiguratorOptions opt;
  opt.cache_enabled = false;
  model::PathConfigurator cfg(cal.registry, opt);
  const auto start = std::chrono::steady_clock::now();
  constexpr int kIters = 10000;
  for (int i = 0; i < kIters; ++i) {
    (void)cfg.configure(gpus[0], gpus[1], (64u << 20) + i, paths);
  }
  const double per_call =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count() /
      kIters;
  const double transfer = static_cast<double>(64_MiB) / 46e9;  // ~1.5 ms
  EXPECT_LT(per_call / transfer, 0.001);
}

TEST(PaperClaims, DynamicMatchesOrBeatsStaticTunedPlan) {
  // Observation 2 (collectives section): the model-driven configuration
  // outperforms the statically tuned one. Checked at the P2P level against
  // a plan tuned at a different size (the realistic deployment gap).
  auto& cal = beluga();
  tuning::StaticTunerOptions topt;
  topt.fraction_step = 0.125;
  topt.chunk_grid = {1, 8, 32};
  topt.iterations = 2;
  tuning::StaticTuner tuner(cal.system, topo::PathPolicy::three_gpus(), topt);
  const auto tuned = tuner.tune(32_MiB);  // tuned for 32MB...
  auto static_stack = benchcore::SimStack::static_plan(cal.system, tuned.plan);
  benchcore::P2POptions opt;
  opt.window = 4;
  opt.iterations = 3;
  const double static_bw =
      benchcore::measure_bw(static_stack.world(), 512_MiB, opt);  // ...run at 512MB
  const double dynamic_bw = dyn_bw(cal, 512_MiB, topo::PathPolicy::three_gpus());
  EXPECT_GE(dynamic_bw, 0.98 * static_bw);
}
