#include "mpath/mpisim/world.hpp"

#include <gtest/gtest.h>

#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mi = mpath::mpisim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {
struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mp::SinglePathChannel channel{pipe};
  mi::World world{rt, channel};
};
}  // namespace

TEST(World, OneRankPerGpuByDefault) {
  Fixture f;
  EXPECT_EQ(f.world.size(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(f.world.comm(r).rank(), r);
    EXPECT_EQ(f.world.comm(r).device(), f.sys.topology.gpus()[r]);
  }
  EXPECT_THROW((void)f.world.comm(9), std::out_of_range);
}

TEST(World, OversubscriptionBindsRoundRobin) {
  Fixture f;
  mi::World big(f.rt, f.channel, 6);
  EXPECT_EQ(big.size(), 6);
  EXPECT_EQ(big.comm(4).device(), f.sys.topology.gpus()[0]);
  EXPECT_EQ(big.comm(5).device(), f.sys.topology.gpus()[1]);
}

TEST(World, BlockingSendRecvPair) {
  Fixture f;
  mg::DeviceBuffer payload(f.world.comm(0).device(), 2_MiB);
  payload.fill_pattern(31);
  mg::DeviceBuffer landed(f.world.comm(1).device(), 2_MiB);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    if (comm.rank() == 0) {
      co_await comm.send(payload, 0, 2_MiB, 1, 0);
    } else if (comm.rank() == 1) {
      co_await comm.recv(landed, 0, 2_MiB, 0, 0);
    }
  });
  EXPECT_TRUE(landed.same_content(payload));
}

TEST(World, NonblockingWindowOverlapsTransfers) {
  Fixture f;
  constexpr int kWindow = 8;
  const std::size_t n = 4_MiB;
  double windowed = 0.0, serial = 0.0;
  {
    Fixture a;
    a.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
      if (comm.rank() == 0) {
        mg::DeviceBuffer buf(comm.device(), n);
        const double start = comm.world().engine().now();
        std::vector<ms::Process> reqs;
        for (int w = 0; w < kWindow; ++w) {
          reqs.push_back(comm.isend(buf, 0, n, 1, w));
        }
        co_await comm.wait_all(std::move(reqs));
        windowed = comm.world().engine().now() - start;
      } else if (comm.rank() == 1) {
        mg::DeviceBuffer buf(comm.device(), n);
        std::vector<ms::Process> reqs;
        for (int w = 0; w < kWindow; ++w) {
          reqs.push_back(comm.irecv(buf, 0, n, 0, w));
        }
        co_await comm.wait_all(std::move(reqs));
      }
    });
  }
  {
    Fixture b;
    b.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
      if (comm.rank() == 0) {
        mg::DeviceBuffer buf(comm.device(), n);
        const double start = comm.world().engine().now();
        for (int w = 0; w < kWindow; ++w) {
          co_await comm.send(buf, 0, n, 1, w);
        }
        serial = comm.world().engine().now() - start;
      } else if (comm.rank() == 1) {
        mg::DeviceBuffer buf(comm.device(), n);
        for (int w = 0; w < kWindow; ++w) {
          co_await comm.recv(buf, 0, n, 0, w);
        }
      }
    });
  }
  // Windowed messages amortize rendezvous/issue latency; the wire itself is
  // serialized, so the win is modest but must exist.
  EXPECT_LT(windowed, serial);
}

TEST(World, SendRecvExchangesWithoutDeadlock) {
  Fixture f;
  std::vector<int> ok(4, 0);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    // All ranks simultaneously exchange with their ring neighbor.
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() - 1 + comm.size()) % comm.size();
    mg::DeviceBuffer sendbuf(comm.device(), 1_MiB);
    mg::DeviceBuffer recvbuf(comm.device(), 1_MiB);
    sendbuf.fill_pattern(static_cast<std::uint64_t>(comm.rank()));
    co_await comm.sendrecv(sendbuf, 0, 1_MiB, right, recvbuf, 0, 1_MiB, left,
                           3);
    mg::DeviceBuffer expected(comm.device(), 1_MiB);
    expected.fill_pattern(static_cast<std::uint64_t>(left));
    ok[static_cast<std::size_t>(comm.rank())] =
        recvbuf.same_content(expected) ? 1 : 0;
  });
  EXPECT_EQ(ok, (std::vector<int>{1, 1, 1, 1}));
}

TEST(World, BarrierSynchronizesRanks) {
  Fixture f;
  std::vector<double> times(4, -1);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    co_await comm.world().engine().delay(0.001 * (comm.rank() + 1));
    co_await comm.barrier();
    times[static_cast<std::size_t>(comm.rank())] =
        comm.world().engine().now();
  });
  for (double t : times) EXPECT_DOUBLE_EQ(t, 0.004);
}

TEST(World, LocalCopyStaysOnDevice) {
  Fixture f;
  bool checked = false;
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    if (comm.rank() != 0) co_return;
    mg::DeviceBuffer a(comm.device(), 1_MiB), b(comm.device(), 1_MiB);
    a.fill_pattern(77);
    co_await comm.local_copy(b, 0, a, 0, 1_MiB);
    checked = b.same_content(a);
  });
  EXPECT_TRUE(checked);
}

TEST(World, RankFailurePropagatesFromRun) {
  Fixture f;
  EXPECT_THROW(
      f.world.run([](mi::Communicator& comm) -> ms::Task<void> {
        if (comm.rank() == 2) {
          throw std::runtime_error("rank 2 exploded");
        }
        co_return;
      }),
      ms::SimError);
}
