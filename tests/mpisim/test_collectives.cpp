#include "mpath/mpisim/collectives.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "mpath/pipeline/channels.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace mg = mpath::gpusim;
namespace mi = mpath::mpisim;
namespace mp = mpath::pipeline;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;

namespace {

struct Fixture {
  mt::System sys = [] {
    auto s = mt::make_beluga();
    s.costs.jitter_rel = 0;
    return s;
  }();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mg::GpuRuntime rt{sys, engine, net};
  mp::PipelineEngine pipe{rt};
  mp::SinglePathChannel channel{pipe};
  mi::World world{rt, channel};
};

/// Per-rank float buffers with rank-dependent contents; expected allreduce
/// result computed on the host.
struct AllreduceData {
  std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
  std::vector<float> expected;

  AllreduceData(mi::World& world, std::size_t count) {
    expected.assign(count, 0.0f);
    for (int r = 0; r < world.size(); ++r) {
      auto buf = std::make_unique<mg::DeviceBuffer>(world.comm(r).device(),
                                                    count * sizeof(float));
      auto v = buf->as<float>();
      for (std::size_t i = 0; i < count; ++i) {
        v[i] = static_cast<float>((r + 1) * 1000 + static_cast<int>(i % 97));
        expected[i] += v[i];
      }
      bufs.push_back(std::move(buf));
    }
  }

  [[nodiscard]] bool verify() const {
    for (const auto& buf : bufs) {
      auto v = buf->as<const float>();
      for (std::size_t i = 0; i < expected.size(); ++i) {
        if (v[i] != expected[i]) return false;
      }
    }
    return true;
  }
};

}  // namespace

TEST(Allreduce, RecursiveHalvingDoublingIsCorrect) {
  Fixture f;
  AllreduceData data(f.world, 1024);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    co_await mi::allreduce_sum(
        comm, *data.bufs[static_cast<std::size_t>(comm.rank())],
        mi::AllreduceAlgo::RecursiveHalvingDoubling);
  });
  EXPECT_TRUE(data.verify());
}

TEST(Allreduce, RingIsCorrect) {
  Fixture f;
  AllreduceData data(f.world, 2048);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    co_await mi::allreduce_sum(
        comm, *data.bufs[static_cast<std::size_t>(comm.rank())],
        mi::AllreduceAlgo::Ring);
  });
  EXPECT_TRUE(data.verify());
}

TEST(Allreduce, RingWorksOnNonPowerOfTwoWorlds) {
  Fixture f;
  mi::World world3(f.rt, f.channel, 3);
  std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
  std::vector<float> expected(999, 0.0f);
  for (int r = 0; r < 3; ++r) {
    auto buf = std::make_unique<mg::DeviceBuffer>(world3.comm(r).device(),
                                                  999 * sizeof(float));
    auto v = buf->as<float>();
    for (std::size_t i = 0; i < 999; ++i) {
      v[i] = static_cast<float>(r + 1);
      expected[i] += v[i];
    }
    bufs.push_back(std::move(buf));
  }
  world3.run([&](mi::Communicator& comm) -> ms::Task<void> {
    co_await mi::allreduce_sum(comm,
                               *bufs[static_cast<std::size_t>(comm.rank())],
                               mi::AllreduceAlgo::Ring);
  });
  for (const auto& buf : bufs) {
    auto v = buf->as<const float>();
    for (std::size_t i = 0; i < 999; ++i) {
      ASSERT_EQ(v[i], expected[i]);
    }
  }
}

TEST(Allreduce, RhdRejectsNonPowerOfTwo) {
  Fixture f;
  mi::World world3(f.rt, f.channel, 3);
  EXPECT_THROW(
      world3.run([](mi::Communicator& comm) -> ms::Task<void> {
        mg::DeviceBuffer buf(comm.device(), 96 * sizeof(float));
        co_await mi::allreduce_sum(
            comm, buf, mi::AllreduceAlgo::RecursiveHalvingDoubling);
      }),
      ms::SimError);
}

TEST(Allreduce, RejectsUnevenElementCounts) {
  Fixture f;
  EXPECT_THROW(
      f.world.run([](mi::Communicator& comm) -> ms::Task<void> {
        mg::DeviceBuffer buf(comm.device(), 6 * sizeof(float));  // 6 % 4 != 0
        co_await mi::allreduce_sum(comm, buf);
      }),
      ms::SimError);
}

namespace {

/// Alltoall buffers: block j of rank r's send buffer is pattern(r*64+j).
struct AlltoallData {
  std::vector<std::unique_ptr<mg::DeviceBuffer>> send, recv;
  std::size_t blk;
  int p;

  AlltoallData(mi::World& world, std::size_t block_bytes)
      : blk(block_bytes), p(world.size()) {
    for (int r = 0; r < p; ++r) {
      auto s = std::make_unique<mg::DeviceBuffer>(
          world.comm(r).device(), static_cast<std::size_t>(p) * blk);
      auto d = std::make_unique<mg::DeviceBuffer>(
          world.comm(r).device(), static_cast<std::size_t>(p) * blk);
      for (int j = 0; j < p; ++j) {
        mg::DeviceBuffer pattern(world.comm(r).device(), blk);
        pattern.fill_pattern(static_cast<std::uint64_t>(r * 64 + j));
        std::memcpy(s->region(static_cast<std::size_t>(j) * blk, blk).data(),
                    pattern.bytes().data(), blk);
      }
      send.push_back(std::move(s));
      recv.push_back(std::move(d));
    }
  }

  /// After alltoall, rank r's block i must equal pattern(i*64+r).
  [[nodiscard]] bool verify() const {
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < p; ++i) {
        mg::DeviceBuffer pattern(0, blk);
        pattern.fill_pattern(static_cast<std::uint64_t>(i * 64 + r));
        const auto got =
            recv[static_cast<std::size_t>(r)]->region(
                static_cast<std::size_t>(i) * blk, blk);
        if (std::memcmp(got.data(), pattern.bytes().data(), blk) != 0) {
          return false;
        }
      }
    }
    return true;
  }
};

}  // namespace

TEST(Alltoall, PairwiseIsCorrect) {
  Fixture f;
  AlltoallData data(f.world, 64_KiB);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    const auto r = static_cast<std::size_t>(comm.rank());
    co_await mi::alltoall(comm, *data.send[r], *data.recv[r], data.blk,
                          mi::AlltoallAlgo::Pairwise);
  });
  EXPECT_TRUE(data.verify());
}

TEST(Alltoall, BruckIsCorrect) {
  Fixture f;
  AlltoallData data(f.world, 64_KiB);
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    const auto r = static_cast<std::size_t>(comm.rank());
    co_await mi::alltoall(comm, *data.send[r], *data.recv[r], data.blk,
                          mi::AlltoallAlgo::Bruck);
  });
  EXPECT_TRUE(data.verify());
}

TEST(Alltoall, BruckWorksOnNonPowerOfTwoWorlds) {
  Fixture f;
  mi::World world3(f.rt, f.channel, 3);
  AlltoallData data(world3, 32_KiB);
  world3.run([&](mi::Communicator& comm) -> ms::Task<void> {
    const auto r = static_cast<std::size_t>(comm.rank());
    co_await mi::alltoall(comm, *data.send[r], *data.recv[r], data.blk,
                          mi::AlltoallAlgo::Bruck);
  });
  EXPECT_TRUE(data.verify());
}

TEST(Alltoall, RejectsUndersizedBuffers) {
  Fixture f;
  EXPECT_THROW(
      f.world.run([](mi::Communicator& comm) -> ms::Task<void> {
        mg::DeviceBuffer s(comm.device(), 3 * 64);  // 3 blocks, need 4
        mg::DeviceBuffer d(comm.device(), 4 * 64);
        co_await mi::alltoall(comm, s, d, 64);
      }),
      ms::SimError);
}

TEST(Allgather, RingIsCorrect) {
  Fixture f;
  constexpr std::size_t kBlk = 32_KiB;
  std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
  std::vector<mg::DeviceBuffer> patterns;
  for (int r = 0; r < 4; ++r) {
    auto buf = std::make_unique<mg::DeviceBuffer>(f.world.comm(r).device(),
                                                  4 * kBlk);
    patterns.emplace_back(f.world.comm(r).device(), kBlk);
    patterns.back().fill_pattern(static_cast<std::uint64_t>(900 + r));
    std::memcpy(buf->region(static_cast<std::size_t>(r) * kBlk, kBlk).data(),
                patterns.back().bytes().data(), kBlk);
    bufs.push_back(std::move(buf));
  }
  f.world.run([&](mi::Communicator& comm) -> ms::Task<void> {
    co_await mi::allgather(comm,
                           *bufs[static_cast<std::size_t>(comm.rank())],
                           kBlk);
  });
  for (int r = 0; r < 4; ++r) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(
          std::memcmp(bufs[static_cast<std::size_t>(r)]
                          ->region(static_cast<std::size_t>(b) * kBlk, kBlk)
                          .data(),
                      patterns[static_cast<std::size_t>(b)].bytes().data(),
                      kBlk),
          0)
          << "rank " << r << " block " << b;
    }
  }
}

TEST(Broadcast, BinomialDeliversFromEveryRoot) {
  Fixture f;
  for (int root = 0; root < 4; ++root) {
    std::vector<std::unique_ptr<mg::DeviceBuffer>> bufs;
    for (int r = 0; r < 4; ++r) {
      bufs.push_back(std::make_unique<mg::DeviceBuffer>(
          f.world.comm(r).device(), 256_KiB));
      if (r == root) {
        bufs.back()->fill_pattern(static_cast<std::uint64_t>(500 + root));
      }
    }
    mi::World world(f.rt, f.channel);  // fresh world per root
    world.run([&](mi::Communicator& comm) -> ms::Task<void> {
      co_await mi::broadcast(comm,
                             *bufs[static_cast<std::size_t>(comm.rank())],
                             256_KiB, root);
    });
    for (int r = 0; r < 4; ++r) {
      EXPECT_TRUE(bufs[static_cast<std::size_t>(r)]->same_content(
          *bufs[static_cast<std::size_t>(root)]))
          << "root " << root << " rank " << r;
    }
  }
}

TEST(Collectives, MultiPathChannelSpeedsUpAlltoall) {
  // The Fig. 7 effect in miniature: Alltoall over the model-driven channel
  // beats Alltoall over the direct channel for large blocks.
  auto run_alltoall = [](mg::DataChannel& channel, mg::GpuRuntime& rt) {
    mi::World world(rt, channel);
    AlltoallData data(world, 16_MiB);
    double elapsed = 0.0;
    const double start = rt.engine().now();
    world.run([&](mi::Communicator& comm) -> ms::Task<void> {
      const auto r = static_cast<std::size_t>(comm.rank());
      co_await mi::alltoall(comm, *data.send[r], *data.recv[r], data.blk,
                            mi::AlltoallAlgo::Bruck);
    });
    elapsed = rt.engine().now() - start;
    EXPECT_TRUE(data.verify());
    return elapsed;
  };

  Fixture a;
  const double t_direct = run_alltoall(a.channel, a.rt);

  Fixture b;
  auto reg = std::make_unique<mpath::model::ModelRegistry>();
  // Analytic registry for the three_gpus policy.
  *reg = mpath::tuning::registry_from_topology(b.sys);
  mpath::model::PathConfigurator cfg(*reg);
  mp::ModelDrivenChannel multi(b.pipe, cfg, mt::PathPolicy::two_gpus());
  const double t_multi = run_alltoall(multi, b.rt);

  EXPECT_LT(t_multi, t_direct);
}
