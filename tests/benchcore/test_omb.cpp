#include "mpath/benchcore/omb.hpp"

#include <gtest/gtest.h>

#include "mpath/benchcore/stack.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace bc = mpath::benchcore;
namespace mi = mpath::mpisim;
namespace mm = mpath::model;
namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;
using mpath::util::gbps;

namespace {
mt::System quiet_beluga() {
  auto s = mt::make_beluga();
  s.costs.jitter_rel = 0;
  return s;
}
}  // namespace

TEST(Omb, DirectBwApproachesLinkBandwidth) {
  auto stack = bc::SimStack::direct(quiet_beluga());
  bc::P2POptions opt;
  opt.window = 16;
  opt.iterations = 6;
  const double bw = bc::measure_bw(stack.world(), 64_MiB, opt);
  EXPECT_GT(bw, 0.93 * gbps(46));
  EXPECT_LT(bw, gbps(46));
}

TEST(Omb, SmallMessagesAreLatencyBound) {
  auto stack = bc::SimStack::direct(quiet_beluga());
  const double bw = bc::measure_bw(stack.world(), 4_KiB);
  EXPECT_LT(bw, 0.3 * gbps(46));
}

TEST(Omb, BibwIsRoughlyTwiceBwOnDuplexLinks) {
  auto s1 = bc::SimStack::direct(quiet_beluga());
  bc::P2POptions opt;
  opt.window = 16;
  opt.iterations = 6;
  const double bw = bc::measure_bw(s1.world(), 64_MiB, opt);
  auto s2 = bc::SimStack::direct(quiet_beluga());
  const double bibw = bc::measure_bibw(s2.world(), 64_MiB, opt);
  EXPECT_GT(bibw, 1.8 * bw);
  EXPECT_LT(bibw, 2.05 * bw);
}

TEST(Omb, ModelDrivenStackBeatsDirectStack) {
  const auto sys = quiet_beluga();
  const auto reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg(reg);

  auto direct = bc::SimStack::direct(sys);
  bc::P2POptions opt;
  opt.window = 4;
  opt.iterations = 4;
  const double bw_direct = bc::measure_bw(direct.world(), 128_MiB, opt);

  auto multi = bc::SimStack::model_driven(sys, cfg,
                                          mt::PathPolicy::three_gpus());
  const double bw_multi = bc::measure_bw(multi.world(), 128_MiB, opt);
  EXPECT_GT(bw_multi / bw_direct, 2.0);
  EXPECT_LT(bw_multi / bw_direct, 3.1);
}

TEST(Omb, StaticPlanStackMeasures) {
  const auto sys = quiet_beluga();
  const auto gpus = sys.topology.gpus();
  mpath::pipeline::StaticPlan plan;
  plan.paths = mt::enumerate_paths(sys.topology, gpus[0], gpus[1],
                                   mt::PathPolicy::two_gpus());
  plan.fractions = {0.5, 0.5};
  plan.chunks = {1, 16};
  auto stack = bc::SimStack::static_plan(sys, plan);
  const double bw = bc::measure_bw(stack.world(), 128_MiB);
  EXPECT_GT(bw, 1.3 * gbps(46));
}

TEST(Omb, WindowSixteenBeatsWindowOne) {
  // Paper Observation 2: larger windows amortize latency.
  auto s1 = bc::SimStack::direct(quiet_beluga());
  bc::P2POptions w1;
  w1.window = 1;
  const double bw1 = bc::measure_bw(s1.world(), 8_MiB, w1);
  auto s2 = bc::SimStack::direct(quiet_beluga());
  bc::P2POptions w16;
  w16.window = 16;
  const double bw16 = bc::measure_bw(s2.world(), 8_MiB, w16);
  EXPECT_GT(bw16, bw1);
}

TEST(Omb, CollectiveLatencyIsPositiveAndScalesWithSize) {
  const auto sys = quiet_beluga();
  auto run = [&](std::size_t bytes) {
    auto stack = bc::SimStack::direct(sys);
    return bc::measure_collective_latency(
        stack.world(),
        [bytes](mi::Communicator& comm) -> ms::Task<void> {
          mpath::gpusim::DeviceBuffer buf(comm.device(), bytes);
          co_await mi::allreduce_sum(comm, buf);
        },
        {.iterations = 3, .warmup = 1});
  };
  const double small = run(1_MiB);
  const double large = run(64_MiB);
  EXPECT_GT(small, 0.0);
  // Fixed per-step costs (IPC opens, rendezvous) keep scaling sublinear,
  // but 64x the data must still cost several times more than 1 MB.
  EXPECT_GT(large, 4.0 * small);
}

TEST(Omb, OptionValidation) {
  auto stack = bc::SimStack::direct(quiet_beluga());
  bc::P2POptions bad;
  bad.src_rank = bad.dst_rank = 0;
  EXPECT_THROW((void)bc::measure_bw(stack.world(), 1_MiB, bad),
               std::invalid_argument);
  bc::P2POptions zero_window;
  zero_window.window = 0;
  EXPECT_THROW((void)bc::measure_bw(stack.world(), 1_MiB, zero_window),
               std::invalid_argument);
}
