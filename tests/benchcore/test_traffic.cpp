// Open-loop traffic generation: deterministic arrival traces with the
// advertised pattern shapes, and end-to-end replay against scheduled and
// unscheduled stacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mpath/benchcore/traffic.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"

namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {

mt::System quiet_beluga() {
  auto s = mt::make_beluga();
  s.costs.jitter_rel = 0;
  return s;
}

}  // namespace

TEST(Traffic, DeterministicInSeed) {
  const auto sys = quiet_beluga();
  bc::TrafficOptions opt;
  opt.transfers = 64;
  opt.seed = 42;
  const auto a = bc::make_arrivals(sys.topology, opt);
  const auto b = bc::make_arrivals(sys.topology, opt);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
  opt.seed = 43;
  const auto c = bc::make_arrivals(sys.topology, opt);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].t != c[i].t || a[i].src != c[i].src ||
              a[i].bytes != c[i].bytes;
  }
  EXPECT_TRUE(differs);
}

TEST(Traffic, StormBurstsShareOneInstant) {
  const auto sys = quiet_beluga();
  bc::TrafficOptions opt;
  opt.pattern = bc::ArrivalPattern::kStorm;
  opt.transfers = 12;
  opt.storm_width = 4;
  opt.mean_interarrival_s = 1e-3;
  const auto arrivals = bc::make_arrivals(sys.topology, opt);
  ASSERT_EQ(arrivals.size(), 12u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i].t, static_cast<double>(i / 4) * 1e-3);
  }
}

TEST(Traffic, PoissonGapsAverageToTheMean) {
  const auto sys = quiet_beluga();
  bc::TrafficOptions opt;
  opt.pattern = bc::ArrivalPattern::kPoisson;
  opt.transfers = 4000;
  opt.mean_interarrival_s = 100e-6;
  const auto arrivals = bc::make_arrivals(sys.topology, opt);
  double prev = 0.0;
  double sum = 0.0;
  for (const auto& a : arrivals) {
    ASSERT_GE(a.t, prev);  // non-decreasing
    sum += a.t - prev;
    prev = a.t;
  }
  const double mean = sum / static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean, 100e-6, 10e-6);  // ~1.6% stderr, 10% slack
}

TEST(Traffic, HeavyTailMatchesMeanWithLargerSpread) {
  const auto sys = quiet_beluga();
  bc::TrafficOptions opt;
  opt.transfers = 4000;
  opt.mean_interarrival_s = 100e-6;
  opt.pattern = bc::ArrivalPattern::kPoisson;
  const auto poisson = bc::make_arrivals(sys.topology, opt);
  opt.pattern = bc::ArrivalPattern::kHeavyTail;
  opt.pareto_alpha = 1.5;
  const auto pareto = bc::make_arrivals(sys.topology, opt);

  auto max_gap = [](const std::vector<bc::Arrival>& v) {
    double prev = 0.0, mx = 0.0;
    for (const auto& a : v) {
      mx = std::max(mx, a.t - prev);
      prev = a.t;
    }
    return mx;
  };
  // Pareto gaps are floored at the scale parameter and the tail dwarfs the
  // exponential's.
  for (std::size_t i = 1; i < pareto.size(); ++i) {
    EXPECT_GE(pareto[i].t - pareto[i - 1].t,
              100e-6 * (1.5 - 1.0) / 1.5 - 1e-12);
  }
  EXPECT_GT(max_gap(pareto), max_gap(poisson));
}

TEST(Traffic, PairsAndSizesComeFromTheConfiguredSets) {
  const auto sys = quiet_beluga();
  bc::TrafficOptions opt;
  opt.transfers = 200;
  opt.sizes = {1ull << 20, 2ull << 20};
  const auto arrivals = bc::make_arrivals(sys.topology, opt);
  const auto gpus = sys.topology.gpus();
  for (const auto& a : arrivals) {
    EXPECT_NE(a.src, a.dst);
    EXPECT_NE(std::find(gpus.begin(), gpus.end(), a.src), gpus.end());
    EXPECT_NE(std::find(gpus.begin(), gpus.end(), a.dst), gpus.end());
    EXPECT_TRUE(a.bytes == (1ull << 20) || a.bytes == (2ull << 20));
  }
  // Round-robin mode cycles through every ordered pair.
  opt.random_pairs = false;
  opt.transfers = static_cast<int>(gpus.size() * (gpus.size() - 1));
  const auto rr = bc::make_arrivals(sys.topology, opt);
  std::vector<std::pair<mt::DeviceId, mt::DeviceId>> seen;
  for (const auto& a : rr) seen.emplace_back(a.src, a.dst);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Traffic, RejectsNonsense) {
  const auto sys = quiet_beluga();
  bc::TrafficOptions opt;
  opt.transfers = 0;
  EXPECT_THROW(bc::make_arrivals(sys.topology, opt), std::invalid_argument);
  opt.transfers = 4;
  opt.sizes.clear();
  EXPECT_THROW(bc::make_arrivals(sys.topology, opt), std::invalid_argument);
  opt = {};
  opt.pattern = bc::ArrivalPattern::kHeavyTail;
  opt.pareto_alpha = 1.0;
  EXPECT_THROW(bc::make_arrivals(sys.topology, opt), std::invalid_argument);
  opt = {};
  opt.pattern = bc::ArrivalPattern::kStorm;
  opt.storm_width = 0;
  EXPECT_THROW(bc::make_arrivals(sys.topology, opt), std::invalid_argument);
}

// End-to-end replay: a storm against a scheduled stack completes every
// transfer, the report accounting adds up, and the scheduler's history has
// one completed record per multi-path transfer.
TEST(Traffic, ReplayAgainstScheduledStackCompletesEverything) {
  auto sys = quiet_beluga();
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg(reg);
  auto stack = bc::SimStack::model_driven_scheduled(
      sys, cfg, mt::PathPolicy::three_gpus());

  bc::TrafficOptions opt;
  opt.pattern = bc::ArrivalPattern::kStorm;
  opt.transfers = 8;
  opt.storm_width = 4;
  opt.mean_interarrival_s = 500e-6;
  opt.sizes = {8ull << 20, 32ull << 20};
  const auto arrivals = bc::make_arrivals(sys.topology, opt);
  const auto report = bc::run_traffic(stack, arrivals);

  EXPECT_EQ(report.transfers, 8);
  EXPECT_EQ(report.completed, 8);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_GT(report.transfers_per_s, 0.0);
  EXPECT_GT(report.aggregate_bandwidth, 0.0);
  const std::uint64_t expected_bytes = std::accumulate(
      arrivals.begin(), arrivals.end(), std::uint64_t{0},
      [](std::uint64_t acc, const bc::Arrival& a) { return acc + a.bytes; });
  EXPECT_EQ(report.bytes_offered, expected_bytes);

  ASSERT_NE(stack.scheduler(), nullptr);
  EXPECT_EQ(stack.scheduler()->history().size(), 8u);
  for (const auto& r : stack.scheduler()->history()) {
    EXPECT_TRUE(r.completed());
    EXPECT_GT(r.predicted_s, 0.0);
  }
}

// The same trace replays identically on unscheduled stacks too (the solo
// baseline path), and twice on fresh stacks gives bit-identical reports.
TEST(Traffic, ReplayIsReproducible) {
  auto sys = quiet_beluga();
  mm::ModelRegistry reg = mpath::tuning::registry_from_topology(sys);
  bc::TrafficOptions opt;
  opt.transfers = 6;
  opt.sizes = {4ull << 20};
  const auto arrivals = bc::make_arrivals(sys.topology, opt);

  auto run_once = [&] {
    mm::PathConfigurator cfg(reg);
    auto stack =
        bc::SimStack::model_driven(sys, cfg, mt::PathPolicy::three_gpus());
    return bc::run_traffic(stack, arrivals);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.completed, 6);
  EXPECT_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.transfers_per_s, r2.transfers_per_s);
}
