#include "mpath/benchcore/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/topo/paths.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/csv.hpp"
#include "mpath/util/units.hpp"

namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
namespace mu = mpath::util;
using namespace mpath::util::literals;

TEST(SweepRunner, ResultsAreIndexOrdered) {
  bc::SweepRunner runner(bc::SweepOptions{4});
  const auto out = runner.run(100, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 3 * i + 1);
  }
}

TEST(SweepRunner, EachIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  bc::SweepRunner runner(bc::SweepOptions{8});
  (void)runner.run(hits.size(), [&](std::size_t i) {
    // Uneven workloads force stealing across blocks.
    if (i % 7 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, JobsOneRunsInline) {
  bc::SweepRunner runner(bc::SweepOptions{1});
  EXPECT_EQ(runner.jobs(), 1);
  const auto caller = std::this_thread::get_id();
  const auto ids = runner.run(
      8, [](std::size_t) { return std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(SweepRunner, LowestIndexExceptionWins) {
  bc::SweepRunner runner(bc::SweepOptions{4});
  try {
    (void)runner.run(40, [](std::size_t i) {
      // Make a high index fail fast and a low index fail slow, so the
      // timing-dependent "first" failure differs from the index order.
      if (i == 37) throw std::runtime_error("scenario 37");
      if (i == 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        throw std::runtime_error("scenario 5");
      }
      return i;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "scenario 5");
  }
}

TEST(SweepRunner, StatsAccountForEveryScenario) {
  bc::SweepRunner runner(bc::SweepOptions{3});
  (void)runner.run(20, [](std::size_t i) { return i; });
  (void)runner.run(10, [](std::size_t i) { return i; });
  const auto& s = runner.stats();
  EXPECT_EQ(s.jobs, 3);
  EXPECT_EQ(s.scenarios, 30u);
  std::uint64_t ran = 0;
  for (auto c : s.worker_scenarios) ran += c;
  EXPECT_EQ(ran, 30u);
  EXPECT_GT(s.wall_s, 0.0);
  EXPECT_GE(s.efficiency(), 0.0);
  EXPECT_LE(s.efficiency(), 1.0);
}

TEST(SweepRunner, MoreJobsThanScenariosIsFine) {
  bc::SweepRunner runner(bc::SweepOptions{16});
  const auto out = runner.run(3, [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 2u);
}

namespace {

/// A miniature fig5-style sweep: measure direct + model-driven bandwidth
/// over a (policy, size) grid on private stacks, merge serially into a
/// CSV. Returns the CSV bytes.
std::string mini_sweep_csv(int jobs, const std::string& path) {
  auto system = mt::make_beluga();
  const auto registry = mpath::tuning::calibrate(system);
  const auto gpus = system.topology.gpus();
  const std::vector<mt::PathPolicy> policies = {mt::PathPolicy::two_gpus(),
                                                mt::PathPolicy::three_gpus()};
  const std::vector<std::size_t> sizes = {8_MiB, 64_MiB};

  struct Cell {
    double direct = 0.0;
    double dynamic = 0.0;
  };
  bc::SweepRunner runner(bc::SweepOptions{jobs});
  auto cells = runner.run(
      policies.size() * sizes.size(), [&](std::size_t idx) {
        const auto& policy = policies[idx / sizes.size()];
        const std::size_t bytes = sizes[idx % sizes.size()];
        bc::P2POptions p2p;
        p2p.iterations = 2;
        Cell cell;
        auto direct = bc::SimStack::direct(system);
        cell.direct = bc::measure_bw(direct.world(), bytes, p2p);
        mm::PathConfigurator configurator(registry);
        auto dynamic = bc::SimStack::model_driven(system, configurator,
                                                  policy);
        cell.dynamic = bc::measure_bw(dynamic.world(), bytes, p2p);
        return cell;
      });

  {
    mu::CsvWriter csv(path);
    csv.header({"policy", "bytes", "direct", "dynamic"});
    std::size_t idx = 0;
    for (const auto& policy : policies) {
      for (std::size_t bytes : sizes) {
        const Cell& cell = cells[idx++];
        csv.row({policy.label(), std::to_string(bytes),
                 mu::CsvWriter::num(cell.direct),
                 mu::CsvWriter::num(cell.dynamic)});
      }
    }
  }
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

}  // namespace

TEST(SweepDeterminism, ParallelCsvIsByteIdenticalToSerial) {
  const std::string serial =
      mini_sweep_csv(1, "/tmp/mpath_sweep_serial.csv");
  const std::string parallel =
      mini_sweep_csv(4, "/tmp/mpath_sweep_par4.csv");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}
