#include "mpath/benchcore/hunter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mpath/util/units.hpp"

namespace mf = mpath::fuzz;
namespace mm = mpath::model;
namespace mt = mpath::topo;
using mpath::util::gbps;
using mpath::util::usec;
using namespace mpath::util::literals;

namespace {

/// Tiny deterministic hand-built scenario: 2 GPUs + host, NVLink + PCIe.
mf::Scenario mini_scenario() {
  mf::Scenario sc;
  sc.topo.name = "mini";
  sc.topo.devices = {{mt::DeviceKind::Host, 0, "host0"},
                     {mt::DeviceKind::Gpu, 0, "gpu0"},
                     {mt::DeviceKind::Gpu, 0, "gpu1"}};
  sc.topo.mem_channels = {{0, gbps(30), usec(0.2)}};
  const auto duplex = [&](mt::DeviceId a, mt::DeviceId b, mt::LinkKind k,
                          double cap, double lat) {
    sc.topo.edges.push_back({a, b, k, cap, lat});
    sc.topo.edges.push_back({b, a, k, cap, lat});
  };
  duplex(1, 2, mt::LinkKind::NVLink2, gbps(46), usec(1.0));
  duplex(1, 0, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  duplex(2, 0, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  sc.topo.costs.jitter_rel = 0.0;
  sc.transfers = {{1, 2, 8_MiB, mt::PathPolicy::two_gpus()}};
  return sc;
}

}  // namespace

TEST(Hunter, ScenarioJsonRoundTrip) {
  mf::Scenario sc = mf::generate_scenario(0xFEEDFACEDEADBEEFull);
  sc.note = "round trip";
  sc.expected = mm::MispredictKind::kRegret;
  const std::string dumped = sc.to_json().dump();
  const mf::Scenario back =
      mf::Scenario::from_json(mpath::util::json::Value::parse(dumped));
  EXPECT_EQ(back.to_json().dump(), dumped);
  EXPECT_EQ(back.seed, sc.seed);  // full 64-bit seed survives (> 2^53)
  EXPECT_EQ(back.expected, mm::MispredictKind::kRegret);
  ASSERT_EQ(back.transfers.size(), sc.transfers.size());
  EXPECT_EQ(back.transfers[0].bytes, sc.transfers[0].bytes);
}

TEST(Hunter, SaveLoadCorpusRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mpath_hunter_corpus")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  mf::Scenario sc = mini_scenario();
  sc.note = "frozen";
  mf::save_scenario(sc, dir + "/b_case.json");
  mf::save_scenario(mf::generate_scenario(3), dir + "/a_case.json");
  const std::vector<mf::CorpusEntry> corpus = mf::load_corpus(dir);
  ASSERT_EQ(corpus.size(), 2u);
  // Sorted by filename for deterministic replay order.
  EXPECT_NE(corpus[0].path.find("a_case"), std::string::npos);
  EXPECT_EQ(corpus[1].scenario.note, "frozen");
  EXPECT_TRUE(mf::load_corpus(dir + "/does_not_exist").empty());
  std::filesystem::remove_all(dir);
}

TEST(Hunter, EvaluateMiniScenarioIsAccurate) {
  const mf::ScenarioReport report = mf::evaluate_scenario(mini_scenario());
  ASSERT_EQ(report.outcomes.size(), 1u);
  const mf::CaseOutcome& out = report.outcomes[0];
  EXPECT_GT(out.observed_bw, 0.0);
  EXPECT_GT(out.predicted_bw, 0.0);
  EXPECT_GE(out.best_bw, out.observed_bw);
  // A calibrated-envelope topology must not trip the hunter's thresholds.
  EXPECT_EQ(report.kind, mm::MispredictKind::kNone) << "error " << out.error
                                                    << " regret " << out.regret;
}

TEST(Hunter, EvaluateRejectsMalformedScenarios) {
  mf::Scenario sc = mini_scenario();
  sc.transfers.clear();
  EXPECT_THROW((void)mf::evaluate_scenario(sc), std::invalid_argument);
  sc = mini_scenario();
  sc.transfers[0].dst = sc.transfers[0].src;
  EXPECT_THROW((void)mf::evaluate_scenario(sc), std::invalid_argument);
  sc = mini_scenario();
  sc.transfers[0].src = 0;  // host endpoint
  EXPECT_THROW((void)mf::evaluate_scenario(sc), std::invalid_argument);
}

TEST(Hunter, HuntIsDeterministicAcrossJobCounts) {
  mf::HuntOptions opt;
  opt.seed = 11;
  opt.count = 4;
  const auto run_with = [&](int jobs) {
    mf::HuntOptions o = opt;
    o.jobs = jobs;
    return mf::run_hunt(o);
  };
  const mf::HuntResult serial = run_with(1);
  const mf::HuntResult parallel = run_with(3);
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    const mf::ScenarioReport& a = serial.reports[i];
    const mf::ScenarioReport& b = parallel.reports[i];
    EXPECT_EQ(a.scenario.to_json().dump(), b.scenario.to_json().dump());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t j = 0; j < a.outcomes.size(); ++j) {
      EXPECT_EQ(a.outcomes[j].predicted_bw, b.outcomes[j].predicted_bw);
      EXPECT_EQ(a.outcomes[j].observed_bw, b.outcomes[j].observed_bw);
      EXPECT_EQ(a.outcomes[j].best_bw, b.outcomes[j].best_bw);
      EXPECT_EQ(a.outcomes[j].kind, b.outcomes[j].kind);
    }
  }
}

TEST(Hunter, MinimizerShrinksWhilePreservingTheFlag) {
  // Zero thresholds flag every scenario, so the minimizer must preserve a
  // flag that any valid shrink also reproduces — exercising every cut kind
  // without depending on a specific model defect.
  mf::EvalOptions eval;
  eval.thresholds.max_error = 0.0;
  eval.thresholds.max_regret = 1.0;  // regret varies under cuts; pin error

  const mf::Scenario sc = mf::generate_scenario(5);
  const mf::ScenarioReport before = mf::evaluate_scenario(sc, eval);
  ASSERT_TRUE(before.flagged());

  const mf::Scenario min = mf::minimize_scenario(sc, eval);
  EXPECT_LE(min.topo.devices.size(), sc.topo.devices.size());
  EXPECT_LE(min.topo.edges.size(), sc.topo.edges.size());
  EXPECT_LE(min.transfers.size(), sc.transfers.size());
  EXPECT_EQ(min.transfers.size(), 1u);
  EXPECT_NE(min.expected, mm::MispredictKind::kNone);

  // The shrunken scenario still builds, routes, and reproduces.
  const mf::ScenarioReport after = mf::evaluate_scenario(min, eval);
  EXPECT_TRUE(mm::covers(after.kind, min.expected));
}

TEST(Hunter, MinimizerReturnsUnflaggedScenariosUntouched) {
  const mf::Scenario sc = mini_scenario();
  const mf::Scenario min = mf::minimize_scenario(sc);  // default thresholds
  EXPECT_EQ(min.to_json().dump(), sc.to_json().dump());
}
