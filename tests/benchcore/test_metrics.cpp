#include "mpath/benchcore/metrics.hpp"

#include <gtest/gtest.h>

#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
using mpath::util::gbps;

TEST(Metrics, MeanRelativeError) {
  const std::vector<std::pair<double, double>> pairs{
      {110.0, 100.0}, {95.0, 100.0}, {100.0, 100.0}};
  EXPECT_NEAR(bc::mean_relative_error(pairs), (0.1 + 0.05 + 0.0) / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(bc::mean_relative_error({}), 0.0);
}

TEST(Metrics, PredictedBandwidthMatchesConfigurator) {
  const auto sys = mt::make_beluga();
  const auto reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg(reg);
  const auto gpus = sys.topology.gpus();
  const double pred = bc::predicted_bandwidth(
      cfg, sys.topology, gpus[0], gpus[1], 256u << 20,
      mt::PathPolicy::three_gpus());
  EXPECT_GT(pred, 2.0 * gbps(46));
  EXPECT_LT(pred, 3.0 * gbps(46));
  // Direct-only prediction approaches the single lane.
  const double direct = bc::predicted_bandwidth(
      cfg, sys.topology, gpus[0], gpus[1], 256u << 20,
      mt::PathPolicy::direct_only());
  EXPECT_NEAR(direct, gbps(46), 0.05 * gbps(46));
}
