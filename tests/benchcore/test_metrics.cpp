#include "mpath/benchcore/metrics.hpp"

#include <gtest/gtest.h>

#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

namespace bc = mpath::benchcore;
namespace mm = mpath::model;
namespace mt = mpath::topo;
using mpath::util::gbps;

TEST(Metrics, MeanRelativeError) {
  const std::vector<std::pair<double, double>> pairs{
      {110.0, 100.0}, {95.0, 100.0}, {100.0, 100.0}};
  EXPECT_NEAR(bc::mean_relative_error(pairs), (0.1 + 0.05 + 0.0) / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(bc::mean_relative_error({}), 0.0);
}

TEST(Metrics, PredictedBandwidthMatchesConfigurator) {
  const auto sys = mt::make_beluga();
  const auto reg = mpath::tuning::registry_from_topology(sys);
  mm::PathConfigurator cfg(reg);
  const auto gpus = sys.topology.gpus();
  const double pred = bc::predicted_bandwidth(
      cfg, sys.topology, gpus[0], gpus[1], 256u << 20,
      mt::PathPolicy::three_gpus());
  EXPECT_GT(pred, 2.0 * gbps(46));
  EXPECT_LT(pred, 3.0 * gbps(46));
  // Direct-only prediction approaches the single lane.
  const double direct = bc::predicted_bandwidth(
      cfg, sys.topology, gpus[0], gpus[1], 256u << 20,
      mt::PathPolicy::direct_only());
  EXPECT_NEAR(direct, gbps(46), 0.05 * gbps(46));
}

TEST(Metrics, DegradedRunMetricsSummarizesRecovery) {
  mpath::pipeline::RecoveryStats st;
  st.path_timeouts = 2;
  st.replans = 1;
  st.transfers_recovered = 1;
  st.recovery_time_s = 0.25;
  const auto m = bc::degraded_run_metrics(st, 1000, 1000, 2.0);
  EXPECT_EQ(m.bytes_requested, 1000u);
  EXPECT_EQ(m.bytes_delivered, 1000u);
  EXPECT_DOUBLE_EQ(m.delivered_bandwidth, 500.0);
  EXPECT_EQ(m.path_timeouts, 2u);
  EXPECT_EQ(m.replans, 1u);
  EXPECT_DOUBLE_EQ(m.recovery_time_s, 0.25);
  EXPECT_TRUE(m.completed);

  st.transfers_failed = 1;
  const auto failed = bc::degraded_run_metrics(st, 1000, 400, 0.0);
  EXPECT_FALSE(failed.completed);
  EXPECT_EQ(failed.bytes_delivered, 400u);
  EXPECT_DOUBLE_EQ(failed.delivered_bandwidth, 0.0);  // no elapsed time
}
