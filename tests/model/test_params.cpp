#include "mpath/model/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {
mm::PathParams direct_path(double alpha, double beta) {
  mm::PathParams p;
  p.plan = {mt::PathKind::Direct, mt::kInvalidDevice};
  p.first = {alpha, beta};
  return p;
}

mm::PathParams staged_path(double a1, double b1, double a2, double b2,
                           double eps) {
  mm::PathParams p;
  p.plan = {mt::PathKind::GpuStaged, 2};
  p.first = {a1, b1};
  p.second = mm::LinkParams{a2, b2};
  p.epsilon = eps;
  return p;
}
}  // namespace

TEST(Params, LinkTimeIsHockney) {
  mm::LinkParams lp{2e-6, 50e9};
  EXPECT_DOUBLE_EQ(lp.time(100e6), 2e-6 + 100e6 / 50e9);
}

TEST(Params, DirectTermsMatchEq8SpecialCase) {
  // Direct path: Omega = 1/beta, Delta = alpha.
  const auto p = direct_path(3e-6, 46e9);
  const auto t = mm::terms_unpipelined(p);
  EXPECT_DOUBLE_EQ(t.omega, 1.0 / 46e9);
  EXPECT_DOUBLE_EQ(t.delta, 3e-6);
}

TEST(Params, StagedUnpipelinedTermsMatchSection33) {
  // Omega = 1/b + 1/b', Delta = a + a' + eps.
  const auto p = staged_path(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  const auto t = mm::terms_unpipelined(p);
  EXPECT_DOUBLE_EQ(t.omega, 1.0 / 46e9 + 1.0 / 12e9);
  EXPECT_DOUBLE_EQ(t.delta, 2e-6 + 3e-6 + 1.5e-6);
}

TEST(Params, PipelinedCase1TermsMatchEq22) {
  // beta < beta': first link is the bottleneck.
  const auto p = staged_path(2e-6, 12e9, 3e-6, 46e9, 1.5e-6);
  const mm::PhiConstants phi{0.25, 0.5};
  const auto t = mm::terms_pipelined(p, phi);
  EXPECT_DOUBLE_EQ(t.omega, 1.0 / 12e9 + 0.25 / 46e9);
  EXPECT_DOUBLE_EQ(t.delta, 1.5e-6 + 3e-6 + 2e-6 / 0.25);
}

TEST(Params, PipelinedCase2TermsMatchEq22) {
  // beta >= beta': second link is the bottleneck.
  const auto p = staged_path(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  const mm::PhiConstants phi{0.25, 0.5};
  const auto t = mm::terms_pipelined(p, phi);
  EXPECT_DOUBLE_EQ(t.omega, 0.5 / 46e9 + 1.0 / 12e9);
  EXPECT_DOUBLE_EQ(t.delta, 2e-6 + (1.5e-6 + 3e-6) / 0.5);
}

TEST(Params, PipelinedDirectFallsBackToUnpipelined) {
  const auto p = direct_path(3e-6, 46e9);
  const auto a = mm::terms_pipelined(p, {0.3, 0.4});
  const auto b = mm::terms_unpipelined(p);
  EXPECT_DOUBLE_EQ(a.omega, b.omega);
  EXPECT_DOUBLE_EQ(a.delta, b.delta);
}

TEST(Params, PipelinedRejectsBadPhi) {
  const auto p = staged_path(2e-6, 12e9, 3e-6, 46e9, 1e-6);
  EXPECT_THROW((void)mm::terms_pipelined(p, {0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)mm::terms_pipelined(p, {1.0, -1.0}),
               std::invalid_argument);
}

TEST(Params, ExactPipelinedTimeCase1MatchesEq17) {
  const auto p = staged_path(2e-6, 12e9, 3e-6, 46e9, 1.5e-6);
  const double theta = 0.4, n = 64e6;
  const double expected = 2.0 * std::sqrt(theta * n * 2e-6 / 46e9) +
                          theta * n / 12e9 + 1.5e-6 + 3e-6;
  EXPECT_NEAR(mm::exact_pipelined_time(p, theta, n), expected, 1e-15);
}

TEST(Params, ExactPipelinedTimeCase2MatchesEq18) {
  const auto p = staged_path(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  const double theta = 0.4, n = 64e6;
  const double expected = 2.0 * std::sqrt(theta * n * (1.5e-6 + 3e-6) / 46e9) +
                          theta * n / 12e9 + 2e-6;
  EXPECT_NEAR(mm::exact_pipelined_time(p, theta, n), expected, 1e-15);
}

TEST(Params, PathTermsTimeIsEq21) {
  mm::PathTerms t{1.0 / 50e9, 4e-6};
  EXPECT_DOUBLE_EQ(t.time(0.5, 100e6), 0.5 * 100e6 / 50e9 + 4e-6);
}
