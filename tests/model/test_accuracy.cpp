#include "mpath/model/accuracy.hpp"

#include <gtest/gtest.h>

namespace mm = mpath::model;

TEST(Accuracy, PredictionError) {
  EXPECT_DOUBLE_EQ(mm::prediction_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(mm::prediction_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(mm::prediction_error(100.0, 100.0), 0.0);
  // A zero observation is a simulation failure, not a model error.
  EXPECT_DOUBLE_EQ(mm::prediction_error(50.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(mm::prediction_error(50.0, -1.0), 0.0);
}

TEST(Accuracy, PolicyRegret) {
  EXPECT_DOUBLE_EQ(mm::policy_regret(80.0, 100.0), 0.2);
  EXPECT_DOUBLE_EQ(mm::policy_regret(100.0, 100.0), 0.0);
  // Chosen beating "best" clamps to zero, never negative.
  EXPECT_DOUBLE_EQ(mm::policy_regret(120.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(mm::policy_regret(50.0, 0.0), 0.0);
  // Negative chosen bandwidth can't exceed full regret.
  EXPECT_DOUBLE_EQ(mm::policy_regret(-10.0, 100.0), 1.0);
}

TEST(Accuracy, ClassifyAgainstThresholds) {
  const mm::AccuracyThresholds th{0.25, 0.20};
  EXPECT_EQ(mm::classify(0.10, 0.10, th), mm::MispredictKind::kNone);
  EXPECT_EQ(mm::classify(0.30, 0.10, th), mm::MispredictKind::kError);
  EXPECT_EQ(mm::classify(0.10, 0.30, th), mm::MispredictKind::kRegret);
  EXPECT_EQ(mm::classify(0.30, 0.30, th), mm::MispredictKind::kBoth);
  // Thresholds are exclusive: exactly-at-threshold does not flag.
  EXPECT_EQ(mm::classify(0.25, 0.20, th), mm::MispredictKind::kNone);
}

TEST(Accuracy, CoversIsASupersetCheck) {
  using K = mm::MispredictKind;
  EXPECT_TRUE(mm::covers(K::kBoth, K::kError));
  EXPECT_TRUE(mm::covers(K::kBoth, K::kRegret));
  EXPECT_TRUE(mm::covers(K::kBoth, K::kBoth));
  EXPECT_TRUE(mm::covers(K::kError, K::kError));
  EXPECT_FALSE(mm::covers(K::kError, K::kRegret));
  EXPECT_FALSE(mm::covers(K::kError, K::kBoth));
  EXPECT_FALSE(mm::covers(K::kNone, K::kError));
  // Everything covers kNone.
  EXPECT_TRUE(mm::covers(K::kNone, K::kNone));
  EXPECT_TRUE(mm::covers(K::kRegret, K::kNone));
}

TEST(Accuracy, KindStringsRoundTrip) {
  using K = mm::MispredictKind;
  for (const K k : {K::kNone, K::kError, K::kRegret, K::kBoth}) {
    EXPECT_EQ(mm::mispredict_kind_from_string(mm::to_string(k)), k);
  }
  EXPECT_THROW((void)mm::mispredict_kind_from_string("sometimes"),
               std::invalid_argument);
}
