#include "mpath/model/chunking.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {
mm::PathParams staged(double a1, double b1, double a2, double b2,
                      double eps) {
  mm::PathParams p;
  p.plan = {mt::PathKind::GpuStaged, 2};
  p.first = {a1, b1};
  p.second = mm::LinkParams{a2, b2};
  p.epsilon = eps;
  return p;
}

mm::PathParams direct() {
  mm::PathParams p;
  p.plan = {mt::PathKind::Direct, mt::kInvalidDevice};
  p.first = {2e-6, 46e9};
  return p;
}
}  // namespace

TEST(Chunking, DirectPathUsesOneChunk) {
  EXPECT_DOUBLE_EQ(mm::ChunkOptimizer::exact_chunks(direct(), 1.0, 64e6), 1.0);
  EXPECT_DOUBLE_EQ(
      mm::ChunkOptimizer::linear_chunks(direct(), {0.5, 0.5}, 1.0, 64e6), 1.0);
}

TEST(Chunking, ExactCase1MatchesEq14) {
  // beta < beta': k = sqrt(theta*n / (alpha * beta')).
  const auto p = staged(2e-6, 12e9, 3e-6, 46e9, 1.5e-6);
  const double theta = 0.5, n = 64e6;
  const double expected = std::sqrt(theta * n / (2e-6 * 46e9));
  EXPECT_NEAR(mm::ChunkOptimizer::exact_chunks(p, theta, n), expected, 1e-12);
}

TEST(Chunking, ExactCase2MatchesEq15) {
  // beta >= beta': k = sqrt(theta*n / (beta * (eps + alpha'))).
  const auto p = staged(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  const double theta = 0.5, n = 64e6;
  const double expected = std::sqrt(theta * n / (46e9 * (1.5e-6 + 3e-6)));
  EXPECT_NEAR(mm::ChunkOptimizer::exact_chunks(p, theta, n), expected, 1e-12);
}

TEST(Chunking, ExactChunksNeverBelowOne) {
  const auto p = staged(100e-6, 46e9, 100e-6, 12e9, 50e-6);
  EXPECT_DOUBLE_EQ(mm::ChunkOptimizer::exact_chunks(p, 0.01, 1e4), 1.0);
  EXPECT_DOUBLE_EQ(mm::ChunkOptimizer::exact_chunks(p, 0.0, 64e6), 1.0);
}

TEST(Chunking, ExactChunksGrowWithMessageSize) {
  const auto p = staged(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  double prev = 0.0;
  for (double n = 2e6; n <= 512e6; n *= 4) {
    const double k = mm::ChunkOptimizer::exact_chunks(p, 0.3, n);
    EXPECT_GT(k, prev);
    prev = k;
  }
  // sqrt scaling: 4x the size, 2x the chunks.
  const double k1 = mm::ChunkOptimizer::exact_chunks(p, 0.3, 16e6);
  const double k2 = mm::ChunkOptimizer::exact_chunks(p, 0.3, 64e6);
  EXPECT_NEAR(k2 / k1, 2.0, 1e-9);
}

TEST(Chunking, LinearMatchesPhiTimesX) {
  const auto p = staged(2e-6, 12e9, 3e-6, 46e9, 1.5e-6);
  const double theta = 0.5, n = 64e6;
  const double x = theta * n / (2e-6 * 46e9);
  EXPECT_NEAR(mm::ChunkOptimizer::linear_chunks(p, {0.01, 99.0}, theta, n),
              0.01 * x, 1e-9);
  // Case 2 uses phi2.
  const auto q = staged(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  const double x2 = theta * n / (46e9 * (1.5e-6 + 3e-6));
  EXPECT_NEAR(mm::ChunkOptimizer::linear_chunks(q, {99.0, 0.02}, theta, n),
              0.02 * x2, 1e-9);
}

TEST(Chunking, ClampChunksRoundsAndBounds) {
  EXPECT_EQ(mm::ChunkOptimizer::clamp_chunks(3.4, 64), 3);
  EXPECT_EQ(mm::ChunkOptimizer::clamp_chunks(3.6, 64), 4);
  EXPECT_EQ(mm::ChunkOptimizer::clamp_chunks(0.2, 64), 1);
  EXPECT_EQ(mm::ChunkOptimizer::clamp_chunks(1000.0, 64), 64);
  EXPECT_EQ(mm::ChunkOptimizer::clamp_chunks(5.0, 0), 1);  // degenerate cap
}

TEST(PhiFitter, TangentFallbackOnDegenerateRange) {
  // x_min == x_max: phi = 1/sqrt(x), so phi*x == sqrt(x) exactly.
  const double x = 400.0;
  const double phi = mm::PhiFitter::fit_over_range(x, x);
  EXPECT_NEAR(phi * x, std::sqrt(x), 1e-9);
}

TEST(PhiFitter, FitIsReasonableOverModestRange) {
  // sqrt is not linear over wide spans; over a modest 2x span the LS fit
  // should stay within ~20% everywhere.
  const double a = 400.0, b = 800.0;
  const double phi = mm::PhiFitter::fit_over_range(a, b);
  for (double x = a; x <= b; x *= 1.1) {
    const double rel = std::abs(phi * x - std::sqrt(x)) / std::sqrt(x);
    EXPECT_LT(rel, 0.25) << "x=" << x;
  }
}

TEST(PhiFitter, WideRangeFitDegradesGracefully) {
  // Over a 16x span the best linear fit is inherently coarse (the paper's
  // per-n constants, c*f(n), exist precisely to avoid this): verify the fit
  // is still the LS optimum but document the ~70% worst-case error.
  const double a = 50.0, b = 800.0;
  const double phi = mm::PhiFitter::fit_over_range(a, b);
  double worst = 0.0;
  for (double x = a; x <= b; x *= 1.25) {
    worst = std::max(worst,
                     std::abs(phi * x - std::sqrt(x)) / std::sqrt(x));
  }
  EXPECT_GT(worst, 0.2);   // genuinely coarse...
  EXPECT_LT(worst, 1.0);   // ...but bounded
}

TEST(PhiFitter, ClosedFormMatchesNumericalLeastSquares) {
  const double a = 10.0, b = 1000.0;
  const double phi = mm::PhiFitter::fit_over_range(a, b);
  // Numerical LS over a dense grid.
  double num = 0.0, den = 0.0;
  const int steps = 100000;
  for (int i = 0; i < steps; ++i) {
    const double x = a + (b - a) * (i + 0.5) / steps;
    num += std::pow(x, 1.5);
    den += x * x;
  }
  EXPECT_NEAR(phi, num / den, 1e-3 * phi);
}

TEST(PhiFitter, FitForPathSelectsCase) {
  // Case 1 path: phi1 fitted, phi2 left at 1.
  const auto p1 = staged(2e-6, 12e9, 3e-6, 46e9, 1.5e-6);
  const auto phi1 = mm::PhiFitter::fit_for_path(p1, 2e6, 512e6, 0.33);
  EXPECT_NE(phi1.phi1, 1.0);
  EXPECT_DOUBLE_EQ(phi1.phi2, 1.0);
  // Case 2 path: phi2 fitted.
  const auto p2 = staged(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  const auto phi2 = mm::PhiFitter::fit_for_path(p2, 2e6, 512e6, 0.33);
  EXPECT_DOUBLE_EQ(phi2.phi1, 1.0);
  EXPECT_NE(phi2.phi2, 1.0);
  // Direct path: identity.
  const auto phid = mm::PhiFitter::fit_for_path(direct(), 2e6, 512e6, 0.33);
  EXPECT_DOUBLE_EQ(phid.phi1, 1.0);
  EXPECT_DOUBLE_EQ(phid.phi2, 1.0);
}

TEST(PhiFitter, PerMessageTangentFitIsExactAtOperatingPoint) {
  // The c*f(n) construction: refit phi at each message size with the hint
  // theta. At theta == theta_hint the linearized time equals the exact
  // optimal-chunk time (Eqs. 17/18) by construction.
  const auto p = staged(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  for (double n = 8e6; n <= 512e6; n *= 2) {
    const auto phi = mm::PhiFitter::fit_for_path(p, n, n, 0.5);
    const auto terms = mm::terms_pipelined(p, phi);
    const double exact = mm::exact_pipelined_time(p, 0.5, n);
    EXPECT_NEAR(terms.time(0.5, n), exact, 1e-9 * exact) << "n=" << n;
  }
}

TEST(PhiFitter, PerMessageFitStaysCloseOffOperatingPoint) {
  // When the solved theta deviates from the hint by up to 2x, the
  // linearized time stays within ~25% of the exact optimum.
  const auto p = staged(2e-6, 46e9, 3e-6, 12e9, 1.5e-6);
  for (double n = 8e6; n <= 512e6; n *= 4) {
    const auto phi = mm::PhiFitter::fit_for_path(p, n, n, 0.4);
    const auto terms = mm::terms_pipelined(p, phi);
    for (double theta : {0.2, 0.3, 0.5, 0.8}) {
      const double exact = mm::exact_pipelined_time(p, theta, n);
      EXPECT_LT(std::abs(terms.time(theta, n) - exact) / exact, 0.25)
          << "n=" << n << " theta=" << theta;
    }
  }
}
