#include "mpath/model/configurator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mpath/topo/system.hpp"

namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {

// Beluga-flavored registry: NVLink hops at 46 GB/s, PCIe hops at 12 GB/s.
struct Fixture {
  mt::System sys = mt::make_beluga();
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
  mt::DeviceId host = sys.topology.hosts()[0];
  mm::ModelRegistry reg{"beluga"};

  Fixture() {
    for (auto a : gpus) {
      for (auto b : gpus) {
        if (a != b) reg.set_route_params(a, b, {3e-6, 46e9});
      }
      reg.set_route_params(a, host, {6e-6, 11.5e9});
      reg.set_route_params(host, a, {6e-6, 11.5e9});
    }
    reg.set_epsilon(mt::PathKind::GpuStaged, 1.5e-6);
    reg.set_epsilon(mt::PathKind::HostStaged, 4e-6);
    reg.set_issue_alpha(1.2e-6);
  }

  std::vector<mt::PathPlan> paths(const mt::PathPolicy& policy) {
    return mt::enumerate_paths(sys.topology, gpus[0], gpus[1], policy);
  }
};

std::uint64_t sum_bytes(const mm::TransferConfig& c) {
  std::uint64_t s = 0;
  for (const auto& p : c.paths) s += p.bytes;
  return s;
}

}  // namespace

TEST(Configurator, SharesSumToMessageExactly) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  for (std::uint64_t n : {2u << 20, 17u << 20, 64u << 20, 512u << 20}) {
    const auto paths = f.paths(mt::PathPolicy::three_gpus_with_host());
    const auto& c = cfg.configure(f.gpus[0], f.gpus[1], n, paths);
    EXPECT_EQ(sum_bytes(c), n);
    EXPECT_EQ(c.total_bytes, n);
  }
}

TEST(Configurator, DirectOnlyGetsWholeMessage) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::direct_only());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  ASSERT_EQ(c.paths.size(), 1u);
  EXPECT_EQ(c.paths[0].bytes, 64u << 20);
  EXPECT_EQ(c.paths[0].chunks, 1);
  EXPECT_NEAR(c.predicted_bandwidth(), 46e9, 2e9);
}

TEST(Configurator, LargeMessageUsesAllPaths) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 512u << 20, paths);
  for (const auto& share : c.paths) {
    EXPECT_GT(share.bytes, 0u) << mt::describe(share.plan, f.sys.topology);
  }
  // Three ~46 GB/s lanes: aggregate prediction lands well above 2x direct.
  EXPECT_GT(c.predicted_bandwidth(), 2.0 * 46e9);
  EXPECT_LT(c.predicted_bandwidth(), 3.0 * 46e9);
}

TEST(Configurator, TinyMessageStaysOnDirectPath) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::three_gpus_with_host());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 64u << 10, paths);
  EXPECT_EQ(c.paths[0].bytes, 64u << 10);
  for (std::size_t i = 1; i < c.paths.size(); ++i) {
    EXPECT_EQ(c.paths[i].bytes, 0u);
  }
}

TEST(Configurator, StagedPathsGetMultipleChunks) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 256u << 20, paths);
  EXPECT_EQ(c.paths[0].chunks, 1);  // direct never chunks
  for (std::size_t i = 1; i < c.paths.size(); ++i) {
    EXPECT_GT(c.paths[i].chunks, 1)
        << mt::describe(c.paths[i].plan, f.sys.topology);
    EXPECT_LE(c.paths[i].chunks, cfg.options().max_chunks);
  }
}

TEST(Configurator, HostPathGetsSmallerShareThanNvlinkPaths) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::three_gpus_with_host());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 512u << 20, paths);
  const auto& host_share = c.paths.back();
  ASSERT_EQ(host_share.plan.kind, mt::PathKind::HostStaged);
  for (std::size_t i = 0; i + 1 < c.paths.size(); ++i) {
    EXPECT_GT(c.paths[i].bytes, host_share.bytes);
  }
  EXPECT_GT(host_share.bytes, 0u);  // but it still contributes at 512MB
}

TEST(Configurator, CacheHitsOnRepeatedRequests) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  EXPECT_EQ(cfg.cache_misses(), 1u);
  EXPECT_EQ(cfg.cache_hits(), 2u);
  // Different size is a different entry.
  (void)cfg.configure(f.gpus[0], f.gpus[1], 128u << 20, paths);
  EXPECT_EQ(cfg.cache_misses(), 2u);
  cfg.clear_cache();
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  EXPECT_EQ(cfg.cache_misses(), 3u);
}

TEST(Configurator, CacheCanBeDisabled) {
  Fixture f;
  mm::ConfiguratorOptions opt;
  opt.cache_enabled = false;
  mm::PathConfigurator cfg(f.reg, opt);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  EXPECT_EQ(cfg.cache_hits(), 0u);
  EXPECT_EQ(cfg.cache_misses(), 2u);
}

TEST(Configurator, SequentialInitiationPenalizesLaterPaths) {
  Fixture f;
  mm::ConfiguratorOptions with;
  mm::ConfiguratorOptions without;
  without.sequential_initiation = false;
  mm::PathConfigurator cfg_with(f.reg, with);
  mm::PathConfigurator cfg_without(f.reg, without);
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  const auto& a = cfg_with.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  const auto& b =
      cfg_without.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  // With accumulation, later paths carry extra Delta and receive less.
  EXPECT_LT(a.paths[2].bytes, b.paths[2].bytes);
  EXPECT_GT(a.paths[0].bytes, b.paths[0].bytes);
}

TEST(Configurator, UnpipelinedModeUsesSection33Terms) {
  Fixture f;
  mm::ConfiguratorOptions opt;
  opt.pipelining = false;
  mm::PathConfigurator cfg(f.reg, opt);
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 256u << 20, paths);
  for (const auto& share : c.paths) EXPECT_EQ(share.chunks, 1);
  // Unpipelined staging halves staged-path effectiveness (Omega doubles):
  // staged shares shrink relative to the pipelined configuration.
  mm::PathConfigurator piped(f.reg);
  const auto& cp = piped.configure(f.gpus[0], f.gpus[1], 256u << 20, paths);
  EXPECT_LT(c.paths[1].bytes, cp.paths[1].bytes);
}

TEST(Configurator, InputValidation) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  std::vector<mt::PathPlan> empty;
  EXPECT_THROW((void)cfg.configure(f.gpus[0], f.gpus[1], 1u << 20, empty),
               std::invalid_argument);
  std::vector<mt::PathPlan> staged_first{{mt::PathKind::GpuStaged, f.gpus[2]}};
  EXPECT_THROW(
      (void)cfg.configure(f.gpus[0], f.gpus[1], 1u << 20, staged_first),
      std::invalid_argument);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  EXPECT_THROW((void)cfg.configure(f.gpus[0], f.gpus[1], 0, paths),
               std::invalid_argument);
}

TEST(Configurator, PredictedTimeIsMaxOfActivePathTimes) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 128u << 20, paths);
  double max_t = 0;
  for (const auto& share : c.paths) {
    max_t = std::max(max_t, share.predicted_time);
  }
  EXPECT_DOUBLE_EQ(c.predicted_time, max_t);
  EXPECT_GT(c.predicted_time, 0.0);
}

TEST(Configurator, ContentionFactorAppliesOnlyAboveThreshold) {
  Fixture f;
  // Make the first staged path look dramatically slower end to end.
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  f.reg.set_contention_factor(f.gpus[0], f.gpus[1], paths[1], 4.0);
  mm::PathConfigurator cfg(f.reg);
  // Below the threshold the override is ignored: shares match a fresh
  // registry without the override.
  Fixture g;
  mm::PathConfigurator cfg_clean(g.reg);
  const std::uint64_t small = 4u << 20;
  const auto& with_small =
      cfg.configure(f.gpus[0], f.gpus[1], small, paths);
  const auto& clean_small =
      cfg_clean.configure(g.gpus[0], g.gpus[1], small, paths);
  EXPECT_EQ(with_small.paths[1].bytes, clean_small.paths[1].bytes);
  // Above the threshold the overridden path receives a smaller share.
  const std::uint64_t big = 256u << 20;
  const auto& with_big = cfg.configure(f.gpus[0], f.gpus[1], big, paths);
  const auto& clean_big =
      cfg_clean.configure(g.gpus[0], g.gpus[1], big, paths);
  EXPECT_LT(with_big.paths[1].bytes, clean_big.paths[1].bytes);
}

// configure_over: the recovery re-planner's entry point. It accepts any
// candidate ordering — in particular a staged-only survivor set after the
// direct path died — anchors the rounding remainder on the first candidate,
// and still assigns every byte.
TEST(Configurator, ConfigureOverAcceptsStagedOnlySurvivors) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto all = f.paths(mt::PathPolicy::three_gpus_with_host());
  // Drop the direct path, as the recovery policy does after its watchdog
  // fires; survivors start with a staged path.
  std::vector<mt::PathPlan> survivors(all.begin() + 1, all.end());
  ASSERT_NE(survivors.front().kind, mt::PathKind::Direct);
  // configure() refuses this ordering; configure_over() embraces it.
  EXPECT_THROW(
      (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, survivors),
      std::invalid_argument);
  const auto& c =
      cfg.configure_over(f.gpus[0], f.gpus[1], 64u << 20, survivors);
  EXPECT_EQ(sum_bytes(c), 64u << 20);
  EXPECT_GT(c.paths.front().bytes, 0u);
  for (const auto& share : c.paths) {
    EXPECT_EQ(share.plan.kind == mt::PathKind::Direct, false);
  }
  EXPECT_GT(c.predicted_time, 0.0);
}

// configure() and configure_over() share one cache; distinct candidate
// subsets must never collide on a cache entry.
TEST(Configurator, ConfigureOverSubsetsDoNotCollideInCache) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto all = f.paths(mt::PathPolicy::three_gpus());
  const std::uint64_t n = 32u << 20;
  const auto& full = cfg.configure(f.gpus[0], f.gpus[1], n, all);
  const auto full_direct_bytes = full.paths[0].bytes;
  std::vector<mt::PathPlan> survivors(all.begin() + 1, all.end());
  const auto& reduced = cfg.configure_over(f.gpus[0], f.gpus[1], n, survivors);
  EXPECT_EQ(reduced.paths.size(), survivors.size());
  EXPECT_EQ(sum_bytes(reduced), n);
  // Re-request the full set: the cached entry is intact, not clobbered.
  const auto& again = cfg.configure(f.gpus[0], f.gpus[1], n, all);
  EXPECT_EQ(again.paths[0].bytes, full_direct_bytes);
  EXPECT_EQ(again.paths.size(), all.size());
}

// LRU bound: with cache_capacity set, the cache never holds more entries
// than the bound and drops the least-recently-used request first.
TEST(Configurator, CacheCapacityBoundsEntryCount) {
  Fixture f;
  mm::ConfiguratorOptions opt;
  opt.cache_capacity = 2;
  mm::PathConfigurator cfg(f.reg, opt);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  (void)cfg.configure(f.gpus[0], f.gpus[1], 16u << 20, paths);
  (void)cfg.configure(f.gpus[0], f.gpus[1], 32u << 20, paths);
  EXPECT_EQ(cfg.cache_size(), 2u);
  EXPECT_EQ(cfg.cache_evictions(), 0u);
  (void)cfg.configure(f.gpus[0], f.gpus[1], 64u << 20, paths);
  EXPECT_EQ(cfg.cache_size(), 2u);
  EXPECT_EQ(cfg.cache_evictions(), 1u);
}

TEST(Configurator, CacheHitsRefreshRecency) {
  Fixture f;
  mm::ConfiguratorOptions opt;
  opt.cache_capacity = 2;
  mm::PathConfigurator cfg(f.reg, opt);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  const std::uint64_t a = 16u << 20, b = 32u << 20, c = 64u << 20;
  (void)cfg.configure(f.gpus[0], f.gpus[1], a, paths);
  (void)cfg.configure(f.gpus[0], f.gpus[1], b, paths);
  // Touch `a` so `b` becomes least-recently-used, then overflow with `c`.
  (void)cfg.configure(f.gpus[0], f.gpus[1], a, paths);
  (void)cfg.configure(f.gpus[0], f.gpus[1], c, paths);
  EXPECT_EQ(cfg.cache_evictions(), 1u);
  const auto misses_before = cfg.cache_misses();
  (void)cfg.configure(f.gpus[0], f.gpus[1], a, paths);  // survived: hit
  EXPECT_EQ(cfg.cache_misses(), misses_before);
  (void)cfg.configure(f.gpus[0], f.gpus[1], b, paths);  // evicted: miss
  EXPECT_EQ(cfg.cache_misses(), misses_before + 1);
}

TEST(Configurator, ZeroCapacityMeansUnbounded) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);  // default cache_capacity = 0
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  for (std::uint64_t i = 1; i <= 32; ++i) {
    (void)cfg.configure(f.gpus[0], f.gpus[1], i << 20, paths);
  }
  EXPECT_EQ(cfg.cache_size(), 32u);
  EXPECT_EQ(cfg.cache_evictions(), 0u);
}

// With capacity >= 1 the entry just inserted is always the most recent, so
// the reference configure() returns is never the one evicted.
TEST(Configurator, ReturnedReferenceSurvivesEviction) {
  Fixture f;
  mm::ConfiguratorOptions opt;
  opt.cache_capacity = 1;
  mm::PathConfigurator cfg(f.reg, opt);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  (void)cfg.configure(f.gpus[0], f.gpus[1], 16u << 20, paths);
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], 32u << 20, paths);
  EXPECT_EQ(cfg.cache_size(), 1u);
  EXPECT_EQ(cfg.cache_evictions(), 1u);
  EXPECT_EQ(sum_bytes(c), 32u << 20);
  // clear_cache() resets both the map and the recency list coherently.
  cfg.clear_cache();
  EXPECT_EQ(cfg.cache_size(), 0u);
  const auto& again = cfg.configure(f.gpus[0], f.gpus[1], 32u << 20, paths);
  EXPECT_EQ(sum_bytes(again), 32u << 20);
}

// Regression: the cache used to trust the FNV-1a key alone, so two distinct
// request tuples hashing onto the same key silently aliased — the second
// request got the first request's config. cache_key_bits = 1 forces every
// request onto one of two keys, guaranteeing collisions without hunting for
// real 64-bit FNV collisions.
TEST(Configurator, HashCollisionDoesNotAliasConfigs) {
  Fixture f;
  mm::ConfiguratorOptions opt;
  opt.cache_key_bits = 1;
  mm::PathConfigurator cfg(f.reg, opt);
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t i = 1; i <= 8; ++i) sizes.push_back(i << 20);
  for (std::uint64_t n : sizes) {
    // Every lookup must return the config for ITS tuple, not whatever
    // tuple currently owns the colliding key.
    const auto& c = cfg.configure(f.gpus[0], f.gpus[1], n, paths);
    EXPECT_EQ(sum_bytes(c), n);
    EXPECT_EQ(c.total_bytes, n);
  }
  // 8 distinct tuples over <= 2 keys: at least 6 detected collisions.
  EXPECT_GE(cfg.cache_collisions(), 6u);
  EXPECT_LE(cfg.cache_size(), 2u);
  // A genuine repeat still hits.
  const std::uint64_t hits_before = cfg.cache_hits();
  const auto& c = cfg.configure(f.gpus[0], f.gpus[1], sizes.back(), paths);
  EXPECT_EQ(c.total_bytes, sizes.back());
  EXPECT_EQ(cfg.cache_hits(), hits_before + 1);
}

// compute_config == config_from_theta(prepare(...), ThetaSolver::solve) —
// the split entry points the joint scheduler uses must agree bit-for-bit
// with the monolithic path.
TEST(Configurator, PrepareAndConfigFromThetaMatchCompute) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto paths = f.paths(mt::PathPolicy::three_gpus_with_host());
  for (std::uint64_t n : {64u << 10, 2u << 20, 64u << 20, 512u << 20}) {
    const auto whole = cfg.compute_config(f.gpus[0], f.gpus[1], n, paths);
    const auto prepared = cfg.prepare(f.gpus[0], f.gpus[1], n, paths);
    const auto sol =
        mm::ThetaSolver::solve(prepared.terms, static_cast<double>(n));
    const auto split = cfg.config_from_theta(prepared, n, paths, sol);
    ASSERT_EQ(split.paths.size(), whole.paths.size());
    EXPECT_EQ(split.total_bytes, whole.total_bytes);
    EXPECT_DOUBLE_EQ(split.predicted_time, whole.predicted_time);
    for (std::size_t i = 0; i < whole.paths.size(); ++i) {
      EXPECT_EQ(split.paths[i].bytes, whole.paths[i].bytes);
      EXPECT_EQ(split.paths[i].chunks, whole.paths[i].chunks);
      EXPECT_DOUBLE_EQ(split.paths[i].theta, whole.paths[i].theta);
      EXPECT_DOUBLE_EQ(split.paths[i].predicted_time,
                       whole.paths[i].predicted_time);
    }
  }
}

// Shared-edge composition rule (the planted-xgmi-ring fix): candidates
// whose hop routes meet on one fluid edge each see only their max-min
// share of it. A ring where the direct path transits the stage GPU shares
// the onward hop with the staged copy, so both omegas derate by the
// distinct-user count at the bottleneck; without an attached topology the
// legacy per-path composition is bit-identical.
TEST(Configurator, SharedEdgeDerateSplitsTheCommonBottleneck) {
  // A --(NVLink4 300G || xGMI 50G)-- B --(xGMI 50G)-- C, no direct A-C
  // edge: the direct A->C route transits B, and staged-via-B crosses the
  // same B->C hop. Both candidates bottleneck on B->C at 50G shared two
  // ways.
  mt::Topology topo("shared-ring");
  const mt::DeviceId a = topo.add_device(mt::DeviceKind::Gpu, 0, "gpuA");
  const mt::DeviceId b = topo.add_device(mt::DeviceKind::Gpu, 0, "gpuB");
  const mt::DeviceId c = topo.add_device(mt::DeviceKind::Gpu, 0, "gpuC");
  topo.connect_duplex(a, b, mt::LinkKind::NVLink4, 300e9, 0.5e-6);
  topo.connect_duplex(a, b, mt::LinkKind::XGMI, 50e9, 1.1e-6);
  topo.connect_duplex(b, c, mt::LinkKind::XGMI, 50e9, 1.1e-6);

  mm::ModelRegistry reg{"shared-ring"};
  for (mt::DeviceId x : {a, b, c}) {
    for (mt::DeviceId y : {a, b, c}) {
      if (x != y) reg.set_route_params(x, y, {3e-6, 46e9});
    }
  }
  reg.set_epsilon(mt::PathKind::GpuStaged, 1.5e-6);

  const std::vector<mt::PathPlan> paths =
      mt::enumerate_paths(topo, a, c, mt::PathPolicy::two_gpus());
  ASSERT_EQ(paths.size(), 2u);
  ASSERT_EQ(paths[0].kind, mt::PathKind::Direct);
  ASSERT_EQ(paths[1].kind, mt::PathKind::GpuStaged);
  ASSERT_EQ(paths[1].stage, b);

  const std::uint64_t n = 8u << 20;
  mm::PathConfigurator cfg(reg);
  const mm::PreparedTransfer legacy = cfg.prepare(a, c, n, paths);
  cfg.set_topology(&topo);
  const mm::PreparedTransfer derated = cfg.prepare(a, c, n, paths);
  ASSERT_EQ(derated.terms.size(), 2u);
  // Both candidates cross the 50G B->C edge (and possibly the same A->B
  // edge): bottleneck halves, so omega exactly doubles. Delta is latency
  // bookkeeping and must not move.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(derated.terms[i].omega, 2.0 * legacy.terms[i].omega);
    EXPECT_DOUBLE_EQ(derated.terms[i].delta, legacy.terms[i].delta);
  }
  // The derated model predicts a strictly slower transfer.
  const auto slow = cfg.compute_config(a, c, n, paths);
  cfg.set_topology(nullptr);
  const auto fast = cfg.compute_config(a, c, n, paths);
  EXPECT_GT(slow.predicted_time, fast.predicted_time);
}

// Disjoint candidates (fully connected NVLink box) have no shared edge:
// attaching the topology must leave every term bit-identical — the derate
// only fires when routes actually collide.
TEST(Configurator, SharedEdgeDerateLeavesDisjointPathsUntouched) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::two_gpus());
  const std::uint64_t n = 32u << 20;
  mm::PathConfigurator cfg(f.reg);
  const mm::PreparedTransfer legacy = cfg.prepare(f.gpus[0], f.gpus[1], n, paths);
  cfg.set_topology(&f.sys.topology);
  const mm::PreparedTransfer attached =
      cfg.prepare(f.gpus[0], f.gpus[1], n, paths);
  ASSERT_EQ(attached.terms.size(), legacy.terms.size());
  for (std::size_t i = 0; i < legacy.terms.size(); ++i) {
    EXPECT_EQ(attached.terms[i].omega, legacy.terms[i].omega);
    EXPECT_EQ(attached.terms[i].delta, legacy.terms[i].delta);
  }
}
