// CalibrationStore snapshot semantics (copy-on-write versioning, shared
// snapshot lifetime, identity-by-absence), the serial configurator's
// version-stamped cache invalidation, and the sharded ConcurrentConfigurator
// — including the multi-threaded races the TSan CI job replays.
#include "mpath/model/calibration_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mpath/model/concurrent_configurator.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/topo/system.hpp"

namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {

struct Fixture {
  mt::System sys = mt::make_beluga();
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
  mt::DeviceId host = sys.topology.hosts()[0];
  mm::ModelRegistry reg{"beluga"};

  Fixture() {
    for (auto a : gpus) {
      for (auto b : gpus) {
        if (a != b) reg.set_route_params(a, b, {3e-6, 46e9});
      }
      reg.set_route_params(a, host, {6e-6, 11.5e9});
      reg.set_route_params(host, a, {6e-6, 11.5e9});
    }
    reg.set_epsilon(mt::PathKind::GpuStaged, 1.5e-6);
    reg.set_epsilon(mt::PathKind::HostStaged, 4e-6);
    reg.set_issue_alpha(1.2e-6);
  }

  std::vector<mt::PathPlan> paths(const mt::PathPolicy& policy) {
    return mt::enumerate_paths(sys.topology, gpus[0], gpus[1], policy);
  }
};

mt::PathPlan direct() { return {mt::PathKind::Direct, mt::kInvalidDevice}; }

bool same_config(const mm::TransferConfig& a, const mm::TransferConfig& b) {
  if (a.total_bytes != b.total_bytes ||
      a.predicted_time != b.predicted_time ||
      a.paths.size() != b.paths.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    if (a.paths[i].bytes != b.paths[i].bytes ||
        a.paths[i].chunks != b.paths[i].chunks ||
        a.paths[i].theta != b.paths[i].theta ||
        a.paths[i].predicted_time != b.paths[i].predicted_time) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// CalibrationStore
// ---------------------------------------------------------------------------

TEST(CalibrationStore, PristineStoreIsEmptyIdentityVersionZero) {
  mm::CalibrationStore store;
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.snapshot_count(), 1u);
  const auto snap = store.snapshot();
  EXPECT_EQ(snap->size(), 0u);
  EXPECT_EQ(snap->find(0, 1, direct()), nullptr);
}

TEST(CalibrationStore, PublishInstallsNewVersionAndRetainsOld) {
  mm::CalibrationStore store;
  const auto v0 = store.snapshot();
  const auto key = mm::PathCalKey::of(0, 1, direct());
  EXPECT_EQ(store.publish(key, {1.1, 0.5, 7}), 1u);
  // The held snapshot stays alive and unchanged (copy-on-write).
  EXPECT_EQ(v0->version(), 0u);
  EXPECT_EQ(v0->find(0, 1, direct()), nullptr);
  const auto v1 = store.snapshot();
  EXPECT_EQ(v1->version(), 1u);
  const auto* cal = v1->find(0, 1, direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_DOUBLE_EQ(cal->alpha_scale, 1.1);
  EXPECT_DOUBLE_EQ(cal->beta_scale, 0.5);
  EXPECT_EQ(cal->samples, 7u);
  EXPECT_FALSE(cal->identity());
  EXPECT_EQ(store.snapshot_count(), 2u);
  // Other paths remain identity-by-absence.
  EXPECT_EQ(v1->find(1, 0, direct()), nullptr);
}

TEST(CalibrationStore, BatchPublishIsOneVersionAndCarriesOverEntries) {
  mm::CalibrationStore store;
  store.publish(mm::PathCalKey::of(0, 1, direct()), {1.0, 0.9, 1});
  const std::vector<std::pair<mm::PathCalKey, mm::PathCalibration>> batch{
      {mm::PathCalKey::of(2, 3, direct()), {1.2, 1.0, 2}},
      {mm::PathCalKey::of(4, 5, direct()), {0.8, 1.1, 3}},
  };
  EXPECT_EQ(store.publish(batch), 2u);
  const auto snap = store.snapshot();
  EXPECT_EQ(snap->size(), 3u);  // earlier entry carried over
  ASSERT_NE(snap->find(0, 1, direct()), nullptr);
  EXPECT_DOUBLE_EQ(snap->find(0, 1, direct())->beta_scale, 0.9);
  ASSERT_NE(snap->find(2, 3, direct()), nullptr);
  ASSERT_NE(snap->find(4, 5, direct()), nullptr);
}

// Empty-store arithmetic is bit-identical to running with no store at all:
// a missing entry applies NO correction, not a multiply by 1.0.
TEST(CalibrationStore, EmptyStoreIsBitIdenticalToNoStore) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus_with_host());
  mm::PathConfigurator bare(f.reg);
  mm::PathConfigurator calibrated(f.reg);
  mm::CalibrationStore store;
  calibrated.set_calibration(&store);
  for (std::uint64_t n : {2u << 20, 17u << 20, 64u << 20, 512u << 20}) {
    const auto a = bare.compute_config(f.gpus[0], f.gpus[1], n, paths);
    const auto b = calibrated.compute_config(f.gpus[0], f.gpus[1], n, paths);
    EXPECT_TRUE(same_config(a, b)) << "n=" << n;
  }
}

TEST(CalibrationStore, ScaledBetaChangesPreparedTermsAndPrediction) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::PathConfigurator cfg(f.reg);
  mm::CalibrationStore store;
  cfg.set_calibration(&store);
  const auto before =
      cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, paths);
  // Halve the direct path's effective bandwidth.
  store.publish(mm::PathCalKey::of(f.gpus[0], f.gpus[1], direct()),
                {1.0, 0.5, 1});
  const auto after =
      cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, paths);
  EXPECT_FALSE(same_config(before, after));
  // A slower direct path carries fewer bytes and the whole transfer slows.
  EXPECT_LT(after.paths[0].bytes, before.paths[0].bytes);
  EXPECT_GT(after.predicted_time, before.predicted_time);
}

// The serial configurator's cache entries are stamped with the snapshot
// version: a publication invalidates them on next hit instead of serving a
// split computed under superseded alpha/beta.
TEST(CalibrationStore, ConfiguratorCacheInvalidatedByPublication) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::PathConfigurator cfg(f.reg);
  mm::CalibrationStore store;
  cfg.set_calibration(&store);
  const auto g0 = f.gpus[0], g1 = f.gpus[1];
  (void)cfg.configure(g0, g1, 64u << 20, paths);
  (void)cfg.configure(g0, g1, 64u << 20, paths);
  EXPECT_EQ(cfg.cache_hits(), 1u);
  EXPECT_EQ(cfg.cache_invalidations(), 0u);

  store.publish(mm::PathCalKey::of(g0, g1, direct()), {1.0, 0.5, 1});
  const auto& recomputed = cfg.configure(g0, g1, 64u << 20, paths);
  EXPECT_EQ(cfg.cache_invalidations(), 1u);
  EXPECT_TRUE(same_config(recomputed,
                          cfg.compute_config(g0, g1, 64u << 20, paths)));
  // The refreshed entry is stamped with the new version: hits again.
  (void)cfg.configure(g0, g1, 64u << 20, paths);
  EXPECT_EQ(cfg.cache_hits(), 2u);
  EXPECT_EQ(cfg.cache_invalidations(), 1u);
}

// Regression: replacing a cached entry on calibration invalidation must
// reuse the key's own LRU node. The bookkeeping once repointed the entry at
// another key's node, so with a bounded cache an eviction after an
// invalidation left a dangling recency iterator and the next hit spliced
// freed memory. Interleaving publications, hits, and evictions on a
// capacity-2 cache walks exactly that path (ASan/UBSan CI replays this).
TEST(CalibrationStore, InvalidationThenEvictionKeepsLruConsistent) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::ConfiguratorOptions opts;
  opts.cache_capacity = 2;
  mm::PathConfigurator cfg(f.reg, opts);
  mm::CalibrationStore store;
  cfg.set_calibration(&store);
  const auto g0 = f.gpus[0], g1 = f.gpus[1];
  const auto key = mm::PathCalKey::of(g0, g1, direct());
  const std::uint64_t a = 4u << 20, b = 8u << 20, c = 16u << 20;
  for (int round = 0; round < 8; ++round) {
    (void)cfg.configure(g0, g1, a, paths);
    (void)cfg.configure(g0, g1, b, paths);
    // Invalidate both residents, then refresh them in place (replace path)
    // and hit the refreshed entries.
    store.publish(key, {1.0, 0.9 - 0.01 * round, 1});
    (void)cfg.configure(g0, g1, a, paths);
    (void)cfg.configure(g0, g1, b, paths);
    const auto& hit = cfg.configure(g0, g1, b, paths);
    EXPECT_EQ(hit.total_bytes, b);
    // A third tuple evicts the LRU resident; the survivor must still hit
    // through a valid recency iterator.
    (void)cfg.configure(g0, g1, c, paths);
    const auto& survivor = cfg.configure(g0, g1, b, paths);
    EXPECT_EQ(survivor.total_bytes, b);
    EXPECT_LE(cfg.cache_size(), 2u);
  }
  EXPECT_GE(cfg.cache_invalidations(), 8u);
  EXPECT_GE(cfg.cache_evictions(), 8u);
  EXPECT_GE(cfg.cache_hits(), 16u);
}

// Same shape through the sharded concurrent cache: single shard, bounded
// capacity, publications interleaved with lookups so replaced entries get
// evicted and re-hit.
TEST(ConcurrentConfigurator, InvalidationThenEvictionKeepsShardLruConsistent) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::CalibrationStore store;
  mm::ConfiguratorOptions opts;
  opts.cache_capacity = 2;
  mm::ConcurrentConfigurator cc(f.reg, opts, &store, 1);
  const auto g0 = f.gpus[0], g1 = f.gpus[1];
  const auto key = mm::PathCalKey::of(g0, g1, direct());
  const std::uint64_t a = 4u << 20, b = 8u << 20, c = 16u << 20;
  for (int round = 0; round < 8; ++round) {
    (void)cc.configure(g0, g1, a, paths);
    (void)cc.configure(g0, g1, b, paths);
    store.publish(key, {1.0, 0.9 - 0.01 * round, 1});
    (void)cc.configure(g0, g1, a, paths);
    (void)cc.configure(g0, g1, b, paths);
    EXPECT_EQ(cc.configure(g0, g1, b, paths).total_bytes, b);
    (void)cc.configure(g0, g1, c, paths);
    EXPECT_EQ(cc.configure(g0, g1, b, paths).total_bytes, b);
    EXPECT_LE(cc.cache_size(), 2u);
  }
  const auto st = cc.stats();
  EXPECT_GE(st.invalidations, 8u);
  EXPECT_GE(st.evictions, 8u);
  EXPECT_GE(st.hits, 16u);
}

// Readers racing a publisher: snapshot() never blocks on the writer mutex,
// any snapshot observed is internally consistent (and stays alive while
// held), and versions never go backwards. This suite runs under TSan in CI.
TEST(CalibrationStore, ConcurrentReadersNeverSeeTornSnapshots) {
  mm::CalibrationStore store;
  constexpr int kPublications = 200;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = store.snapshot();
        const std::uint64_t v = snap->version();
        if (v < last) ok.store(false, std::memory_order_relaxed);
        // Snapshot invariant: version v holds exactly min(v, 1) entries
        // for the single key this test publishes, with beta == 1/(v+1).
        if (v > 0) {
          const auto* cal = snap->find(0, 1, direct());
          if (cal == nullptr ||
              cal->beta_scale != 1.0 / static_cast<double>(v + 1)) {
            ok.store(false, std::memory_order_relaxed);
          }
        }
        last = v;
      }
    });
  }
  const auto key = mm::PathCalKey::of(0, 1, direct());
  for (int i = 1; i <= kPublications; ++i) {
    store.publish(key, {1.0, 1.0 / static_cast<double>(i + 1),
                        static_cast<std::uint64_t>(i)});
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(store.version(), static_cast<std::uint64_t>(kPublications));
  EXPECT_EQ(store.snapshot_count(),
            static_cast<std::size_t>(kPublications) + 1);
}

// ---------------------------------------------------------------------------
// ConcurrentConfigurator
// ---------------------------------------------------------------------------

TEST(ConcurrentConfigurator, MatchesSerialComputeExactly) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus_with_host());
  mm::ConcurrentConfigurator cc(f.reg);
  for (std::uint64_t n : {2u << 20, 17u << 20, 64u << 20, 512u << 20}) {
    const auto got = cc.configure(f.gpus[0], f.gpus[1], n, paths);
    const auto want = cc.core().compute_config(f.gpus[0], f.gpus[1], n, paths);
    EXPECT_TRUE(same_config(got, want)) << "n=" << n;
    EXPECT_EQ(got.total_bytes, n);
  }
}

TEST(ConcurrentConfigurator, CountsHitsAndMisses) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::ConcurrentConfigurator cc(f.reg);
  (void)cc.configure(f.gpus[0], f.gpus[1], 8u << 20, paths);
  (void)cc.configure(f.gpus[0], f.gpus[1], 8u << 20, paths);
  (void)cc.configure(f.gpus[0], f.gpus[1], 16u << 20, paths);
  const auto st = cc.stats();
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.collisions, 0u);
  EXPECT_EQ(cc.cache_size(), 2u);
}

TEST(ConcurrentConfigurator, ShardCountRoundsUpToPowerOfTwo) {
  Fixture f;
  mm::ConcurrentConfigurator a(f.reg, {}, nullptr, 1);
  mm::ConcurrentConfigurator b(f.reg, {}, nullptr, 5);
  mm::ConcurrentConfigurator c(f.reg, {}, nullptr, 8);
  EXPECT_EQ(a.shard_count(), 1u);
  EXPECT_EQ(b.shard_count(), 8u);
  EXPECT_EQ(c.shard_count(), 8u);
}

// cache_key_bits narrows the shared FNV key, forcing distinct request
// tuples onto the same bucket: the full-tuple check must recompute (a
// collision), never alias another request's configuration.
TEST(ConcurrentConfigurator, CollisionsDetectedNotAliased) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::ConfiguratorOptions opts;
  opts.cache_key_bits = 1;  // at most two buckets: collisions guaranteed
  mm::ConcurrentConfigurator cc(f.reg, opts, nullptr, 1);
  const std::vector<std::uint64_t> sizes{4u << 20, 8u << 20, 16u << 20,
                                         32u << 20};
  for (std::uint64_t n : sizes) {
    const auto got = cc.configure(f.gpus[0], f.gpus[1], n, paths);
    EXPECT_EQ(got.total_bytes, n);
    EXPECT_TRUE(same_config(
        got, cc.core().compute_config(f.gpus[0], f.gpus[1], n, paths)));
  }
  EXPECT_GE(cc.stats().collisions, 2u);  // 4 tuples into <= 2 buckets
}

TEST(ConcurrentConfigurator, EvictsLeastRecentlyUsedPastCapacity) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::ConfiguratorOptions opts;
  opts.cache_capacity = 2;
  mm::ConcurrentConfigurator cc(f.reg, opts, nullptr, 1);
  for (std::uint64_t n : {1u << 20, 2u << 20, 4u << 20, 8u << 20}) {
    (void)cc.configure(f.gpus[0], f.gpus[1], n, paths);
  }
  EXPECT_LE(cc.cache_size(), 2u);
  EXPECT_GE(cc.stats().evictions, 2u);
}

TEST(ConcurrentConfigurator, PublicationInvalidatesAcrossShards) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::CalibrationStore store;
  mm::ConcurrentConfigurator cc(f.reg, {}, &store, 4);
  const auto g0 = f.gpus[0], g1 = f.gpus[1];
  const auto before = cc.configure(g0, g1, 64u << 20, paths);
  store.publish(mm::PathCalKey::of(g0, g1, direct()), {1.0, 0.5, 1});
  const auto after = cc.configure(g0, g1, 64u << 20, paths);
  EXPECT_EQ(cc.stats().invalidations, 1u);
  EXPECT_FALSE(same_config(before, after));
  // Re-stamped under the new version: the next lookup is a plain hit.
  (void)cc.configure(g0, g1, 64u << 20, paths);
  EXPECT_EQ(cc.stats().hits, 1u);
  EXPECT_EQ(cc.stats().invalidations, 1u);
}

// Many threads resolving a small working set while a publisher keeps
// bumping the calibration version: every returned configuration must be
// self-consistent (shares sum to the request) whichever snapshot it was
// computed under. This suite runs under TSan in CI.
TEST(ConcurrentConfigurator, ParallelLookupsRaceWithPublications) {
  Fixture f;
  const auto paths = f.paths(mt::PathPolicy::three_gpus());
  mm::CalibrationStore store;
  mm::ConfiguratorOptions opts;
  opts.cache_capacity = 16;
  mm::ConcurrentConfigurator cc(f.reg, opts, &store, 4);
  const auto g0 = f.gpus[0], g1 = f.gpus[1];
  const std::vector<std::uint64_t> sizes{4u << 20, 8u << 20, 16u << 20,
                                         64u << 20};
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<bool> ok{true};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t n = sizes[(t + i) % sizes.size()];
        const auto c = cc.configure(g0, g1, n, paths);
        std::uint64_t sum = 0;
        for (const auto& p : c.paths) sum += p.bytes;
        if (sum != n || c.total_bytes != n || c.predicted_time <= 0.0) {
          ok.store(false, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto key = mm::PathCalKey::of(g0, g1, direct());
  for (int i = 0; i < 50; ++i) {
    store.publish(key, {1.0, 0.8 + 0.001 * i, static_cast<std::uint64_t>(i)});
  }
  for (auto& t : workers) t.join();
  EXPECT_TRUE(ok.load());
  const auto st = cc.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(cc.cache_size(), 16u);
}
