#include "mpath/model/theta.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "mpath/util/rng.hpp"

namespace mm = mpath::model;

namespace {
double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
}  // namespace

TEST(ThetaSolver, SinglePathGetsEverything) {
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 64e6);
  ASSERT_EQ(sol.theta.size(), 1u);
  EXPECT_DOUBLE_EQ(sol.theta[0], 1.0);
  EXPECT_NEAR(sol.predicted_time, 2e-6 + 64e6 / 46e9, 1e-15);
}

TEST(ThetaSolver, EqualPathsSplitEqually) {
  std::vector<mm::PathTerms> paths(3, mm::PathTerms{1.0 / 46e9, 2e-6});
  const auto sol = mm::ThetaSolver::solve(paths, 96e6);
  for (double t : sol.theta) EXPECT_NEAR(t, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
}

TEST(ThetaSolver, HigherBandwidthGetsLargerShare) {
  // Paper's reading of Eq. 8: bandwidth-proportional at equal latency.
  std::vector<mm::PathTerms> paths{{1.0 / 40e9, 2e-6}, {1.0 / 10e9, 2e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 100e6);
  EXPECT_NEAR(sol.theta[0], 0.8, 1e-9);
  EXPECT_NEAR(sol.theta[1], 0.2, 1e-9);
}

TEST(ThetaSolver, HigherLatencyGetsSmallerShare) {
  std::vector<mm::PathTerms> paths{{1.0 / 40e9, 1e-6}, {1.0 / 40e9, 100e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 100e6);
  EXPECT_GT(sol.theta[0], sol.theta[1]);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
}

TEST(ThetaSolver, EqualTimeProperty) {
  // Theorem 1: at the optimum all active path times are equal.
  std::vector<mm::PathTerms> paths{
      {1.0 / 46e9, 2e-6}, {1.0 / 40e9, 8e-6}, {1.0 / 11e9, 20e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 256e6);
  EXPECT_EQ(sol.active.size(), 3u);
  EXPECT_LT(mm::ThetaSolver::time_spread(paths, sol.theta, 256e6),
            1e-9 * sol.predicted_time + 1e-12);
}

TEST(ThetaSolver, SlowPathExcludedForSmallMessages) {
  // A path with a large Delta cannot help a tiny message: Eq. 24 yields a
  // negative share and the active-set step must drop it.
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}, {1.0 / 12e9, 500e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 1e5);  // 100 KB
  EXPECT_DOUBLE_EQ(sol.theta[1], 0.0);
  EXPECT_DOUBLE_EQ(sol.theta[0], 1.0);
  ASSERT_EQ(sol.active.size(), 1u);
  EXPECT_EQ(sol.active[0], 0u);
}

TEST(ThetaSolver, ExcludedPathRejoinsForLargeMessages) {
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}, {1.0 / 12e9, 500e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 512e6);
  EXPECT_GT(sol.theta[1], 0.0);
  EXPECT_EQ(sol.active.size(), 2u);
}

TEST(ThetaSolver, DirectNeverExcluded) {
  // Even when the direct path is much worse, it keeps a (small) share as
  // long as its theta stays non-negative; and if everything else is
  // dropped it retains the whole message.
  std::vector<mm::PathTerms> paths{{1.0 / 1e9, 50e-6}, {1.0 / 46e9, 2e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 64e6);
  EXPECT_GT(sol.theta[0], 0.0);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
}

TEST(ThetaSolver, DroppedPathLeftoverGoesToDirectOnly) {
  // Regression: when a clamped-negative share is cleaned up, the leftover
  // mass must be folded into the direct path (whose Eq. 24 share absorbed
  // the negative term), not renormalized across all paths — renormalizing
  // scales the equal-time staged shares and breaks Theorem 1.
  std::vector<mm::PathTerms> paths{
      {1.0 / 10e9, 5e-6},     // modest direct path (keeps a small share)
      {1.0 / 46e9, 2e-6},     // good staged path
      {1.0 / 12e9, 800e-6}};  // hopeless for small messages -> dropped
  const auto sol = mm::ThetaSolver::solve(paths, 2e5);  // 200 KB
  EXPECT_DOUBLE_EQ(sol.theta[2], 0.0);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
  EXPECT_GT(sol.theta[0], 0.0);
  // Active-path times stay equalized after cleanup (time_spread ~ 0).
  EXPECT_LT(mm::ThetaSolver::time_spread(paths, sol.theta, 2e5),
            1e-9 * sol.predicted_time + 1e-12);
}

TEST(ThetaSolver, InputValidation) {
  std::vector<mm::PathTerms> empty;
  EXPECT_THROW((void)mm::ThetaSolver::solve(empty, 1e6),
               std::invalid_argument);
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}};
  EXPECT_THROW((void)mm::ThetaSolver::solve(paths, 0.0),
               std::invalid_argument);
  std::vector<mm::PathTerms> bad{{0.0, 2e-6}};
  EXPECT_THROW((void)mm::ThetaSolver::solve(bad, 1e6),
               std::invalid_argument);
}

TEST(ThetaSolver, EvaluateMatchesMaxOfPathTimes) {
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}, {1.0 / 12e9, 5e-6}};
  std::vector<double> theta{0.7, 0.3};
  const double expected =
      std::max(0.7 * 64e6 / 46e9 + 2e-6, 0.3 * 64e6 / 12e9 + 5e-6);
  EXPECT_DOUBLE_EQ(mm::ThetaSolver::evaluate(paths, theta, 64e6), expected);
}

// ---------------------------------------------------------------------------
// Property sweep (Theorem 1 validation): for random path sets and message
// sizes, the closed-form solution (a) is a valid distribution, (b) has
// equal active-path times, and (c) is never beaten by a dense grid search.
// ---------------------------------------------------------------------------

class ThetaOptimality
    : public ::testing::TestWithParam<std::tuple<int, double, unsigned>> {};

TEST_P(ThetaOptimality, ClosedFormBeatsGridSearch) {
  const auto [n_paths, n_bytes, seed] = GetParam();
  mpath::util::Rng rng(seed);
  std::vector<mm::PathTerms> paths;
  for (int i = 0; i < n_paths; ++i) {
    paths.push_back(mm::PathTerms{1.0 / rng.uniform(5e9, 100e9),
                                  rng.uniform(1e-6, 50e-6)});
  }
  const auto sol = mm::ThetaSolver::solve(paths, n_bytes);

  // (a) valid distribution
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-9);
  for (double t : sol.theta) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0 + 1e-12);
  }
  // (b) equalized times on the active set
  EXPECT_LT(mm::ThetaSolver::time_spread(paths, sol.theta, n_bytes),
            1e-6 * sol.predicted_time + 1e-12);

  // (c) no grid point does better (2-path: 1-D grid; 3-path: 2-D grid)
  const int steps = 200;
  double best_grid = std::numeric_limits<double>::infinity();
  if (n_paths == 2) {
    for (int i = 0; i <= steps; ++i) {
      const double t0 = static_cast<double>(i) / steps;
      std::vector<double> theta{t0, 1.0 - t0};
      best_grid = std::min(best_grid,
                           mm::ThetaSolver::evaluate(paths, theta, n_bytes));
    }
  } else {
    for (int i = 0; i <= steps; ++i) {
      for (int j = 0; i + j <= steps; ++j) {
        const double t0 = static_cast<double>(i) / steps;
        const double t1 = static_cast<double>(j) / steps;
        std::vector<double> theta{t0, t1, 1.0 - t0 - t1};
        best_grid = std::min(
            best_grid, mm::ThetaSolver::evaluate(paths, theta, n_bytes));
      }
    }
  }
  EXPECT_LE(sol.predicted_time, best_grid * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThetaOptimality,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(2e6, 16e6, 64e6, 512e6),
                       ::testing::Values(11u, 23u, 37u)));

// ---------------------------------------------------------------------------
// Joint K-transfer solver.
// ---------------------------------------------------------------------------

namespace {

mm::FixedFlow flow(std::initializer_list<std::uint32_t> links, double cap) {
  mm::FixedFlow f;
  for (std::uint32_t l : links) f.links.push_back(l);
  f.cap_bps = cap;
  return f;
}

mm::JointPath jpath(double omega, double delta,
                    std::initializer_list<std::uint32_t> links) {
  mm::JointPath p;
  p.terms = mm::PathTerms{omega, delta};
  for (std::uint32_t l : links) p.links.push_back(l);
  return p;
}

}  // namespace

TEST(JointMaxMin, UncontendedFlowsHitTheirCaps) {
  std::vector<mm::JointLink> links{{100e9, 0.0}};
  std::vector<mm::FixedFlow> flows{flow({0}, 40e9), flow({0}, 50e9)};
  const auto rates = mm::JointThetaSolver::maxmin_rates(flows, links);
  EXPECT_DOUBLE_EQ(rates[0], 40e9);
  EXPECT_DOUBLE_EQ(rates[1], 50e9);
}

TEST(JointMaxMin, SharedBottleneckSplitsEqually) {
  std::vector<mm::JointLink> links{{46e9, 0.0}};
  std::vector<mm::FixedFlow> flows{flow({0}, 46e9), flow({0}, 46e9)};
  const auto rates = mm::JointThetaSolver::maxmin_rates(flows, links);
  EXPECT_DOUBLE_EQ(rates[0], 23e9);
  EXPECT_DOUBLE_EQ(rates[1], 23e9);
}

TEST(JointMaxMin, FrozenSlowFlowFreesResidualForFastFlow) {
  // Classic max-min: flow 0 is capped well below its fair share, so flow 1
  // picks up the residual 100 - 10 = 90.
  std::vector<mm::JointLink> links{{100e9, 0.0}};
  std::vector<mm::FixedFlow> flows{flow({0}, 10e9), flow({0}, 1e12)};
  const auto rates = mm::JointThetaSolver::maxmin_rates(flows, links);
  EXPECT_DOUBLE_EQ(rates[0], 10e9);
  EXPECT_DOUBLE_EQ(rates[1], 90e9);
}

TEST(JointMaxMin, BackgroundFlowsConsumeShares) {
  // One planned flow + two background flows on a 90 GB/s link: everyone
  // gets 30.
  std::vector<mm::JointLink> links{{90e9, 2.0}};
  std::vector<mm::FixedFlow> flows{flow({0}, 1e12)};
  const auto rates = mm::JointThetaSolver::maxmin_rates(flows, links);
  EXPECT_DOUBLE_EQ(rates[0], 30e9);
}

TEST(JointMaxMin, MultiHopFlowBottlenecksOnTightestLink) {
  std::vector<mm::JointLink> links{{100e9, 0.0}, {20e9, 0.0}};
  std::vector<mm::FixedFlow> flows{flow({0, 1}, 1e12), flow({0}, 1e12)};
  const auto rates = mm::JointThetaSolver::maxmin_rates(flows, links);
  EXPECT_DOUBLE_EQ(rates[0], 20e9);  // pinned by link 1
  EXPECT_DOUBLE_EQ(rates[1], 80e9);  // residual of link 0
}

TEST(JointMaxMin, RepeatedLinkCountsAsTwoTraversals) {
  // A flow that crosses the same link twice consumes double share there.
  std::vector<mm::JointLink> links{{60e9, 0.0}};
  std::vector<mm::FixedFlow> flows{flow({0, 0}, 1e12), flow({0}, 1e12)};
  const auto rates = mm::JointThetaSolver::maxmin_rates(flows, links);
  // Three traversals on a 60 GB/s link -> a 20 GB/s fair share per
  // traversal; both flows freeze at the shared bottleneck rate, with the
  // double-traversal flow consuming 40 of the 60.
  EXPECT_DOUBLE_EQ(rates[0], 20e9);
  EXPECT_DOUBLE_EQ(rates[1], 20e9);
}

TEST(JointMaxMin, InputValidation) {
  std::vector<mm::JointLink> links{{46e9, 0.0}};
  std::vector<mm::FixedFlow> bad_cap{flow({0}, 0.0)};
  EXPECT_THROW((void)mm::JointThetaSolver::maxmin_rates(bad_cap, links),
               std::invalid_argument);
  std::vector<mm::FixedFlow> bad_link{flow({7}, 10e9)};
  EXPECT_THROW((void)mm::JointThetaSolver::maxmin_rates(bad_link, links),
               std::invalid_argument);
  std::vector<mm::JointLink> bad_cap_link{{0.0, 0.0}};
  std::vector<mm::FixedFlow> ok{flow({0}, 10e9)};
  EXPECT_THROW((void)mm::JointThetaSolver::maxmin_rates(ok, bad_cap_link),
               std::invalid_argument);
}

TEST(JointTheta, SingleTransferReducesToClosedFormExactly) {
  // K=1 with links that never bind: bit-for-bit identical to Eq. 24.
  std::vector<mm::JointLink> links{{200e9, 0.0}, {200e9, 0.0}};
  std::vector<mm::JointPath> paths{jpath(1.0 / 46e9, 2e-6, {0}),
                                   jpath(1.0 / 40e9, 8e-6, {1}),
                                   jpath(1.0 / 11e9, 20e-6, {0, 1})};
  std::vector<mm::JointTransfer> transfers{{256e6, paths}};
  const auto joint = mm::JointThetaSolver::solve(transfers, {}, links);
  std::vector<mm::PathTerms> terms;
  for (const auto& p : paths) terms.push_back(p.terms);
  const auto solo = mm::ThetaSolver::solve(terms, 256e6);
  ASSERT_EQ(joint.transfers.size(), 1u);
  ASSERT_EQ(joint.transfers[0].theta.size(), solo.theta.size());
  for (std::size_t i = 0; i < solo.theta.size(); ++i) {
    EXPECT_DOUBLE_EQ(joint.transfers[0].theta[i], solo.theta[i]);
  }
  EXPECT_DOUBLE_EQ(joint.transfers[0].predicted_time, solo.predicted_time);
  EXPECT_EQ(joint.iterations, 1);
}

TEST(JointTheta, TwoTransfersOnSharedLinkDoublePredictedTime) {
  // Two identical single-path transfers squeeze through one link sized for
  // exactly one of them: each gets half the bandwidth, so the predicted
  // time is the solo time with Omega doubled.
  const double omega = 1.0 / 46e9;
  std::vector<mm::JointLink> links{{46e9, 0.0}};
  std::vector<mm::JointPath> paths{jpath(omega, 2e-6, {0})};
  std::vector<mm::JointTransfer> transfers{{64e6, paths}, {64e6, paths}};
  const auto joint = mm::JointThetaSolver::solve(transfers, {}, links);
  const double expected = 2e-6 + 64e6 / 23e9;
  for (const auto& t : joint.transfers) {
    ASSERT_EQ(t.theta.size(), 1u);
    EXPECT_DOUBLE_EQ(t.theta[0], 1.0);
    EXPECT_NEAR(t.predicted_time, expected, 1e-12);
  }
  EXPECT_DOUBLE_EQ(joint.path_rates[0][0], 23e9);
  EXPECT_DOUBLE_EQ(joint.path_rates[1][0], 23e9);
}

TEST(JointTheta, ContentionShiftsShareToUncontestedPath) {
  // Transfer 0 has a private path (link 1) and a shared path (link 0).
  // Transfer 1 hammers link 0. Jointly, transfer 0 must lean on link 1
  // harder than its solo split would.
  std::vector<mm::JointLink> links{{46e9, 0.0}, {46e9, 0.0}};
  std::vector<mm::JointPath> a{jpath(1.0 / 46e9, 2e-6, {1}),
                               jpath(1.0 / 46e9, 2e-6, {0})};
  std::vector<mm::JointPath> b{jpath(1.0 / 46e9, 2e-6, {0})};
  std::vector<mm::JointTransfer> transfers{{128e6, a}, {128e6, b}};
  const auto joint = mm::JointThetaSolver::solve(transfers, {}, links);

  std::vector<mm::PathTerms> solo_terms{a[0].terms, a[1].terms};
  const auto solo = mm::ThetaSolver::solve(solo_terms, 128e6);
  EXPECT_GT(joint.transfers[0].theta[0], solo.theta[0]);
  // And the contended transfer is predicted slower than a solo run.
  const double solo_b = 2e-6 + 128e6 / 46e9;
  EXPECT_GT(joint.transfers[1].predicted_time, solo_b);
}

TEST(JointTheta, FixedFlowsActAsContention) {
  // A fixed in-flight flow on the link halves a K=1 transfer's bandwidth.
  std::vector<mm::JointLink> links{{46e9, 0.0}};
  std::vector<mm::JointPath> paths{jpath(1.0 / 46e9, 2e-6, {0})};
  std::vector<mm::JointTransfer> transfers{{64e6, paths}};
  std::vector<mm::FixedFlow> fixed{flow({0}, 46e9)};
  const auto joint = mm::JointThetaSolver::solve(transfers, fixed, links);
  EXPECT_NEAR(joint.transfers[0].predicted_time, 2e-6 + 64e6 / 23e9, 1e-12);
  ASSERT_EQ(joint.fixed_rates.size(), 1u);
  EXPECT_DOUBLE_EQ(joint.fixed_rates[0], 23e9);
}

TEST(JointTheta, ContendedStagedPathDroppedForSmallMessage) {
  // The staged path is only worth its Delta when it delivers real
  // bandwidth; under heavy contention its effective Omega balloons and the
  // per-transfer re-solve must drop it (theta = 0, rate released).
  std::vector<mm::JointLink> links{{46e9, 0.0}, {46e9, 20.0}};
  std::vector<mm::JointPath> paths{jpath(1.0 / 46e9, 2e-6, {0}),
                                   jpath(1.0 / 40e9, 60e-6, {1})};
  std::vector<mm::JointTransfer> transfers{{1e6, paths}};
  const auto joint = mm::JointThetaSolver::solve(transfers, {}, links);
  EXPECT_DOUBLE_EQ(joint.transfers[0].theta[0], 1.0);
  EXPECT_DOUBLE_EQ(joint.transfers[0].theta[1], 0.0);
  EXPECT_DOUBLE_EQ(joint.path_rates[0][1], 0.0);
  EXPECT_GE(joint.iterations, 2);  // one drop round + one stable round
}

TEST(JointTheta, DeterministicAcrossRepeatedSolves) {
  std::vector<mm::JointLink> links{{46e9, 1.0}, {30e9, 0.0}, {90e9, 2.0}};
  std::vector<mm::JointPath> a{jpath(1.0 / 46e9, 2e-6, {0}),
                               jpath(1.0 / 23e9, 10e-6, {1, 2})};
  std::vector<mm::JointPath> b{jpath(1.0 / 30e9, 3e-6, {1}),
                               jpath(1.0 / 46e9, 6e-6, {0, 2})};
  std::vector<mm::JointTransfer> transfers{{96e6, a}, {32e6, b}};
  const auto first = mm::JointThetaSolver::solve(transfers, {}, links);
  const auto second = mm::JointThetaSolver::solve(transfers, {}, links);
  ASSERT_EQ(first.transfers.size(), second.transfers.size());
  for (std::size_t k = 0; k < first.transfers.size(); ++k) {
    for (std::size_t i = 0; i < first.transfers[k].theta.size(); ++i) {
      EXPECT_DOUBLE_EQ(first.transfers[k].theta[i],
                       second.transfers[k].theta[i]);
    }
    EXPECT_DOUBLE_EQ(first.transfers[k].predicted_time,
                     second.transfers[k].predicted_time);
  }
}

TEST(JointTheta, InputValidation) {
  std::vector<mm::JointLink> links{{46e9, 0.0}};
  std::vector<mm::JointPath> none;
  std::vector<mm::JointTransfer> empty_paths{{64e6, none}};
  EXPECT_THROW((void)mm::JointThetaSolver::solve(empty_paths, {}, links),
               std::invalid_argument);
  std::vector<mm::JointPath> ok{jpath(1.0 / 46e9, 2e-6, {0})};
  std::vector<mm::JointTransfer> bad_bytes{{0.0, ok}};
  EXPECT_THROW((void)mm::JointThetaSolver::solve(bad_bytes, {}, links),
               std::invalid_argument);
  std::vector<mm::JointPath> bad_omega{jpath(0.0, 2e-6, {0})};
  std::vector<mm::JointTransfer> bad{{64e6, bad_omega}};
  EXPECT_THROW((void)mm::JointThetaSolver::solve(bad, {}, links),
               std::invalid_argument);
}
