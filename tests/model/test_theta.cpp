#include "mpath/model/theta.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "mpath/util/rng.hpp"

namespace mm = mpath::model;

namespace {
double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
}  // namespace

TEST(ThetaSolver, SinglePathGetsEverything) {
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 64e6);
  ASSERT_EQ(sol.theta.size(), 1u);
  EXPECT_DOUBLE_EQ(sol.theta[0], 1.0);
  EXPECT_NEAR(sol.predicted_time, 2e-6 + 64e6 / 46e9, 1e-15);
}

TEST(ThetaSolver, EqualPathsSplitEqually) {
  std::vector<mm::PathTerms> paths(3, mm::PathTerms{1.0 / 46e9, 2e-6});
  const auto sol = mm::ThetaSolver::solve(paths, 96e6);
  for (double t : sol.theta) EXPECT_NEAR(t, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
}

TEST(ThetaSolver, HigherBandwidthGetsLargerShare) {
  // Paper's reading of Eq. 8: bandwidth-proportional at equal latency.
  std::vector<mm::PathTerms> paths{{1.0 / 40e9, 2e-6}, {1.0 / 10e9, 2e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 100e6);
  EXPECT_NEAR(sol.theta[0], 0.8, 1e-9);
  EXPECT_NEAR(sol.theta[1], 0.2, 1e-9);
}

TEST(ThetaSolver, HigherLatencyGetsSmallerShare) {
  std::vector<mm::PathTerms> paths{{1.0 / 40e9, 1e-6}, {1.0 / 40e9, 100e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 100e6);
  EXPECT_GT(sol.theta[0], sol.theta[1]);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
}

TEST(ThetaSolver, EqualTimeProperty) {
  // Theorem 1: at the optimum all active path times are equal.
  std::vector<mm::PathTerms> paths{
      {1.0 / 46e9, 2e-6}, {1.0 / 40e9, 8e-6}, {1.0 / 11e9, 20e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 256e6);
  EXPECT_EQ(sol.active.size(), 3u);
  EXPECT_LT(mm::ThetaSolver::time_spread(paths, sol.theta, 256e6),
            1e-9 * sol.predicted_time + 1e-12);
}

TEST(ThetaSolver, SlowPathExcludedForSmallMessages) {
  // A path with a large Delta cannot help a tiny message: Eq. 24 yields a
  // negative share and the active-set step must drop it.
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}, {1.0 / 12e9, 500e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 1e5);  // 100 KB
  EXPECT_DOUBLE_EQ(sol.theta[1], 0.0);
  EXPECT_DOUBLE_EQ(sol.theta[0], 1.0);
  ASSERT_EQ(sol.active.size(), 1u);
  EXPECT_EQ(sol.active[0], 0u);
}

TEST(ThetaSolver, ExcludedPathRejoinsForLargeMessages) {
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}, {1.0 / 12e9, 500e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 512e6);
  EXPECT_GT(sol.theta[1], 0.0);
  EXPECT_EQ(sol.active.size(), 2u);
}

TEST(ThetaSolver, DirectNeverExcluded) {
  // Even when the direct path is much worse, it keeps a (small) share as
  // long as its theta stays non-negative; and if everything else is
  // dropped it retains the whole message.
  std::vector<mm::PathTerms> paths{{1.0 / 1e9, 50e-6}, {1.0 / 46e9, 2e-6}};
  const auto sol = mm::ThetaSolver::solve(paths, 64e6);
  EXPECT_GT(sol.theta[0], 0.0);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
}

TEST(ThetaSolver, DroppedPathLeftoverGoesToDirectOnly) {
  // Regression: when a clamped-negative share is cleaned up, the leftover
  // mass must be folded into the direct path (whose Eq. 24 share absorbed
  // the negative term), not renormalized across all paths — renormalizing
  // scales the equal-time staged shares and breaks Theorem 1.
  std::vector<mm::PathTerms> paths{
      {1.0 / 10e9, 5e-6},     // modest direct path (keeps a small share)
      {1.0 / 46e9, 2e-6},     // good staged path
      {1.0 / 12e9, 800e-6}};  // hopeless for small messages -> dropped
  const auto sol = mm::ThetaSolver::solve(paths, 2e5);  // 200 KB
  EXPECT_DOUBLE_EQ(sol.theta[2], 0.0);
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-12);
  EXPECT_GT(sol.theta[0], 0.0);
  // Active-path times stay equalized after cleanup (time_spread ~ 0).
  EXPECT_LT(mm::ThetaSolver::time_spread(paths, sol.theta, 2e5),
            1e-9 * sol.predicted_time + 1e-12);
}

TEST(ThetaSolver, InputValidation) {
  std::vector<mm::PathTerms> empty;
  EXPECT_THROW((void)mm::ThetaSolver::solve(empty, 1e6),
               std::invalid_argument);
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}};
  EXPECT_THROW((void)mm::ThetaSolver::solve(paths, 0.0),
               std::invalid_argument);
  std::vector<mm::PathTerms> bad{{0.0, 2e-6}};
  EXPECT_THROW((void)mm::ThetaSolver::solve(bad, 1e6),
               std::invalid_argument);
}

TEST(ThetaSolver, EvaluateMatchesMaxOfPathTimes) {
  std::vector<mm::PathTerms> paths{{1.0 / 46e9, 2e-6}, {1.0 / 12e9, 5e-6}};
  std::vector<double> theta{0.7, 0.3};
  const double expected =
      std::max(0.7 * 64e6 / 46e9 + 2e-6, 0.3 * 64e6 / 12e9 + 5e-6);
  EXPECT_DOUBLE_EQ(mm::ThetaSolver::evaluate(paths, theta, 64e6), expected);
}

// ---------------------------------------------------------------------------
// Property sweep (Theorem 1 validation): for random path sets and message
// sizes, the closed-form solution (a) is a valid distribution, (b) has
// equal active-path times, and (c) is never beaten by a dense grid search.
// ---------------------------------------------------------------------------

class ThetaOptimality
    : public ::testing::TestWithParam<std::tuple<int, double, unsigned>> {};

TEST_P(ThetaOptimality, ClosedFormBeatsGridSearch) {
  const auto [n_paths, n_bytes, seed] = GetParam();
  mpath::util::Rng rng(seed);
  std::vector<mm::PathTerms> paths;
  for (int i = 0; i < n_paths; ++i) {
    paths.push_back(mm::PathTerms{1.0 / rng.uniform(5e9, 100e9),
                                  rng.uniform(1e-6, 50e-6)});
  }
  const auto sol = mm::ThetaSolver::solve(paths, n_bytes);

  // (a) valid distribution
  EXPECT_NEAR(sum(sol.theta), 1.0, 1e-9);
  for (double t : sol.theta) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0 + 1e-12);
  }
  // (b) equalized times on the active set
  EXPECT_LT(mm::ThetaSolver::time_spread(paths, sol.theta, n_bytes),
            1e-6 * sol.predicted_time + 1e-12);

  // (c) no grid point does better (2-path: 1-D grid; 3-path: 2-D grid)
  const int steps = 200;
  double best_grid = std::numeric_limits<double>::infinity();
  if (n_paths == 2) {
    for (int i = 0; i <= steps; ++i) {
      const double t0 = static_cast<double>(i) / steps;
      std::vector<double> theta{t0, 1.0 - t0};
      best_grid = std::min(best_grid,
                           mm::ThetaSolver::evaluate(paths, theta, n_bytes));
    }
  } else {
    for (int i = 0; i <= steps; ++i) {
      for (int j = 0; i + j <= steps; ++j) {
        const double t0 = static_cast<double>(i) / steps;
        const double t1 = static_cast<double>(j) / steps;
        std::vector<double> theta{t0, t1, 1.0 - t0 - t1};
        best_grid = std::min(
            best_grid, mm::ThetaSolver::evaluate(paths, theta, n_bytes));
      }
    }
  }
  EXPECT_LE(sol.predicted_time, best_grid * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThetaOptimality,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(2e6, 16e6, 64e6, 512e6),
                       ::testing::Values(11u, 23u, 37u)));
