#include "mpath/model/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "mpath/util/rng.hpp"

namespace mm = mpath::model;
namespace mt = mpath::topo;

TEST(Registry, RouteParamsRoundTrip) {
  mm::ModelRegistry reg("beluga");
  reg.set_route_params(0, 1, {2e-6, 46e9});
  EXPECT_TRUE(reg.has_route_params(0, 1));
  EXPECT_FALSE(reg.has_route_params(1, 0));  // directional
  EXPECT_DOUBLE_EQ(reg.route_params(0, 1).beta, 46e9);
  EXPECT_THROW((void)reg.route_params(1, 0), std::out_of_range);
  EXPECT_THROW(reg.set_route_params(0, 2, {1e-6, 0.0}),
               std::invalid_argument);
}

TEST(Registry, EpsilonDefaultsToZero) {
  mm::ModelRegistry reg;
  EXPECT_DOUBLE_EQ(reg.epsilon(mt::PathKind::GpuStaged), 0.0);
  reg.set_epsilon(mt::PathKind::GpuStaged, 1.5e-6);
  reg.set_epsilon(mt::PathKind::HostStaged, 4e-6);
  EXPECT_DOUBLE_EQ(reg.epsilon(mt::PathKind::GpuStaged), 1.5e-6);
  EXPECT_DOUBLE_EQ(reg.epsilon(mt::PathKind::HostStaged), 4e-6);
}

TEST(Registry, AssemblesDirectPathParams) {
  mm::ModelRegistry reg;
  reg.set_route_params(0, 1, {2e-6, 46e9});
  const auto p = reg.path_params(0, 1, {mt::PathKind::Direct, mt::kInvalidDevice});
  EXPECT_FALSE(p.staged());
  EXPECT_DOUBLE_EQ(p.first.beta, 46e9);
  EXPECT_DOUBLE_EQ(p.epsilon, 0.0);
}

TEST(Registry, AssemblesStagedPathParams) {
  mm::ModelRegistry reg;
  reg.set_route_params(0, 2, {2e-6, 46e9});
  reg.set_route_params(2, 1, {3e-6, 40e9});
  reg.set_epsilon(mt::PathKind::GpuStaged, 1.5e-6);
  const auto p = reg.path_params(0, 1, {mt::PathKind::GpuStaged, 2});
  ASSERT_TRUE(p.staged());
  EXPECT_DOUBLE_EQ(p.first.alpha, 2e-6);
  EXPECT_DOUBLE_EQ(p.second->beta, 40e9);
  EXPECT_DOUBLE_EQ(p.epsilon, 1.5e-6);
}

TEST(Registry, MissingHopThrows) {
  mm::ModelRegistry reg;
  reg.set_route_params(0, 2, {2e-6, 46e9});
  EXPECT_THROW((void)reg.path_params(0, 1, {mt::PathKind::GpuStaged, 2}),
               std::out_of_range);
}

TEST(Registry, CsvRoundTrip) {
  mm::ModelRegistry reg("narval");
  reg.set_route_params(0, 1, {2.5e-6, 92e9});
  reg.set_route_params(1, 0, {2.5e-6, 91e9});
  reg.set_route_params(4, 0, {6e-6, 16e9});
  reg.set_epsilon(mt::PathKind::GpuStaged, 1.25e-6);
  reg.set_epsilon(mt::PathKind::HostStaged, 5e-6);
  reg.set_issue_alpha(1.2e-6);

  const std::string path = "/tmp/mpath_registry_test.csv";
  reg.save_csv(path);
  const auto loaded = mm::ModelRegistry::load_csv(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.system_name(), "narval");
  EXPECT_EQ(loaded.route_count(), 3u);
  EXPECT_NEAR(loaded.route_params(0, 1).beta, 92e9, 1.0);
  EXPECT_NEAR(loaded.route_params(4, 0).alpha, 6e-6, 1e-12);
  EXPECT_NEAR(loaded.epsilon(mt::PathKind::HostStaged), 5e-6, 1e-12);
  EXPECT_NEAR(loaded.issue_alpha(), 1.2e-6, 1e-12);
}

TEST(Registry, LoadMissingFileThrows) {
  EXPECT_THROW((void)mm::ModelRegistry::load_csv("/tmp/does_not_exist.csv"),
               std::runtime_error);
}

TEST(HockneyFitter, RecoversParameters) {
  mm::HockneyFitter fitter;
  const double alpha = 4e-6, beta = 46e9;
  for (double n = 1e6; n <= 512e6; n *= 2) {
    fitter.add_sample(n, alpha + n / beta);
  }
  EXPECT_EQ(fitter.sample_count(), 10u);
  const auto lp = fitter.fit();
  EXPECT_NEAR(lp.alpha, alpha, 1e-9);
  EXPECT_NEAR(lp.beta, beta, 1e-3 * beta);
}

TEST(HockneyFitter, NoisyFitStaysClose) {
  mm::HockneyFitter fitter;
  mpath::util::Rng rng(99);
  const double alpha = 4e-6, beta = 46e9;
  for (double n = 1e6; n <= 512e6; n *= 2) {
    fitter.add_sample(n, (alpha + n / beta) * rng.jitter(0.02));
  }
  const auto lp = fitter.fit();
  EXPECT_NEAR(lp.beta, beta, 0.1 * beta);
  EXPECT_GE(lp.alpha, 0.0);  // clamped non-negative
}

TEST(HockneyFitter, RejectsBadInput) {
  mm::HockneyFitter fitter;
  EXPECT_THROW(fitter.add_sample(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(fitter.add_sample(1.0, 0.0), std::invalid_argument);
  fitter.add_sample(1e6, 1e-3);
  EXPECT_THROW((void)fitter.fit(), std::invalid_argument);
  // Decreasing times with size -> negative slope -> rejected.
  mm::HockneyFitter bad;
  bad.add_sample(1e6, 2e-3);
  bad.add_sample(2e6, 1e-3);
  EXPECT_THROW((void)bad.fit(), std::runtime_error);
}

TEST(Registry, ContentionFactorRoundTrip) {
  mm::ModelRegistry reg("x");
  const mt::PathPlan host_path{mt::PathKind::HostStaged, 4};
  EXPECT_FALSE(reg.contention_factor(0, 1, host_path).has_value());
  reg.set_contention_factor(0, 1, host_path, 2.0);
  ASSERT_TRUE(reg.contention_factor(0, 1, host_path).has_value());
  EXPECT_DOUBLE_EQ(*reg.contention_factor(0, 1, host_path), 2.0);
  // Distinct key dimensions do not collide.
  EXPECT_FALSE(reg.contention_factor(1, 0, host_path).has_value());
  EXPECT_FALSE(
      reg.contention_factor(0, 1, mt::PathPlan{mt::PathKind::GpuStaged, 4})
          .has_value());
  EXPECT_THROW(reg.set_contention_factor(0, 1, host_path, 0.9),
               std::invalid_argument);
}

TEST(Registry, ContentionFactorSurvivesCsv) {
  mm::ModelRegistry reg("x");
  reg.set_route_params(0, 1, {2e-6, 46e9});
  const mt::PathPlan plan{mt::PathKind::GpuStaged, 2};
  reg.set_contention_factor(0, 1, plan, 1.85);
  const std::string path = "/tmp/mpath_override_test.csv";
  reg.save_csv(path);
  const auto loaded = mm::ModelRegistry::load_csv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.contention_factor(0, 1, plan).has_value());
  EXPECT_NEAR(*loaded.contention_factor(0, 1, plan), 1.85, 1e-9);
  EXPECT_EQ(loaded.contention_factor_count(), 1u);
}
