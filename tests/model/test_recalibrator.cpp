// Online alpha/beta recalibration: EWMA drift detection with a publication
// threshold, bandwidth-vs-latency attribution of the correction, guard
// rails against the base model, and a closed-loop convergence check where
// the "real" link is slower than the fitted one. The concurrent-observer
// test runs under TSan in CI.
#include "mpath/model/recalibrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "mpath/model/calibration_store.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/topo/system.hpp"

namespace mm = mpath::model;
namespace mt = mpath::topo;

namespace {

struct Fixture {
  mt::System sys = mt::make_beluga();
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
  mm::ModelRegistry reg{"beluga"};

  Fixture() {
    for (auto a : gpus) {
      for (auto b : gpus) {
        if (a != b) reg.set_route_params(a, b, {3e-6, 46e9});
      }
    }
    reg.set_epsilon(mt::PathKind::GpuStaged, 1.5e-6);
    reg.set_issue_alpha(1.2e-6);
  }
};

mt::PathPlan direct() { return {mt::PathKind::Direct, mt::kInvalidDevice}; }

std::vector<mt::PathPlan> direct_only() { return {direct()}; }

}  // namespace

TEST(Recalibrator, IgnoresNonPositiveObservations) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, direct_only());
  mm::CalibrationStore store;
  mm::Recalibrator rec(store);
  rec.observe(f.gpus[0], f.gpus[1], config, 0.0);
  rec.observe(f.gpus[0], f.gpus[1], config, -1.0);
  EXPECT_EQ(rec.stats().observations, 0u);
  EXPECT_EQ(store.version(), 0u);
}

TEST(Recalibrator, NoPublicationWithoutDrift) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, direct_only());
  mm::CalibrationStore store;
  mm::Recalibrator rec(store);
  for (int i = 0; i < 20; ++i) {
    rec.observe(f.gpus[0], f.gpus[1], config, config.predicted_time);
  }
  EXPECT_EQ(rec.stats().observations, 20u);
  EXPECT_EQ(rec.stats().publications, 0u);
  EXPECT_EQ(store.version(), 0u);
}

TEST(Recalibrator, PublishesOnlyAfterMinSamplesAndThreshold) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, direct_only());
  mm::CalibrationStore store;
  mm::Recalibrator rec(store);  // defaults: min_samples 3, threshold 0.05
  const double slow = 1.5 * config.predicted_time;
  rec.observe(f.gpus[0], f.gpus[1], config, slow);
  rec.observe(f.gpus[0], f.gpus[1], config, slow);
  EXPECT_EQ(store.version(), 0u);  // drifted but below min_samples
  rec.observe(f.gpus[0], f.gpus[1], config, slow);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(rec.stats().publications, 1u);
}

// A large message is bandwidth-dominated: a consistently slow transfer must
// be attributed to beta (scale < 1), leaving alpha essentially alone.
TEST(Recalibrator, LargeMessageDriftLandsOnBeta) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 256u << 20, direct_only());
  mm::CalibrationStore store;
  mm::Recalibrator rec(store);
  for (int i = 0; i < 10; ++i) {
    rec.observe(f.gpus[0], f.gpus[1], config, 1.5 * config.predicted_time);
  }
  const auto* cal = store.snapshot()->find(f.gpus[0], f.gpus[1], direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_LT(cal->beta_scale, 0.95);
  EXPECT_NEAR(cal->alpha_scale, 1.0, 0.05);
  EXPECT_GT(cal->samples, 0u);
}

// A tiny message is latency-dominated: the same slowdown must land on
// alpha (scale > 1) instead of slashing the bandwidth estimate.
TEST(Recalibrator, SmallMessageDriftLandsOnAlpha) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 4u << 10, direct_only());
  mm::CalibrationStore store;
  mm::Recalibrator rec(store);
  for (int i = 0; i < 10; ++i) {
    rec.observe(f.gpus[0], f.gpus[1], config, 1.5 * config.predicted_time);
  }
  const auto* cal = store.snapshot()->find(f.gpus[0], f.gpus[1], direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_GT(cal->alpha_scale, 1.05);
  EXPECT_GT(cal->beta_scale, 0.9);
}

// Guard rails: an absurd, sustained mismatch saturates the scales at
// [min_scale, max_scale] relative to the base model instead of running away.
TEST(Recalibrator, GuardRailsClampRunawayCorrections) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 256u << 20, direct_only());
  mm::CalibrationStore store;
  mm::RecalibratorOptions opts;
  opts.min_scale = 0.25;
  opts.max_scale = 4.0;
  mm::Recalibrator rec(store, opts);
  for (int i = 0; i < 60; ++i) {
    rec.observe(f.gpus[0], f.gpus[1], config, 100.0 * config.predicted_time);
  }
  const auto* cal = store.snapshot()->find(f.gpus[0], f.gpus[1], direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_GE(cal->beta_scale, 0.25);
  EXPECT_LE(cal->alpha_scale, 4.0);
  EXPECT_GE(rec.stats().clamped, 1u);
}

// Closed loop against a ground truth: the fitted model says 46 GB/s but
// the "real" link runs at 23 GB/s. Observing actual times and re-planning
// with the published corrections must drive the prediction error toward
// zero, and the error must never increase across iterations.
TEST(Recalibrator, ClosedLoopConvergesOnSlowLink) {
  Fixture f;
  // Ground truth registry: same latency, half the bandwidth on g0 -> g1.
  mm::ModelRegistry truth = f.reg;
  truth.set_route_params(f.gpus[0], f.gpus[1], {3e-6, 23e9});
  mm::PathConfigurator true_cfg(truth);
  const auto actual =
      true_cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, direct_only());

  mm::CalibrationStore store;
  mm::PathConfigurator cal_cfg(f.reg);
  cal_cfg.set_calibration(&store);
  mm::Recalibrator rec(store);

  std::vector<double> errors;
  for (int i = 0; i < 30; ++i) {
    const auto planned =
        cal_cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, direct_only());
    errors.push_back(
        std::abs(planned.predicted_time - actual.predicted_time) /
        actual.predicted_time);
    rec.observe(f.gpus[0], f.gpus[1], planned, actual.predicted_time);
  }
  EXPECT_GT(errors.front(), 0.3);  // the uncorrected model is way off
  EXPECT_LT(errors.back(), 0.05);  // converged
  for (std::size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LE(errors[i], errors[i - 1] + 1e-9) << "at iteration " << i;
  }
  EXPECT_GE(rec.stats().publications, 2u);  // converged in multiple steps
  const auto* cal = store.snapshot()->find(f.gpus[0], f.gpus[1], direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_NEAR(cal->beta_scale, 0.5, 0.05);
}

// Concurrent observers on one recalibrator: counters stay exact and the
// published state is one of the serially-reachable ones. Runs under TSan.
TEST(Recalibrator, ConcurrentObserversAreRaceFree) {
  Fixture f;
  mm::PathConfigurator cfg(f.reg);
  const auto config =
      cfg.compute_config(f.gpus[0], f.gpus[1], 64u << 20, direct_only());
  mm::CalibrationStore store;
  mm::Recalibrator rec(store);
  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        rec.observe(f.gpus[0], f.gpus[1], config,
                    1.2 * config.predicted_time);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(rec.stats().observations,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GE(rec.stats().publications, 1u);
  EXPECT_GE(store.version(), 1u);
  const auto* cal = store.snapshot()->find(f.gpus[0], f.gpus[1], direct());
  ASSERT_NE(cal, nullptr);
  EXPECT_LT(cal->beta_scale, 1.0);
  EXPECT_GE(cal->beta_scale, rec.options().min_scale);
}
