#include "mpath/topo/fuzz.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mpath/util/units.hpp"

namespace mf = mpath::fuzz;
namespace mt = mpath::topo;
using mpath::util::gbps;
using mpath::util::usec;

TEST(FuzzGenerator, PureInSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const mf::TopoSpec a = mf::generate_topology(seed);
    const mf::TopoSpec b = mf::generate_topology(seed);
    EXPECT_EQ(a.to_json().dump(), b.to_json().dump()) << "seed " << seed;
  }
  // Distinct seeds diverge (astronomically unlikely to collide).
  EXPECT_NE(mf::generate_topology(1).to_json().dump(),
            mf::generate_topology(2).to_json().dump());
}

TEST(FuzzGenerator, MixSeedIsJobCountIndependentAndSpreads) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(mf::mix_seed(7, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(mf::mix_seed(7, 3), mf::mix_seed(7, 3));
  EXPECT_NE(mf::mix_seed(7, 3), mf::mix_seed(8, 3));
}

TEST(FuzzGenerator, InvariantsHoldOverManySeeds) {
  const mf::GeneratorOptions opt;  // defaults
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const mf::TopoSpec spec = mf::generate_topology(seed, opt);
    ASSERT_GE(static_cast<int>(spec.gpu_count()), opt.min_gpus);
    ASSERT_LE(static_cast<int>(spec.gpu_count()), opt.max_gpus);
    ASSERT_GE(spec.host_count(), 1u);

    // Real hosts (those with a DRAM channel) precede every GPU, so
    // nearest_host() can never land on an NVSwitch pseudo-host.
    std::size_t first_gpu = spec.devices.size();
    for (std::size_t i = 0; i < spec.devices.size(); ++i) {
      if (spec.devices[i].kind == mt::DeviceKind::Gpu) {
        first_gpu = std::min(first_gpu, i);
      }
    }
    for (const mf::MemChannelSpec& m : spec.mem_channels) {
      ASSERT_LT(static_cast<std::size_t>(m.host), first_gpu) << "seed " << seed;
    }

    // Every link respects the configured ranges.
    for (const mf::EdgeSpec& e : spec.edges) {
      ASSERT_GE(e.capacity_bps, gbps(opt.min_gbps) * 0.999) << "seed " << seed;
      ASSERT_LE(e.capacity_bps, gbps(opt.max_gbps) * 1.001) << "seed " << seed;
      ASSERT_GE(e.latency_s, usec(opt.min_latency_us) * 0.999);
      ASSERT_LE(e.latency_s, usec(opt.max_latency_us) * 1.001);
      ASSERT_LT(e.from, spec.devices.size());
      ASSERT_LT(e.to, spec.devices.size());
    }

    // Noise-free by construction: flagged mispredicts must be structural.
    ASSERT_EQ(spec.costs.jitter_rel, 0.0);

    // Connected by construction: the spec builds and every ordered GPU
    // pair routes.
    const mt::System system = spec.build();
    ASSERT_TRUE(mf::fully_routable(system.topology)) << "seed " << seed;
  }
}

TEST(FuzzGenerator, RespectsFabricToggles) {
  mf::GeneratorOptions opt;
  opt.allow_nvlink = false;
  opt.allow_nvswitch = false;
  opt.allow_xgmi = false;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const mf::TopoSpec spec = mf::generate_topology(seed, opt);
    for (const mf::EdgeSpec& e : spec.edges) {
      ASSERT_NE(e.kind, mt::LinkKind::XGMI);
      ASSERT_NE(e.kind, mt::LinkKind::NVSwitch);
      ASSERT_TRUE(e.kind != mt::LinkKind::NVLink2 &&
                  e.kind != mt::LinkKind::NVLink3 &&
                  e.kind != mt::LinkKind::NVLink4)
          << "seed " << seed;
    }
  }
}

TEST(FuzzGenerator, RejectsBadOptions) {
  mf::GeneratorOptions opt;
  opt.min_gpus = 1;
  EXPECT_THROW((void)mf::generate_topology(1, opt), std::invalid_argument);
  opt = {};
  opt.max_gpus = opt.min_gpus - 1;
  EXPECT_THROW((void)mf::generate_topology(1, opt), std::invalid_argument);
  opt = {};
  opt.min_gbps = -1.0;
  EXPECT_THROW((void)mf::generate_topology(1, opt), std::invalid_argument);
}

TEST(FuzzGenerator, JsonRoundTrip) {
  const mf::TopoSpec spec = mf::generate_topology(99);
  const std::string dumped = spec.to_json().dump();
  const mf::TopoSpec back =
      mf::TopoSpec::from_json(mpath::util::json::Value::parse(dumped));
  EXPECT_EQ(back.to_json().dump(), dumped);
  // Doubles survive exactly (%.17g round-trip formatting).
  ASSERT_EQ(back.edges.size(), spec.edges.size());
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].capacity_bps, spec.edges[i].capacity_bps);
    EXPECT_EQ(back.edges[i].latency_s, spec.edges[i].latency_s);
  }
  EXPECT_EQ(back.costs.rendezvous_s, spec.costs.rendezvous_s);
}

TEST(FuzzGenerator, KindStringsRoundTrip) {
  for (const mt::LinkKind k :
       {mt::LinkKind::NVLink2, mt::LinkKind::NVLink3, mt::LinkKind::NVLink4,
        mt::LinkKind::PCIe3, mt::LinkKind::PCIe4, mt::LinkKind::PCIe5,
        mt::LinkKind::UPI, mt::LinkKind::XGMI, mt::LinkKind::MemChan,
        mt::LinkKind::NVSwitch}) {
    EXPECT_EQ(mf::link_kind_from_string(mt::to_string(k)), k);
  }
  for (const mt::DeviceKind k : {mt::DeviceKind::Gpu, mt::DeviceKind::Host}) {
    EXPECT_EQ(mf::device_kind_from_string(mt::to_string(k)), k);
  }
  EXPECT_THROW((void)mf::link_kind_from_string("warp-drive"),
               std::invalid_argument);
  EXPECT_THROW((void)mf::device_kind_from_string("TPU"),
               std::invalid_argument);
}
