#include "mpath/topo/system.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/paths.hpp"
#include "mpath/util/units.hpp"

namespace mt = mpath::topo;
using mpath::util::gbps;

TEST(Systems, BelugaShape) {
  const auto sys = mt::make_beluga();
  const auto& t = sys.topology;
  EXPECT_EQ(t.name(), "beluga");
  EXPECT_EQ(t.gpus().size(), 4u);
  EXPECT_EQ(t.hosts().size(), 1u);
  // Full NVLink mesh: every GPU pair has a direct NVLink edge.
  const auto gpus = t.gpus();
  for (auto a : gpus) {
    for (auto b : gpus) {
      if (a == b) continue;
      auto e = t.direct_edge(a, b);
      ASSERT_TRUE(e.has_value());
      EXPECT_EQ(t.edges()[*e].kind, mt::LinkKind::NVLink2);
      EXPECT_DOUBLE_EQ(t.edges()[*e].capacity_bps, gbps(46));
    }
  }
  // All GPUs share NUMA node 0.
  for (auto g : gpus) EXPECT_EQ(t.device(g).numa_node, 0);
}

TEST(Systems, NarvalShape) {
  const auto sys = mt::make_narval();
  const auto& t = sys.topology;
  EXPECT_EQ(t.gpus().size(), 4u);
  EXPECT_EQ(t.hosts().size(), 4u);
  const auto gpus = t.gpus();
  // One NUMA domain per GPU.
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    EXPECT_EQ(t.device(gpus[i]).numa_node, static_cast<int>(i));
  }
  // NVLink3 mesh at higher bandwidth than Beluga.
  auto e = t.direct_edge(gpus[0], gpus[1]);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(t.edges()[*e].capacity_bps, gbps(92));
}

TEST(Systems, NarvalHostStagingCrossesNuma) {
  // The defining Narval pathology (paper Observation 3): the second hop of
  // a host-staged transfer crosses the inter-socket fabric.
  const auto sys = mt::make_narval();
  const auto& t = sys.topology;
  const auto gpus = t.gpus();
  const auto host0 = t.host_for_numa(0);
  const auto& hop2 = t.route(host0, gpus[3]);
  bool crosses_upi = false;
  for (auto eid : hop2) {
    if (t.edges()[eid].kind == mt::LinkKind::UPI) crosses_upi = true;
  }
  EXPECT_TRUE(crosses_upi);
  // And it still pays the memory channel at the staging end.
  EXPECT_TRUE(t.edges()[hop2.front()].is_memory_channel);
}

TEST(Systems, BelugaHostStagingStaysLocal) {
  const auto sys = mt::make_beluga();
  const auto& t = sys.topology;
  const auto gpus = t.gpus();
  const auto host = t.hosts()[0];
  for (auto eid : t.route(host, gpus[1])) {
    EXPECT_NE(t.edges()[eid].kind, mt::LinkKind::UPI);
  }
}

TEST(Systems, DgxAllPairsThroughSwitch) {
  const auto sys = mt::make_dgx_nvswitch();
  const auto& t = sys.topology;
  EXPECT_EQ(t.gpus().size(), 8u);
  const auto gpus = t.gpus();
  const auto& r = t.route(gpus[0], gpus[7]);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(t.edges()[r[0]].kind, mt::LinkKind::NVSwitch);
  EXPECT_EQ(t.edges()[r[1]].kind, mt::LinkKind::NVSwitch);
}

TEST(Systems, PcieOnlyRoutesThroughHosts) {
  const auto sys = mt::make_pcie_only();
  const auto& t = sys.topology;
  const auto gpus = t.gpus();
  // Same-NUMA pair: two PCIe hops.
  const auto& near = t.route(gpus[0], gpus[1]);
  EXPECT_EQ(near.size(), 2u);
  // Cross-NUMA pair: PCIe + UPI + PCIe.
  const auto& far = t.route(gpus[0], gpus[3]);
  EXPECT_EQ(far.size(), 3u);
}

TEST(Systems, PresetLookup) {
  EXPECT_EQ(mt::make_system("beluga").topology.name(), "beluga");
  EXPECT_EQ(mt::make_system("narval").topology.name(), "narval");
  EXPECT_EQ(mt::make_system("dgx").topology.name(), "dgx-nvswitch");
  EXPECT_EQ(mt::make_system("pcie").topology.name(), "pcie-only");
  EXPECT_EQ(mt::make_system("amd").topology.name(), "amd-ring");
  EXPECT_THROW((void)mt::make_system("nope"), std::invalid_argument);
}

TEST(Systems, CostsArePositive) {
  for (const char* name : {"beluga", "narval", "dgx", "pcie", "amd"}) {
    const auto sys = mt::make_system(name);
    EXPECT_GT(sys.costs.op_launch_s, 0) << name;
    EXPECT_GT(sys.costs.ipc_open_s, 0) << name;
    EXPECT_GT(sys.costs.local_copy_bps, 0) << name;
    EXPECT_GE(sys.costs.jitter_rel, 0) << name;
  }
}
