#include "mpath/topo/paths.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/system.hpp"

namespace mt = mpath::topo;

namespace {
struct BelugaFixture : ::testing::Test {
  mt::System sys = mt::make_beluga();
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
};
}  // namespace

TEST_F(BelugaFixture, DirectOnlyPolicy) {
  const auto paths = mt::enumerate_paths(sys.topology, gpus[0], gpus[1],
                                         mt::PathPolicy::direct_only());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].kind, mt::PathKind::Direct);
}

TEST_F(BelugaFixture, TwoGpuPolicyAddsOneStage) {
  const auto paths = mt::enumerate_paths(sys.topology, gpus[0], gpus[1],
                                         mt::PathPolicy::two_gpus());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].kind, mt::PathKind::Direct);
  EXPECT_EQ(paths[1].kind, mt::PathKind::GpuStaged);
  EXPECT_TRUE(paths[1].stage == gpus[2] || paths[1].stage == gpus[3]);
}

TEST_F(BelugaFixture, ThreeGpuPolicyUsesBothOtherGpus) {
  const auto paths = mt::enumerate_paths(sys.topology, gpus[0], gpus[1],
                                         mt::PathPolicy::three_gpus());
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[1].kind, mt::PathKind::GpuStaged);
  EXPECT_EQ(paths[2].kind, mt::PathKind::GpuStaged);
  EXPECT_NE(paths[1].stage, paths[2].stage);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_NE(paths[i].stage, gpus[0]);
    EXPECT_NE(paths[i].stage, gpus[1]);
  }
}

TEST_F(BelugaFixture, HostPolicyAppendsHostStage) {
  const auto paths = mt::enumerate_paths(
      sys.topology, gpus[0], gpus[1], mt::PathPolicy::three_gpus_with_host());
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths.back().kind, mt::PathKind::HostStaged);
  EXPECT_EQ(sys.topology.device(paths.back().stage).kind,
            mt::DeviceKind::Host);
}

TEST_F(BelugaFixture, EndpointValidation) {
  EXPECT_THROW(
      (void)mt::enumerate_paths(sys.topology, gpus[0], gpus[0],
                                mt::PathPolicy::two_gpus()),
      std::invalid_argument);
  const auto host = sys.topology.hosts()[0];
  EXPECT_THROW(
      (void)mt::enumerate_paths(sys.topology, gpus[0], host,
                                mt::PathPolicy::two_gpus()),
      std::invalid_argument);
}

TEST_F(BelugaFixture, HopRoutesForEachKind) {
  const auto paths = mt::enumerate_paths(
      sys.topology, gpus[0], gpus[1], mt::PathPolicy::three_gpus_with_host());
  const auto direct = mt::path_hop_routes(sys.topology, gpus[0], gpus[1],
                                          paths[0]);
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0].size(), 1u);

  const auto staged = mt::path_hop_routes(sys.topology, gpus[0], gpus[1],
                                          paths[1]);
  ASSERT_EQ(staged.size(), 2u);
  EXPECT_EQ(staged[0].size(), 1u);  // NVLink hop
  EXPECT_EQ(staged[1].size(), 1u);

  const auto host = mt::path_hop_routes(sys.topology, gpus[0], gpus[1],
                                        paths[3]);
  ASSERT_EQ(host.size(), 2u);
  // PCIe + memory channel each way on Beluga.
  EXPECT_EQ(host[0].size(), 2u);
  EXPECT_EQ(host[1].size(), 2u);
}

TEST_F(BelugaFixture, PolicyLabelsMatchPaperFigures) {
  EXPECT_EQ(mt::PathPolicy::two_gpus().label(), "2_GPUs");
  EXPECT_EQ(mt::PathPolicy::three_gpus().label(), "3_GPUs");
  EXPECT_EQ(mt::PathPolicy::three_gpus_with_host().label(), "3_GPUs_w_host");
  EXPECT_EQ(mt::PathPolicy::direct_only().label(), "direct");
}

TEST_F(BelugaFixture, DescribeIsHumanReadable) {
  const auto paths = mt::enumerate_paths(
      sys.topology, gpus[0], gpus[1], mt::PathPolicy::three_gpus_with_host());
  EXPECT_EQ(mt::describe(paths[0], sys.topology), "direct");
  EXPECT_EQ(mt::describe(paths[3], sys.topology), "via host0");
}

TEST(Paths, NarvalHostStageIsSrcNuma) {
  auto sys = mt::make_narval();
  const auto gpus = sys.topology.gpus();
  const auto paths = mt::enumerate_paths(
      sys.topology, gpus[2], gpus[0], mt::PathPolicy::three_gpus_with_host());
  const auto& host_path = paths.back();
  ASSERT_EQ(host_path.kind, mt::PathKind::HostStaged);
  EXPECT_EQ(sys.topology.device(host_path.stage).numa_node,
            sys.topology.device(gpus[2]).numa_node);
}

TEST(Paths, AmdRingHasOnlyNeighborStages) {
  auto sys = mt::make_amd_ring();
  const auto gpus = sys.topology.gpus();
  // gpu0 -> gpu1 are adjacent; common neighbors on the ring: none have
  // direct links to both except... gpu0's neighbors are 1,3; gpu1's are 0,2.
  // No GPU has direct links to both 0 and 1, so no GPU-staged candidates.
  const auto paths = mt::enumerate_paths(sys.topology, gpus[0], gpus[1],
                                         mt::PathPolicy::three_gpus());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].kind, mt::PathKind::Direct);
  // gpu0 -> gpu2 are opposite corners: both gpu1 and gpu3 bridge them.
  const auto diag = mt::enumerate_paths(sys.topology, gpus[0], gpus[2],
                                        mt::PathPolicy::three_gpus());
  ASSERT_EQ(diag.size(), 3u);
}

TEST(Paths, StageOrderingByBottleneckCapacity) {
  // Asymmetric stage links: the higher-bottleneck stage must come first.
  mt::Topology t("asym");
  const auto h = t.add_device(mt::DeviceKind::Host, 0, "h");
  t.add_memory_channel(h, 30e9, 0);
  std::vector<mt::DeviceId> g;
  for (int i = 0; i < 4; ++i) {
    g.push_back(t.add_device(mt::DeviceKind::Gpu, 0, "g" + std::to_string(i)));
    t.connect_duplex(g.back(), h, mt::LinkKind::PCIe3, 12e9, 1e-6);
  }
  t.connect_duplex(g[0], g[1], mt::LinkKind::NVLink2, 46e9, 1e-6);
  // Stage via g2: strong both hops. Stage via g3: weak first hop.
  t.connect_duplex(g[0], g[2], mt::LinkKind::NVLink2, 46e9, 1e-6);
  t.connect_duplex(g[2], g[1], mt::LinkKind::NVLink2, 46e9, 1e-6);
  t.connect_duplex(g[0], g[3], mt::LinkKind::NVLink2, 23e9, 1e-6);
  t.connect_duplex(g[3], g[1], mt::LinkKind::NVLink2, 46e9, 1e-6);

  const auto paths =
      mt::enumerate_paths(t, g[0], g[1], mt::PathPolicy::three_gpus());
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[1].stage, g[2]);
  EXPECT_EQ(paths[2].stage, g[3]);
  // With max_gpu_staged = 1 only the strong stage is kept.
  const auto one =
      mt::enumerate_paths(t, g[0], g[1], mt::PathPolicy::two_gpus());
  ASSERT_EQ(one.size(), 2u);
  EXPECT_EQ(one[1].stage, g[2]);
}
