#include "mpath/topo/binding.hpp"

#include <gtest/gtest.h>

#include "mpath/topo/system.hpp"
#include "mpath/util/units.hpp"

namespace ms = mpath::sim;
namespace mt = mpath::topo;
using namespace mpath::util::literals;
using mpath::util::gbps;

namespace {
struct BoundBeluga {
  mt::System sys = mt::make_beluga();
  ms::Engine engine;
  ms::FluidNetwork net{engine};
  mt::NetworkBinding binding{sys.topology, net};
  std::vector<mt::DeviceId> gpus = sys.topology.gpus();
};
}  // namespace

TEST(Binding, OneLinkPerEdge) {
  BoundBeluga b;
  EXPECT_EQ(b.net.link_count(), b.sys.topology.edges().size());
  for (const auto& e : b.sys.topology.edges()) {
    const auto link = b.binding.link_for_edge(e.id);
    EXPECT_DOUBLE_EQ(b.net.link(link).capacity_bps, e.capacity_bps);
    EXPECT_DOUBLE_EQ(b.net.link(link).latency_s, e.latency_s);
  }
}

TEST(Binding, RouteLinksMatchTopologyRoute) {
  BoundBeluga b;
  const auto links = b.binding.route_links(b.gpus[0], b.gpus[1]);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_DOUBLE_EQ(b.net.link(links[0]).capacity_bps, gbps(46));
}

TEST(Binding, SimulatedDirectTransferMatchesAnalyticTime) {
  BoundBeluga b;
  const auto route = b.binding.route_links(b.gpus[0], b.gpus[1]);
  double finish = -1;
  b.engine.spawn([](ms::Engine& e, ms::FluidNetwork& net,
                    ms::Route r, double& out) -> ms::Task<void> {
    co_await net.transfer(std::move(r), 64.0 * (1 << 20));
    out = e.now();
  }(b.engine, b.net, route, finish));
  b.engine.run();
  const double expected =
      1e-6 + 64.0 * (1 << 20) / gbps(46);  // latency + n/beta
  EXPECT_NEAR(finish, expected, 1e-9);
}

TEST(Binding, HostStagedHopsShareMemoryChannel) {
  // Simultaneous write+read through host memory: each hop is limited by
  // the shared 30 GB/s channel only if PCIe (12 GB/s) were faster; here
  // PCIe binds, so both proceed at 12 GB/s concurrently.
  BoundBeluga b;
  const auto host = b.sys.topology.hosts()[0];
  const auto up = b.binding.route_links(b.gpus[0], host);
  const auto down = b.binding.route_links(host, b.gpus[1]);
  double f_up = -1, f_down = -1;
  const double bytes = 12e9;  // 1 second at PCIe speed
  b.engine.spawn([](ms::Engine& e, ms::FluidNetwork& net,
                    ms::Route r, double bs,
                    double& out) -> ms::Task<void> {
    co_await net.transfer(std::move(r), bs);
    out = e.now();
  }(b.engine, b.net, up, bytes, f_up));
  b.engine.spawn([](ms::Engine& e, ms::FluidNetwork& net,
                    ms::Route r, double bs,
                    double& out) -> ms::Task<void> {
    co_await net.transfer(std::move(r), bs);
    out = e.now();
  }(b.engine, b.net, down, bytes, f_down));
  b.engine.run();
  EXPECT_NEAR(f_up, 1.0, 1e-3);
  EXPECT_NEAR(f_down, 1.0, 1e-3);
}

TEST(Binding, FourConcurrentMemChannelUsersContend) {
  // Bidirectional host staging: 4 streams through a 30 GB/s channel get
  // 7.5 GB/s each — slower than their 12 GB/s PCIe. This is the mechanism
  // behind the paper's Observation 5.
  BoundBeluga b;
  const auto host = b.sys.topology.hosts()[0];
  std::vector<ms::Route> routes = {
      b.binding.route_links(b.gpus[0], host),
      b.binding.route_links(host, b.gpus[1]),
      b.binding.route_links(b.gpus[1], host),
      b.binding.route_links(host, b.gpus[0]),
  };
  std::vector<double> finishes(4, -1);
  const double bytes = 7.5e9;
  for (int i = 0; i < 4; ++i) {
    b.engine.spawn([](ms::Engine& e, ms::FluidNetwork& net,
                      ms::Route r, double bs,
                      double& out) -> ms::Task<void> {
      co_await net.transfer(std::move(r), bs);
      out = e.now();
    }(b.engine, b.net, routes[i], bytes, finishes[i]));
  }
  b.engine.run();
  for (double f : finishes) {
    EXPECT_NEAR(f, 1.0, 1e-2);  // channel-bound, not PCIe-bound
  }
}
