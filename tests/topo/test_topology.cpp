#include "mpath/topo/topology.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "mpath/util/units.hpp"

namespace mt = mpath::topo;
using mpath::util::gbps;
using mpath::util::usec;

namespace {
// Two GPUs on one host, NVLink between them, PCIe to the host.
struct MiniNode {
  mt::Topology topo{"mini"};
  mt::DeviceId host, g0, g1;
  mt::EdgeId memchan;

  MiniNode() {
    host = topo.add_device(mt::DeviceKind::Host, 0, "host0");
    memchan = topo.add_memory_channel(host, gbps(30), usec(0.2));
    g0 = topo.add_device(mt::DeviceKind::Gpu, 0, "gpu0");
    g1 = topo.add_device(mt::DeviceKind::Gpu, 0, "gpu1");
    topo.connect_duplex(g0, g1, mt::LinkKind::NVLink2, gbps(46), usec(1.0));
    topo.connect_duplex(g0, host, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
    topo.connect_duplex(g1, host, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  }
};
}  // namespace

TEST(Topology, DeviceBookkeeping) {
  MiniNode n;
  EXPECT_EQ(n.topo.devices().size(), 3u);
  EXPECT_EQ(n.topo.gpus().size(), 2u);
  EXPECT_EQ(n.topo.hosts().size(), 1u);
  EXPECT_EQ(n.topo.device(n.g0).kind, mt::DeviceKind::Gpu);
  EXPECT_EQ(n.topo.host_for_numa(0), n.host);
  EXPECT_EQ(n.topo.nearest_host(n.g0), n.host);
  EXPECT_THROW((void)n.topo.host_for_numa(7), std::runtime_error);
}

TEST(Topology, ConnectValidation) {
  mt::Topology t("bad");
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  EXPECT_THROW(t.connect(a, a, mt::LinkKind::NVLink2, 1e9, 0), std::invalid_argument);
  EXPECT_THROW(t.connect(a, b, mt::LinkKind::NVLink2, 0, 0), std::invalid_argument);
  EXPECT_THROW(t.connect(a, b, mt::LinkKind::NVLink2, 1e9, -1), std::invalid_argument);
  EXPECT_THROW(t.connect(a, 99, mt::LinkKind::NVLink2, 1e9, 0), std::invalid_argument);
  EXPECT_THROW(t.add_memory_channel(a, 1e9, 0), std::invalid_argument);
}

TEST(Topology, MemoryChannelUniquePerHost) {
  mt::Topology t("x");
  const auto h = t.add_device(mt::DeviceKind::Host, 0, "h");
  t.add_memory_channel(h, 1e9, 0);
  EXPECT_THROW(t.add_memory_channel(h, 1e9, 0), std::invalid_argument);
}

TEST(Topology, DirectEdgePrefersHighestCapacity) {
  mt::Topology t("multi");
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  t.connect(a, b, mt::LinkKind::PCIe3, gbps(12), usec(1));
  const auto nv = t.connect(a, b, mt::LinkKind::NVLink2, gbps(46), usec(1));
  ASSERT_TRUE(t.direct_edge(a, b).has_value());
  EXPECT_EQ(*t.direct_edge(a, b), nv);
  EXPECT_FALSE(t.direct_edge(b, a).has_value() &&
               t.edges()[*t.direct_edge(b, a)].kind == mt::LinkKind::NVLink2);
}

TEST(Topology, GpuToGpuRoutePrefersNVLink) {
  MiniNode n;
  const auto& r = n.topo.route(n.g0, n.g1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(n.topo.edges()[r[0]].kind, mt::LinkKind::NVLink2);
}

TEST(Topology, GpuToHostRouteEndsWithMemChannel) {
  MiniNode n;
  const auto& r = n.topo.route(n.g0, n.host);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(n.topo.edges()[r[0]].kind, mt::LinkKind::PCIe3);
  EXPECT_TRUE(n.topo.edges()[r[1]].is_memory_channel);
}

TEST(Topology, HostToGpuRouteStartsWithMemChannel) {
  MiniNode n;
  const auto& r = n.topo.route(n.host, n.g1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_TRUE(n.topo.edges()[r[0]].is_memory_channel);
  EXPECT_EQ(n.topo.edges()[r[1]].kind, mt::LinkKind::PCIe3);
}

TEST(Topology, TransitThroughHostSkipsMemChannel) {
  // Remove the NVLink: GPU-GPU traffic routes PCIe->PCIe through the root
  // complex without touching DRAM.
  mt::Topology t("pcie");
  const auto h = t.add_device(mt::DeviceKind::Host, 0, "h");
  t.add_memory_channel(h, gbps(30), usec(0.2));
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  t.connect_duplex(a, h, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  t.connect_duplex(b, h, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  const auto& r = t.route(a, b);
  ASSERT_EQ(r.size(), 2u);
  for (auto e : r) EXPECT_FALSE(t.edges()[e].is_memory_channel);
}

TEST(Topology, RouteToSelfIsEmpty) {
  MiniNode n;
  EXPECT_TRUE(n.topo.route(n.g0, n.g0).empty());
}

TEST(Topology, NoRouteThrows) {
  mt::Topology t("disconnected");
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  EXPECT_THROW((void)t.route(a, b), std::runtime_error);
}

TEST(Topology, RouteCapacityAndLatency) {
  MiniNode n;
  const auto& r = n.topo.route(n.g0, n.host);
  EXPECT_DOUBLE_EQ(n.topo.route_capacity(r), gbps(12));
  EXPECT_NEAR(n.topo.route_latency(r), usec(1.8), 1e-12);
}

TEST(Topology, RouteCacheIsStable) {
  MiniNode n;
  const auto* first = &n.topo.route(n.g0, n.g1);
  const auto* second = &n.topo.route(n.g0, n.g1);
  EXPECT_EQ(first, second);
}

TEST(Topology, LinkKindNames) {
  EXPECT_EQ(mt::to_string(mt::LinkKind::NVLink3), "NVLink3");
  EXPECT_EQ(mt::to_string(mt::LinkKind::MemChan), "MemChan");
  EXPECT_EQ(mt::to_string(mt::DeviceKind::Gpu), "GPU");
}

// ---------------------------------------------------------------------------
// xGMI transit routing (regression).
//
// Transit through a GPU is only admissible when the data ARRIVES on xGMI
// and LEAVES on xGMI (hardware ring routing). That makes edge admissibility
// depend on the predecessor edge, so the Dijkstra state must be
// (device, arrived-via-xGMI). A device-keyed search records only the
// cheapest arrival; when that arrival is a faster non-xGMI link, the
// onward ring hop gets rejected and the search reports a spurious
// "no route".
// ---------------------------------------------------------------------------

TEST(Topology, XgmiTransitSurvivesFasterNonXgmiArrival) {
  mt::Topology t("ring");
  const auto g0 = t.add_device(mt::DeviceKind::Gpu, 0, "g0");
  const auto g1 = t.add_device(mt::DeviceKind::Gpu, 0, "g1");
  const auto g2 = t.add_device(mt::DeviceKind::Gpu, 0, "g2");
  t.connect_duplex(g0, g1, mt::LinkKind::XGMI, gbps(50), usec(1.1));
  t.connect_duplex(g1, g2, mt::LinkKind::XGMI, gbps(50), usec(1.1));
  // Cheaper non-xGMI arrival at the ring GPU: this must not mask the xGMI
  // arrival state that the onward ring hop needs.
  t.connect_duplex(g0, g1, mt::LinkKind::NVLink4, gbps(300), usec(0.5));

  const auto& r = t.route(g0, g2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(t.edges()[r[0]].kind, mt::LinkKind::XGMI);
  EXPECT_EQ(t.edges()[r[1]].kind, mt::LinkKind::XGMI);

  // The one-hop neighbour still takes the faster link.
  const auto& d = t.route(g0, g1);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(t.edges()[d[0]].kind, mt::LinkKind::NVLink4);
}

TEST(Topology, XgmiRingRoutesAroundTheRing) {
  mt::Topology t("ring4");
  mt::DeviceId g[4];
  for (int i = 0; i < 4; ++i) {
    g[i] = t.add_device(mt::DeviceKind::Gpu, 0, "g" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {
    t.connect_duplex(g[i], g[(i + 1) % 4], mt::LinkKind::XGMI, gbps(50),
                     usec(1.1));
  }
  const auto& r = t.route(g[0], g[2]);
  ASSERT_EQ(r.size(), 2u);
  for (auto e : r) EXPECT_EQ(t.edges()[e].kind, mt::LinkKind::XGMI);
}

TEST(Topology, NonXgmiGpuChainDoesNotTransit) {
  // NVLink forwarding through a GPU is staging, not routing: with only a
  // g0-g1-g2 NVLink chain there is no g0->g2 route.
  mt::Topology t("chain");
  const auto g0 = t.add_device(mt::DeviceKind::Gpu, 0, "g0");
  const auto g1 = t.add_device(mt::DeviceKind::Gpu, 0, "g1");
  const auto g2 = t.add_device(mt::DeviceKind::Gpu, 0, "g2");
  t.connect_duplex(g0, g1, mt::LinkKind::NVLink3, gbps(92), usec(1.0));
  t.connect_duplex(g1, g2, mt::LinkKind::NVLink3, gbps(92), usec(1.0));
  EXPECT_THROW((void)t.route(g0, g2), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Concurrent route() lookups (regression; runs under TSan in CI).
//
// Sweep workers share one const topo::System snapshot and race cold route()
// lookups. The memoization cache behind route() must tolerate that: shared
// lock for hits, compute outside the lock, first-writer-wins fill.
// ---------------------------------------------------------------------------

TEST(ConcurrentRoute, ParallelColdLookupsAgreeWithSerial) {
  const auto build = [] {
    mt::Topology t("ring4h");
    const auto h = t.add_device(mt::DeviceKind::Host, 0, "h");
    t.add_memory_channel(h, gbps(30), usec(0.2));
    mt::DeviceId g[4];
    for (int i = 0; i < 4; ++i) {
      g[i] = t.add_device(mt::DeviceKind::Gpu, 0, "g" + std::to_string(i));
      t.connect_duplex(g[i], h, mt::LinkKind::PCIe4, gbps(24), usec(1.6));
    }
    for (int i = 0; i < 4; ++i) {
      t.connect_duplex(g[i], g[(i + 1) % 4], mt::LinkKind::XGMI, gbps(50),
                       usec(1.1));
    }
    return t;
  };

  // Serial reference: every pair's route on a private instance.
  mt::Topology ref = build();
  std::map<std::pair<mt::DeviceId, mt::DeviceId>, std::vector<mt::EdgeId>>
      expect;
  for (const auto& a : ref.devices()) {
    for (const auto& b : ref.devices()) {
      expect[{a.id, b.id}] = ref.route(a.id, b.id);
    }
  }

  // Cold shared instance, hammered from many threads.
  const mt::Topology shared = build();
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int rep = 0; rep < 25; ++rep) {
        for (const auto& a : shared.devices()) {
          for (const auto& b : shared.devices()) {
            const auto& r = shared.route(a.id, b.id);
            if (r != expect[{a.id, b.id}]) mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // References handed out stay stable once the cache is warm.
  const auto* first = &shared.route(1, 2);
  EXPECT_EQ(first, &shared.route(1, 2));
}

TEST(ConcurrentRoute, CopyTakesCacheSnapshot) {
  MiniNode n;
  (void)n.topo.route(n.g0, n.g1);
  const mt::Topology copy = n.topo;  // snapshots under the source's lock
  const auto& r = copy.route(n.g0, n.g1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(copy.edges()[r[0]].kind, mt::LinkKind::NVLink2);
}
