#include "mpath/topo/topology.hpp"

#include <gtest/gtest.h>

#include "mpath/util/units.hpp"

namespace mt = mpath::topo;
using mpath::util::gbps;
using mpath::util::usec;

namespace {
// Two GPUs on one host, NVLink between them, PCIe to the host.
struct MiniNode {
  mt::Topology topo{"mini"};
  mt::DeviceId host, g0, g1;
  mt::EdgeId memchan;

  MiniNode() {
    host = topo.add_device(mt::DeviceKind::Host, 0, "host0");
    memchan = topo.add_memory_channel(host, gbps(30), usec(0.2));
    g0 = topo.add_device(mt::DeviceKind::Gpu, 0, "gpu0");
    g1 = topo.add_device(mt::DeviceKind::Gpu, 0, "gpu1");
    topo.connect_duplex(g0, g1, mt::LinkKind::NVLink2, gbps(46), usec(1.0));
    topo.connect_duplex(g0, host, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
    topo.connect_duplex(g1, host, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  }
};
}  // namespace

TEST(Topology, DeviceBookkeeping) {
  MiniNode n;
  EXPECT_EQ(n.topo.devices().size(), 3u);
  EXPECT_EQ(n.topo.gpus().size(), 2u);
  EXPECT_EQ(n.topo.hosts().size(), 1u);
  EXPECT_EQ(n.topo.device(n.g0).kind, mt::DeviceKind::Gpu);
  EXPECT_EQ(n.topo.host_for_numa(0), n.host);
  EXPECT_EQ(n.topo.nearest_host(n.g0), n.host);
  EXPECT_THROW((void)n.topo.host_for_numa(7), std::runtime_error);
}

TEST(Topology, ConnectValidation) {
  mt::Topology t("bad");
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  EXPECT_THROW(t.connect(a, a, mt::LinkKind::NVLink2, 1e9, 0), std::invalid_argument);
  EXPECT_THROW(t.connect(a, b, mt::LinkKind::NVLink2, 0, 0), std::invalid_argument);
  EXPECT_THROW(t.connect(a, b, mt::LinkKind::NVLink2, 1e9, -1), std::invalid_argument);
  EXPECT_THROW(t.connect(a, 99, mt::LinkKind::NVLink2, 1e9, 0), std::invalid_argument);
  EXPECT_THROW(t.add_memory_channel(a, 1e9, 0), std::invalid_argument);
}

TEST(Topology, MemoryChannelUniquePerHost) {
  mt::Topology t("x");
  const auto h = t.add_device(mt::DeviceKind::Host, 0, "h");
  t.add_memory_channel(h, 1e9, 0);
  EXPECT_THROW(t.add_memory_channel(h, 1e9, 0), std::invalid_argument);
}

TEST(Topology, DirectEdgePrefersHighestCapacity) {
  mt::Topology t("multi");
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  t.connect(a, b, mt::LinkKind::PCIe3, gbps(12), usec(1));
  const auto nv = t.connect(a, b, mt::LinkKind::NVLink2, gbps(46), usec(1));
  ASSERT_TRUE(t.direct_edge(a, b).has_value());
  EXPECT_EQ(*t.direct_edge(a, b), nv);
  EXPECT_FALSE(t.direct_edge(b, a).has_value() &&
               t.edges()[*t.direct_edge(b, a)].kind == mt::LinkKind::NVLink2);
}

TEST(Topology, GpuToGpuRoutePrefersNVLink) {
  MiniNode n;
  const auto& r = n.topo.route(n.g0, n.g1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(n.topo.edges()[r[0]].kind, mt::LinkKind::NVLink2);
}

TEST(Topology, GpuToHostRouteEndsWithMemChannel) {
  MiniNode n;
  const auto& r = n.topo.route(n.g0, n.host);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(n.topo.edges()[r[0]].kind, mt::LinkKind::PCIe3);
  EXPECT_TRUE(n.topo.edges()[r[1]].is_memory_channel);
}

TEST(Topology, HostToGpuRouteStartsWithMemChannel) {
  MiniNode n;
  const auto& r = n.topo.route(n.host, n.g1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_TRUE(n.topo.edges()[r[0]].is_memory_channel);
  EXPECT_EQ(n.topo.edges()[r[1]].kind, mt::LinkKind::PCIe3);
}

TEST(Topology, TransitThroughHostSkipsMemChannel) {
  // Remove the NVLink: GPU-GPU traffic routes PCIe->PCIe through the root
  // complex without touching DRAM.
  mt::Topology t("pcie");
  const auto h = t.add_device(mt::DeviceKind::Host, 0, "h");
  t.add_memory_channel(h, gbps(30), usec(0.2));
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  t.connect_duplex(a, h, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  t.connect_duplex(b, h, mt::LinkKind::PCIe3, gbps(12), usec(1.6));
  const auto& r = t.route(a, b);
  ASSERT_EQ(r.size(), 2u);
  for (auto e : r) EXPECT_FALSE(t.edges()[e].is_memory_channel);
}

TEST(Topology, RouteToSelfIsEmpty) {
  MiniNode n;
  EXPECT_TRUE(n.topo.route(n.g0, n.g0).empty());
}

TEST(Topology, NoRouteThrows) {
  mt::Topology t("disconnected");
  const auto a = t.add_device(mt::DeviceKind::Gpu, 0, "a");
  const auto b = t.add_device(mt::DeviceKind::Gpu, 0, "b");
  EXPECT_THROW((void)t.route(a, b), std::runtime_error);
}

TEST(Topology, RouteCapacityAndLatency) {
  MiniNode n;
  const auto& r = n.topo.route(n.g0, n.host);
  EXPECT_DOUBLE_EQ(n.topo.route_capacity(r), gbps(12));
  EXPECT_NEAR(n.topo.route_latency(r), usec(1.8), 1e-12);
}

TEST(Topology, RouteCacheIsStable) {
  MiniNode n;
  const auto* first = &n.topo.route(n.g0, n.g1);
  const auto* second = &n.topo.route(n.g0, n.g1);
  EXPECT_EQ(first, second);
}

TEST(Topology, LinkKindNames) {
  EXPECT_EQ(mt::to_string(mt::LinkKind::NVLink3), "NVLink3");
  EXPECT_EQ(mt::to_string(mt::LinkKind::MemChan), "MemChan");
  EXPECT_EQ(mt::to_string(mt::DeviceKind::Gpu), "GPU");
}
