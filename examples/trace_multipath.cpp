// Timeline tracing demo: export the chunk-level schedule of one multi-path
// transfer as Chrome trace-event JSON. Open results/multipath_trace.json in
// chrome://tracing or https://ui.perfetto.dev to see the direct lane and
// both staged pipelines running concurrently, chunk by chunk.
//
// Build & run:  ./build/examples/trace_multipath
#include <cstdio>

#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/sim/trace.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

int main() {
  topo::System system = topo::make_beluga();
  model::ModelRegistry registry = tuning::calibrate(system);
  model::PathConfigurator configurator(registry);

  sim::Engine engine;
  sim::FluidNetwork network(engine);
  gpusim::GpuRuntime runtime(system, engine, network);
  sim::Tracer tracer;
  runtime.set_tracer(&tracer);
  network.set_tracer(&tracer);  // adds rate-solver counter tracks
  // Queue-depth / stream-occupancy counter tracks; stride 1 samples every
  // event — fine for a single traced transfer, use the default (256) when
  // tracing churn workloads.
  engine.set_tracer(&tracer, /*sample_stride=*/1);
  runtime.set_counter_stride(1);

  pipeline::PipelineEngine pipeline_engine(runtime);
  pipeline::ModelDrivenChannel channel(pipeline_engine, configurator,
                                       topo::PathPolicy::three_gpus_with_host());
  const auto gpus = system.topology.gpus();
  gpusim::DeviceBuffer src(gpus[0], 64_MiB), dst(gpus[1], 64_MiB);
  src.fill_pattern(7);

  engine.spawn(
      [](gpusim::DataChannel& ch, gpusim::DeviceBuffer& d,
         const gpusim::DeviceBuffer& s) -> sim::Task<void> {
        co_await ch.transfer(d, 0, s, 0, s.size());
      }(channel, dst, src),
      "traced-transfer");
  engine.run();

  const std::string path = "results/multipath_trace.json";
  tracer.write_chrome_trace(path);
  std::printf("transferred %s in %s across %zu copy operations\n",
              util::format_bytes(src.size()).c_str(),
              util::format_time(engine.now()).c_str(), tracer.span_count());
  std::printf("payload intact: %s\n", dst.same_content(src) ? "yes" : "NO");
  std::printf("timeline written to %s (open in chrome://tracing)\n",
              path.c_str());
  return 0;
}
