// Fault injection + degradation-aware re-planning demo.
//
// Scenario 1: a large GPU0 -> GPU1 transfer is mid-flight on the Beluga-like
// node when the direct NVLink degrades to 10% of its capacity. The per-path
// watchdog notices the direct share missing its model-predicted deadline,
// cancels it, and the channel re-solves theta over the surviving staged
// paths for the undelivered remainder — the transfer completes with every
// byte intact instead of limping on the degraded link.
//
// Scenario 2: every egress link of GPU0 is severed outright. No path
// survives, so after the watchdogs fire the channel raises a typed
// gpusim::TransferError carrying partial-progress accounting.
//
// Build & run:  ./build/examples/fault_demo
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "mpath/benchcore/metrics.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/sim/fault.hpp"
#include "mpath/topo/system.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

namespace {

struct Node {
  topo::System sys;
  sim::Engine engine;
  sim::FluidNetwork net{engine};
  gpusim::GpuRuntime rt;
  pipeline::PipelineEngine pipe{rt};
  model::ModelRegistry reg;
  model::PathConfigurator cfg{reg};
  std::vector<topo::DeviceId> gpus;

  Node()
      : sys([] {
          auto s = topo::make_beluga();
          s.costs.jitter_rel = 0;  // deterministic demo output
          return s;
        }()),
        rt(sys, engine, net),
        reg(tuning::calibrate(sys)) {
    gpus = sys.topology.gpus();
  }
};

pipeline::ModelDrivenOptions recovery_options() {
  pipeline::ModelDrivenOptions opt;
  opt.recovery.enabled = true;
  opt.recovery.slack = 4.0;
  opt.recovery.max_replans = 3;
  return opt;
}

void print_metrics(const benchcore::DegradedRunMetrics& m) {
  std::printf("  delivered        %s / %s (%.2f GB/s effective)\n",
              util::format_bytes(m.bytes_delivered).c_str(),
              util::format_bytes(m.bytes_requested).c_str(),
              util::to_gbps(m.delivered_bandwidth));
  std::printf("  path timeouts    %llu\n",
              static_cast<unsigned long long>(m.path_timeouts));
  std::printf("  re-plans         %llu\n",
              static_cast<unsigned long long>(m.replans));
  std::printf("  recovery latency %.3f ms\n", m.recovery_time_s * 1e3);
  std::printf("  outcome          %s\n",
              m.completed ? "completed" : "failed (TransferError)");
}

void scenario_degraded_nvlink() {
  std::printf("== Scenario 1: direct NVLink degrades to 10%% mid-flight ==\n");
  Node node;
  const auto g0 = node.gpus[0], g1 = node.gpus[1];
  constexpr std::size_t kBytes = 256_MiB;

  pipeline::ModelDrivenChannel ch(node.pipe, node.cfg,
                                  topo::PathPolicy::three_gpus(),
                                  recovery_options());

  gpusim::DeviceBuffer src(g0, kBytes), dst(g1, kBytes);
  src.fill_pattern(42);

  // Predicted healthy completion time; the fault lands at ~30% of it.
  const auto paths = topo::enumerate_paths(node.sys.topology, g0, g1,
                                           topo::PathPolicy::three_gpus());
  const double healthy_t =
      node.cfg.configure(g0, g1, kBytes, paths).predicted_time;

  sim::FaultInjector inj(node.engine, node.net);
  const topo::EdgeId nvlink = *node.sys.topology.direct_edge(g0, g1);
  inj.degrade_at(0.3 * healthy_t, node.rt.binding().link_for_edge(nvlink),
                 0.10);

  node.engine.spawn(
      [](gpusim::DataChannel& c, gpusim::DeviceBuffer& d,
         const gpusim::DeviceBuffer& s) -> sim::Task<void> {
        co_await c.transfer(d, 0, s, 0, kBytes);
      }(ch, dst, src),
      "xfer");
  node.engine.run();

  const auto m = benchcore::degraded_run_metrics(ch.recovery_stats(), kBytes,
                                                 kBytes, node.engine.now());
  std::printf("  payload intact   %s\n",
              dst.same_content(src) ? "yes" : "NO (bug!)");
  std::printf("  healthy estimate %.3f ms, actual %.3f ms\n", healthy_t * 1e3,
              node.engine.now() * 1e3);
  print_metrics(m);
  std::printf("  bytes by path    direct %s, gpu-staged %s, host-staged %s\n\n",
              util::format_bytes(node.pipe.bytes_on(topo::PathKind::Direct))
                  .c_str(),
              util::format_bytes(node.pipe.bytes_on(topo::PathKind::GpuStaged))
                  .c_str(),
              util::format_bytes(node.pipe.bytes_on(topo::PathKind::HostStaged))
                  .c_str());
}

void scenario_severed_gpu() {
  std::printf("== Scenario 2: every egress link of GPU0 severed ==\n");
  Node node;
  const auto g0 = node.gpus[0], g1 = node.gpus[1];
  constexpr std::size_t kBytes = 64_MiB;

  pipeline::ModelDrivenChannel ch(node.pipe, node.cfg,
                                  topo::PathPolicy::three_gpus(),
                                  recovery_options());

  gpusim::DeviceBuffer src(g0, kBytes), dst(g1, kBytes);
  src.fill_pattern(7);

  sim::FaultInjector inj(node.engine, node.net);
  for (const topo::Edge& e : node.sys.topology.edges()) {
    if (e.from == g0 && !e.is_memory_channel) {
      inj.sever_at(1e-4, node.rt.binding().link_for_edge(e.id));
    }
  }

  std::optional<gpusim::TransferError::Info> failure;
  std::string what;
  node.engine.spawn(
      [](gpusim::DataChannel& c, gpusim::DeviceBuffer& d,
         const gpusim::DeviceBuffer& s,
         std::optional<gpusim::TransferError::Info>& out,
         std::string& msg) -> sim::Task<void> {
        try {
          co_await c.transfer(d, 0, s, 0, kBytes);
        } catch (const gpusim::TransferError& err) {
          out = err.info();
          msg = err.what();
        }
      }(ch, dst, src, failure, what),
      "xfer");
  node.engine.run();

  if (!failure) {
    std::printf("  expected a TransferError but the transfer completed?!\n");
    return;
  }
  std::printf("  caught TransferError: %s\n", what.c_str());
  const auto m = benchcore::degraded_run_metrics(
      ch.recovery_stats(), failure->bytes_requested, failure->bytes_delivered,
      failure->elapsed_s);
  print_metrics(m);
  std::printf("  retries before giving up: %d\n", failure->retries);
}

}  // namespace

int main() {
  scenario_degraded_nvlink();
  scenario_severed_gpu();
  return 0;
}
