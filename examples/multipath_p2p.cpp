// Multi-path point-to-point demo: the paper's headline scenario.
//
// Runs an OSU-style bandwidth sweep GPU0 -> GPU1 on both evaluation
// systems, comparing the single-path baseline against the model-driven
// multi-path runtime, and prints the speedup per message size (up to ~2.9x
// on the Beluga-like node — the paper's headline).
//
// Build & run:  ./build/examples/multipath_p2p
#include <cstdio>

#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/table.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

int main() {
  for (const char* name : {"beluga", "narval"}) {
    topo::System system = topo::make_system(name);
    model::ModelRegistry registry = tuning::calibrate(system);
    model::PathConfigurator configurator(registry);

    util::Table table(
        {"size", "direct GB/s", "multi-path GB/s", "speedup"});
    double best_speedup = 0.0;
    for (std::size_t bytes :
         {1_MiB, 4_MiB, 16_MiB, 64_MiB, 256_MiB, 512_MiB}) {
      benchcore::P2POptions opt;
      opt.window = 4;
      opt.iterations = 4;

      auto direct = benchcore::SimStack::direct(system);
      const double bw_direct =
          benchcore::measure_bw(direct.world(), bytes, opt);

      auto multi = benchcore::SimStack::model_driven(
          system, configurator, topo::PathPolicy::three_gpus());
      const double bw_multi =
          benchcore::measure_bw(multi.world(), bytes, opt);

      best_speedup = std::max(best_speedup, bw_multi / bw_direct);
      table.add_row({util::format_bytes(bytes),
                     util::Table::fixed(util::to_gbps(bw_direct), 2),
                     util::Table::fixed(util::to_gbps(bw_multi), 2),
                     util::Table::fixed(bw_multi / bw_direct, 2) + "x"});
    }
    std::printf("== %s: direct vs model-driven multi-path (3 GPU paths) ==\n",
                name);
    table.print();
    std::printf("peak speedup: %.2fx (paper reports up to 2.9x)\n\n",
                best_speedup);
  }
  return 0;
}
