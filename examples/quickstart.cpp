// Quickstart: model one multi-path transfer end to end.
//
//  1. Build a system description (here: the Beluga preset — 4x V100 with
//     NVLink2 and PCIe3).
//  2. Calibrate the performance model once per system (Fig. 2a Step 1).
//  3. Ask the model for the optimal path configuration of a 64 MB transfer
//     (Algorithm 1): which paths, what fraction each, how many chunks.
//  4. Execute that exact configuration on the simulated node and compare
//     measured against predicted time.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "mpath/model/configurator.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

int main() {
  // 1. The system under study.
  topo::System system = topo::make_beluga();
  const auto gpus = system.topology.gpus();
  std::printf("system: %s (%zu GPUs)\n", system.topology.name().c_str(),
              gpus.size());

  // 2. One-time calibration: fits Hockney (alpha, beta) per route and the
  //    staging overhead epsilon from microbenchmarks.
  model::ModelRegistry registry = tuning::calibrate(system);
  // Persist it exactly as the runtime integration would:
  registry.save_csv("/tmp/mpath_quickstart_model.csv");

  // 3. Optimal configuration for a 64 MB transfer GPU0 -> GPU1 using the
  //    direct path, two GPU-staged paths, and the host-staged path.
  model::PathConfigurator configurator(registry);
  const auto policy = topo::PathPolicy::three_gpus_with_host();
  const auto paths =
      topo::enumerate_paths(system.topology, gpus[0], gpus[1], policy);
  const std::size_t bytes = 64_MiB;
  const auto& config =
      configurator.configure(gpus[0], gpus[1], bytes, paths);

  std::printf("\noptimal configuration for a %s transfer:\n",
              util::format_bytes(bytes).c_str());
  for (const auto& share : config.paths) {
    std::printf("  %-12s theta=%5.1f%%  bytes=%-9s chunks=%d\n",
                topo::describe(share.plan, system.topology).c_str(),
                100.0 * share.theta,
                util::format_bytes(share.bytes).c_str(), share.chunks);
  }
  std::printf("predicted time: %s  (predicted bandwidth %.1f GB/s)\n",
              util::format_time(config.predicted_time).c_str(),
              util::to_gbps(config.predicted_bandwidth()));

  // 4. Execute the configuration on the simulated node.
  sim::Engine engine;
  sim::FluidNetwork network(engine);
  gpusim::GpuRuntime runtime(system, engine, network);
  pipeline::PipelineEngine pipeline_engine(runtime);
  gpusim::DeviceBuffer src(gpus[0], bytes);
  gpusim::DeviceBuffer dst(gpus[1], bytes);
  src.fill_pattern(2024);

  pipeline::ExecPlan plan;
  for (const auto& share : config.paths) {
    plan.push_back(pipeline::ExecPath{share.plan, share.bytes, share.chunks});
  }
  double measured = 0.0;
  engine.spawn(
      [](pipeline::PipelineEngine& pe, gpusim::DeviceBuffer& d,
         const gpusim::DeviceBuffer& s, pipeline::ExecPlan p,
         double& out) -> sim::Task<void> {
        co_await pe.execute(d, 0, s, 0, std::move(p));
        out = pe.runtime().engine().now();
      }(pipeline_engine, dst, src, std::move(plan), measured),
      "quickstart-transfer");
  engine.run();

  std::printf("measured time:  %s  (measured bandwidth %.1f GB/s)\n",
              util::format_time(measured).c_str(),
              util::to_gbps(static_cast<double>(bytes) / measured));
  std::printf("payload intact: %s\n",
              dst.same_content(src) ? "yes" : "NO (bug!)");
  std::printf("prediction error: %.1f%%\n",
              100.0 *
                  std::abs(measured - config.predicted_time) / measured);
  return 0;
}
