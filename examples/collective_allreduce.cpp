// Collective demo: MPI-style Allreduce across the node's four GPUs, with
// the intra-node P2P steps accelerated by the model-driven multi-path
// engine (the paper's Section 5.3 scenario).
//
// Verifies numerical correctness of the reduction, then compares the
// latency of the default single-path stack against the multi-path stack.
//
// Build & run:  ./build/examples/collective_allreduce
#include <cstdio>
#include <memory>
#include <vector>

#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/mpisim/collectives.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;

namespace {

/// Verified allreduce on one stack; returns latency in seconds.
double run_allreduce(benchcore::SimStack& stack, std::size_t count) {
  // Build rank-dependent inputs and the host-side reference result.
  auto& world = stack.world();
  std::vector<std::unique_ptr<gpusim::DeviceBuffer>> bufs;
  std::vector<float> expected(count, 0.0f);
  for (int r = 0; r < world.size(); ++r) {
    auto buf = std::make_unique<gpusim::DeviceBuffer>(
        world.comm(r).device(), count * sizeof(float));
    auto v = buf->as<float>();
    for (std::size_t i = 0; i < count; ++i) {
      v[i] = static_cast<float>(r + 1) * 0.5f +
             static_cast<float>(i % 31) * 0.25f;
      expected[i] += v[i];
    }
    bufs.push_back(std::move(buf));
  }

  const double start = stack.engine().now();
  world.run([&](mpisim::Communicator& comm) -> sim::Task<void> {
    co_await mpisim::allreduce_sum(
        comm, *bufs[static_cast<std::size_t>(comm.rank())],
        mpisim::AllreduceAlgo::RecursiveHalvingDoubling);
  });
  const double elapsed = stack.engine().now() - start;

  for (const auto& buf : bufs) {
    auto v = buf->as<const float>();
    for (std::size_t i = 0; i < count; ++i) {
      if (v[i] != expected[i]) {
        std::printf("REDUCTION MISMATCH at %zu: %f != %f\n", i, v[i],
                    expected[i]);
        return -1.0;
      }
    }
  }
  return elapsed;
}

}  // namespace

int main() {
  topo::System system = topo::make_beluga();
  model::ModelRegistry registry = tuning::calibrate(system);
  model::PathConfigurator configurator(registry);
  constexpr std::size_t kCount = 8u << 20;  // 8M floats = 32 MB per rank

  auto direct = benchcore::SimStack::direct(system);
  const double t_direct = run_allreduce(direct, kCount);

  auto multi = benchcore::SimStack::model_driven(
      system, configurator, topo::PathPolicy::three_gpus());
  const double t_multi = run_allreduce(multi, kCount);

  std::printf("MPI_Allreduce of %s per rank across 4 GPUs (verified)\n",
              util::format_bytes(kCount * sizeof(float)).c_str());
  std::printf("  single-path stack : %s\n",
              util::format_time(t_direct).c_str());
  std::printf("  multi-path stack  : %s\n",
              util::format_time(t_multi).c_str());
  std::printf("  speedup           : %.2fx (paper reports up to 1.4x)\n",
              t_direct / t_multi);
  return t_direct > 0 && t_multi > 0 ? 0 : 1;
}
