// Custom-topology demo: the library applies to any node description, not
// just the built-in presets (the paper's future-work direction: other
// architectures and interconnects).
//
// Builds a deliberately asymmetric 4-GPU node:
//   * gpu0-gpu1: strong NVLink3,
//   * gpu0-gpu2-gpu1 and gpu0-gpu3-gpu1: weaker NVLink2-class bridges,
//   * two NUMA domains with PCIe4 and an inter-socket link.
// The model must (a) rank staged paths by bottleneck capacity, (b) assign
// asymmetric shares, and (c) exclude paths that cannot help small messages.
//
// Build & run:  ./build/examples/custom_topology
#include <cstdio>

#include "mpath/model/configurator.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/table.hpp"
#include "mpath/util/units.hpp"

using namespace mpath;
using namespace mpath::util::literals;
using mpath::util::gbps;
using mpath::util::usec;

int main() {
  // -- describe the node ----------------------------------------------------
  topo::Topology t("asymmetric-quad");
  const auto host0 = t.add_device(topo::DeviceKind::Host, 0, "host0");
  const auto host1 = t.add_device(topo::DeviceKind::Host, 1, "host1");
  t.add_memory_channel(host0, gbps(25), usec(0.2));
  t.add_memory_channel(host1, gbps(25), usec(0.2));
  t.connect_duplex(host0, host1, topo::LinkKind::UPI, gbps(20), usec(1.0));

  std::vector<topo::DeviceId> gpu;
  for (int i = 0; i < 4; ++i) {
    gpu.push_back(
        t.add_device(topo::DeviceKind::Gpu, i / 2, "gpu" + std::to_string(i)));
    t.connect_duplex(gpu.back(), i / 2 == 0 ? host0 : host1,
                     topo::LinkKind::PCIe4, gbps(24), usec(1.4));
  }
  // Strong direct lane and two unequal bridges.
  t.connect_duplex(gpu[0], gpu[1], topo::LinkKind::NVLink3, gbps(90), usec(0.9));
  t.connect_duplex(gpu[0], gpu[2], topo::LinkKind::NVLink2, gbps(45), usec(1.0));
  t.connect_duplex(gpu[2], gpu[1], topo::LinkKind::NVLink2, gbps(45), usec(1.0));
  t.connect_duplex(gpu[0], gpu[3], topo::LinkKind::NVLink2, gbps(25), usec(1.0));
  t.connect_duplex(gpu[3], gpu[1], topo::LinkKind::NVLink2, gbps(45), usec(1.0));

  topo::System system{std::move(t), topo::SoftwareCosts{}};

  // -- calibrate and configure ------------------------------------------------
  const model::ModelRegistry registry = tuning::calibrate(system);
  model::PathConfigurator configurator(registry);
  const auto policy = topo::PathPolicy::three_gpus_with_host();
  const auto paths = topo::enumerate_paths(system.topology, gpu[0], gpu[1],
                                           policy);

  std::printf("candidate paths gpu0 -> gpu1 (ordered by the library):\n");
  for (const auto& p : paths) {
    std::printf("  %s\n", topo::describe(p, system.topology).c_str());
  }

  util::Table table({"size", "direct", "via gpu2", "via gpu3", "via host",
                     "predicted GB/s"});
  for (std::size_t bytes : {1_MiB, 8_MiB, 64_MiB, 512_MiB}) {
    const auto& config =
        configurator.configure(gpu[0], gpu[1], bytes, paths);
    std::vector<std::string> row{util::format_bytes(bytes)};
    for (const auto& share : config.paths) {
      row.push_back(util::Table::fixed(100.0 * share.theta, 1) + "%");
    }
    row.push_back(
        util::Table::fixed(util::to_gbps(config.predicted_bandwidth()), 1));
    table.add_row(std::move(row));
  }
  std::printf("\nmodel share assignment per message size:\n");
  table.print();
  std::printf(
      "\nNote how the weak gpu3 bridge receives a smaller share than the\n"
      "gpu2 bridge, and how staged paths disappear for small messages.\n");
  return 0;
}
