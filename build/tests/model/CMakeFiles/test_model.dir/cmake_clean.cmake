file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/test_chunking.cpp.o"
  "CMakeFiles/test_model.dir/test_chunking.cpp.o.d"
  "CMakeFiles/test_model.dir/test_configurator.cpp.o"
  "CMakeFiles/test_model.dir/test_configurator.cpp.o.d"
  "CMakeFiles/test_model.dir/test_params.cpp.o"
  "CMakeFiles/test_model.dir/test_params.cpp.o.d"
  "CMakeFiles/test_model.dir/test_registry.cpp.o"
  "CMakeFiles/test_model.dir/test_registry.cpp.o.d"
  "CMakeFiles/test_model.dir/test_theta.cpp.o"
  "CMakeFiles/test_model.dir/test_theta.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
