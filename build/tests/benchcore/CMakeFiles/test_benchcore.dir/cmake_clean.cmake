file(REMOVE_RECURSE
  "CMakeFiles/test_benchcore.dir/test_metrics.cpp.o"
  "CMakeFiles/test_benchcore.dir/test_metrics.cpp.o.d"
  "CMakeFiles/test_benchcore.dir/test_omb.cpp.o"
  "CMakeFiles/test_benchcore.dir/test_omb.cpp.o.d"
  "test_benchcore"
  "test_benchcore.pdb"
  "test_benchcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
