# Empty compiler generated dependencies file for test_benchcore.
# This may be replaced when dependencies are built.
