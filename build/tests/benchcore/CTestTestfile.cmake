# CMake generated Testfile for 
# Source directory: /root/repo/tests/benchcore
# Build directory: /root/repo/build/tests/benchcore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/benchcore/test_benchcore[1]_include.cmake")
