# CMake generated Testfile for 
# Source directory: /root/repo/tests/topo
# Build directory: /root/repo/build/tests/topo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/topo/test_topo[1]_include.cmake")
