# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpisim
# Build directory: /root/repo/build/tests/mpisim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mpisim/test_mpisim[1]_include.cmake")
