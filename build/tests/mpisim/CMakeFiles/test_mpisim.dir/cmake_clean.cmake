file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim.dir/test_collectives.cpp.o"
  "CMakeFiles/test_mpisim.dir/test_collectives.cpp.o.d"
  "CMakeFiles/test_mpisim.dir/test_world.cpp.o"
  "CMakeFiles/test_mpisim.dir/test_world.cpp.o.d"
  "test_mpisim"
  "test_mpisim.pdb"
  "test_mpisim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
