# CMake generated Testfile for 
# Source directory: /root/repo/tests/tuning
# Build directory: /root/repo/build/tests/tuning
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tuning/test_tuning[1]_include.cmake")
