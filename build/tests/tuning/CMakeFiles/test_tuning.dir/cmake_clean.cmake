file(REMOVE_RECURSE
  "CMakeFiles/test_tuning.dir/test_calibration.cpp.o"
  "CMakeFiles/test_tuning.dir/test_calibration.cpp.o.d"
  "CMakeFiles/test_tuning.dir/test_static_tuner.cpp.o"
  "CMakeFiles/test_tuning.dir/test_static_tuner.cpp.o.d"
  "test_tuning"
  "test_tuning.pdb"
  "test_tuning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
