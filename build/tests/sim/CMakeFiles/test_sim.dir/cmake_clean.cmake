file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_engine.cpp.o"
  "CMakeFiles/test_sim.dir/test_engine.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_fluid.cpp.o"
  "CMakeFiles/test_sim.dir/test_fluid.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_trace.cpp.o"
  "CMakeFiles/test_sim.dir/test_trace.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
