# CMake generated Testfile for 
# Source directory: /root/repo/tests/transport
# Build directory: /root/repo/build/tests/transport
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/transport/test_transport[1]_include.cmake")
