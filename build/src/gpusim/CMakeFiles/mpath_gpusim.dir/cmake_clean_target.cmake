file(REMOVE_RECURSE
  "libmpath_gpusim.a"
)
