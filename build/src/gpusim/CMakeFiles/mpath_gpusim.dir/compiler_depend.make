# Empty compiler generated dependencies file for mpath_gpusim.
# This may be replaced when dependencies are built.
