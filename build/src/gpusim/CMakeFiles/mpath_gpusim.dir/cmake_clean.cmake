file(REMOVE_RECURSE
  "CMakeFiles/mpath_gpusim.dir/buffer.cpp.o"
  "CMakeFiles/mpath_gpusim.dir/buffer.cpp.o.d"
  "CMakeFiles/mpath_gpusim.dir/runtime.cpp.o"
  "CMakeFiles/mpath_gpusim.dir/runtime.cpp.o.d"
  "libmpath_gpusim.a"
  "libmpath_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
