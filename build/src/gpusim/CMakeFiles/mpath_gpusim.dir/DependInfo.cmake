
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/buffer.cpp" "src/gpusim/CMakeFiles/mpath_gpusim.dir/buffer.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpath_gpusim.dir/buffer.cpp.o.d"
  "/root/repo/src/gpusim/runtime.cpp" "src/gpusim/CMakeFiles/mpath_gpusim.dir/runtime.cpp.o" "gcc" "src/gpusim/CMakeFiles/mpath_gpusim.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpath_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpath_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpath_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
