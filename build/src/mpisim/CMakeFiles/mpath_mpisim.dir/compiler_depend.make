# Empty compiler generated dependencies file for mpath_mpisim.
# This may be replaced when dependencies are built.
