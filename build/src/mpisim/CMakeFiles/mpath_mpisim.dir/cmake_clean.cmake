file(REMOVE_RECURSE
  "CMakeFiles/mpath_mpisim.dir/collectives.cpp.o"
  "CMakeFiles/mpath_mpisim.dir/collectives.cpp.o.d"
  "CMakeFiles/mpath_mpisim.dir/world.cpp.o"
  "CMakeFiles/mpath_mpisim.dir/world.cpp.o.d"
  "libmpath_mpisim.a"
  "libmpath_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
