file(REMOVE_RECURSE
  "libmpath_mpisim.a"
)
