file(REMOVE_RECURSE
  "CMakeFiles/mpath_sim.dir/engine.cpp.o"
  "CMakeFiles/mpath_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mpath_sim.dir/fluid.cpp.o"
  "CMakeFiles/mpath_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/mpath_sim.dir/trace.cpp.o"
  "CMakeFiles/mpath_sim.dir/trace.cpp.o.d"
  "libmpath_sim.a"
  "libmpath_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
