# Empty compiler generated dependencies file for mpath_sim.
# This may be replaced when dependencies are built.
