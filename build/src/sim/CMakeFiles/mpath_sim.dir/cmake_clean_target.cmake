file(REMOVE_RECURSE
  "libmpath_sim.a"
)
