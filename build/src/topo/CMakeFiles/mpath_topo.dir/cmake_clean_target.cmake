file(REMOVE_RECURSE
  "libmpath_topo.a"
)
