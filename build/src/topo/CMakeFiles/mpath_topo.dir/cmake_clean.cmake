file(REMOVE_RECURSE
  "CMakeFiles/mpath_topo.dir/binding.cpp.o"
  "CMakeFiles/mpath_topo.dir/binding.cpp.o.d"
  "CMakeFiles/mpath_topo.dir/paths.cpp.o"
  "CMakeFiles/mpath_topo.dir/paths.cpp.o.d"
  "CMakeFiles/mpath_topo.dir/system.cpp.o"
  "CMakeFiles/mpath_topo.dir/system.cpp.o.d"
  "CMakeFiles/mpath_topo.dir/topology.cpp.o"
  "CMakeFiles/mpath_topo.dir/topology.cpp.o.d"
  "libmpath_topo.a"
  "libmpath_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
