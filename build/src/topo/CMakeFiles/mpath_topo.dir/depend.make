# Empty dependencies file for mpath_topo.
# This may be replaced when dependencies are built.
