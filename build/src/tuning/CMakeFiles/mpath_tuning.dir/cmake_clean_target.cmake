file(REMOVE_RECURSE
  "libmpath_tuning.a"
)
