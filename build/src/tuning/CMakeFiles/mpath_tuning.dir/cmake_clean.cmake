file(REMOVE_RECURSE
  "CMakeFiles/mpath_tuning.dir/calibration.cpp.o"
  "CMakeFiles/mpath_tuning.dir/calibration.cpp.o.d"
  "CMakeFiles/mpath_tuning.dir/static_tuner.cpp.o"
  "CMakeFiles/mpath_tuning.dir/static_tuner.cpp.o.d"
  "libmpath_tuning.a"
  "libmpath_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
