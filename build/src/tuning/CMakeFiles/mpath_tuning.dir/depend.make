# Empty dependencies file for mpath_tuning.
# This may be replaced when dependencies are built.
