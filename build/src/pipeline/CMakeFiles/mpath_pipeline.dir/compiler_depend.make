# Empty compiler generated dependencies file for mpath_pipeline.
# This may be replaced when dependencies are built.
