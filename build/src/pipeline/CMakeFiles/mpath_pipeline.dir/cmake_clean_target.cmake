file(REMOVE_RECURSE
  "libmpath_pipeline.a"
)
