file(REMOVE_RECURSE
  "CMakeFiles/mpath_pipeline.dir/channels.cpp.o"
  "CMakeFiles/mpath_pipeline.dir/channels.cpp.o.d"
  "CMakeFiles/mpath_pipeline.dir/engine.cpp.o"
  "CMakeFiles/mpath_pipeline.dir/engine.cpp.o.d"
  "CMakeFiles/mpath_pipeline.dir/staging.cpp.o"
  "CMakeFiles/mpath_pipeline.dir/staging.cpp.o.d"
  "libmpath_pipeline.a"
  "libmpath_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
