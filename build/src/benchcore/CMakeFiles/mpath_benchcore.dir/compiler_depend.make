# Empty compiler generated dependencies file for mpath_benchcore.
# This may be replaced when dependencies are built.
