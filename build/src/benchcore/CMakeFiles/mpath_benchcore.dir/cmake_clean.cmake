file(REMOVE_RECURSE
  "CMakeFiles/mpath_benchcore.dir/metrics.cpp.o"
  "CMakeFiles/mpath_benchcore.dir/metrics.cpp.o.d"
  "CMakeFiles/mpath_benchcore.dir/omb.cpp.o"
  "CMakeFiles/mpath_benchcore.dir/omb.cpp.o.d"
  "CMakeFiles/mpath_benchcore.dir/stack.cpp.o"
  "CMakeFiles/mpath_benchcore.dir/stack.cpp.o.d"
  "libmpath_benchcore.a"
  "libmpath_benchcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_benchcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
