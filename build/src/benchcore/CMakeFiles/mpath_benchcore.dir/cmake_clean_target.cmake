file(REMOVE_RECURSE
  "libmpath_benchcore.a"
)
