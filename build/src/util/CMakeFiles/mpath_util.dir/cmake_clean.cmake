file(REMOVE_RECURSE
  "CMakeFiles/mpath_util.dir/csv.cpp.o"
  "CMakeFiles/mpath_util.dir/csv.cpp.o.d"
  "CMakeFiles/mpath_util.dir/least_squares.cpp.o"
  "CMakeFiles/mpath_util.dir/least_squares.cpp.o.d"
  "CMakeFiles/mpath_util.dir/log.cpp.o"
  "CMakeFiles/mpath_util.dir/log.cpp.o.d"
  "CMakeFiles/mpath_util.dir/stats.cpp.o"
  "CMakeFiles/mpath_util.dir/stats.cpp.o.d"
  "CMakeFiles/mpath_util.dir/table.cpp.o"
  "CMakeFiles/mpath_util.dir/table.cpp.o.d"
  "CMakeFiles/mpath_util.dir/units.cpp.o"
  "CMakeFiles/mpath_util.dir/units.cpp.o.d"
  "libmpath_util.a"
  "libmpath_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
