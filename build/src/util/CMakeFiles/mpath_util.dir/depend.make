# Empty dependencies file for mpath_util.
# This may be replaced when dependencies are built.
