file(REMOVE_RECURSE
  "libmpath_util.a"
)
