file(REMOVE_RECURSE
  "libmpath_transport.a"
)
