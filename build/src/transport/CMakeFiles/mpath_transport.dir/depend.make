# Empty dependencies file for mpath_transport.
# This may be replaced when dependencies are built.
