file(REMOVE_RECURSE
  "CMakeFiles/mpath_transport.dir/fabric.cpp.o"
  "CMakeFiles/mpath_transport.dir/fabric.cpp.o.d"
  "libmpath_transport.a"
  "libmpath_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
