
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/chunking.cpp" "src/model/CMakeFiles/mpath_model.dir/chunking.cpp.o" "gcc" "src/model/CMakeFiles/mpath_model.dir/chunking.cpp.o.d"
  "/root/repo/src/model/configurator.cpp" "src/model/CMakeFiles/mpath_model.dir/configurator.cpp.o" "gcc" "src/model/CMakeFiles/mpath_model.dir/configurator.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/mpath_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/mpath_model.dir/params.cpp.o.d"
  "/root/repo/src/model/registry.cpp" "src/model/CMakeFiles/mpath_model.dir/registry.cpp.o" "gcc" "src/model/CMakeFiles/mpath_model.dir/registry.cpp.o.d"
  "/root/repo/src/model/theta.cpp" "src/model/CMakeFiles/mpath_model.dir/theta.cpp.o" "gcc" "src/model/CMakeFiles/mpath_model.dir/theta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpath_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpath_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpath_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
