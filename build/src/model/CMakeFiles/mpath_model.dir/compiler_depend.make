# Empty compiler generated dependencies file for mpath_model.
# This may be replaced when dependencies are built.
