file(REMOVE_RECURSE
  "CMakeFiles/mpath_model.dir/chunking.cpp.o"
  "CMakeFiles/mpath_model.dir/chunking.cpp.o.d"
  "CMakeFiles/mpath_model.dir/configurator.cpp.o"
  "CMakeFiles/mpath_model.dir/configurator.cpp.o.d"
  "CMakeFiles/mpath_model.dir/params.cpp.o"
  "CMakeFiles/mpath_model.dir/params.cpp.o.d"
  "CMakeFiles/mpath_model.dir/registry.cpp.o"
  "CMakeFiles/mpath_model.dir/registry.cpp.o.d"
  "CMakeFiles/mpath_model.dir/theta.cpp.o"
  "CMakeFiles/mpath_model.dir/theta.cpp.o.d"
  "libmpath_model.a"
  "libmpath_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
