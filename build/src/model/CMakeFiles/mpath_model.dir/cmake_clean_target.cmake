file(REMOVE_RECURSE
  "libmpath_model.a"
)
