file(REMOVE_RECURSE
  "../bench/fig5_unidirectional_bw"
  "../bench/fig5_unidirectional_bw.pdb"
  "CMakeFiles/fig5_unidirectional_bw.dir/fig5_unidirectional_bw.cpp.o"
  "CMakeFiles/fig5_unidirectional_bw.dir/fig5_unidirectional_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_unidirectional_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
