# Empty dependencies file for fig5_unidirectional_bw.
# This may be replaced when dependencies are built.
