file(REMOVE_RECURSE
  "../bench/fig7_collectives"
  "../bench/fig7_collectives.pdb"
  "CMakeFiles/fig7_collectives.dir/fig7_collectives.cpp.o"
  "CMakeFiles/fig7_collectives.dir/fig7_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
