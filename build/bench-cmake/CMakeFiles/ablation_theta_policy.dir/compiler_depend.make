# Empty compiler generated dependencies file for ablation_theta_policy.
# This may be replaced when dependencies are built.
