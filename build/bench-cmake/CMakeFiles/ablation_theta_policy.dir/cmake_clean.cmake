file(REMOVE_RECURSE
  "../bench/ablation_theta_policy"
  "../bench/ablation_theta_policy.pdb"
  "CMakeFiles/ablation_theta_policy.dir/ablation_theta_policy.cpp.o"
  "CMakeFiles/ablation_theta_policy.dir/ablation_theta_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_theta_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
