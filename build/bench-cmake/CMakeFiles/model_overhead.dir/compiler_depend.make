# Empty compiler generated dependencies file for model_overhead.
# This may be replaced when dependencies are built.
