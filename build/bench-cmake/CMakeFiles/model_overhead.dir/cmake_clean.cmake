file(REMOVE_RECURSE
  "../bench/model_overhead"
  "../bench/model_overhead.pdb"
  "CMakeFiles/model_overhead.dir/model_overhead.cpp.o"
  "CMakeFiles/model_overhead.dir/model_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
