
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/prediction_error_summary.cpp" "bench-cmake/CMakeFiles/prediction_error_summary.dir/prediction_error_summary.cpp.o" "gcc" "bench-cmake/CMakeFiles/prediction_error_summary.dir/prediction_error_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuning/CMakeFiles/mpath_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/benchcore/CMakeFiles/mpath_benchcore.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mpath_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpath_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/mpath_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/mpath_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/mpath_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mpath_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpath_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpath_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
