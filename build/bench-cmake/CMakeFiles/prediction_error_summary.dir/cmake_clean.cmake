file(REMOVE_RECURSE
  "../bench/prediction_error_summary"
  "../bench/prediction_error_summary.pdb"
  "CMakeFiles/prediction_error_summary.dir/prediction_error_summary.cpp.o"
  "CMakeFiles/prediction_error_summary.dir/prediction_error_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_error_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
