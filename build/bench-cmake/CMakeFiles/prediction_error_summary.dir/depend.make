# Empty dependencies file for prediction_error_summary.
# This may be replaced when dependencies are built.
