file(REMOVE_RECURSE
  "../bench/ablation_chunking"
  "../bench/ablation_chunking.pdb"
  "CMakeFiles/ablation_chunking.dir/ablation_chunking.cpp.o"
  "CMakeFiles/ablation_chunking.dir/ablation_chunking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
