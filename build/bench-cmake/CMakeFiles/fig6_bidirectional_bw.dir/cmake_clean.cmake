file(REMOVE_RECURSE
  "../bench/fig6_bidirectional_bw"
  "../bench/fig6_bidirectional_bw.pdb"
  "CMakeFiles/fig6_bidirectional_bw.dir/fig6_bidirectional_bw.cpp.o"
  "CMakeFiles/fig6_bidirectional_bw.dir/fig6_bidirectional_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bidirectional_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
