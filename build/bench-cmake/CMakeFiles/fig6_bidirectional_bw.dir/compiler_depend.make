# Empty compiler generated dependencies file for fig6_bidirectional_bw.
# This may be replaced when dependencies are built.
