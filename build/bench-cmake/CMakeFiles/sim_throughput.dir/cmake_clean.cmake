file(REMOVE_RECURSE
  "../bench/sim_throughput"
  "../bench/sim_throughput.pdb"
  "CMakeFiles/sim_throughput.dir/sim_throughput.cpp.o"
  "CMakeFiles/sim_throughput.dir/sim_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
