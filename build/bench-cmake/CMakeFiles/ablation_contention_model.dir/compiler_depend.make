# Empty compiler generated dependencies file for ablation_contention_model.
# This may be replaced when dependencies are built.
