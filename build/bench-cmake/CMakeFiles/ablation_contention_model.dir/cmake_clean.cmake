file(REMOVE_RECURSE
  "../bench/ablation_contention_model"
  "../bench/ablation_contention_model.pdb"
  "CMakeFiles/ablation_contention_model.dir/ablation_contention_model.cpp.o"
  "CMakeFiles/ablation_contention_model.dir/ablation_contention_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_contention_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
