file(REMOVE_RECURSE
  "../bench/theorem1_check"
  "../bench/theorem1_check.pdb"
  "CMakeFiles/theorem1_check.dir/theorem1_check.cpp.o"
  "CMakeFiles/theorem1_check.dir/theorem1_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
