# Empty compiler generated dependencies file for theorem1_check.
# This may be replaced when dependencies are built.
