file(REMOVE_RECURSE
  "CMakeFiles/multipath_p2p.dir/multipath_p2p.cpp.o"
  "CMakeFiles/multipath_p2p.dir/multipath_p2p.cpp.o.d"
  "multipath_p2p"
  "multipath_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
