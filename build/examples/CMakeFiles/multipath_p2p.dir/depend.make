# Empty dependencies file for multipath_p2p.
# This may be replaced when dependencies are built.
