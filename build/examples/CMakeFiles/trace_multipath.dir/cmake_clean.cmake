file(REMOVE_RECURSE
  "CMakeFiles/trace_multipath.dir/trace_multipath.cpp.o"
  "CMakeFiles/trace_multipath.dir/trace_multipath.cpp.o.d"
  "trace_multipath"
  "trace_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
