# Empty dependencies file for trace_multipath.
# This may be replaced when dependencies are built.
