file(REMOVE_RECURSE
  "CMakeFiles/collective_allreduce.dir/collective_allreduce.cpp.o"
  "CMakeFiles/collective_allreduce.dir/collective_allreduce.cpp.o.d"
  "collective_allreduce"
  "collective_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
