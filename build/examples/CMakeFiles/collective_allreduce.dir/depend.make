# Empty dependencies file for collective_allreduce.
# This may be replaced when dependencies are built.
