#include "mpath/mpisim/world.hpp"

#include <stdexcept>

#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/collective_graph.hpp"

namespace mpath::mpisim {

World::World(gpusim::GpuRuntime& runtime, gpusim::DataChannel& channel,
             int nranks, WorldOptions options)
    : runtime_(&runtime),
      options_(options),
      fabric_(runtime, channel, options.transport),
      barrier_(runtime.engine(),
               static_cast<std::size_t>(
                   nranks > 0
                       ? nranks
                       : static_cast<int>(runtime.topology().gpus().size()))) {
  const auto gpus = runtime.topology().gpus();
  if (gpus.empty()) {
    throw std::invalid_argument("World: topology has no GPUs");
  }
  const int n = nranks > 0 ? nranks : static_cast<int>(gpus.size());
  for (int r = 0; r < n; ++r) {
    const topo::DeviceId dev = gpus[static_cast<std::size_t>(r) % gpus.size()];
    fabric_.add_worker(r, dev);
    comms_.push_back(std::make_unique<Communicator>(*this, r, dev));
  }
}

World::~World() {
  // The fabric (and its tap into the controller) dies with this World;
  // detach the channel's side too so a controller outliving the World is
  // not reachable through a channel reused by another World.
  if (chain_ctl_ != nullptr) set_chain_controller(nullptr);
}

void World::set_chain_controller(pipeline::ChainController* ctl) {
  auto* mdc = dynamic_cast<pipeline::ModelDrivenChannel*>(&fabric_.channel());
  if (ctl != nullptr && mdc == nullptr) {
    throw std::invalid_argument(
        "World::set_chain_controller: channel is not model-driven");
  }
  chain_ctl_ = ctl;
  if (mdc != nullptr) mdc->attach_chain(ctl);
  if (ctl != nullptr) {
    fabric_.set_transfer_tap(transport::TransferTap(
        [ctl](const transport::TransferSite& site) { ctl->on_transfer(site); }));
  } else {
    fabric_.set_transfer_tap({});
  }
}

Communicator& World::comm(int rank) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("World::comm: bad rank");
  }
  return *comms_[static_cast<std::size_t>(rank)];
}

std::vector<sim::Process> World::launch(RankMain& rank_main) {
  std::vector<sim::Process> procs;
  procs.reserve(comms_.size());
  for (auto& c : comms_) {
    procs.push_back(
        engine().spawn(rank_main(*c), "rank" + std::to_string(c->rank())));
  }
  return procs;
}

void World::run(RankMain rank_main) {
  // `rank_main` lives in this frame until engine().run() returns, which is
  // what keeps the rank coroutines' closure state valid while suspended.
  auto procs = launch(rank_main);
  engine().run();
  // run() throws on unjoined failures; reaching here means all ranks
  // completed cleanly.
}

Communicator::Communicator(World& world, int rank, topo::DeviceId device)
    : world_(&world),
      rank_(rank),
      device_(device),
      local_stream_(world.runtime().create_stream(device)) {}

sim::Task<void> Communicator::send(const gpusim::DeviceBuffer& buf,
                                   std::size_t offset, std::size_t bytes,
                                   int dst, int tag) {
  co_await world_->fabric().worker(rank_).send(dst, buf, offset, bytes, tag);
}

sim::Task<void> Communicator::recv(gpusim::DeviceBuffer& buf,
                                   std::size_t offset, std::size_t bytes,
                                   int src, int tag) {
  co_await world_->fabric().worker(rank_).recv(src, buf, offset, bytes, tag);
}

sim::Process Communicator::isend(const gpusim::DeviceBuffer& buf,
                                 std::size_t offset, std::size_t bytes,
                                 int dst, int tag) {
  return world_->engine().spawn(send(buf, offset, bytes, dst, tag),
                                "isend");
}

sim::Process Communicator::irecv(gpusim::DeviceBuffer& buf,
                                 std::size_t offset, std::size_t bytes,
                                 int src, int tag) {
  return world_->engine().spawn(recv(buf, offset, bytes, src, tag), "irecv");
}

sim::Task<void> Communicator::wait_all(std::vector<sim::Process> requests) {
  for (auto& r : requests) {
    co_await r.join();
  }
}

sim::Task<void> Communicator::sendrecv(
    const gpusim::DeviceBuffer& sendbuf, std::size_t send_off,
    std::size_t send_bytes, int dst, gpusim::DeviceBuffer& recvbuf,
    std::size_t recv_off, std::size_t recv_bytes, int src, int tag) {
  std::vector<sim::Process> reqs;
  reqs.push_back(isend(sendbuf, send_off, send_bytes, dst, tag));
  reqs.push_back(irecv(recvbuf, recv_off, recv_bytes, src, tag));
  co_await wait_all(std::move(reqs));
}

sim::Task<void> Communicator::barrier() {
  co_await world_->barrier().arrive();
}

sim::Task<void> Communicator::local_copy(gpusim::DeviceBuffer& dst,
                                         std::size_t dst_off,
                                         const gpusim::DeviceBuffer& src,
                                         std::size_t src_off,
                                         std::size_t bytes) {
  world_->runtime().memcpy_async(dst, dst_off, src, src_off, bytes,
                                 local_stream_);
  co_await world_->runtime().synchronize(local_stream_);
}

sim::Task<void> Communicator::reduce_compute(std::size_t bytes) {
  co_await world_->engine().delay(static_cast<double>(bytes) /
                                  world_->options().reduce_bps);
}

int Communicator::next_collective_tag() {
  // 64 tags per collective invocation, far above any algorithm's step
  // count; base offset keeps collective tags clear of user P2P tags.
  constexpr int kCollectiveTagBase = 1 << 20;
  return kCollectiveTagBase + 64 * collective_seq_++;
}

}  // namespace mpath::mpisim
