#include "mpath/mpisim/collectives.hpp"

#include <bit>
#include <stdexcept>

#include "mpath/pipeline/collective_graph.hpp"

namespace mpath::mpisim {

namespace {

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

/// Algorithm ids for chain identity (ChainKey::algo). Values are stable
/// across releases — cached chains key on them.
enum ChainAlgo : int {
  kChainAllreduceRhd = 0,
  kChainAllreduceRing = 1,
  kChainAlltoallPairwise = 2,
  kChainAlltoallBruck = 3,
  kChainAllgatherRing = 4,
  kChainBcastBinomial = 5,
};

/// data[dst_off..] += tmp[0..floats) elementwise, charging reduce time.
sim::Task<void> reduce_into(Communicator& comm, gpusim::DeviceBuffer& data,
                            std::size_t float_off,
                            const gpusim::DeviceBuffer& tmp,
                            std::size_t floats) {
  if (data.materialized() && tmp.materialized()) {
    auto d = data.as<float>();
    auto t = tmp.as<const float>();
    for (std::size_t i = 0; i < floats; ++i) {
      d[float_off + i] += t[i];
    }
  }
  co_await comm.reduce_compute(floats * sizeof(float));
}

/// Scratch buffers mirror the payload mode of the user's buffer so that
/// timing-only collectives never materialize bytes.
gpusim::Payload payload_of(const gpusim::DeviceBuffer& buf) {
  return buf.materialized() ? gpusim::Payload::Materialized
                            : gpusim::Payload::Simulated;
}

sim::Task<void> allreduce_rhd(Communicator& comm, gpusim::DeviceBuffer& data) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t count = data.size() / sizeof(float);
  const int tag = comm.next_collective_tag();
  pipeline::ChainScope chain(comm.world().chain_controller(), "allreduce-rhd",
                             p, data.size(), kChainAllreduceRhd, 0, tag);
  gpusim::DeviceBuffer tmp(comm.device(), count / 2 * sizeof(float),
                           payload_of(data));

  // Phase 1: recursive-halving scatter-reduce.
  std::size_t lo = 0;
  std::size_t own = count;
  int step = 0;
  for (int d = p / 2; d >= 1; d /= 2, ++step) {
    const int partner = rank ^ d;
    const std::size_t half = own / 2;
    const bool keep_lower = (rank & d) == 0;
    const std::size_t send_floats = keep_lower ? lo + half : lo;
    const std::size_t keep_floats = keep_lower ? lo : lo + half;
    co_await comm.sendrecv(data, send_floats * sizeof(float),
                           half * sizeof(float), partner, tmp, 0,
                           half * sizeof(float), partner, tag + step);
    co_await reduce_into(comm, data, keep_floats, tmp, half);
    lo = keep_floats;
    own = half;
  }

  // Phase 2: recursive-doubling allgather (exact reverse of phase 1).
  for (int d = 1; d < p; d *= 2, ++step) {
    const int partner = rank ^ d;
    const std::size_t plo = (rank & d) ? lo - own : lo + own;
    co_await comm.sendrecv(data, lo * sizeof(float), own * sizeof(float),
                           partner, data, plo * sizeof(float),
                           own * sizeof(float), partner, tag + step);
    lo = std::min(lo, plo);
    own *= 2;
  }
}

sim::Task<void> allreduce_ring(Communicator& comm,
                               gpusim::DeviceBuffer& data) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t count = data.size() / sizeof(float);
  const std::size_t blk = count / static_cast<std::size_t>(p);
  const int tag = comm.next_collective_tag();
  pipeline::ChainScope chain(comm.world().chain_controller(), "allreduce-ring",
                             p, data.size(), kChainAllreduceRing, 0, tag);
  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  gpusim::DeviceBuffer tmp(comm.device(), blk * sizeof(float),
                           payload_of(data));

  // Phase 1: ring scatter-reduce.
  for (int s = 0; s < p - 1; ++s) {
    const int send_blk = (rank - s + p) % p;
    const int recv_blk = (rank - s - 1 + p) % p;
    co_await comm.sendrecv(
        data, static_cast<std::size_t>(send_blk) * blk * sizeof(float),
        blk * sizeof(float), right, tmp, 0, blk * sizeof(float), left,
        tag + s);
    co_await reduce_into(comm, data,
                         static_cast<std::size_t>(recv_blk) * blk, tmp, blk);
  }
  // Phase 2: ring allgather.
  for (int s = 0; s < p - 1; ++s) {
    const int send_blk = (rank - s + 1 + p) % p;
    const int recv_blk = (rank - s + p) % p;
    co_await comm.sendrecv(
        data, static_cast<std::size_t>(send_blk) * blk * sizeof(float),
        blk * sizeof(float), right, data,
        static_cast<std::size_t>(recv_blk) * blk * sizeof(float),
        blk * sizeof(float), left, tag + p + s);
  }
}

sim::Task<void> alltoall_pairwise(Communicator& comm,
                                  const gpusim::DeviceBuffer& send,
                                  gpusim::DeviceBuffer& recv,
                                  std::size_t blk) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  pipeline::ChainScope chain(comm.world().chain_controller(),
                             "alltoall-pairwise", p, blk,
                             kChainAlltoallPairwise, 0, tag);
  // s = 0 is the local block; then p-1 pairwise exchanges.
  co_await comm.local_copy(recv, static_cast<std::size_t>(rank) * blk, send,
                           static_cast<std::size_t>(rank) * blk, blk);
  for (int s = 1; s < p; ++s) {
    const int dst = (rank + s) % p;
    const int src = (rank - s + p) % p;
    std::vector<sim::Process> reqs;
    reqs.push_back(comm.isend(send, static_cast<std::size_t>(dst) * blk, blk,
                              dst, tag + s));
    reqs.push_back(comm.irecv(recv, static_cast<std::size_t>(src) * blk, blk,
                              src, tag + s));
    co_await comm.wait_all(std::move(reqs));
  }
}

sim::Task<void> alltoall_bruck(Communicator& comm,
                               const gpusim::DeviceBuffer& send,
                               gpusim::DeviceBuffer& recv, std::size_t blk) {
  const int p = comm.size();
  const int rank = comm.rank();
  const int tag = comm.next_collective_tag();
  pipeline::ChainScope chain(comm.world().chain_controller(), "alltoall-bruck",
                             p, blk, kChainAlltoallBruck, 0, tag);
  const auto payload = payload_of(send);
  gpusim::DeviceBuffer tmp(comm.device(),
                           static_cast<std::size_t>(p) * blk, payload);
  const std::size_t max_pack =
      static_cast<std::size_t>((p + 1) / 2) * blk;
  gpusim::DeviceBuffer pack(comm.device(), max_pack, payload);
  gpusim::DeviceBuffer unpack(comm.device(), max_pack, payload);

  // Step 1: local rotation tmp[j] = send[(rank + j) mod p].
  for (int j = 0; j < p; ++j) {
    const int from = (rank + j) % p;
    co_await comm.local_copy(tmp, static_cast<std::size_t>(j) * blk, send,
                             static_cast<std::size_t>(from) * blk, blk);
  }

  // Step 2: log2(p) rounds of pack / exchange / unpack.
  int round = 0;
  for (int pof2 = 1; pof2 < p; pof2 *= 2, ++round) {
    std::vector<int> idx;
    for (int j = 1; j < p; ++j) {
      if (j & pof2) idx.push_back(j);
    }
    for (std::size_t i = 0; i < idx.size(); ++i) {
      co_await comm.local_copy(pack, i * blk, tmp,
                               static_cast<std::size_t>(idx[i]) * blk, blk);
    }
    const int dst = (rank + pof2) % p;
    const int src = (rank - pof2 + p) % p;
    co_await comm.sendrecv(pack, 0, idx.size() * blk, dst, unpack, 0,
                           idx.size() * blk, src, tag + round);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      co_await comm.local_copy(tmp, static_cast<std::size_t>(idx[i]) * blk,
                               unpack, i * blk, blk);
    }
  }

  // Step 3: inverse rotation recv[i] = tmp[(rank - i + p) mod p].
  for (int i = 0; i < p; ++i) {
    const int from = (rank - i + p) % p;
    co_await comm.local_copy(recv, static_cast<std::size_t>(i) * blk, tmp,
                             static_cast<std::size_t>(from) * blk, blk);
  }
}

}  // namespace

sim::Task<void> allreduce_sum(Communicator& comm, gpusim::DeviceBuffer& data,
                              AllreduceAlgo algo) {
  const auto p = static_cast<std::size_t>(comm.size());
  const std::size_t count = data.size() / sizeof(float);
  if (data.size() % sizeof(float) != 0 || count % p != 0 || count == 0) {
    throw std::invalid_argument(
        "allreduce_sum: element count must be a positive multiple of the "
        "world size");
  }
  if (comm.size() == 1) co_return;
  switch (algo) {
    case AllreduceAlgo::RecursiveHalvingDoubling:
      if (!is_pow2(comm.size())) {
        throw std::invalid_argument(
            "allreduce_sum: recursive halving/doubling needs a power-of-two "
            "world");
      }
      co_await allreduce_rhd(comm, data);
      break;
    case AllreduceAlgo::Ring:
      co_await allreduce_ring(comm, data);
      break;
  }
}

sim::Task<void> alltoall(Communicator& comm, const gpusim::DeviceBuffer& send,
                         gpusim::DeviceBuffer& recv, std::size_t block_bytes,
                         AlltoallAlgo algo) {
  const auto p = static_cast<std::size_t>(comm.size());
  if (block_bytes == 0 || send.size() < p * block_bytes ||
      recv.size() < p * block_bytes) {
    throw std::invalid_argument("alltoall: buffers must hold p blocks");
  }
  switch (algo) {
    case AlltoallAlgo::Bruck:
      co_await alltoall_bruck(comm, send, recv, block_bytes);
      break;
    case AlltoallAlgo::Pairwise:
      co_await alltoall_pairwise(comm, send, recv, block_bytes);
      break;
  }
}

sim::Task<void> allgather(Communicator& comm, gpusim::DeviceBuffer& data,
                          std::size_t block_bytes) {
  const int p = comm.size();
  const int rank = comm.rank();
  if (block_bytes == 0 ||
      data.size() < static_cast<std::size_t>(p) * block_bytes) {
    throw std::invalid_argument("allgather: buffer must hold p blocks");
  }
  const int tag = comm.next_collective_tag();
  pipeline::ChainScope chain(comm.world().chain_controller(), "allgather-ring",
                             p, block_bytes, kChainAllgatherRing, 0, tag);
  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_blk = (rank - s + p) % p;
    const int recv_blk = (rank - s - 1 + p) % p;
    co_await comm.sendrecv(
        data, static_cast<std::size_t>(send_blk) * block_bytes, block_bytes,
        right, data, static_cast<std::size_t>(recv_blk) * block_bytes,
        block_bytes, left, tag + s);
  }
}

sim::Task<void> broadcast(Communicator& comm, gpusim::DeviceBuffer& data,
                          std::size_t bytes, int root) {
  const int p = comm.size();
  if (root < 0 || root >= p) {
    throw std::invalid_argument("broadcast: bad root");
  }
  if (p == 1 || bytes == 0) co_return;
  const int tag = comm.next_collective_tag();
  // Root is part of the chain identity (variant): the tree shape depends
  // on it, and two roots must not share one captured template.
  pipeline::ChainScope chain(comm.world().chain_controller(), "bcast-binomial",
                             p, bytes, kChainBcastBinomial, root, tag);
  // Binomial tree in the rank space rotated so that root maps to 0.
  const int vrank = (comm.rank() - root + p) % p;
  int mask = 1;
  // Receive once from the parent...
  while (mask < p) {
    if (vrank & mask) {
      const int parent = ((vrank ^ mask) + root) % p;
      co_await comm.recv(data, 0, bytes, parent, tag);
      break;
    }
    mask <<= 1;
  }
  // ...then forward to children below the received mask.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child = ((vrank | mask) + root) % p;
      co_await comm.send(data, 0, bytes, child, tag);
    }
    mask >>= 1;
  }
}

}  // namespace mpath::mpisim
