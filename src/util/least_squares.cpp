#include "mpath/util/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace mpath::util {

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) {
    throw std::invalid_argument("fit_line: need at least two samples");
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("fit_line: all x values identical");
  }
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double y_mean = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double fit_proportional(std::span<const double> xs,
                        std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("fit_proportional: bad input sizes");
  }
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  if (sxx == 0.0) {
    throw std::invalid_argument("fit_proportional: all x zero");
  }
  return sxy / sxx;
}

}  // namespace mpath::util
