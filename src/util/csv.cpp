#include "mpath/util/csv.hpp"

#include <cstdio>
#include <span>
#include <stdexcept>

#include "mpath/util/fsio.hpp"
#include "mpath/util/log.hpp"

namespace mpath::util {

CsvWriter::CsvWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {}

CsvWriter::~CsvWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    MPATH_WARN << "CsvWriter: publish of " << path_ << " failed: "
               << e.what();
  }
}

void CsvWriter::ensure_open() {
  if (out_.is_open()) return;
  if (closed_) {
    throw std::logic_error("CsvWriter: row after close() on " + path_);
  }
  out_.open(tmp_path_, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + tmp_path_);
  }
}

void CsvWriter::close() {
  if (closed_ || !out_.is_open()) return;
  out_.flush();
  out_.close();
  closed_ = true;
  atomic_replace(tmp_path_, path_);
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_cells(std::span<const std::string_view> cells) {
  ensure_open();
  bool first = true;
  for (auto cell : cells) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape(cell);
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string_view> v(columns);
  write_cells(v);
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  std::vector<std::string_view> v(cells);
  write_cells(v);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  std::vector<std::string_view> v(cells.begin(), cells.end());
  write_cells(v);
}

std::string CsvWriter::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace mpath::util
