#include "mpath/util/units.hpp"

#include <array>
#include <cstdio>

namespace mpath::util {

std::string format_bytes(std::size_t bytes) {
  struct Scale {
    std::size_t divisor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 3> scales{{
      {kGiB, "GB"},
      {kMiB, "MB"},
      {kKiB, "KB"},
  }};
  for (const auto& s : scales) {
    if (bytes < s.divisor) continue;
    if (bytes % s.divisor == 0) {
      return std::to_string(bytes / s.divisor) + s.suffix;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%s",
                  static_cast<double>(bytes) / static_cast<double>(s.divisor),
                  s.suffix);
    return buf;
  }
  return std::to_string(bytes) + "B";
}

std::string format_time(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

}  // namespace mpath::util
