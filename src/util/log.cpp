#include "mpath/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mpath::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("MPATH_LOG")) {
    std::string_view s(env);
    if (s == "debug") return LogLevel::Debug;
    if (s == "info") return LogLevel::Info;
    if (s == "warn") return LogLevel::Warn;
    if (s == "error") return LogLevel::Error;
    if (s == "off") return LogLevel::Off;
  }
  return LogLevel::Warn;
}()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_level(std::string_view name) {
  if (name == "debug") set_log_level(LogLevel::Debug);
  else if (name == "info") set_log_level(LogLevel::Info);
  else if (name == "warn") set_log_level(LogLevel::Warn);
  else if (name == "error") set_log_level(LogLevel::Error);
  else if (name == "off") set_log_level(LogLevel::Off);
}

namespace detail {
void emit(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[mpath %-5s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace mpath::util
